#!/usr/bin/env python
"""Summarize archived benchmark results for EXPERIMENTS.md maintenance.

Reads ``benchmarks/results/*.json`` (written by the benchmark harness) and
prints the headline paper-vs-measured numbers in one screen, so the tables
in EXPERIMENTS.md can be refreshed after a re-measurement.

Run:  python benchmarks/summarize_results.py
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parent / "results"


def _load(name: str) -> dict | None:
    path = RESULTS / f"{name}.json"
    return json.loads(path.read_text()) if path.exists() else None


def main() -> None:
    table1 = _load("table1")
    if table1:
        lo, hi = table1["speedup_range"]
        identical = all(c["identical"] for c in table1["cells"].values())
        print(f"table1: speedup {lo:.1f}-{hi:.1f}x (paper 3.6-3.8x); "
              f"identical networks: {identical}")

    fig3 = _load("fig3")
    if fig3:
        exps = ", ".join(
            f"n={n}: {e:.2f}" for n, e in sorted(fig3["fitted_m_exponents"].items(), key=lambda kv: int(kv[0]))
        )
        print(f"fig3: m-exponents {exps} (paper ~2.0)")

    fig4 = _load("fig4")
    if fig4:
        exps = ", ".join(
            f"m={m}: {e:.2f}" for m, e in sorted(fig4["fitted_n_exponents"].items(), key=lambda kv: int(kv[0]))
        )
        ks = ", ".join(f"{n}:{k}" for n, k in sorted(fig4["module_counts"].items(), key=lambda kv: int(kv[0])))
        print(f"fig4: n-exponents {exps} (paper 1.8-2.0); K(n) {ks}")

    fig5a = _load("fig5a")
    if fig5a:
        frac = fig5a["modules_fraction"]
        ordered = sorted(frac.items(), key=lambda kv: int(kv[0]))
        print(f"fig5a: modules share {100 * ordered[0][1]:.0f}% -> "
              f"{100 * ordered[-1][1]:.0f}% over the m sweep (paper 94.7->99.4%)")

    fig5b = _load("fig5b")
    if fig5b and "paper_scale_speedups" in fig5b:
        big = max(fig5b["paper_scale_speedups"], key=lambda k: int(k.split("=")[1]))
        curve = fig5b["paper_scale_speedups"][big]
        print(f"fig5b (paper scale, {big}): {curve['64']:.0f}x at p=64 "
              f"({curve['64'] / 64:.0%}), {curve['1024']:.0f}x at p=1024 "
              f"(paper: 48x/75% and 273.9-288.3x)")

    imb = _load("sec531_imbalance")
    if imb:
        vals = imb["imbalance"]
        print(f"sec5.3.1: imbalance {vals['64']:.2f}@64, {vals['128']:.2f}@128, "
              f"{vals['1024']:.2f}@1024 (paper <0.3, 0.5, 2.6)")

    fig6 = _load("fig6")
    if fig6:
        print(f"fig6: rel speedup 4->128 {fig6['rel_speedup_4_128']:.1f}x "
              f"(paper 22.6x); 4->4096 {fig6['rel_speedup_4_4096']:.1f}x "
              f"(paper 239.3x); T_4096 "
              f"{fig6['paper_scale_hours']['4096'] * 60:.0f} min (paper 23.5)")

    table2 = _load("table2")
    if table2:
        sp = table2["speedup_vs_256"]
        print(f"table2: speedup vs 256 at 4096 = {sp['4096']:.1f}x "
              f"(paper 11.2x); thaliana eff {table2['thaliana_rel_eff_4096']:.0%} "
              f"vs yeast {table2['yeast_rel_eff_4096']:.0%} (paper 69.9% vs ~47%)")

    est = _load("sec522_estimates")
    if est:
        band = est.get("reference_multiplier_band") or [None, None]
        band_str = (
            f"x{band[0]:.1f}-{band[1]:.1f}" if band[0] is not None else "n/a"
        )
        print(f"sec5.2.2: m-exp {est['fitted_m_exponent']:.2f}, "
              f"n-exp {est['fitted_n_exponent']:.2f}, verification error "
              f"{est['verification_error']:.0%}; yeast "
              f"{est['yeast_full_scale_days']:.1f} d, thaliana "
              f"{est['thaliana_full_scale_days']:.0f} d; baseline multiplier {band_str}")

    part = _load("ablation_partitioning")
    if part:
        row = part.get("1024", {})
        if row:
            print(f"ablation partitioning @1024: per-node "
                  f"{row['per_node_imbalance']:.1f}, flat "
                  f"{row['flat_imbalance']:.2f}, dyn-LPT "
                  f"{row['lpt_imbalance']:.2f}")

    kern = _load("BENCH_kernel")
    if kern:
        print(f"kernel: lazy {kern['speedup']:.2f}x vs materialized "
              f"(P={kern['n_parents']}, n_obs={kern['n_obs']}); memo hit rate "
              f"{kern['memo_hit_rate']:.0%} ({kern['memo_hits']} hits / "
              f"{kern['memo_evaluations']} evals), peak chunk "
              f"{kern['peak_chunk_elements']} elems; "
              f"bit-identical: {kern['bit_identical']}")

    kern_native = _load("BENCH_kernel_native")
    if kern_native:
        totals = kern_native.get("kernel_totals") or {}
        backends = "+".join(totals.get("backends", [])) or "n/a"
        print(f"kernel-native: {kern_native['speedup']:.2f}x vs numpy oracle "
              f"(provider {kern_native['provider']}, backends {backends}); "
              f"{kern_native['memo_hits']} hits / "
              f"{kern_native['memo_evaluations']} evals per backend, peak chunk "
              f"{kern_native['peak_chunk_elements']} elems; "
              f"bit-identical: {kern_native['bit_identical']}")

    task1 = _load("BENCH_task1")
    if task1:
        print(f"task1: {task1['speedup_2']:.2f}x@2w, "
              f"{task1['speedup_4']:.2f}x@4w ({task1['g_runs']} runs, "
              f"{task1['steals']} steals, locality "
              f"{task1['locality_hit_rate']:.0%}); "
              f"bit-identical: {task1['bit_identical']}")

    shard = _load("BENCH_shard")
    if shard:
        cal = shard.get("calibration") or {}
        tau, mu = cal.get("tau"), cal.get("mu")
        wire = (f"tau={tau:.3g}s mu={mu:.3g}s/word"
                if tau is not None else "uncalibrated")
        print(f"shard: {shard['speedup_2']:.2f}x@2 nodes "
              f"({shard['node_backend']}, {shard['g_runs']} runs, "
              f"{shard['cores_available']} cores); wire {wire}; "
              f"{shard['transfer_bytes']} B in "
              f"{shard['transfer_seconds']:.3f}s, "
              f"{shard['node_steals']} node steals; "
              f"bit-identical: {shard['bit_identical']}")

    genomica = _load("extension_genomica")
    if genomica:
        sp = genomica.get("speedups_genome_scale", genomica.get("speedups", {}))
        print(f"extension genomica: {sp.get('32', 0):.1f}x@32 "
              f"(prior art 29.3x), {sp.get('1024', 0):.1f}x@1024")


if __name__ == "__main__":
    main()
