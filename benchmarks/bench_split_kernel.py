"""Lazy-margin kernel vs the materialized-margins seed scorer.

Split scoring is the dominant sequential phase (more than 90% of run-time,
Section 2.2.3), so the kernel rewrite targets exactly this micro-kernel:
one node's full candidate-split batch, scored by the Metropolis beta chain
and by GENOMICA's exhaustive grid search.

The baseline below is a verbatim copy of the seed implementation — dense
``(P * n_obs, n_obs)`` margins materialized up front, full rows re-scored
at every chain step, the stable log-sigmoid evaluating its ``log1p`` term
once per branch.  The contender is the shipped path:
:func:`split_kernel_from_arrays` + ``score_batch_kernel`` (lazy margins,
per-(group, beta) memoization, equal-value dedup).

The **bit-identity assertion is unconditional** — every score, step count,
beta index and acceptance flag must match the baseline exactly; this is
what the CI bench-smoke job runs on every PR (with ``REPRO_BENCH_SMOKE=1``
shrinking the problem and disabling the timing gate, which stays enforced
for full local runs).  The record lands in
``benchmarks/results/BENCH_kernel.json``.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np
import pytest

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.data.synthetic import make_module_dataset
from repro.parallel.topology import chunk_elements_for, probe_topology
from repro.rng.streams import SCORE_QUANTUM
from repro.scoring.kernel import configured_chunk_elements, split_kernel_from_arrays
from repro.scoring.split_score import (
    DEFAULT_BETA_GRID,
    SplitScorer,
    _neighbor,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: node shape: P candidate parents x n_obs observations (bench_config's
#: sampling parameters: the paper's minimum-run-time configuration)
N_PARENTS, N_OBS = (12, 40) if SMOKE else (60, 150)
MAX_STEPS, STOP_REPEATS = 25, 2
REPEATS = 3

_LOG_HALF = math.log(0.5)


# -- the seed implementation, verbatim --------------------------------------


def _baseline_margins(data, obs, left_obs, parents) -> np.ndarray:
    obs = np.asarray(obs, dtype=np.int64)
    sign = np.where(np.isin(obs, left_obs), 1.0, -1.0)
    values = data[np.asarray(parents, dtype=np.int64)][:, obs]
    margins = sign[None, None, :] * (values[:, :, None] - values[:, None, :])
    n_parents, n_obs = values.shape
    return margins.reshape(n_parents * n_obs, n_obs)


def _baseline_scores_at(margins, beta_grid, beta_idx) -> np.ndarray:
    beta = beta_grid[beta_idx]
    z = margins * beta[:, None]
    out = np.where(
        z > 0, -np.log1p(np.exp(-np.abs(z))), z - np.log1p(np.exp(-np.abs(z)))
    )
    scores = out.sum(axis=1)
    return np.round(scores / SCORE_QUANTUM) * SCORE_QUANTUM


def _baseline_score_batch(margins, uniforms, beta_grid, max_steps, stop_repeats):
    margins = np.asarray(margins, dtype=np.float64)
    n_items, n_obs = margins.shape
    n_beta = beta_grid.size

    cur_idx = np.minimum((uniforms[:, 0] * n_beta).astype(np.int64), n_beta - 1)
    cur_score = _baseline_scores_at(margins, beta_grid, cur_idx)
    best_score = cur_score.copy()
    best_idx = cur_idx.copy()
    steps = np.zeros(n_items, dtype=np.int64)
    rejects = np.zeros(n_items, dtype=np.int64)
    active = np.ones(n_items, dtype=bool)

    for step in range(max_steps):
        if not active.any():
            break
        idx_a = np.flatnonzero(active)
        u_prop = uniforms[idx_a, 1 + 2 * step]
        u_acc = uniforms[idx_a, 2 + 2 * step]
        prop = _neighbor(cur_idx[idx_a], u_prop, n_beta)
        prop_score = _baseline_scores_at(margins[idx_a], beta_grid, prop)
        accept = np.log(np.maximum(u_acc, 1e-300)) < (prop_score - cur_score[idx_a])
        steps[idx_a] += 1

        acc_rows = idx_a[accept]
        cur_idx[acc_rows] = prop[accept]
        cur_score[acc_rows] = prop_score[accept]
        rejects[acc_rows] = 0
        rej_rows = idx_a[~accept]
        rejects[rej_rows] += 1

        improved = acc_rows[cur_score[acc_rows] > best_score[acc_rows]]
        best_score[improved] = cur_score[improved]
        best_idx[improved] = cur_idx[improved]

        active[rej_rows[rejects[rej_rows] >= stop_repeats]] = False

    best_score = np.round(best_score / SCORE_QUANTUM) * SCORE_QUANTUM
    baseline = round(n_obs * _LOG_HALF / SCORE_QUANTUM) * SCORE_QUANTUM
    accepted = best_score > baseline + SCORE_QUANTUM / 2
    return best_score, steps, best_idx, accepted


def _baseline_grid_best(margins, beta_grid):
    margins = np.asarray(margins, dtype=np.float64)
    n_items, n_obs = margins.shape
    best = np.full(n_items, -np.inf)
    best_idx = np.zeros(n_items, dtype=np.int64)
    for idx in range(beta_grid.size):
        scores = _baseline_scores_at(
            margins, beta_grid, np.full(n_items, idx, dtype=np.int64)
        )
        improved = scores > best
        best[improved] = scores[improved]
        best_idx[improved] = idx
    baseline = round(n_obs * _LOG_HALF / SCORE_QUANTUM) * SCORE_QUANTUM
    accepted = best > baseline + SCORE_QUANTUM / 2
    return best, best_idx, accepted


# -- scenario ----------------------------------------------------------------


def _node_scenario():
    """One realistic node: synthetic module data, halved observations."""
    matrix = make_module_dataset(
        max(N_PARENTS * 2, 64), N_OBS, seed=BENCH_SEED
    ).matrix
    data = matrix.values
    rng = np.random.default_rng(BENCH_SEED)
    parents = rng.choice(data.shape[0], size=N_PARENTS, replace=False).astype(np.int64)
    obs = np.arange(N_OBS, dtype=np.int64)
    left_obs = obs[: N_OBS // 2].copy()
    scorer = SplitScorer(
        beta_grid=DEFAULT_BETA_GRID,
        max_steps=MAX_STEPS,
        stop_repeats=STOP_REPEATS,
    )
    uniforms = rng.random((N_PARENTS * N_OBS, scorer.draws_per_item))
    return data, obs, left_obs, parents, scorer, uniforms


def _best_of(repeats, fn):
    best, result = math.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_kernel_vs_materialized(capsys):
    data, obs, left_obs, parents, scorer, uniforms = _node_scenario()
    grid = scorer.beta_grid

    def run_baseline():
        margins = _baseline_margins(data, obs, left_obs, parents)
        chain = _baseline_score_batch(
            margins, uniforms, grid, MAX_STEPS, STOP_REPEATS
        )
        best = _baseline_grid_best(margins, grid)
        return margins, chain, best

    def run_kernel():
        # Pinned to the NumPy oracle: this record tracks the lazy-margin
        # rewrite itself; the native backend has its own sweep below.
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, grid, backend="numpy"
        )
        chain = scorer.score_batch_kernel(kernel, uniforms)
        best = scorer.score_grid_best_kernel(kernel)
        return kernel, chain, best

    t_base, (margins, base_chain, base_best) = _best_of(REPEATS, run_baseline)
    t_kernel, (kernel, kern_chain, kern_best) = _best_of(REPEATS, run_kernel)

    # Unconditional bit-identity: scores, steps, beta indices, acceptance —
    # chain and exhaustive variants both.
    for name, got, want in zip(
        ("log_scores", "steps", "beta_idx", "accepted"), kern_chain, base_chain
    ):
        np.testing.assert_array_equal(
            got, want, err_msg=f"chain {name} diverged from the seed scorer"
        )
    for name, got, want in zip(
        ("log_scores", "beta_idx", "accepted"), kern_best, base_best
    ):
        np.testing.assert_array_equal(
            got, want, err_msg=f"grid-best {name} diverged from the seed scorer"
        )

    speedup = t_base / t_kernel
    n_items = kernel.n_items
    hit_rate = kernel.hits / max(1, kernel.hits + kernel.evaluations)
    margins_bytes = margins.nbytes
    kernel_bytes = 8 * (kernel.n_items + kernel.peak_chunk_elements)
    rows = [
        ["materialized margins", f"{t_base * 1e3:.1f}", f"{margins_bytes >> 10} KiB", "1.00x"],
        [
            "lazy-margin kernel",
            f"{t_kernel * 1e3:.1f}",
            f"{kernel_bytes >> 10} KiB",
            f"{speedup:.2f}x",
        ],
    ]
    table = render_table(
        f"Node split scoring: P={N_PARENTS}, n_obs={N_OBS}, "
        f"{n_items} candidates (chain + grid-best, bit-identical)",
        ["scorer", "time (ms)", "peak scoring mem", "speedup"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    save_results(
        "BENCH_kernel",
        {
            "n_parents": N_PARENTS,
            "n_obs": N_OBS,
            "n_items": n_items,
            "n_groups": kernel.n_groups,
            "max_steps": MAX_STEPS,
            "stop_repeats": STOP_REPEATS,
            "time_baseline_s": t_base,
            "time_kernel_s": t_kernel,
            "speedup": speedup,
            "memo_hit_rate": hit_rate,
            "memo_hits": kernel.hits,
            "memo_evaluations": kernel.evaluations,
            "margins_bytes": margins_bytes,
            "peak_chunk_elements": kernel.peak_chunk_elements,
            # The machine-probed chunk budget the kernel defaulted to
            # (cache-derived via repro.parallel.topology, 2^18 when flat).
            "max_chunk_elements": configured_chunk_elements(),
            "topology": probe_topology().describe(),
            "topology_chunk_elements": chunk_elements_for(probe_topology()),
            "bit_identical": True,
            "smoke": SMOKE,
        },
    )
    # Memoization must be doing real work whatever the machine's speed.
    assert kernel.evaluations <= kernel.n_groups * grid.size
    assert kernel.hits > 0
    if not SMOKE:
        assert speedup >= 2.0, (
            f"lazy-margin kernel must be >= 2x the materialized baseline, "
            f"got {speedup:.2f}x"
        )


def test_native_vs_numpy_kernel(capsys):
    """Backend sweep: the native-compiled chunk evaluator against the NumPy
    oracle on the same lazy kernel, chain + grid-best.

    Bit-identity is the unconditional gate — every score, step count, beta
    index, acceptance flag and the entire memo cache must match the NumPy
    backend exactly (the extension already certified itself against NumPy
    at load, this asserts it end to end through the chain driver).  The
    record lands in ``benchmarks/results/BENCH_kernel_native.json``.
    """
    from repro import _native
    from repro.scoring.kernel import consume_kernel_totals

    if _native.load() is None:
        info = _native.availability()
        pytest.skip(f"native backend unavailable ({info['status']}: {info['detail']})")

    data, obs, left_obs, parents, scorer, uniforms = _node_scenario()
    grid = scorer.beta_grid

    def run_backend(backend):
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, grid, backend=backend
        )
        chain = scorer.score_batch_kernel(kernel, uniforms)
        best = scorer.score_grid_best_kernel(kernel)
        return kernel, chain, best

    consume_kernel_totals()  # isolate this sweep's counter window
    t_numpy, (numpy_kernel, numpy_chain, numpy_best) = _best_of(
        REPEATS, lambda: run_backend("numpy")
    )
    t_native, (native_kernel, native_chain, native_best) = _best_of(
        REPEATS, lambda: run_backend("native")
    )
    totals = consume_kernel_totals()

    for name, got, want in zip(
        ("log_scores", "steps", "beta_idx", "accepted"), native_chain, numpy_chain
    ):
        np.testing.assert_array_equal(
            got, want, err_msg=f"chain {name} diverged between backends"
        )
    for name, got, want in zip(
        ("log_scores", "beta_idx", "accepted"), native_best, numpy_best
    ):
        np.testing.assert_array_equal(
            got, want, err_msg=f"grid-best {name} diverged between backends"
        )
    # The whole memo cache — every (group, beta) score either backend
    # evaluated — must agree bit for bit, and so must the accounting.
    np.testing.assert_array_equal(native_kernel._seen, numpy_kernel._seen)
    np.testing.assert_array_equal(
        native_kernel._cache[native_kernel._seen],
        numpy_kernel._cache[numpy_kernel._seen],
        err_msg="memo caches diverged between backends",
    )
    assert native_kernel.hits == numpy_kernel.hits
    assert native_kernel.evaluations == numpy_kernel.evaluations
    assert native_kernel.peak_chunk_elements == numpy_kernel.peak_chunk_elements

    speedup = t_numpy / t_native
    rows = [
        ["numpy (oracle)", f"{t_numpy * 1e3:.1f}", "1.00x"],
        [f"native ({native_kernel._native.provider})", f"{t_native * 1e3:.1f}",
         f"{speedup:.2f}x"],
    ]
    table = render_table(
        f"Split-kernel backends: P={N_PARENTS}, n_obs={N_OBS}, "
        f"{native_kernel.n_items} candidates (chain + grid-best, bit-identical)",
        ["backend", "time (ms)", "speedup"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    save_results(
        "BENCH_kernel_native",
        {
            "n_parents": N_PARENTS,
            "n_obs": N_OBS,
            "n_items": native_kernel.n_items,
            "n_groups": native_kernel.n_groups,
            "max_steps": MAX_STEPS,
            "stop_repeats": STOP_REPEATS,
            "time_numpy_s": t_numpy,
            "time_native_s": t_native,
            "speedup": speedup,
            "provider": native_kernel._native.provider,
            "memo_hits": native_kernel.hits,
            "memo_evaluations": native_kernel.evaluations,
            "peak_chunk_elements": native_kernel.peak_chunk_elements,
            "kernel_totals": totals,
            "max_chunk_elements": configured_chunk_elements(),
            "bit_identical": True,
            "smoke": SMOKE,
        },
    )
    if not SMOKE:
        assert speedup >= 2.0, (
            f"native backend must be >= 2x the NumPy kernel at the standard "
            f"bench shape, got {speedup:.2f}x"
        )
