"""Ablation — sensitivity of scaling projections to the machine model.

Section 3.1 characterizes communication by latency tau and per-word time mu
with log(p) tree collectives.  This ablation sweeps both parameters around
the HDR100-like defaults and reports where the strong-scaling knee moves —
validating that the reproduced Figure 5/6 shapes are a property of the
algorithm's work distribution, not of one lucky constant choice.
"""

from __future__ import annotations

from repro.bench import render_table, save_results
from repro.parallel.costmodel import MachineModel
from repro.parallel.trace import project_time

PROCESSOR_COUNTS = (4, 16, 64, 256, 1024, 4096)

MODELS = {
    "hdr100 (default)": MachineModel(),
    "10x latency": MachineModel(tau=2.0e-5, mu=6.4e-10),
    "100x latency": MachineModel(tau=2.0e-4, mu=6.4e-10),
    "10x bandwidth cost": MachineModel(tau=2.0e-6, mu=6.4e-9),
    "zero comm (ideal)": MachineModel(tau=0.0, mu=0.0),
}


def _knee(speedups: dict[int, float], threshold: float = 0.5) -> int:
    """Largest p whose parallel efficiency still exceeds ``threshold``."""
    knee = min(speedups)
    for p, s in sorted(speedups.items()):
        if s / p >= threshold:
            knee = p
    return knee


def test_ablation_comm_model(benchmark, yeast_complete_trace, capsys):
    trace, meta = yeast_complete_trace
    t1 = sum(meta["task_times"].values())

    rows = []
    knees = {}
    speedups_by_model = {}
    for name, model in MODELS.items():
        speedups = {
            p: t1 / project_time(trace, p, model=model).total
            for p in PROCESSOR_COUNTS
        }
        speedups_by_model[name] = speedups
        knees[name] = _knee(speedups)
        rows.append(
            [name] + [f"{speedups[p]:.1f}" for p in PROCESSOR_COUNTS] + [knees[name]]
        )
    table = render_table(
        "Ablation — machine-model sensitivity: speedup by p",
        ["model"] + [f"p={p}" for p in PROCESSOR_COUNTS] + ["knee (>=50% eff)"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Ordering: worse networks can never scale better.
    for p in PROCESSOR_COUNTS:
        assert (
            speedups_by_model["zero comm (ideal)"][p]
            >= speedups_by_model["hdr100 (default)"][p] - 1e-9
        )
        assert (
            speedups_by_model["hdr100 (default)"][p]
            >= speedups_by_model["100x latency"][p] - 1e-9
        )
    # The knee retreats as latency grows.
    assert knees["100x latency"] <= knees["hdr100 (default)"]
    # Even the ideal network tapers eventually — the residual is the
    # load imbalance + sequential consensus, i.e. the algorithmic limit.
    ideal = speedups_by_model["zero comm (ideal)"]
    assert ideal[4096] < 4096 * 0.9

    save_results(
        "ablation_commmodel",
        {
            "speedups": {
                name: {str(p): s for p, s in sp.items()}
                for name, sp in speedups_by_model.items()
            },
            "knees": knees,
        },
    )
    benchmark.pedantic(
        lambda: project_time(trace, 1024, model=MODELS["10x latency"]),
        rounds=3,
        iterations=1,
    )
