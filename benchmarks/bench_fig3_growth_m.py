"""Figure 3 — sequential run-time growth with m at fixed n.

Paper: for each n, run-time grows close to quadratically in the number of
observations m (the dashed m^2 guide line), matching the O(...m^2) term of
Equation 1.  Here the optimized learner is measured over the scaled grid
and the growth ratios and fitted exponents are reported per n.
"""

from __future__ import annotations

from conftest import GRID_M, GRID_N
from repro.bench import PAPER, render_figure_series, save_results
from repro.bench.runtime_model import fit_growth_exponent, growth_ratios


def test_fig3_growth_with_observations(benchmark, grid_times, capsys):
    m0 = GRID_M[0]
    series = {}
    exponents = {}
    for n in GRID_N:
        times = {m: grid_times[(n, m)] for m in GRID_M}
        ratios = growth_ratios(list(times), list(times.values()))
        series[f"n={n}"] = dict(zip(sorted(times), ratios))
        exponents[n] = fit_growth_exponent(list(times), list(times.values()))
    series["m^2 (guide)"] = {m: (m / m0) ** 2 for m in GRID_M}

    figure = render_figure_series(
        "Figure 3 — run-time growth vs m (ratio to smallest m)",
        "m",
        series,
    )
    with capsys.disabled():
        print("\n" + figure)
        for n, exp in exponents.items():
            print(f"fitted m-exponent at n={n}: {exp:.2f} (paper: ~2.0)")

    # Shape assertion: superlinear growth in m around the paper's quadratic
    # law (Theta(m^2)).
    for n, exp in exponents.items():
        assert 1.4 < exp < 2.6, f"m-growth exponent {exp:.2f} at n={n} off-shape"

    save_results(
        "fig3",
        {
            "series": {k: {str(m): v for m, v in s.items()} for k, s in series.items()},
            "fitted_m_exponents": {str(n): e for n, e in exponents.items()},
            "paper_m_exponent": PAPER["growth"]["m_exponent"],
        },
    )

    benchmark.pedantic(
        lambda: [fit_growth_exponent(GRID_M, [grid_times[(n, m)] for m in GRID_M]) for n in GRID_N],
        rounds=3,
        iterations=1,
    )
