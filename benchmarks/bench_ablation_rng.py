"""Ablation — parallel PRNG backends (Section 4.2).

The paper uses TRNG's block-splittable multiple recursive generator and
notes the implementation "can use any parallel PRNG supported by the
library".  This ablation runs the learner under both backends (Philox
counter-based; MRG with matrix jump-ahead), verifies the consistency
contract holds for each, and compares the jump-ahead (block-split) costs —
O(1) for counter-based vs O(log k) for the MRG.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.parallel.engine import ParallelLearner
from repro.rng.streams import make_stream


def _jump_cost(backend: str, offset: int, repeats: int = 200) -> float:
    stream = make_stream(1, "jump", backend=backend)
    t0 = time.perf_counter()
    for _ in range(repeats):
        stream.block(offset, 1)
    return (time.perf_counter() - t0) / repeats


def test_ablation_rng_backend(benchmark, capsys):
    matrix = make_module_dataset(30, 16, n_modules=3, seed=3).matrix
    config_base = LearnerConfig(max_sampling_steps=5)

    rows = []
    consistency = {}
    learn_times = {}
    for backend in ("philox", "mrg"):
        config = config_base.with_updates(rng_backend=backend)
        t0 = time.perf_counter()
        sequential = LemonTreeLearner(config).learn(matrix, seed=BENCH_SEED)
        learn_times[backend] = time.perf_counter() - t0
        parallel = ParallelLearner(config).learn(matrix, seed=BENCH_SEED, p=3)
        consistency[backend] = parallel.network == sequential.network
        jumps = {off: _jump_cost(backend, off) for off in (10, 10_000, 10_000_000)}
        rows.append(
            [backend, f"{learn_times[backend]:.2f}",
             "yes" if consistency[backend] else "NO"]
            + [f"{jumps[o] * 1e6:.1f}" for o in (10, 10_000, 10_000_000)]
        )
    table = render_table(
        "Ablation — RNG backends: learner time and block-split (jump) cost",
        ["backend", "learn T_1 (s)", "parallel == sequential",
         "jump 10 (us)", "jump 1e4 (us)", "jump 1e7 (us)"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print("paper: TRNG block splitting is O(1); any parallel PRNG usable")

    assert all(consistency.values()), "consistency must hold under every backend"
    # Counter-based jumps stay flat; the MRG's grow with log(offset) but
    # both remain cheap enough for per-call block splitting.
    philox_far = _jump_cost("philox", 10_000_000)
    philox_near = _jump_cost("philox", 10)
    assert philox_far < philox_near * 5  # O(1): no meaningful growth

    save_results(
        "ablation_rng",
        {
            "learn_times": learn_times,
            "consistency": consistency,
            "jump_us": {
                backend: {str(o): _jump_cost(backend, o) * 1e6 for o in (10, 10_000_000)}
                for backend in ("philox", "mrg")
            },
        },
    )
    benchmark.pedantic(lambda: _jump_cost("philox", 10_000_000, repeats=50), rounds=3, iterations=1)
