"""Multi-node shard tier on the Figure 5 workload: 1 vs 2 nodes.

The paper's cluster runs distribute the same task decomposition across
machines; the shard tier reproduces that with real OS node processes on
localhost (the socket transport) over the same LPT plan.  This benchmark
learns the yeast-shaped Figure 5 workload end to end (Task 1 chains +
Task 3 modules) at 1 and 2 shard nodes, asserts every configuration's
network bit-identical to the sequential learner, and records the tier's
measured behaviour — the calibrated tau/mu wire model, per-node transfer
traffic, and cross-node steals — in ``benchmarks/results/BENCH_shard.json``.

The >= 1.5x speedup gate at 2 nodes only applies when the machine has
enough cores for two node processes to actually run concurrently (and is
dropped in smoke mode); the bit-identity assertions are unconditional —
the CI shard-smoke job runs this file with ``REPRO_BENCH_SMOKE=1`` on
every PR, so a transport that changed any output would fail CI even on a
flat runner.
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import yeast_like
from repro.parallel.trace import WorkTrace
from repro.validation.metrics import network_fingerprint

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
G_RUNS = 4 if SMOKE else 8
NODE_COUNTS = (1, 2)


def _workload():
    matrix = yeast_like(scale=1 / 96 if SMOKE else 1 / 48).matrix
    config = LearnerConfig(
        n_ganesh_runs=G_RUNS,
        n_update_steps=2,
        init_var_clusters=1 / 8,
    )
    return matrix, config


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sharded_config(base: LearnerConfig, n_nodes: int, backend: str):
    return base.with_updates(
        parallel=ParallelConfig(
            n_workers=1, n_nodes=n_nodes, node_backend=backend
        )
    )


def test_shard_scaling(capsys):
    matrix, config = _workload()

    times: dict[int, float] = {}
    fingerprints: dict[int, str] = {}
    traces: dict[int, WorkTrace] = {}
    for n_nodes in NODE_COUNTS:
        trace = WorkTrace()
        learner = LemonTreeLearner(_sharded_config(config, n_nodes, "socket"))
        t0 = time.perf_counter()
        result = learner.learn(matrix, seed=BENCH_SEED, trace=trace)
        times[n_nodes] = time.perf_counter() - t0
        fingerprints[n_nodes] = network_fingerprint(result.network)
        traces[n_nodes] = trace

    # n_nodes=1 takes the plain sequential path, so it *is* the reference
    # every shard count must reproduce bit for bit.
    reference = fingerprints[1]
    for n_nodes in NODE_COUNTS[1:]:
        assert fingerprints[n_nodes] == reference, (
            f"network diverged at {n_nodes} socket nodes"
        )

    # The thread transport must land on the same network as the socket
    # one — same frames, same plan, different wire.
    thread_trace = WorkTrace()
    thread_result = LemonTreeLearner(
        _sharded_config(config, 2, "thread")
    ).learn(matrix, seed=BENCH_SEED, trace=thread_trace)
    assert network_fingerprint(thread_result.network) == reference, (
        "network diverged on the thread transport"
    )

    shard_trace = traces[2]
    calibration = shard_trace.calibration or {}
    transfer_bytes = sum(shard_trace.node_transfer_bytes.values())
    transfer_seconds = sum(shard_trace.node_transfer_seconds.values())
    speedup_2 = times[1] / times[2]

    rows = [
        [n, f"{times[n]:.2f}", f"{times[1] / times[n]:.2f}x"]
        for n in NODE_COUNTS
    ]
    table = render_table(
        f"Shard tier: {G_RUNS} GaneSH runs + modules on "
        f"{matrix.n_vars} x {matrix.n_obs} (bit-identical networks)",
        ["nodes", "time (s)", "speedup"],
        rows,
    )
    tau = calibration.get("tau")
    mu = calibration.get("mu")
    with capsys.disabled():
        print("\n" + table)
        print(
            f"calibrated wire model: tau={tau:.3g}s, mu={mu:.3g}s/word, "
            f"{transfer_bytes} bytes shipped in {transfer_seconds:.3f}s"
            if tau is not None
            else "calibration missing from trace"
        )

    cores = _available_cores()
    save_results(
        "BENCH_shard",
        {
            "g_runs": G_RUNS,
            "shape": list(matrix.shape),
            "cores_available": cores,
            "smoke": SMOKE,
            "node_backend": "socket",
            "workers_per_node": 1,
            "times_s": {str(n): times[n] for n in NODE_COUNTS},
            "speedup_2": speedup_2,
            "calibration": calibration,
            "transfer_bytes": transfer_bytes,
            "transfer_seconds": transfer_seconds,
            "node_steals": shard_trace.total_node_steals(),
            "thread_backend_node_steals": thread_trace.total_node_steals(),
            "bit_identical": True,
        },
    )
    assert calibration, "shard runs must record the calibrated tau/mu model"
    assert calibration["tau"] >= 0.0 and calibration["mu"] >= 0.0
    assert transfer_bytes > 0
    if cores >= 4 and not SMOKE:
        assert speedup_2 >= 1.5, (
            f"the shard tier must reach >= 1.5x at 2 nodes on {cores} "
            f"cores, got {speedup_2:.2f}x"
        )
