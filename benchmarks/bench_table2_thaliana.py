"""Table 2 — parallel run-times for the complete A. thaliana data set.

Paper (18373 x 5102, p = 256..4096): run-time falls from ~2 days at p=256
to ~4.2 hours at p=4096; relative speedup vs 256 cores reaches 11.2x (69.9%
relative efficiency) — and the relative efficiency at 4096 is *higher* than
the yeast data set's (~47% vs 256 cores), because the larger problem keeps
ranks busy longer.

Here the complete *thaliana-like* matrix is traced once and projected at
paper scale for the same processor sweep; the cross-data-set efficiency
comparison against the yeast run is asserted as the headline shape.
"""

from __future__ import annotations

from conftest import THALIANA_COMPLETE, YEAST_COMPLETE
from repro.bench import PAPER, render_table, save_results
from repro.bench.runtime_model import estimate_full_scale_runtime
from repro.parallel.trace import project_time

PROCESSOR_COUNTS = (256, 512, 1024, 2048, 4096)


def _scale(shape_ours, paper_key):
    n1, m1 = PAPER["shapes"][paper_key]
    n0, m0 = shape_ours
    return (m1 / m0) ** 2.0 * (n1 / n0) ** 1.8


def _cscale(shape_ours, paper_key):
    n1, _m1 = PAPER["shapes"][paper_key]
    n0, _m0 = shape_ours
    return (n1 / n0) ** 2.0


def test_table2_thaliana_scaling(benchmark, thaliana_trace, yeast_complete_trace, capsys):
    trace, meta = thaliana_trace
    scale = _scale(THALIANA_COMPLETE, "thaliana")
    cscale = _cscale(THALIANA_COMPLETE, "thaliana")
    times = {
        p: project_time(trace, p, compute_scale=scale, consensus_scale=cscale).total
        for p in PROCESSOR_COUNTS
    }

    rows = []
    for p in PROCESSOR_COUNTS:
        speedup = times[256] / times[p]
        efficiency = 100 * speedup / (p / 256)
        paper_time, paper_speedup, paper_eff = PAPER["table2"][p]
        rows.append(
            [p, f"{times[p] / 3600:.2f}", f"{speedup:.1f}", f"{efficiency:.1f}%",
             f"{paper_time / 3600:.1f}", f"{paper_speedup:.1f}", f"{paper_eff:.1f}%"]
        )
    table = render_table(
        "Table 2 — complete thaliana-like data set (paper-scale projection)",
        ["p", "T_p (h)", "speedup vs 256", "efficiency",
         "paper T_p (h)", "paper speedup", "paper eff."],
        rows,
    )

    # Cross-data-set comparison the paper highlights: thaliana's relative
    # efficiency at 4096 (vs 256) exceeds yeast's.
    ytrace, ymeta = yeast_complete_trace
    yscale = _scale(YEAST_COMPLETE, "yeast")
    yeast_times = {
        p: project_time(
            ytrace, p, compute_scale=yscale,
            consensus_scale=_cscale(YEAST_COMPLETE, "yeast"),
        ).total
        for p in (256, 4096)
    }
    yeast_eff = (yeast_times[256] / yeast_times[4096]) / 16
    thaliana_eff = (times[256] / times[4096]) / 16

    with capsys.disabled():
        print("\n" + table)
        print(
            f"relative efficiency 256->4096: thaliana {thaliana_eff:.0%} vs "
            f"yeast {yeast_eff:.0%} (paper: 69.9% vs ~47%)"
        )

    # Shape assertions.
    speedup_4096 = times[256] / times[4096]
    assert speedup_4096 > 4.0, "thaliana must keep scaling past 2048 ranks"
    assert times[4096] < times[256]
    assert thaliana_eff > yeast_eff, (
        "the larger problem must scale more efficiently (paper's Table 2 note)"
    )
    # Monotone decrease of run-time over the sweep.
    ordered = [times[p] for p in PROCESSOR_COUNTS]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))

    save_results(
        "table2",
        {
            "hours": {str(p): times[p] / 3600 for p in PROCESSOR_COUNTS},
            "speedup_vs_256": {str(p): times[256] / times[p] for p in PROCESSOR_COUNTS},
            "thaliana_rel_eff_4096": thaliana_eff,
            "yeast_rel_eff_4096": yeast_eff,
            "paper": {str(p): v for p, v in PAPER["table2"].items()},
            "scale_factor": scale,
        },
    )
    benchmark.pedantic(
        lambda: [project_time(trace, p, compute_scale=scale) for p in PROCESSOR_COUNTS],
        rounds=3,
        iterations=1,
    )


def test_table2_sequential_estimate(benchmark, thaliana_trace, capsys):
    """The thaliana sequential estimate mirrors Section 5.2.2's '433.6
    days / more than 14 months' headline for the real data set."""
    trace, meta = thaliana_trace
    t1 = sum(meta["task_times"].values())
    estimate = estimate_full_scale_runtime(
        t1, THALIANA_COMPLETE, PAPER["shapes"]["thaliana"]
    )
    with capsys.disabled():
        print(
            f"\nthaliana-like measured T_1 = {t1:.1f} s; paper-scale estimate "
            f"{estimate.estimated_days:.0f} days "
            f"(paper's estimate for the real data: 433.6 days)"
        )
    assert estimate.estimated_days > 1.0  # sequentially infeasible, as in the paper
    benchmark.pedantic(lambda: estimate.estimated_days, rounds=5, iterations=1)
