"""Figure 6 — scaling on the complete yeast data set.

Paper (complete S. cerevisiae, 5716 x 2577): relative speedup T_4 / T_p up
to p = 4096; 22.6x from 4 to 128 cores (> 70% relative efficiency), 239.3x
from 4 to 4096 (23.4% relative efficiency); run-time drops from ~4 days
(p=4) to 23.5 minutes (p=4096); GaneSH < 0.38% of run-time at small p;
consensus < 1 s throughout.

Here the complete *yeast-like* matrix (see conftest scale note) is traced
once sequentially and T_p is projected for p = 4..4096.  A second series
applies the Section 5.2.2 extrapolation (paper-scale mode): compute scaled
to the real 5716 x 2577 shape via the measured growth laws, which restores
the paper's compute-to-communication ratio at large p.
"""

from __future__ import annotations

from conftest import YEAST_COMPLETE
from repro.bench import PAPER, render_table, save_results
from repro.bench.runtime_model import estimate_full_scale_runtime
from repro.parallel.trace import project_time

PROCESSOR_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _paper_scale_factor():
    n0, m0 = YEAST_COMPLETE
    n1, m1 = PAPER["shapes"]["yeast"]
    return (m1 / m0) ** 2.0 * (n1 / n0) ** 1.8


def _consensus_scale_factor():
    # Consensus clustering is O(G n^2) (Section 2.2.2) — scale it by its
    # own law, not the dominant tasks'.
    n0, _m0 = YEAST_COMPLETE
    n1, _m1 = PAPER["shapes"]["yeast"]
    return (n1 / n0) ** 2.0


def test_fig6_complete_yeast_scaling(benchmark, yeast_complete_trace, capsys):
    trace, meta = yeast_complete_trace
    t1 = sum(meta["task_times"].values())
    scale = _paper_scale_factor()

    native = {p: project_time(trace, p).total for p in PROCESSOR_COUNTS}
    # Paper-scale extrapolation: compute grows by the fitted laws; the
    # number of Gibbs iterations (hence collectives) grows ~ linearly with
    # the matrix edge sizes, approximated by sqrt(scale) per superstep
    # dimension being conservative: keep comm unscaled (more collectives
    # would only *raise* large-p times, strengthening the taper).
    cscale = _consensus_scale_factor()
    paper_scale = {
        p: project_time(trace, p, compute_scale=scale, consensus_scale=cscale).total
        for p in PROCESSOR_COUNTS
    }

    rows = []
    for p in PROCESSOR_COUNTS:
        rows.append(
            [
                p,
                f"{native[p]:.3f}",
                f"{native[4] / native[p]:.1f}",
                f"{paper_scale[p] / 3600:.2f}",
                f"{paper_scale[4] / paper_scale[p]:.1f}",
                f"{100 * paper_scale[4] / paper_scale[p] / (p / 4):.0f}%",
            ]
        )
    table = render_table(
        "Figure 6 — complete yeast-like data set: run-time and relative speedup vs p=4",
        ["p", "native T_p (s)", "native T4/Tp", "paper-scale T_p (h)", "paper T4/Tp", "rel. eff."],
        rows,
    )
    rel128 = paper_scale[4] / paper_scale[128]
    rel4096 = paper_scale[4] / paper_scale[4096]
    with capsys.disabled():
        print("\n" + table)
        print(
            f"paper-scale relative speedup 4->128: {rel128:.1f}x "
            f"(paper: 22.6x, >70% rel. efficiency)"
        )
        print(
            f"paper-scale relative speedup 4->4096: {rel4096:.1f}x "
            f"(paper: 239.3x, 23.4% rel. efficiency)"
        )
        print(
            f"paper-scale T_4096: {paper_scale[4096] / 60:.1f} min "
            f"(paper: 23.5 min); T_4: {paper_scale[4] / 86400:.1f} days (paper: ~4 days)"
        )

    # Shape assertions on the paper-scale series.
    eff128 = rel128 / (128 / 4)
    eff4096 = rel4096 / (4096 / 4)
    assert eff128 > 0.55, f"4->128 relative efficiency {eff128:.0%} too low"
    assert 0.08 < eff4096 < 0.8, f"4->4096 relative efficiency {eff4096:.0%} off-shape"
    assert rel4096 > rel128 > 1.0
    # Consensus stays sequential and negligible.
    pt = project_time(trace, 4096, compute_scale=scale, consensus_scale=cscale)
    assert pt.consensus / pt.total < 0.2

    save_results(
        "fig6",
        {
            "native_seconds": {str(p): t for p, t in native.items()},
            "paper_scale_hours": {str(p): t / 3600 for p, t in paper_scale.items()},
            "rel_speedup_4_128": rel128,
            "rel_speedup_4_4096": rel4096,
            "paper": PAPER["fig6"],
            "scale_factor": scale,
        },
    )
    benchmark.pedantic(
        lambda: [project_time(trace, p) for p in PROCESSOR_COUNTS],
        rounds=3,
        iterations=1,
    )


def test_fig6_sequential_estimate_anchor(benchmark, yeast_complete_trace, capsys):
    """The paper-scale T_1 must match the Section 5.2.2 estimate computed
    from the measured run — internal consistency of the two methodologies."""
    trace, meta = yeast_complete_trace
    t1 = sum(meta["task_times"].values())
    estimate = estimate_full_scale_runtime(
        t1, YEAST_COMPLETE, PAPER["shapes"]["yeast"], m_exponent=2.0, n_exponent=1.8
    )
    projected = project_time(
        trace, 1, compute_scale=_paper_scale_factor(),
        consensus_scale=_paper_scale_factor(),
    ).total
    with capsys.disabled():
        print(
            f"\npaper-scale T_1: projection {projected / 86400:.1f} days vs "
            f"growth-law estimate {estimate.estimated_days:.1f} days "
            f"(paper's own estimate for the real data set: 13.5 days)"
        )
    assert abs(projected - estimate.estimated_seconds) / estimate.estimated_seconds < 0.05
    benchmark.pedantic(lambda: estimate.estimated_seconds, rounds=5, iterations=1)
