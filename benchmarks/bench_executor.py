"""Persistent executor vs the seed per-call pool: measured Task 3 speedup.

The seed's only multiprocessing backend (``score_splits_pool``) constructs
a fresh ``mp.Pool`` — and ships the expression matrix — on every scoring
call.  This benchmark drives the whole of Task 3 both ways on a synthetic
workload of 32 small modules and measures the wall-clock win of the
persistent shared-memory executor, whose pool and matrix transfer are paid
once per task.  Outputs are verified bit-identical to the sequential
learner in every configuration — including a flat-vs-probed machine
topology sweep (``ParallelConfig(topology=...)``), whose per-NUMA-domain
worker times land in the record — and the speedup record is persisted as
``benchmarks/results/BENCH_executor.json``.

The workload is deliberately module-rich and per-module-light: that is the
regime where per-call pool construction dominates, and it is also the
common real regime (the paper's consensus clustering yields tens to
hundreds of modules).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.datatypes import ModuleNetwork
from repro.parallel.executor import learn_modules_percall_pool
from repro.parallel.trace import WorkTrace

N_WORKERS = 4
N_MODULES = 32


def _workload():
    config = LearnerConfig(
        max_sampling_steps=5,
        # A capped candidate-parent list keeps per-module compute small so
        # the backends' fixed costs (pool construction, matrix shipping)
        # are what the measurement exposes.
        candidate_parents=tuple(range(16)),
    )
    matrix = make_module_dataset(64, 28, n_modules=N_MODULES, seed=BENCH_SEED).matrix
    members = [[2 * i, 2 * i + 1] for i in range(N_MODULES)]
    return matrix, members, config


def test_executor_speedup_over_percall_pool(capsys):
    matrix, members, config = _workload()
    data = matrix.values
    parents = np.asarray(
        config.resolve_candidate_parents(matrix.n_vars), dtype=np.int64
    )

    t0 = time.perf_counter()
    reference = LemonTreeLearner(config).learn_from_modules(
        matrix, members, seed=BENCH_SEED
    ).network
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    percall = learn_modules_percall_pool(
        data, parents, members, config, BENCH_SEED, N_WORKERS
    )
    t_percall = time.perf_counter() - t0
    assert ModuleNetwork(percall, matrix.var_names, matrix.n_obs) == reference

    times = {}
    for schedule in ("dynamic", "static"):
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=N_WORKERS, mode="module", schedule=schedule
            )
        )
        t0 = time.perf_counter()
        result = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=BENCH_SEED
        )
        times[schedule] = time.perf_counter() - t0
        assert result.network == reference, f"executor ({schedule}) diverged"

    # Topology placement sweep: the flat model (no pinning, fixed kernel
    # chunk — the pre-topology behaviour) vs the probed machine topology
    # (workers pinned per NUMA domain, first-touch pages, cache-sized
    # kernel chunks).  Placement only moves work, so both networks must be
    # bit-identical to the sequential reference — this assertion runs on
    # every PR via the CI bench-smoke job.
    topo_times: dict[str, float] = {}
    topo_traces: dict[str, WorkTrace] = {}
    for topology in ("flat", "auto"):
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=N_WORKERS, mode="module", topology=topology
            )
        )
        trace = WorkTrace()
        t0 = time.perf_counter()
        result = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=BENCH_SEED, trace=trace
        )
        topo_times[topology] = time.perf_counter() - t0
        topo_traces[topology] = trace
        assert result.network == reference, f"topology {topology} diverged"

    t_executor = min(times.values())
    speedup = t_percall / t_executor
    rows = [
        ["sequential learner", 1, f"{t_seq:.2f}", "-"],
        ["per-call pool (seed)", N_WORKERS, f"{t_percall:.2f}", "1.00x"],
        ["executor (dynamic LPT)", N_WORKERS, f"{times['dynamic']:.2f}",
         f"{t_percall / times['dynamic']:.2f}x"],
        ["executor (static)", N_WORKERS, f"{times['static']:.2f}",
         f"{t_percall / times['static']:.2f}x"],
        ["executor (topology flat)", N_WORKERS, f"{topo_times['flat']:.2f}",
         f"{t_percall / topo_times['flat']:.2f}x"],
        ["executor (topology auto)", N_WORKERS, f"{topo_times['auto']:.2f}",
         f"{t_percall / topo_times['auto']:.2f}x"],
    ]
    table = render_table(
        f"Task 3 backends on {N_MODULES} modules "
        f"({matrix.n_vars} x {matrix.n_obs}, bit-identical outputs)",
        ["backend", "workers", "time (s)", "speedup vs per-call"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    save_results(
        "BENCH_executor",
        {
            "n_modules": N_MODULES,
            "n_workers": N_WORKERS,
            "shape": list(matrix.shape),
            "sequential_s": t_seq,
            "percall_pool_s": t_percall,
            "executor_dynamic_s": times["dynamic"],
            "executor_static_s": times["static"],
            "topology_flat_s": topo_times["flat"],
            "topology_auto_s": topo_times["auto"],
            "topology": topo_traces["auto"].topology,
            "domain_times": {
                name: trace.domain_times for name, trace in topo_traces.items()
            },
            "speedup": speedup,
            "bit_identical": True,
        },
    )
    assert speedup >= 2.0, (
        f"persistent executor must be >= 2x the per-call pool, got {speedup:.2f}x"
    )
