"""Persistent executor vs the seed per-call pool: measured Task 3 speedup.

The seed's only multiprocessing backend (``score_splits_pool``) constructs
a fresh ``mp.Pool`` — and ships the expression matrix — on every scoring
call.  This benchmark drives the whole of Task 3 both ways on a synthetic
workload of many small modules and measures the wall-clock win of the
persistent shared-memory executor, whose pool and matrix transfer are paid
once per task.  Outputs are verified bit-identical to the sequential
learner in every configuration — including a flat-vs-probed machine
topology sweep and a **domain-affine steal sweep** on two simulated NUMA
domains (``ParallelConfig.steal`` on vs off), whose steal counts and
per-domain locality hit rates land in the record.  The bit-identity
assertions are unconditional: the CI bench-smoke job runs this file with
``REPRO_BENCH_SMOKE=1`` (shrunk workload, timing gate dropped) on every
PR, so a steal path that changed any output would fail CI even on a flat
runner.

A fake-clock scheduling check rides along: on the skewed workload model,
the domain-affine steal schedule's makespan must be no worse than the
pre-change shared-queue dynamic dispatch under the same remote-penalty
accounting.

The workload is deliberately module-rich and per-module-light: that is the
regime where per-call pool construction dominates, and it is also the
common real regime (the paper's consensus clustering yields tens to
hundreds of modules).  The record is persisted as
``benchmarks/results/BENCH_executor.json``.
"""

from __future__ import annotations

import heapq
import os
import time

import numpy as np

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.datatypes import ModuleNetwork
from repro.parallel.executor import learn_modules_percall_pool
from repro.parallel.scheduler import placement_steal_schedule
from repro.parallel.topology import (
    MachineTopology,
    available_cpus,
    plan_placement,
)
from repro.parallel.trace import WorkTrace

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_WORKERS = 4
N_MODULES = 8 if SMOKE else 32


def _workload():
    config = LearnerConfig(
        max_sampling_steps=5,
        # A capped candidate-parent list keeps per-module compute small so
        # the backends' fixed costs (pool construction, matrix shipping)
        # are what the measurement exposes.
        candidate_parents=tuple(range(16)),
    )
    n_vars, n_obs = (32, 20) if SMOKE else (64, 28)
    matrix = make_module_dataset(
        n_vars, n_obs, n_modules=N_MODULES, seed=BENCH_SEED
    ).matrix
    members = [[2 * i, 2 * i + 1] for i in range(N_MODULES)]
    return matrix, members, config


def _two_domain_topology():
    """Two simulated NUMA domains over the schedulable CPUs.

    Splitting the affinity mask in half gives the steal dispatch real
    foreign queues to drain on any runner — single-core machines simulate
    both domains on the one CPU.
    """
    cpus = available_cpus()
    half = max(1, len(cpus) // 2)
    low, high = cpus[:half], cpus[half:] or cpus[:1]
    return MachineTopology(
        numa_domains=(tuple(low), tuple(high)),
        l2_bytes=2 << 20,
        l3_bytes=16 << 20,
        source="sysfs",
    )


def _skewed_group_costs(seed: int = 0, n_groups: int = 40):
    """The scheduler-ablation skewed workload: heavy-tailed group sizes."""
    rng = np.random.default_rng(seed)
    sizes = (rng.pareto(1.2, size=n_groups) * 20 + 5).astype(np.int64)
    costs = rng.gamma(2.0, 3.0, size=int(sizes.sum()))
    return costs, sizes


def _shared_dynamic_makespan(costs, sizes, placement, remote_penalty=1.3):
    """Fake-clock model of the pre-change shared dynamic queue.

    A single LPT-ordered queue all ranks pull from, charged the same
    remote penalty the steal model pays whenever the executing rank's
    domain is not the group's home — the apples-to-apples baseline for
    :func:`placement_steal_schedule`.
    """
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    group_costs = np.array(
        [costs[a:b].sum() for a, b in zip(bounds[:-1], bounds[1:])]
    )
    blocks = placement.domain_blocks(int(costs.size))

    def home(group):
        mid = (bounds[group] + bounds[group + 1]) // 2
        for domain, (lo, hi) in enumerate(blocks):
            if lo <= mid < hi:
                return domain
        return 0

    queue = [
        (float(group_costs[g]), home(int(g)))
        for g in np.argsort(-group_costs, kind="stable")
    ]
    p = placement.n_workers
    rank_domains = [placement.domain_of(rank) for rank in range(p)]
    per_rank = np.zeros(p)
    clock = [(0.0, rank) for rank in range(p)]
    heapq.heapify(clock)
    for cost, home_domain in queue:
        finish, rank = heapq.heappop(clock)
        penalty = 1.0 if rank_domains[rank] == home_domain else remote_penalty
        per_rank[rank] = finish + cost * penalty
        heapq.heappush(clock, (per_rank[rank], rank))
    return float(per_rank.max())


def test_executor_speedup_over_percall_pool(capsys):
    matrix, members, config = _workload()
    data = matrix.values
    parents = np.asarray(
        config.resolve_candidate_parents(matrix.n_vars), dtype=np.int64
    )

    t0 = time.perf_counter()
    reference = LemonTreeLearner(config).learn_from_modules(
        matrix, members, seed=BENCH_SEED
    ).network
    t_seq = time.perf_counter() - t0

    t0 = time.perf_counter()
    percall = learn_modules_percall_pool(
        data, parents, members, config, BENCH_SEED, N_WORKERS
    )
    t_percall = time.perf_counter() - t0
    assert ModuleNetwork(percall, matrix.var_names, matrix.n_obs) == reference

    times = {}
    for schedule in ("dynamic", "static"):
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=N_WORKERS, mode="module", schedule=schedule
            )
        )
        t0 = time.perf_counter()
        result = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=BENCH_SEED
        )
        times[schedule] = time.perf_counter() - t0
        assert result.network == reference, f"executor ({schedule}) diverged"

    # Topology placement sweep: the flat model (no pinning, fixed kernel
    # chunk — the pre-topology behaviour) vs the probed machine topology
    # (workers pinned per NUMA domain, first-touch pages, cache-sized
    # kernel chunks).  Placement only moves work, so both networks must be
    # bit-identical to the sequential reference — this assertion runs on
    # every PR via the CI bench-smoke job.
    topo_times: dict[str, float] = {}
    topo_traces: dict[str, WorkTrace] = {}
    for topology in ("flat", "auto"):
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=N_WORKERS, mode="module", topology=topology
            )
        )
        trace = WorkTrace()
        t0 = time.perf_counter()
        result = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=BENCH_SEED, trace=trace
        )
        topo_times[topology] = time.perf_counter() - t0
        topo_traces[topology] = trace
        assert result.network == reference, f"topology {topology} diverged"

    # Steal sweep: two simulated NUMA domains, dynamic dispatch with the
    # domain-affine queues on vs off.  Stealing only moves work between
    # workers — bit-identity with the sequential reference is asserted
    # unconditionally, and the steal counters / per-domain locality hit
    # rates from the trace land in the record.
    steal_times: dict[str, float] = {}
    steal_traces: dict[str, WorkTrace] = {}
    steal_topology = _two_domain_topology()
    for label, steal in (("steal", True), ("no-steal", False)):
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=N_WORKERS, mode="module", schedule="dynamic",
                topology=steal_topology, steal=steal,
            )
        )
        trace = WorkTrace()
        t0 = time.perf_counter()
        result = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=BENCH_SEED, trace=trace
        )
        steal_times[label] = time.perf_counter() - t0
        steal_traces[label] = trace
        assert result.network == reference, f"steal sweep ({label}) diverged"
    n_steals = steal_traces["steal"].total_steals()
    locality = steal_traces["steal"].locality_hit_rate()
    assert steal_traces["no-steal"].total_steals() == 0

    # Fake-clock scheduling check on the skewed workload: the domain-affine
    # steal schedule must be no worse than the pre-change shared dynamic
    # queue under the same remote-penalty accounting.
    placement = plan_placement(
        MachineTopology(
            numa_domains=(tuple(range(4)), tuple(range(4, 8))), source="sysfs"
        ),
        N_WORKERS,
    )
    model_steal = model_shared = 0.0
    for seed in range(5):
        costs, sizes = _skewed_group_costs(seed)
        steal_makespan = placement_steal_schedule(costs, sizes, placement).makespan
        shared_makespan = _shared_dynamic_makespan(costs, sizes, placement)
        assert steal_makespan <= shared_makespan + 1e-9, (
            f"steal schedule lost to the shared queue on seed {seed}: "
            f"{steal_makespan:.3f} > {shared_makespan:.3f}"
        )
        model_steal += steal_makespan
        model_shared += shared_makespan

    t_executor = min(times.values())
    speedup = t_percall / t_executor
    rows = [
        ["sequential learner", 1, f"{t_seq:.2f}", "-"],
        ["per-call pool (seed)", N_WORKERS, f"{t_percall:.2f}", "1.00x"],
        ["executor (dynamic LPT)", N_WORKERS, f"{times['dynamic']:.2f}",
         f"{t_percall / times['dynamic']:.2f}x"],
        ["executor (static)", N_WORKERS, f"{times['static']:.2f}",
         f"{t_percall / times['static']:.2f}x"],
        ["executor (topology flat)", N_WORKERS, f"{topo_times['flat']:.2f}",
         f"{t_percall / topo_times['flat']:.2f}x"],
        ["executor (topology auto)", N_WORKERS, f"{topo_times['auto']:.2f}",
         f"{t_percall / topo_times['auto']:.2f}x"],
        [f"executor (2-domain steal, {n_steals} steals, "
         f"locality {locality:.2f})", N_WORKERS,
         f"{steal_times['steal']:.2f}",
         f"{t_percall / steal_times['steal']:.2f}x"],
        ["executor (2-domain shared queue)", N_WORKERS,
         f"{steal_times['no-steal']:.2f}",
         f"{t_percall / steal_times['no-steal']:.2f}x"],
    ]
    table = render_table(
        f"Task 3 backends on {N_MODULES} modules "
        f"({matrix.n_vars} x {matrix.n_obs}, bit-identical outputs)",
        ["backend", "workers", "time (s)", "speedup vs per-call"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    save_results(
        "BENCH_executor",
        {
            "n_modules": N_MODULES,
            "n_workers": N_WORKERS,
            "shape": list(matrix.shape),
            "smoke": SMOKE,
            "sequential_s": t_seq,
            "percall_pool_s": t_percall,
            "executor_dynamic_s": times["dynamic"],
            "executor_static_s": times["static"],
            "topology_flat_s": topo_times["flat"],
            "topology_auto_s": topo_times["auto"],
            "topology": topo_traces["auto"].topology,
            "domain_times": {
                name: trace.domain_times for name, trace in topo_traces.items()
            },
            "steal_s": steal_times["steal"],
            "no_steal_s": steal_times["no-steal"],
            "steals": n_steals,
            "stolen_seconds": sum(
                steal_traces["steal"].worker_stolen_seconds.values()
            ),
            "locality_hit_rate": locality,
            "domain_locality": steal_traces["steal"].domain_locality(),
            "model_steal_makespan": model_steal,
            "model_shared_queue_makespan": model_shared,
            "speedup": speedup,
            "bit_identical": True,
        },
    )
    if not SMOKE:
        assert speedup >= 2.0, (
            f"persistent executor must be >= 2x the per-call pool, got {speedup:.2f}x"
        )
