"""Micro-benchmarks of the computational kernels.

Not a paper table — these pin the per-kernel costs that the work-trace
cost model abstracts (score evaluations, split-chain steps, scans,
collectives) so regressions in the hot paths are visible in CI-style runs.
"""

from __future__ import annotations

import numpy as np

from repro.ganesh.state import CoClusterState, _compact
from repro.parallel.comm import run_spmd
from repro.parallel.costmodel import max_block_sum
from repro.parallel.primitives import segmented_scan
from repro.rng.streams import make_stream
from repro.scoring.normal_gamma import log_marginal
from repro.scoring.split_score import SplitScorer
from repro.scoring.suffstats import StatsArrays


def test_kernel_log_marginal_vectorized(benchmark):
    rng = np.random.default_rng(0)
    count = rng.integers(1, 100, size=10000).astype(float)
    total = rng.normal(size=10000) * count
    sumsq = np.abs(rng.normal(size=10000)) * count + total**2 / count
    result = benchmark(lambda: log_marginal(count, total, sumsq))
    assert np.isfinite(result).all()


def test_kernel_grouped_stats(benchmark):
    rng = np.random.default_rng(1)
    values = rng.normal(size=(50, 2000))
    labels = rng.integers(0, 40, size=2000)
    stats = benchmark(lambda: StatsArrays.grouped(values, labels, 40))
    assert len(stats) == 40


def test_kernel_move_var_scores(benchmark):
    rng = np.random.default_rng(2)
    data = rng.normal(size=(200, 100))
    labels = _compact(rng.integers(0, 40, size=200))
    obs = [rng.integers(0, 8, size=100) for _ in range(int(labels.max()) + 1)]
    state = CoClusterState(data, labels, obs)
    scores = benchmark(lambda: state.move_var_scores(7))
    assert scores.shape == (state.n_clusters + 1,)


def test_kernel_split_chain_batch(benchmark):
    rng = np.random.default_rng(3)
    scorer = SplitScorer(max_steps=25, stop_repeats=2)
    margins = rng.normal(size=(2000, 64))
    uniforms = make_stream(4, "k").block(0, 2000 * scorer.draws_per_item)
    uniforms = uniforms.reshape(2000, scorer.draws_per_item)
    out = benchmark(lambda: scorer.score_batch(margins, uniforms))
    assert out[0].shape == (2000,)


def test_kernel_segmented_scan(benchmark):
    rng = np.random.default_rng(4)
    values = rng.random(1_000_000)
    segments = np.sort(rng.integers(0, 5000, size=1_000_000))
    out = benchmark(lambda: segmented_scan(values, segments))
    assert out.shape == values.shape


def test_kernel_block_partition(benchmark):
    rng = np.random.default_rng(5)
    costs = rng.pareto(1.5, size=2_000_000) + 1
    result = benchmark(lambda: max_block_sum(costs, 4096))
    assert result > 0


def test_kernel_thread_allreduce(benchmark):
    def round_trip():
        return run_spmd(4, lambda comm: comm.allreduce(np.ones(1000)))

    results = benchmark(round_trip)
    assert float(results[0].sum()) == 4000.0


def test_kernel_philox_block_seek(benchmark):
    stream = make_stream(6, "seek")
    out = benchmark(lambda: stream.block(10_000_000_000, 1000))
    assert out.shape == (1000,)
