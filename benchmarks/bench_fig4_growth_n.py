"""Figure 4 — sequential run-time growth with n at fixed m.

Paper: growth with the number of variables n is slower than quadratic but
bounded below by ~n^1.8 for every m; the super-linearity is attributed to
the module count K growing with n.  Here the same fit is performed over the
scaled grid, and K(n) is reported alongside.
"""

from __future__ import annotations

import json

from conftest import (
    BENCH_SEED,
    CACHE_DIR,
    CONFIG_TAG,
    GRID_M,
    GRID_N,
)
from repro.bench import PAPER, render_figure_series, save_results
from repro.bench.runtime_model import fit_growth_exponent, growth_ratios


def _module_counts():
    """K(n) from the cached grid runs (largest m column)."""
    counts = {}
    for n in GRID_N:
        meta_path = CACHE_DIR / f"grid_opt_n{n}_m{max(GRID_M)}_s{BENCH_SEED}_{CONFIG_TAG}.json"
        if meta_path.exists():
            counts[n] = json.loads(meta_path.read_text())["n_modules"]
    return counts


def test_fig4_growth_with_variables(benchmark, grid_times, capsys):
    n0 = GRID_N[0]
    series = {}
    exponents = {}
    for m in GRID_M:
        times = {n: grid_times[(n, m)] for n in GRID_N}
        ratios = growth_ratios(list(times), list(times.values()))
        series[f"m={m}"] = dict(zip(sorted(times), ratios))
        exponents[m] = fit_growth_exponent(list(times), list(times.values()))
    series["n^2 (guide)"] = {n: (n / n0) ** 2 for n in GRID_N}
    series["n^1.8 (guide)"] = {n: (n / n0) ** 1.8 for n in GRID_N}

    module_counts = _module_counts()
    figure = render_figure_series(
        "Figure 4 — run-time growth vs n (ratio to smallest n)",
        "n",
        series,
    )
    with capsys.disabled():
        print("\n" + figure)
        for m, exp in exponents.items():
            print(f"fitted n-exponent at m={m}: {exp:.2f} (paper: in [1.8, 2.0])")
        print(f"module count K(n) at m={max(GRID_M)}: {module_counts}")

    # Shape: superlinear growth in n, in the neighbourhood of the paper's
    # [n^1.8, n^2] band (widened: our K(n) schedule differs from yeast's).
    for m, exp in exponents.items():
        assert 1.0 < exp < 2.8, f"n-growth exponent {exp:.2f} at m={m} off-shape"
    # K grows with n — the paper's explanation for the superlinearity.
    ks = [module_counts[n] for n in GRID_N if n in module_counts]
    if len(ks) >= 2:
        assert ks[-1] > ks[0]

    save_results(
        "fig4",
        {
            "series": {k: {str(n): v for n, v in s.items()} for k, s in series.items()},
            "fitted_n_exponents": {str(m): e for m, e in exponents.items()},
            "module_counts": {str(n): k for n, k in module_counts.items()},
            "paper_n_exponent_band": [
                PAPER["growth"]["n_exponent_low"],
                PAPER["growth"]["n_exponent_high"],
            ],
        },
    )

    benchmark.pedantic(
        lambda: [fit_growth_exponent(GRID_N, [grid_times[(n, m)] for n in GRID_N]) for m in GRID_M],
        rounds=3,
        iterations=1,
    )
