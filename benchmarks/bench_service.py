"""Warm-vs-cold repeat-query latency of the always-on inference service.

The acceptance gate of the service PR: resubmitting an identical job to a
warm daemon must be at least 5x faster than a cold one-shot ``learn()``,
while every served network stays bit-identical (sha256 fingerprint) to
the sequential reference — across worker counts, both RNG backends, and
with the shared score cache on and off.

Three serving regimes are measured:

* **cold** — a fresh one-shot ``learn()`` (the no-daemon baseline);
* **warm (checkpoints)** — an identical resubmit on a warm daemon: Task 1
  runs and Task 3 modules load from the job's checkpoint namespace;
* **warm (score cache)** — the same resubmit with checkpoints disabled:
  every kernel re-runs but answers from the shared score-cache memo.

``REPRO_BENCH_SMOKE=1`` shrinks the workload and drops the 5x gate (CI
containers share cores; the bit-identity asserts are unchanged).
"""

from __future__ import annotations

import os
import time

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.scoring.kernel import set_shared_score_cache
from repro.service import InferenceService
from repro.validation.metrics import network_fingerprint

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: 5x is the PR's acceptance bar; only enforced off-smoke
WARM_SPEEDUP_GATE = 5.0


def _workload():
    n, m = (60, 30) if SMOKE else (120, 60)
    matrix = make_module_dataset(n, m, n_modules=8, seed=BENCH_SEED).matrix
    config = LearnerConfig(
        n_ganesh_runs=2,
        n_update_steps=2,
        n_splits_per_node=2,
        parallel=ParallelConfig(n_workers=1),
    )
    return matrix, config


def _one_shot_seconds(matrix, config, seed: int) -> tuple[float, str]:
    t0 = time.perf_counter()
    result = LemonTreeLearner(config).learn(matrix, seed)
    return time.perf_counter() - t0, network_fingerprint(result.network)


def test_warm_repeat_latency(tmp_path, capsys, benchmark):
    matrix, config = _workload()
    previous_store = set_shared_score_cache(None)
    try:
        cold_seconds, oracle = _one_shot_seconds(matrix, config, BENCH_SEED)

        rows = []
        fingerprints = {"cold one-shot": oracle}
        results = {"cold_one_shot_s": cold_seconds}

        # Warm path 1: checkpoint namespace (the daemon's default).
        with InferenceService(
            tmp_path / "ckpt", max_inflight=2, score_cache_bytes=0
        ) as service:
            first = service.wait(service.submit(matrix, config, BENCH_SEED))
            warm = service.wait(service.submit(matrix, config, BENCH_SEED))
            fingerprints["warm (checkpoints)"] = warm["fingerprint"]
            results["first_submit_s"] = first["seconds"]
            results["warm_checkpoint_s"] = warm["seconds"]

        # Warm path 2: shared score cache only (checkpoints off).
        set_shared_score_cache(None)
        with InferenceService(
            tmp_path / "cache", max_inflight=2, score_cache_bytes=256 << 20
        ) as service:
            service.wait(
                service.submit(matrix, config, BENCH_SEED, use_checkpoints=False)
            )
            warm_cache = service.wait(
                service.submit(matrix, config, BENCH_SEED, use_checkpoints=False)
            )
            fingerprints["warm (score cache)"] = warm_cache["fingerprint"]
            results["warm_score_cache_s"] = warm_cache["seconds"]
            counters = warm_cache["kernel_counters"]
            results["warm_cache_store_hits"] = counters.get("store_hits", 0)
            results["warm_cache_evaluations"] = counters.get("evaluations", 0)

        # Bit-identity across worker counts, RNG backends, cache on/off.
        set_shared_score_cache(None)
        variant_fps = {}
        for workers in (1, 2):
            for rng_backend in ("philox", "mrg"):
                for cache_bytes in (0, 64 << 20):
                    variant = config.with_updates(
                        rng_backend=rng_backend,
                        parallel=ParallelConfig(
                            n_workers=workers, score_cache_bytes=cache_bytes
                        ),
                    )
                    set_shared_score_cache(None)
                    _, fp = _one_shot_seconds(matrix, variant, BENCH_SEED)
                    variant_fps[(workers, rng_backend, cache_bytes)] = fp
        for (workers, rng_backend, cache_bytes), fp in variant_fps.items():
            reference = variant_fps[(1, rng_backend, 0)]
            assert fp == reference, (
                f"w={workers} rng={rng_backend} cache={cache_bytes} diverged"
            )
        assert variant_fps[(1, "philox", 0)] == oracle

        for label, fp in fingerprints.items():
            assert fp == oracle, f"{label} diverged from the oracle"

        warm_best = min(results["warm_checkpoint_s"], results["warm_score_cache_s"])
        speedup = cold_seconds / max(warm_best, 1e-9)
        results["warm_speedup"] = speedup
        results["smoke"] = SMOKE
        results["shape"] = list(matrix.shape)

        rows = [
            ["cold one-shot", f"{cold_seconds:.3f}", "1.0x", oracle[:12]],
            [
                "warm (checkpoints)",
                f"{results['warm_checkpoint_s']:.3f}",
                f"{cold_seconds / max(results['warm_checkpoint_s'], 1e-9):.1f}x",
                fingerprints["warm (checkpoints)"][:12],
            ],
            [
                "warm (score cache)",
                f"{results['warm_score_cache_s']:.3f}",
                f"{cold_seconds / max(results['warm_score_cache_s'], 1e-9):.1f}x",
                fingerprints["warm (score cache)"][:12],
            ],
        ]
        table = render_table(
            "Repeat-query latency: cold one-shot vs warm daemon",
            ["path", "time (s)", "speedup", "fingerprint"],
            rows,
        )
        with capsys.disabled():
            print("\n" + table)

        assert results["warm_cache_store_hits"] > 0
        assert results["warm_cache_evaluations"] == 0
        if not SMOKE:
            assert speedup >= WARM_SPEEDUP_GATE, (
                f"warm repeat only {speedup:.1f}x faster than cold "
                f"(gate {WARM_SPEEDUP_GATE}x)"
            )

        save_results("service", results)
        benchmark.pedantic(
            lambda: None, rounds=1, iterations=1
        )
    finally:
        set_shared_score_cache(previous_store)
