"""Real wall-clock parallel speedup of the dominant phase on local cores.

The trace projections reproduce the paper's scaling figures on a simulated
machine; this benchmark demonstrates *actual* parallel execution: the
split-scoring phase (>90% of the pipeline) fanned out over local processes,
with bit-identical results and measured speedup, under both the static
(Algorithm 5) and dynamic (Section 6 future work) schedules.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import BENCH_SEED, bench_config
from repro.bench import render_table, save_results
from repro.data.synthetic import make_module_dataset
from repro.ganesh.coclustering import run_obs_only_ganesh
from repro.parallel.pool import score_splits_pool
from repro.rng.streams import GibbsRandom, make_stream
from repro.trees.hierarchy import build_tree_structure


def _prepare_workload():
    """Tree structures + node records for a mid-size matrix."""
    config = bench_config()
    matrix = make_module_dataset(120, 96, seed=5).matrix
    data = matrix.values
    from repro.core.learner import LemonTreeLearner

    learner = LemonTreeLearner(config)
    samples = learner._task_ganesh(data, BENCH_SEED, None)
    members = learner._task_consensus(samples)
    records = []
    for module_id, mem in enumerate(members):
        block = data[mem]
        mrng = GibbsRandom(make_stream(BENCH_SEED, "modules", module_id))
        obs_samples = run_obs_only_ganesh(
            block, mrng, config.tree_update_steps, config.tree_burn_in, config.prior
        )
        obs_base = 0
        for labels in obs_samples:
            tree = build_tree_structure(block, labels, module_id, config.prior)
            for node in tree.internal_nodes():
                records.append(
                    (module_id, node.observations, node.left.observations, obs_base)
                )
                obs_base += int(node.observations.size)
    parents = np.arange(data.shape[0])
    return data, records, parents, config


def test_pool_split_scoring_speedup(benchmark, capsys):
    data, records, parents, config = _prepare_workload()
    n_cores = os.cpu_count() or 2
    worker_counts = sorted({1, 2, min(4, n_cores), min(8, n_cores)})

    results = {}
    baseline = None
    rows = []
    for workers in worker_counts:
        for schedule in ("static", "dynamic"):
            t0 = time.perf_counter()
            scores, steps, accepted = score_splits_pool(
                data, records, parents, config, seed=BENCH_SEED,
                n_workers=workers, schedule=schedule,
            )
            elapsed = time.perf_counter() - t0
            if baseline is None:
                baseline = (scores, steps, accepted)
                base_time = elapsed
            else:
                np.testing.assert_array_equal(scores, baseline[0])
                np.testing.assert_array_equal(steps, baseline[1])
                np.testing.assert_array_equal(accepted, baseline[2])
            results[(workers, schedule)] = elapsed
            rows.append(
                [workers, schedule, f"{elapsed:.2f}",
                 f"{results[(1, 'static')] / elapsed:.2f}x"]
            )
    # Per-call pool vs persistent executor: score each module's record
    # group as its own call, the shape Task 3 actually produces.  The
    # per-call path pays pool construction + matrix transfer per group;
    # the executor pays both once.
    from repro.parallel.executor import ModuleExecutor

    groups: dict[int, list] = {}
    for rec in records:
        groups.setdefault(rec[0], []).append(rec)
    max_workers = max(worker_counts)

    t0 = time.perf_counter()
    percall_parts = [
        score_splits_pool(
            data, group, parents, config, seed=BENCH_SEED, n_workers=max_workers
        )
        for group in groups.values()
    ]
    t_percall_groups = time.perf_counter() - t0

    t0 = time.perf_counter()
    with ModuleExecutor(
        data, parents, config, BENCH_SEED, n_workers=max_workers
    ) as executor:
        executor_parts = [executor.score_splits(group) for group in groups.values()]
    t_executor_groups = time.perf_counter() - t0

    for (ps, pt, pa), (es, et, ea) in zip(percall_parts, executor_parts):
        np.testing.assert_array_equal(ps, es)
        np.testing.assert_array_equal(pt, et)
        np.testing.assert_array_equal(pa, ea)
    rows.append(
        [max_workers, f"per-call x{len(groups)}", f"{t_percall_groups:.2f}",
         f"{results[(1, 'static')] / t_percall_groups:.2f}x"]
    )
    rows.append(
        [max_workers, f"executor x{len(groups)}", f"{t_executor_groups:.2f}",
         f"{results[(1, 'static')] / t_executor_groups:.2f}x"]
    )

    table = render_table(
        f"Real split-scoring speedup on local cores ({n_cores} available)",
        ["workers", "schedule", "time (s)", "speedup"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # Results identical under every worker count and schedule (asserted
    # above).  On a multi-core host, multi-worker runs must actually beat
    # one worker; on a single-core host there is no parallelism to win
    # (workers just time-slice), so only the identity contract applies.
    if n_cores > 1 and max_workers > 1:
        best = min(
            results[(max_workers, "static")], results[(max_workers, "dynamic")]
        )
        assert best < results[(1, "static")], "process pool must beat one worker"
    elif n_cores == 1:
        with capsys.disabled():
            print("single-core host: speedup assertion skipped; "
                  "result-identity across schedules verified instead")

    save_results(
        "pool_speedup",
        {
            "n_cores": n_cores,
            "times": {f"{w}-{s}": t for (w, s), t in results.items()},
            "percall_groups_s": t_percall_groups,
            "executor_groups_s": t_executor_groups,
        },
    )
    benchmark.pedantic(
        lambda: score_splits_pool(
            data, records[:4], parents, config, seed=BENCH_SEED, n_workers=1
        ),
        rounds=1,
        iterations=1,
    )
