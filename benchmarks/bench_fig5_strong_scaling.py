"""Figure 5 — strong scaling on observation-subsampled yeast data sets,
plus the Section 5.3.1 load-imbalance measurement.

Paper (n = 5716 fixed, m in {125..1000}):

* 5a — sequential per-task breakdown: module learning takes 94.7-99.4% of
  the time, consensus clustering under a second;
* 5b — strong-scaling speedup for p = 2..1024: ~48x at p = 64 (75%
  efficiency), 273.9-288.3x at p = 1024 for the four larger data sets, with
  the smallest (m = 125) curve diverging for large p;
* 5c — breakdown at p = 1024: GaneSH's share grows but module learning
  still dominates for the larger data sets;
* 5.3.1 — split-scoring load imbalance < 0.3 for p <= 64, rising steadily
  beyond (0.5 at 128 to 2.6 at 1024).

Here the same experiment runs at reproduction scale (n = 180 fixed,
m in FIG5_M): measured sequential breakdowns, trace-projected T_p on the
simulated machine, and the flat-partition imbalance metric.
"""

from __future__ import annotations

from conftest import FIG5_M, YEAST_COMPLETE
from repro.bench import PAPER, render_figure_series, render_table, save_results
from repro.parallel.trace import project_time

PROCESSOR_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig5a_sequential_breakdown(benchmark, fig5_traces, capsys):
    rows = []
    fractions = {}
    for m, (trace, meta) in sorted(fig5_traces.items()):
        tt = meta["task_times"]
        total = sum(tt.values())
        fractions[m] = tt["modules"] / total
        rows.append(
            [m, f"{total:.1f}", f"{tt['ganesh']:.2f}", f"{tt['consensus']:.3f}",
             f"{tt['modules']:.1f}", f"{100 * tt['modules'] / total:.1f}%"]
        )
    table = render_table(
        f"Figure 5a — sequential task breakdown (n={YEAST_COMPLETE[0]} fixed), seconds",
        ["m", "total", "ganesh", "consensus", "modules", "modules %"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print("paper: modules share 94.7% (m=125) -> 99.4% (m=1000); consensus < 1 s")

    # Shape: module learning dominates and its share grows with m.
    ms = sorted(fractions)
    assert fractions[ms[-1]] > 0.6
    assert fractions[ms[-1]] > fractions[ms[0]]
    # Consensus is negligible at every m.
    for m, (trace, meta) in fig5_traces.items():
        assert meta["task_times"]["consensus"] < 0.05 * sum(meta["task_times"].values())

    save_results(
        "fig5a",
        {
            "breakdowns": {
                str(m): meta["task_times"] for m, (_t, meta) in fig5_traces.items()
            },
            "modules_fraction": {str(m): fractions[m] for m in fractions},
            "paper": "modules share 94.7->99.4%, consensus < 1s",
        },
    )
    smallest = fig5_traces[min(fig5_traces)][0]
    benchmark.pedantic(lambda: project_time(smallest, 64), rounds=3, iterations=1)


def _paper_scale(m: int) -> float:
    """Growth-law factor mapping our (n, m) cell to the paper's Fig 5 cell.

    The paper fixes n = 5716 and sweeps m in {125..1000}; our sweep is the
    ~1/10-scale counterpart at n = 180, so every data set scales by the
    same fitted laws the paper uses for its own estimates (Section 5.2.2).
    """
    n_ratio = PAPER["shapes"]["yeast"][0] / YEAST_COMPLETE[0]
    paper_m = {12: 125, 25: 250, 50: 500, 75: 750, 100: 1000}[m]
    return ((paper_m / m) ** 2.0) * (n_ratio**1.8)


def test_fig5b_strong_scaling_speedup(benchmark, fig5_traces, capsys):
    series = {}
    speedup_at = {}
    paper_scale_at = {}
    for m, (trace, meta) in sorted(fig5_traces.items()):
        t1 = sum(meta["task_times"].values())
        curve = {}
        pcurve = {}
        scale = _paper_scale(m)
        pt1 = t1 * scale
        for p in PROCESSOR_COUNTS:
            curve[p] = t1 / project_time(trace, p).total
            pcurve[p] = pt1 / project_time(trace, p, compute_scale=scale).total
        series[f"m={m}"] = curve
        speedup_at[m] = curve
        paper_scale_at[m] = pcurve
    series["ideal"] = {p: float(p) for p in PROCESSOR_COUNTS}

    figure = render_figure_series(
        f"Figure 5b — strong-scaling speedup, native scale (n={YEAST_COMPLETE[0]})",
        "p",
        series,
        y_format="{:.1f}",
    )
    pfigure = render_figure_series(
        "Figure 5b — paper-scale projection (compute scaled to n=5716, m=125..1000)",
        "p",
        {f"m={m}": c for m, c in paper_scale_at.items()},
        y_format="{:.1f}",
    )
    larger_m = sorted(fig5_traces)[1:]
    with capsys.disabled():
        print("\n" + figure)
        print("\n" + pfigure)
        print(
            "paper-scale efficiency at p=64, larger data sets: "
            + ", ".join(f"m={m}: {paper_scale_at[m][64] / 64:.0%}" for m in larger_m)
        )
        print("paper: ~48x at p=64 (75% efficiency); 273.9-288.3x at p=1024;")
        print("       the smallest-m curve diverges from the rest at large p")

    # Shape assertions.
    smallest_m = min(fig5_traces)
    largest_m = max(fig5_traces)
    # (1) larger data sets scale further: speedup at p=1024 grows with m.
    assert speedup_at[largest_m][1024] > speedup_at[smallest_m][1024]
    # (2) the smallest data set diverges: its large-p speedup is clearly
    #     below the largest data set's.
    assert speedup_at[smallest_m][1024] < 0.7 * speedup_at[largest_m][1024]
    # (3) near-linear region at small p for the largest data set.
    assert speedup_at[largest_m][8] > 0.7 * 8
    # (4) paper-scale: high efficiency at p=64 and a few-hundred-x speedup
    #     at p=1024 for the larger data sets (paper: 75% and 273.9-288.3x).
    assert paper_scale_at[largest_m][64] / 64 > 0.55
    assert 100 < paper_scale_at[largest_m][1024] < 1024

    save_results(
        "fig5b",
        {
            "speedups": {
                f"m={m}": {str(p): s for p, s in curve.items()}
                for m, curve in speedup_at.items()
            },
            "paper_scale_speedups": {
                f"m={m}": {str(p): s for p, s in curve.items()}
                for m, curve in paper_scale_at.items()
            },
            "paper": PAPER["fig5"],
        },
    )
    trace = fig5_traces[largest_m][0]
    benchmark.pedantic(
        lambda: [project_time(trace, p) for p in PROCESSOR_COUNTS],
        rounds=3,
        iterations=1,
    )


def test_fig5c_breakdown_at_1024(benchmark, fig5_traces, capsys):
    rows = []
    shares = {}
    for m, (trace, meta) in sorted(fig5_traces.items()):
        pt = project_time(trace, 1024)
        share = pt.modules / pt.total
        shares[m] = share
        rows.append(
            [m, f"{pt.total:.4f}", f"{pt.ganesh:.4f}", f"{pt.consensus:.4f}",
             f"{pt.modules:.4f}", f"{100 * share:.1f}%"]
        )
    table = render_table(
        "Figure 5c — projected task breakdown at p = 1024, seconds",
        ["m", "total", "ganesh", "consensus", "modules", "modules %"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print("paper: GaneSH share grows at p=1024 vs sequential, but modules")
        print("       still > 90% of run-time for the three larger data sets")

    # GaneSH's *relative* share grows at p=1024 compared to sequential.
    for m, (trace, meta) in fig5_traces.items():
        tt = meta["task_times"]
        seq_ganesh_share = tt["ganesh"] / sum(tt.values())
        pt = project_time(trace, 1024)
        par_ganesh_share = pt.ganesh / pt.total
        assert par_ganesh_share > seq_ganesh_share

    save_results(
        "fig5c",
        {"modules_share_at_1024": {str(m): s for m, s in shares.items()}},
    )
    trace = fig5_traces[max(fig5_traces)][0]
    benchmark.pedantic(lambda: project_time(trace, 1024), rounds=3, iterations=1)


def test_sec531_load_imbalance(benchmark, fig5_traces, capsys):
    largest_m = max(fig5_traces)
    trace = fig5_traces[largest_m][0]
    rows = []
    imbalance = {}
    for p in (16, 32, 64, 128, 256, 512, 1024):
        imbalance[p] = trace.split_imbalance(p)
        rows.append([p, f"{imbalance[p]:.2f}"])
    table = render_table(
        f"Section 5.3.1 — split-scoring load imbalance (largest data set, m={largest_m})",
        ["p", "(max - mean) / mean"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print("paper: < 0.3 for p <= 64, then 0.5 at p=128 rising to 2.6 at p=1024")

    # Shape: small at p <= 64, strictly growing into the large-p regime.
    assert imbalance[64] < 0.5
    assert imbalance[1024] > imbalance[128] > imbalance[16]

    save_results(
        "sec531_imbalance",
        {
            "imbalance": {str(p): v for p, v in imbalance.items()},
            "paper": PAPER["imbalance"],
        },
    )
    benchmark.pedantic(lambda: trace.split_imbalance(1024), rounds=3, iterations=1)
