"""Shared fixtures for the benchmark harness.

Scale note (see DESIGN.md): the paper's data sets are infeasible here, so
every experiment runs on synthetic matrices whose shapes are scaled-down
versions of the paper's, with the scale factor documented per fixture.
Expensive sequential measurements are cached on disk under
``benchmarks/.cache`` so re-running the suite reuses them; delete the
directory to force fresh measurements.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.parallel.trace import WorkTrace, load_trace, save_trace

CACHE_DIR = Path(__file__).resolve().parent / ".cache"

#: Table 1 / Figures 3-4 grid.  Paper: n in {1000..5716} x m in {125..1000}
#: subsampled from the complete yeast matrix (5716 x 2577).  Ours: the same
#: 1:2:3:4 / 1:2:4:6:8 ratios at ~1/25 (n) and ~1/10 (m) scale, subsampled
#: as prefixes of one base matrix, exactly the paper's methodology.
GRID_N = (60, 90, 120, 150)
GRID_M = (20, 40, 60, 80, 100)
TABLE1_N = (60, 90, 120)

#: "Complete yeast-like" matrix for Figures 5-6: n = 180 (~5716/32),
#: m = 192 (~2577/13).
YEAST_COMPLETE = (180, 192)
#: Figure 5 observation sweep (paper: m in {125..1000} of the complete set).
FIG5_M = (12, 25, 50, 75, 100)
#: "Complete thaliana-like" matrix for Table 2: n = 288 (~18373/64),
#: m = 160 (~5102/32) — larger n, comparable m, like the paper's ratio.
THALIANA_COMPLETE = (288, 160)

BENCH_SEED = 31
#: cache key tag for the benchmark configuration below
CONFIG_TAG = "S25r2K16"


def bench_config() -> LearnerConfig:
    """The paper's minimum-run-time configuration (Section 5.1).

    ``max_sampling_steps`` is raised (with earlier stochastic stopping) so
    the per-split sampling-step distribution has the heavy tail the paper's
    discrete sampling exhibits — the driver of the Section 5.3.1 load
    imbalance.
    """
    return LearnerConfig(
        max_sampling_steps=25,
        sampling_stop_repeats=2,
        # The paper's runs keep the variable-cluster count far below the
        # n/2 default (their final module counts are ~30-170 at n up to
        # 5716, and GaneSH accounts for <5% of sequential time); n/16
        # reproduces that regime.
        init_var_clusters=1 / 16,
    )


def _cache_path(name: str) -> Path:
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return CACHE_DIR / name


def cached_json(key: str, compute):
    """Disk-cached JSON value (for expensive non-trace measurements)."""
    path = _cache_path(f"{key}.json")
    if path.exists():
        return json.loads(path.read_text())
    value = compute()
    path.write_text(json.dumps(value))
    return value


def measure_sequential(matrix, seed: int, key: str):
    """Run the optimized learner with tracing, cached on disk."""
    trace_path = _cache_path(f"{key}.npz")
    meta_path = _cache_path(f"{key}.json")
    if trace_path.exists() and meta_path.exists():
        meta = json.loads(meta_path.read_text())
        return load_trace(trace_path), meta
    trace = WorkTrace()
    t0 = time.perf_counter()
    result = LemonTreeLearner(bench_config()).learn(matrix, seed=seed, trace=trace)
    elapsed = time.perf_counter() - t0
    meta = {
        "elapsed": elapsed,
        "task_times": {
            "ganesh": result.task_times.ganesh,
            "consensus": result.task_times.consensus,
            "modules": result.task_times.modules,
        },
        "n_modules": result.stats["n_modules"],
        "shape": list(matrix.shape),
    }
    save_trace(trace, trace_path)
    meta_path.write_text(json.dumps(meta))
    return trace, meta


@pytest.fixture(scope="session")
def grid_base_matrix():
    """Base matrix whose prefixes form the Table 1 / Fig 3-4 grid."""
    return make_module_dataset(max(GRID_N), max(GRID_M), seed=BENCH_SEED).matrix


@pytest.fixture(scope="session")
def grid_times(grid_base_matrix):
    """Optimized-learner run-times over the full (n, m) grid, cached."""
    times: dict[tuple[int, int], float] = {}
    for n in GRID_N:
        for m in GRID_M:
            key = f"grid_opt_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}"
            sub = grid_base_matrix.subsample(n, m)
            _trace, meta = measure_sequential(sub, BENCH_SEED, key)
            times[(n, m)] = sum(meta["task_times"].values())
    return times


@pytest.fixture(scope="session")
def yeast_complete_matrix():
    n, m = YEAST_COMPLETE
    return make_module_dataset(n, m, seed=7, name="yeast-like-complete").matrix


@pytest.fixture(scope="session")
def yeast_complete_trace(yeast_complete_matrix):
    n, m = YEAST_COMPLETE
    return measure_sequential(
        yeast_complete_matrix, BENCH_SEED, f"yeast_complete_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}"
    )


@pytest.fixture(scope="session")
def fig5_traces(yeast_complete_matrix):
    """Traces for the Figure 5 observation sweep at fixed n."""
    n = YEAST_COMPLETE[0]
    out = {}
    for m in FIG5_M:
        sub = yeast_complete_matrix.subsample(n, m)
        out[m] = measure_sequential(sub, BENCH_SEED, f"fig5_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}")
    return out


@pytest.fixture(scope="session")
def thaliana_trace():
    n, m = THALIANA_COMPLETE
    matrix = make_module_dataset(n, m, seed=11, name="thaliana-like-complete").matrix
    return measure_sequential(
        matrix, BENCH_SEED, f"thaliana_complete_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}"
    )
