"""Table 1 — Lemon-Tree baseline vs optimized sequential implementation.

Paper: the Java Lemon-Tree takes 3.6-3.8x longer than the authors' optimized
C++ implementation across an (n, m) grid of yeast subsamples, producing
exactly the same networks.  Here the pure-Python :class:`ReferenceLearner`
plays the Java role against the NumPy :class:`LemonTreeLearner` on the
scaled grid (see conftest), with output equality verified per cell.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED, CONFIG_TAG, GRID_M, TABLE1_N, bench_config, cached_json
from repro.bench import PAPER, render_table, save_results
from repro.core.learner import LemonTreeLearner
from repro.core.reference import ReferenceLearner


def _measure_cell(matrix, n, m):
    sub = matrix.subsample(n, m)
    config = bench_config()

    t0 = time.perf_counter()
    optimized = LemonTreeLearner(config).learn(sub, seed=BENCH_SEED)
    t_opt = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = ReferenceLearner(config).learn(sub, seed=BENCH_SEED)
    t_ref = time.perf_counter() - t0

    identical = optimized.network == reference.network
    return {"ref": t_ref, "opt": t_opt, "identical": identical}


def test_table1_sequential_comparison(benchmark, grid_base_matrix, capsys):
    cells = {}
    for n in TABLE1_N:
        for m in GRID_M:
            key = f"table1_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}"
            cells[(n, m)] = cached_json(
                key, lambda n=n, m=m: _measure_cell(grid_base_matrix, n, m)
            )

    rows = []
    speedups = []
    for (n, m), cell in sorted(cells.items()):
        speedup = cell["ref"] / cell["opt"]
        speedups.append(speedup)
        rows.append(
            [n, m, f"{cell['ref']:.2f}", f"{cell['opt']:.2f}", f"{speedup:.1f}",
             "yes" if cell["identical"] else "NO"]
        )

    table = render_table(
        "Table 1 — reference (Lemon-Tree role) vs optimized sequential run-time (s)",
        ["n", "m", "reference", "optimized", "speedup", "identical network"],
        rows,
    )
    paper_range = (3.6, 3.8)
    summary = (
        f"measured speedup range: {min(speedups):.1f}-{max(speedups):.1f}x "
        f"(paper: {paper_range[0]}-{paper_range[1]}x, Java vs C++)"
    )
    with capsys.disabled():
        print("\n" + table)
        print(summary)

    assert all(cell["identical"] for cell in cells.values()), (
        "reference and optimized learners must produce identical networks"
    )
    # Shape check: the interpreted implementation is uniformly slower (the
    # paper's band is 3.6-3.8x; ours differs because Python/NumPy is not
    # Java/C++, and the smallest cells sit near the vectorization
    # crossover, so require a clear win everywhere and a strong win at
    # scale).
    assert min(speedups) > 1.3
    big = cells[(max(TABLE1_N), max(GRID_M))]
    assert big["ref"] / big["opt"] > 3.0

    save_results(
        "table1",
        {
            "cells": {f"{n}x{m}": cell for (n, m), cell in cells.items()},
            "speedup_range": [min(speedups), max(speedups)],
            "paper_speedup_range": list(paper_range),
            "paper_cells": {f"{n}x{m}": v for (n, m), v in PAPER["table1"].items()},
        },
    )

    # pytest-benchmark kernel: the optimized learner on the smallest cell.
    small = grid_base_matrix.subsample(TABLE1_N[0], GRID_M[0])
    benchmark.pedantic(
        lambda: LemonTreeLearner(bench_config()).learn(small, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
