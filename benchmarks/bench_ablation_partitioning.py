"""Ablation — candidate-split work partitioning schemes.

Section 3.2.3 argues that assigning whole modules/trees/nodes to processors
"is sub-optimal because the total number of splits assigned to different
processors will vary significantly", motivating the flat partitioning of
the global candidate-split list; Section 6 proposes dynamic load balancing
as future work.  This ablation quantifies all three on the real per-split
cost vector of the complete yeast-like run.
"""

from __future__ import annotations

import numpy as np

from repro.bench import render_table, save_results
from repro.parallel.scheduler import (
    chunked_lpt_schedule,
    flat_schedule,
    grouped_schedule,
    lpt_schedule,
)

PROCESSOR_COUNTS = (64, 256, 1024)


def _node_group_sizes(trace):
    """Per-node split counts: each recorded split_scoring step is one node."""
    return np.array(
        [s.costs.size for s in trace.steps if s.phase == "modules.split_scoring"],
        dtype=np.int64,
    )


def test_ablation_split_partitioning(benchmark, yeast_complete_trace, capsys):
    trace, _meta = yeast_complete_trace
    costs = trace.bulk_costs("modules.split_scoring")
    group_sizes = _node_group_sizes(trace)
    assert group_sizes.sum() == costs.size

    rows = []
    results = {}
    for p in PROCESSOR_COUNTS:
        per_node = grouped_schedule(costs, group_sizes, p, scheme="per-node")
        flat = flat_schedule(costs, p)
        # Node-level LPT is bounded below by the single biggest node (one
        # indivisible group); chunked LPT models the paper's future-work
        # dynamic balancing over the flat list.
        node_lpt = lpt_schedule(costs, group_sizes, p)
        lpt = chunked_lpt_schedule(costs, p)
        results[p] = {
            "per_node_imbalance": per_node.imbalance,
            "flat_imbalance": flat.imbalance,
            "node_lpt_imbalance": node_lpt.imbalance,
            "lpt_imbalance": lpt.imbalance,
            "flat_vs_per_node_makespan": per_node.makespan / flat.makespan,
            "lpt_vs_flat_makespan": flat.makespan / max(lpt.makespan, 1e-12),
        }
        rows.append(
            [p,
             f"{per_node.imbalance:.2f}", f"{flat.imbalance:.2f}", f"{lpt.imbalance:.2f}",
             f"{per_node.makespan / flat.makespan:.2f}x",
             f"{flat.makespan / max(lpt.makespan, 1e-12):.2f}x"]
        )
    table = render_table(
        "Ablation — split-scoring partitioning: imbalance (max-mean)/mean",
        ["p", "per-node (coarse)", "flat (paper)", "dyn-LPT (future work)",
         "flat gain over per-node", "dyn-LPT gain over flat"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print("paper: coarse assignment rejected for 'severe load imbalance';")
        print("       dynamic balancing proposed in Section 6 to push past flat")

    for p in PROCESSOR_COUNTS:
        # The paper's design choice: flat beats coarse per-node assignment...
        assert results[p]["flat_imbalance"] <= results[p]["per_node_imbalance"] + 1e-9
        # ...and the future-work dynamic scheme can only improve on flat.
        assert results[p]["lpt_imbalance"] <= results[p]["flat_imbalance"] + 1e-9

    save_results(
        "ablation_partitioning",
        {str(p): results[p] for p in PROCESSOR_COUNTS},
    )
    benchmark.pedantic(
        lambda: flat_schedule(costs, 1024).imbalance, rounds=3, iterations=1
    )
