"""Extension — parallel GENOMICA (the paper's Section 6 future work).

Not a paper table: the paper proposes extending its parallel components to
"develop a parallel solution for GENOMICA that scales to thousands of
cores", noting the prior state of the art (Liu et al.: 29.3x on 32 cores;
Jiang et al.: 3.5x on 4 threads).  This benchmark runs the extension built
in :mod:`repro.genomica.parallel`: a traced sequential GENOMICA run is
projected over the same processor sweep as the Lemon-Tree figures, and the
crossing of the prior-art speedup marks is asserted.
"""

from __future__ import annotations

import time

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.data.synthetic import make_module_dataset
from repro.genomica import GenomicaConfig, GenomicaLearner, ParallelGenomicaLearner
from repro.parallel.trace import WorkTrace, project_time

PROCESSOR_COUNTS = (4, 16, 32, 64, 256, 1024, 4096)

#: prior-art marks the paper cites (Section 1.1)
LIU_2005 = (32, 29.3)
JIANG_2006 = (4, 3.5)


def test_extension_parallel_genomica(benchmark, capsys):
    matrix = make_module_dataset(120, 80, n_modules=8, seed=21).matrix
    config = GenomicaConfig(n_modules=10, max_iterations=5)

    # Consistency of the extension at small p (the real SPMD path).
    sequential = GenomicaLearner(config).learn(matrix, seed=BENCH_SEED)
    parallel = ParallelGenomicaLearner(config).learn_parallel(
        matrix, seed=BENCH_SEED, p=3
    )
    assert parallel.network == sequential.network

    # Traced run + projection over the paper-style sweep.
    trace = WorkTrace()
    t0 = time.perf_counter()
    GenomicaLearner(config).learn(matrix, seed=BENCH_SEED, trace=trace)
    t1 = time.perf_counter() - t0

    # Genome-scale projection (the Section 6 context): compute scaled to
    # the yeast shape by the fitted growth laws, as in the other benches.
    scale = (5716 / matrix.n_vars) ** 1.8 * (2577 / matrix.n_obs) ** 2.0
    speedups = {}
    native = {}
    rows = []
    for p in PROCESSOR_COUNTS:
        tp_native = project_time(trace, p).total
        tp = project_time(trace, p, compute_scale=scale).total
        native[p] = t1 / tp_native
        speedups[p] = t1 * scale / tp
        rows.append(
            [p, f"{tp_native:.3f}", f"{native[p]:.1f}",
             f"{tp / 3600:.2f}", f"{speedups[p]:.1f}", f"{speedups[p] / p:.0%}"]
        )
    table = render_table(
        "Extension — parallel GENOMICA strong scaling (native and genome-scale)",
        ["p", "native T_p (s)", "native speedup",
         "genome-scale T_p (h)", "genome speedup", "efficiency"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)
        print(f"prior art the paper cites: Liu et al. {LIU_2005[1]}x on "
              f"{LIU_2005[0]} cores; Jiang et al. {JIANG_2006[1]}x on "
              f"{JIANG_2006[0]} threads")
        print(f"this extension at genome scale: {speedups[4]:.1f}x at p=4, "
              f"{speedups[32]:.1f}x at p=32, {speedups[1024]:.1f}x at p=1024")

    # The Section 6 claim: the paper's components carry GENOMICA past the
    # prior art's scaling at genome scale.
    assert speedups[4] > JIANG_2006[1]
    assert speedups[32] > LIU_2005[1] * 0.8  # in the prior art's ballpark...
    assert speedups[1024] > 2 * LIU_2005[1], (
        "the extension must scale well beyond the 32-core prior art"
    )
    assert speedups[1024] > speedups[64] > speedups[4]

    save_results(
        "extension_genomica",
        {
            "t1": t1,
            "speedups_genome_scale": {str(p): s for p, s in speedups.items()},
            "speedups_native": {str(p): s for p, s in native.items()},
            "prior_art": {"liu2005": LIU_2005, "jiang2006": JIANG_2006},
        },
    )
    benchmark.pedantic(
        lambda: [project_time(trace, p) for p in PROCESSOR_COUNTS],
        rounds=3,
        iterations=1,
    )
