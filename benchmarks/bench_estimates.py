"""Section 5.2.2 — sequential run-time estimates for large data sets.

Paper methodology: measure the largest feasible sequential run, scale by
the fitted growth laws (Theta(m^2) in observations, [n^1.8, n^2] in
variables) to the full data-set shape, and multiply by the Lemon-Tree
slowdown factor to estimate the baseline's run-time.  Their numbers: 13.5
days (their code) / 48.6 days (Lemon-Tree) for yeast; 433.6 / 1561 days for
thaliana.  The yeast estimate was verified against one real full run
(325.1 h vs 324.5 h estimated).

Here the same methodology runs on our measurements: the estimate is
validated against a real run of a larger subsample (the analogue of their
verification run), and the reference-learner slowdown plays Lemon-Tree's.
"""

from __future__ import annotations

import json

from conftest import (
    BENCH_SEED,
    CACHE_DIR,
    CONFIG_TAG,
    GRID_M,
    GRID_N,
    TABLE1_N,
    YEAST_COMPLETE,
    THALIANA_COMPLETE,
)
from repro.bench import PAPER, render_table, save_results
from repro.bench.runtime_model import estimate_full_scale_runtime, fit_growth_exponent


def _ref_speedup_band():
    """The measured reference/optimized band from the Table 1 cache."""
    speedups = []
    for n in TABLE1_N:
        for m in GRID_M:
            path = CACHE_DIR / f"table1_n{n}_m{m}_s{BENCH_SEED}_{CONFIG_TAG}.json"
            if path.exists():
                cell = json.loads(path.read_text())
                speedups.append(cell["ref"] / cell["opt"])
    return (min(speedups), max(speedups)) if speedups else (None, None)


def test_sec522_estimates(benchmark, grid_times, yeast_complete_trace, thaliana_trace, capsys):
    # Fit growth laws from the measured grid, as the paper does from Figs 3-4.
    n_big = max(GRID_N)
    m_exp = fit_growth_exponent(GRID_M, [grid_times[(n_big, m)] for m in GRID_M])
    m_big = max(GRID_M)
    n_exp = fit_growth_exponent(GRID_N, [grid_times[(n, m_big)] for n in GRID_N])

    # Estimate the "complete yeast-like" run-time from the largest grid cell
    # and verify against the real measured complete run (the paper's
    # verification step: estimated 324.5 h vs measured 325.1 h).
    t_grid = grid_times[(n_big, m_big)]
    yeast_estimate = estimate_full_scale_runtime(
        t_grid, (n_big, m_big), YEAST_COMPLETE, m_exponent=m_exp, n_exponent=n_exp
    )
    _trace, meta = yeast_complete_trace
    t_measured = sum(meta["task_times"].values())
    verification_error = abs(yeast_estimate.estimated_seconds - t_measured) / t_measured

    # Full-paper-scale estimates with the Lemon-Tree (reference) multiplier.
    lo, hi = _ref_speedup_band()
    paper_yeast = estimate_full_scale_runtime(
        t_measured, YEAST_COMPLETE, PAPER["shapes"]["yeast"], m_exponent=2.0, n_exponent=1.8
    )
    _ttrace, tmeta = thaliana_trace
    t_thaliana = sum(tmeta["task_times"].values())
    paper_thaliana = estimate_full_scale_runtime(
        t_thaliana, THALIANA_COMPLETE, PAPER["shapes"]["thaliana"], m_exponent=2.0, n_exponent=1.8
    )

    rows = [
        ["fitted m-exponent", f"{m_exp:.2f}", "2.0"],
        ["fitted n-exponent", f"{n_exp:.2f}", "1.8-2.0"],
        ["verification error (estimate vs real run)", f"{verification_error:.0%}", "0.2%"],
        ["yeast full-scale estimate (ours, days)", f"{paper_yeast.estimated_days:.1f}", "13.5"],
        ["thaliana full-scale estimate (ours, days)", f"{paper_thaliana.estimated_days:.0f}", "433.6"],
    ]
    if lo is not None:
        rows.append(
            ["baseline multiplier -> yeast baseline days",
             f"{paper_yeast.estimated_days * lo:.0f}-{paper_yeast.estimated_days * hi:.0f}",
             "48.6 (x3.6)"]
        )
    table = render_table(
        "Section 5.2.2 — sequential run-time estimates (paper methodology)",
        ["quantity", "measured/estimated", "paper"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    # The growth-law extrapolation must predict the independently measured
    # larger run to within a factor-level tolerance (the paper's check was
    # 0.2%; ours spans a bigger shape jump and a synthetic generator).
    assert verification_error < 0.8, (
        f"estimate off by {verification_error:.0%} — growth law broken"
    )
    assert paper_yeast.estimated_days > 0.01
    assert paper_thaliana.estimated_days > paper_yeast.estimated_days

    save_results(
        "sec522_estimates",
        {
            "fitted_m_exponent": m_exp,
            "fitted_n_exponent": n_exp,
            "verification_error": verification_error,
            "yeast_full_scale_days": paper_yeast.estimated_days,
            "thaliana_full_scale_days": paper_thaliana.estimated_days,
            "reference_multiplier_band": [lo, hi],
            "paper": PAPER["estimates"],
        },
    )
    benchmark.pedantic(
        lambda: estimate_full_scale_runtime(
            t_measured, YEAST_COMPLETE, PAPER["shapes"]["yeast"]
        ).estimated_days,
        rounds=5,
        iterations=1,
    )
