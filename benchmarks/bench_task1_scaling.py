"""Task 1 scaling on the task-pool executor: G GaneSH chains, 1/2/4 workers.

The paper distributes Task 1 first — the G co-clustering chains are
communication-free, so they scale trivially across workers (Section
3.2.1's group parallelism).  This benchmark measures that on the real
process pool: the same G-run ensemble at 1, 2 and 4 workers on a
synthetic yeast-shaped matrix, with every configuration's output asserted
bit-identical to the sequential learner (the consistency contract that
makes the speedup meaningful).  The record lands in
``benchmarks/results/BENCH_task1.json``.

The speedup acceptance threshold is only enforced when the machine
actually has multiple cores to scale onto; the bit-identity assertion is
unconditional.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import BENCH_SEED
from repro.bench import render_table, save_results
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import yeast_like
from repro.parallel.topology import MachineTopology, available_cpus
from repro.parallel.trace import WorkTrace

G_RUNS = 8
WORKER_COUNTS = (1, 2, 4)


def _two_domain_topology() -> MachineTopology:
    """Two simulated NUMA domains over the schedulable CPUs (see
    bench_executor.py) — gives the Task 1 chains domain-affine queues to
    steal across on any runner."""
    cpus = available_cpus()
    half = max(1, len(cpus) // 2)
    low, high = cpus[:half], cpus[half:] or cpus[:1]
    return MachineTopology(
        numa_domains=(tuple(low), tuple(high)),
        l2_bytes=2 << 20,
        l3_bytes=16 << 20,
        source="sysfs",
    )


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_task1_scaling(capsys):
    matrix = yeast_like(scale=1 / 48).matrix
    config = LearnerConfig(
        n_ganesh_runs=G_RUNS,
        n_update_steps=2,
        init_var_clusters=1 / 8,
    )

    times: dict[int, float] = {}
    ensembles: dict[int, list[np.ndarray]] = {}
    for n_workers in WORKER_COUNTS:
        learner = LemonTreeLearner(
            config.with_updates(parallel=ParallelConfig(n_workers=n_workers))
        )
        t0 = time.perf_counter()
        ensembles[n_workers] = learner.sample_clusterings(matrix, seed=BENCH_SEED)
        times[n_workers] = time.perf_counter() - t0

    reference = ensembles[1]
    for n_workers in WORKER_COUNTS[1:]:
        assert len(ensembles[n_workers]) == G_RUNS
        for got, want in zip(ensembles[n_workers], reference):
            np.testing.assert_array_equal(
                got, want, err_msg=f"run diverged at {n_workers} workers"
            )

    # Steal topology: the same G chains on two simulated NUMA domains with
    # domain-affine queues.  Stealing only moves chains between workers —
    # the ensemble must stay bit-identical to the sequential run.
    steal_trace = WorkTrace()
    learner = LemonTreeLearner(
        config.with_updates(
            parallel=ParallelConfig(n_workers=4, topology=_two_domain_topology())
        )
    )
    t0 = time.perf_counter()
    steal_ensemble = learner.sample_clusterings(
        matrix, seed=BENCH_SEED, trace=steal_trace
    )
    t_steal = time.perf_counter() - t0
    for got, want in zip(steal_ensemble, reference):
        np.testing.assert_array_equal(
            got, want, err_msg="run diverged under steal dispatch"
        )

    rows = [
        [w, f"{times[w]:.2f}", f"{times[1] / times[w]:.2f}x"]
        for w in WORKER_COUNTS
    ]
    rows.append(
        [f"4 (2-domain steal, {steal_trace.total_steals()} steals)",
         f"{t_steal:.2f}", f"{times[1] / t_steal:.2f}x"]
    )
    table = render_table(
        f"Task 1: {G_RUNS} GaneSH runs on {matrix.n_vars} x {matrix.n_obs} "
        "(bit-identical ensembles)",
        ["workers", "time (s)", "speedup"],
        rows,
    )
    with capsys.disabled():
        print("\n" + table)

    cores = _available_cores()
    speedup4 = times[1] / times[4]
    save_results(
        "BENCH_task1",
        {
            "g_runs": G_RUNS,
            "shape": list(matrix.shape),
            "cores_available": cores,
            "times_s": {str(w): times[w] for w in WORKER_COUNTS},
            "speedup_2": times[1] / times[2],
            "speedup_4": speedup4,
            "steal_topology_s": t_steal,
            "steals": steal_trace.total_steals(),
            "locality_hit_rate": steal_trace.locality_hit_rate(),
            "bit_identical": True,
        },
    )
    if cores >= 4:
        assert speedup4 >= 1.5, (
            f"Task 1 must reach >= 1.5x at 4 workers on {cores} cores, "
            f"got {speedup4:.2f}x"
        )
