"""Setup shim for environments without the ``wheel`` package.

The offline toolchain here (setuptools 65, no ``wheel``) cannot build PEP
660 editable wheels, so ``pip install -e . --no-build-isolation`` falls
back to this legacy path.  All metadata lives in ``pyproject.toml``.

Set ``REPRO_BUILD_NATIVE=1`` to AOT-compile the optional native
split-scoring extension (``repro._native._native_kernel``) at install
time; it needs cffi and a C compiler.  Without the flag (or when either
is missing) the install is pure Python — the extension is then built on
demand into a per-user cache the first time ``kernel_backend`` asks for
it, and ``"auto"`` falls back to NumPy when that is impossible too.
"""

import os

from setuptools import setup

kwargs = {}
if os.environ.get("REPRO_BUILD_NATIVE"):
    kwargs["cffi_modules"] = ["src/repro/_native/_build.py:ffibuilder"]
    kwargs["setup_requires"] = ["cffi>=1.15"]

setup(**kwargs)
