"""Setup shim for environments without the ``wheel`` package.

The offline toolchain here (setuptools 65, no ``wheel``) cannot build PEP
660 editable wheels, so ``pip install -e . --no-build-isolation`` falls
back to this legacy path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
