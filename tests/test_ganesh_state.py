"""Tests for the incremental co-clustering state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ganesh.state import (
    CoClusterState,
    ObsClustering,
    _compact,
    init_sqrt_obs_labels,
)
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.normal_gamma import log_marginal
from repro.scoring.suffstats import StatsArrays


def _random_state(n=12, m=8, k=3, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, m))
    var_labels = rng.integers(0, k, size=n)
    var_labels = _compact(var_labels)
    n_clusters = int(var_labels.max()) + 1
    obs_labels = [rng.integers(0, 2, size=m) for _ in range(n_clusters)]
    return CoClusterState(data, var_labels, obs_labels), data


def _brute_score(state: CoClusterState) -> float:
    """Recompute the full co-clustering score from scratch."""
    total = 0.0
    for cluster in state.clusters:
        block = state.data[cluster.members]
        for cid in range(cluster.obs.n_clusters):
            vals = block[:, cluster.obs.labels == cid]
            total += float(
                log_marginal(vals.size, vals.sum(), (vals * vals).sum())
            )
    return total


class TestCompact:
    def test_first_appearance_order(self):
        np.testing.assert_array_equal(
            _compact(np.array([5, 2, 5, 9, 2])), [0, 1, 0, 2, 1]
        )

    def test_already_compact_unchanged(self):
        labels = np.array([0, 1, 2, 1, 0])
        np.testing.assert_array_equal(_compact(labels), labels)


class TestInitSqrtObsLabels:
    def test_sqrt_cluster_count(self):
        rng = GibbsRandom(make_stream(1))
        labels = init_sqrt_obs_labels(100, rng)
        assert labels.max() < 10

    def test_explicit_count(self):
        rng = GibbsRandom(make_stream(1))
        labels = init_sqrt_obs_labels(20, rng, n_clusters=4)
        assert labels.max() < 4


class TestObsClustering:
    def _make(self, seed=0, n=4, m=10, k=3):
        rng = np.random.default_rng(seed)
        block = rng.normal(size=(n, m))
        labels = rng.integers(0, k, size=m)
        return ObsClustering.from_block(block, labels), block

    def test_from_block_stats_match_manual(self):
        oc, block = self._make()
        oc.check_invariants(block)

    def test_compacts_labels(self):
        block = np.zeros((2, 4))
        oc = ObsClustering.from_block(block, np.array([7, 3, 7, 3]))
        assert oc.n_clusters == 2
        np.testing.assert_array_equal(oc.labels, [0, 1, 0, 1])

    def test_move_obs_updates_stats(self):
        oc, block = self._make()
        obs = 2
        target = (oc.labels[obs] + 1) % oc.n_clusters
        oc.move_obs(obs, int(target), block[:, obs])
        oc.check_invariants(block)

    def test_move_obs_to_fresh_cluster(self):
        oc, block = self._make(seed=1)
        before = oc.n_clusters
        oc.move_obs(0, before, block[:, 0])
        assert oc.n_clusters == before + 1
        oc.check_invariants(block)

    def test_move_last_obs_empties_cluster(self):
        block = np.ones((2, 3))
        oc = ObsClustering.from_block(block, np.array([0, 1, 1]))
        oc.move_obs(0, 1, block[:, 0])  # cluster 0 now empty
        assert oc.n_clusters == 1
        oc.check_invariants(block)

    def test_move_obs_scores_match_brute_force(self):
        oc, block = self._make(seed=3)
        obs = 5
        scores = oc.move_obs_scores(obs, block[:, obs])
        assert scores.shape == (oc.n_clusters + 1,)
        src = int(oc.labels[obs])
        assert scores[src] == 0.0
        # Brute force: actually perform each move on a copy and re-score.
        base = oc.score()

        def apply_and_score(target):
            trial = oc.copy()
            trial.move_obs(obs, target, block[:, obs])
            # Recompute from scratch over the hypothetical labels.
            total = 0.0
            for cid in range(trial.n_clusters):
                vals = block[:, trial.labels == cid]
                total += float(log_marginal(vals.size, vals.sum(), (vals * vals).sum()))
            return total

        for target in range(oc.n_clusters + 1):
            if target == src:
                continue
            delta = apply_and_score(target) - base
            assert scores[target] == pytest.approx(delta, abs=1e-8)

    def test_merge_obs_scores_match_brute_force(self):
        oc, block = self._make(seed=4)
        if oc.n_clusters < 2:
            pytest.skip("degenerate draw")
        scores = oc.merge_obs_scores(0)
        base = oc.score()
        for target in range(1, oc.n_clusters):
            trial = oc.copy()
            trial.merge_obs(0, target)
            total = 0.0
            for cid in range(trial.n_clusters):
                vals = block[:, trial.labels == cid]
                total += float(log_marginal(vals.size, vals.sum(), (vals * vals).sum()))
            assert scores[target] == pytest.approx(total - base, abs=1e-8)

    def test_candidate_range_slices_full_vector(self):
        oc, block = self._make(seed=5, m=14, k=4)
        obs = 3
        full = oc.move_obs_scores(obs, block[:, obs])
        k = oc.n_clusters + 1
        parts = [
            oc.move_obs_scores(obs, block[:, obs], (lo, hi))
            for lo, hi in ((0, 2), (2, k))
        ]
        np.testing.assert_allclose(np.concatenate(parts), full, rtol=1e-13)

    def test_merge_candidate_range(self):
        oc, _block = self._make(seed=6, m=16, k=4)
        if oc.n_clusters < 3:
            pytest.skip("degenerate draw")
        full = oc.merge_obs_scores(1)
        parts = [
            oc.merge_obs_scores(1, (0, 2)),
            oc.merge_obs_scores(1, (2, oc.n_clusters)),
        ]
        np.testing.assert_allclose(np.concatenate(parts), full, rtol=1e-13)

    def test_add_remove_rows_roundtrip(self):
        oc, block = self._make(seed=7)
        extra = np.random.default_rng(8).normal(size=(2, block.shape[1]))
        oc.add_rows(extra)
        oc.remove_rows(extra)
        oc.check_invariants(block)

    def test_rows_delta_matches_add(self):
        oc, block = self._make(seed=9)
        extra = np.random.default_rng(10).normal(size=(3, block.shape[1]))
        predicted = oc.rows_delta(extra)
        before = oc.score()
        oc.add_rows(extra)
        assert oc.score() - before == pytest.approx(predicted, abs=1e-9)


class TestCoClusterState:
    def test_construction_invariants(self):
        state, _ = _random_state()
        state.check_invariants()

    def test_score_matches_brute_force(self):
        state, _ = _random_state(seed=2)
        assert state.score() == pytest.approx(_brute_score(state), abs=1e-8)

    def test_move_var_scores_match_brute_force(self):
        state, data = _random_state(seed=3)
        var = 4
        scores = state.move_var_scores(var)
        src = int(state.var_labels[var])
        assert scores[src] == 0.0
        base = _brute_score(state)
        for target in range(state.n_clusters + 1):
            if target == src:
                continue
            trial, _ = _random_state(seed=3)
            trial.move_var(var, target)
            assert scores[target] == pytest.approx(
                _brute_score(trial) - base, abs=1e-8
            )

    def test_move_var_updates_state(self):
        state, _ = _random_state(seed=4)
        var = 0
        target = (state.var_labels[var] + 1) % state.n_clusters
        state.move_var(var, int(target))
        state.check_invariants()

    def test_move_var_to_fresh(self):
        state, _ = _random_state(seed=5)
        before = state.n_clusters
        state.move_var(1, before)
        assert state.n_clusters == before + 1
        assert state.clusters[-1].members == [1]
        assert state.clusters[-1].obs.n_clusters == 1
        state.check_invariants()

    def test_moving_last_member_drops_cluster(self):
        data = np.random.default_rng(0).normal(size=(3, 5))
        state = CoClusterState(
            data, np.array([0, 1, 1]), [np.zeros(5, int), np.zeros(5, int)]
        )
        state.move_var(0, 1)
        assert state.n_clusters == 1
        state.check_invariants()

    def test_merge_var_scores_match_brute_force(self):
        state, _ = _random_state(seed=6)
        if state.n_clusters < 2:
            pytest.skip("degenerate draw")
        scores = state.merge_var_scores(0)
        base = _brute_score(state)
        for target in range(1, state.n_clusters):
            trial, _ = _random_state(seed=6)
            trial.merge_var(0, target)
            assert scores[target] == pytest.approx(
                _brute_score(trial) - base, abs=1e-8
            )

    def test_merge_var_updates_state(self):
        state, _ = _random_state(seed=7)
        if state.n_clusters < 2:
            pytest.skip("degenerate draw")
        sizes_before = state.n_clusters
        state.merge_var(0, 1)
        assert state.n_clusters == sizes_before - 1
        state.check_invariants()

    def test_candidate_range_slices(self):
        state, _ = _random_state(n=16, k=5, seed=8)
        var = 3
        full = state.move_var_scores(var)
        k = state.n_clusters + 1
        parts = [
            state.move_var_scores(var, (lo, hi))
            for lo, hi in ((0, 2), (2, 4), (4, k))
        ]
        np.testing.assert_allclose(np.concatenate(parts), full, rtol=1e-13)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_random_walk_preserves_invariants(self, seed):
        """Random sequences of moves/merges never corrupt the state."""
        state, data = _random_state(seed=seed)
        rng = np.random.default_rng(seed + 1000)
        for _ in range(15):
            op = rng.integers(0, 4)
            if op == 0:
                var = int(rng.integers(0, state.n_vars))
                target = int(rng.integers(0, state.n_clusters + 1))
                state.move_var(var, target)
            elif op == 1 and state.n_clusters >= 2:
                a, b = rng.choice(state.n_clusters, 2, replace=False)
                state.merge_var(int(a), int(b))
            elif op == 2:
                cluster = state.clusters[int(rng.integers(0, state.n_clusters))]
                obs = int(rng.integers(0, state.n_obs))
                target = int(rng.integers(0, cluster.obs.n_clusters + 1))
                block = data[cluster.members]
                cluster.obs.move_obs(obs, target, block[:, obs])
            elif op == 3:
                cluster = state.clusters[int(rng.integers(0, state.n_clusters))]
                if cluster.obs.n_clusters >= 2:
                    a, b = rng.choice(cluster.obs.n_clusters, 2, replace=False)
                    cluster.obs.merge_obs(int(a), int(b))
            state.check_invariants()
        # Incremental score still matches a from-scratch recomputation.
        assert state.score() == pytest.approx(_brute_score(state), abs=1e-6)
