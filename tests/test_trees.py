"""Tests for regression-tree building, split scoring and parent learning."""

import numpy as np
import pytest

from repro.datatypes import Split, TreeNode
from repro.rng.streams import GibbsRandom, IndexedStream, make_stream
from repro.scoring.split_score import SplitScorer
from repro.trees.hierarchy import build_tree_structure, leaf_order
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import (
    margins_from_arrays,
    node_margins,
    node_posteriors,
    score_node_splits,
    select_node_splits,
)


def _block_and_labels(seed=0, n=4, m=12, k=4):
    rng = np.random.default_rng(seed)
    block = rng.normal(size=(n, m))
    labels = rng.integers(0, k, size=m)
    return block, labels


class TestLeafOrder:
    def test_orders_by_mean(self):
        block = np.array([[0.0, 0.0, 5.0, 5.0, -3.0, -3.0]])
        labels = np.array([0, 0, 1, 1, 2, 2])
        leaves = leaf_order(block, labels)
        means = [float(block[:, obs].mean()) for obs in leaves]
        assert means == sorted(means)

    def test_skips_empty_clusters(self):
        block = np.ones((1, 3))
        leaves = leaf_order(block, np.array([0, 2, 2]))
        assert len(leaves) == 2


class TestBuildTree:
    def test_root_covers_all_observations(self):
        block, labels = _block_and_labels()
        tree = build_tree_structure(block, labels, module_id=0)
        np.testing.assert_array_equal(
            tree.root.observations, np.arange(block.shape[1])
        )

    def test_binary_and_consistent(self):
        block, labels = _block_and_labels(seed=1)
        tree = build_tree_structure(block, labels, module_id=0)
        for node in tree.root.internal_nodes():
            assert node.left is not None and node.right is not None
            merged = np.sort(
                np.concatenate([node.left.observations, node.right.observations])
            )
            np.testing.assert_array_equal(node.observations, merged)

    def test_leaves_are_clusters(self):
        block, labels = _block_and_labels(seed=2)
        tree = build_tree_structure(block, labels, module_id=0)
        n_clusters = len(set(labels.tolist()))
        assert tree.n_leaves() == n_clusters
        assert len(tree.internal_nodes()) == n_clusters - 1

    def test_single_cluster_tree_has_no_internal_nodes(self):
        block = np.ones((2, 5))
        tree = build_tree_structure(block, np.zeros(5, dtype=int), module_id=0)
        assert tree.root.is_leaf
        assert tree.internal_nodes() == []

    def test_deterministic(self):
        block, labels = _block_and_labels(seed=3)
        a = build_tree_structure(block, labels, module_id=0)
        b = build_tree_structure(block, labels, module_id=0)
        sig = lambda t: [tuple(n.observations.tolist()) for n in t.internal_nodes()]
        assert sig(a) == sig(b)

    def test_similar_leaves_merge_first(self):
        """Two near-identical observation clusters must merge before a
        distant one joins."""
        block = np.array([[0.0, 0.05, 10.0, 0.1, 10.2, 10.1]])
        labels = np.array([0, 0, 1, 2, 1, 1])
        tree = build_tree_structure(block, labels, module_id=0)
        # Root's two children should separate {low values} from {high}.
        left_mean = block[:, tree.root.left.observations].mean()
        right_mean = block[:, tree.root.right.observations].mean()
        assert abs(left_mean - right_mean) > 5.0

    def test_node_ids_unique(self):
        block, labels = _block_and_labels(seed=4)
        tree = build_tree_structure(block, labels, module_id=0)
        ids = [n.node_id for n in tree.root.internal_nodes()] + [
            n.node_id for n in tree.root.leaves()
        ]
        assert len(ids) == len(set(ids))


def _scored_node(seed=0, n_vars=6, m=10):
    """Build a small tree and score one internal node."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_vars, m))
    block = data[:3]
    labels = rng.integers(0, 3, size=m)
    tree = build_tree_structure(block, labels, module_id=0)
    nodes = tree.internal_nodes()
    assert nodes, "need an internal node"
    scorer = SplitScorer(max_steps=5)
    istream = IndexedStream(make_stream(seed, "splits", 0), scorer.draws_per_item)
    parents = np.arange(n_vars)
    scores = score_node_splits(data, 0, 0, nodes[0], parents, scorer, istream, 0)
    return data, nodes[0], scores


class TestMargins:
    def test_shape(self):
        data, node, _ = _scored_node()
        margins = node_margins(data, node, np.arange(6))
        n_obs = node.observations.size
        assert margins.shape == (6 * n_obs, n_obs)

    def test_orientation(self):
        """Margin of observation o for split (l, v): positive when the
        observation falls on its child's correct side of v."""
        data = np.array([[1.0, 2.0, 3.0, 4.0]])
        left = TreeNode(0, np.array([0, 1]))
        right = TreeNode(1, np.array([2, 3]))
        node = TreeNode(2, np.array([0, 1, 2, 3]), left=left, right=right)
        margins = node_margins(data, node, np.array([0]))
        # Split value between children, e.g. v = data[0, 1] = 2.0:
        row = margins[1]  # candidate value v = 2.0
        # left obs (values 1, 2): margin = v - x -> [1, 0]
        # right obs (values 3, 4): margin = x - v -> [1, 2]
        np.testing.assert_allclose(row, [1.0, 0.0, 1.0, 2.0])

    def test_margins_from_arrays_matches_node(self):
        data, node, _ = _scored_node(seed=1)
        a = node_margins(data, node, np.arange(6))
        b = margins_from_arrays(
            data, node.observations, node.left.observations, np.arange(6)
        )
        np.testing.assert_array_equal(a, b)


class TestScoreNodeSplits:
    def test_output_shapes(self):
        _, node, scores = _scored_node()
        n = scores.n_splits
        assert scores.log_scores.shape == (n,)
        assert scores.steps.shape == (n,)
        assert scores.accepted.shape == (n,)
        assert n == 6 * node.observations.size

    def test_split_identity_mapping(self):
        data, node, scores = _scored_node(seed=2)
        n_obs = scores.n_obs
        local = n_obs + 2  # parent 1, obs index 2
        assert scores.split_parent(local) == 1
        assert scores.split_value(data, local) == data[1, node.observations[2]]

    def test_work_units(self):
        _, _, scores = _scored_node(seed=3)
        np.testing.assert_array_equal(
            scores.work_units(), scores.steps * scores.n_obs
        )

    def test_deterministic(self):
        _, _, a = _scored_node(seed=4)
        _, _, b = _scored_node(seed=4)
        np.testing.assert_array_equal(a.log_scores, b.log_scores)


class TestPosteriorsAndSelection:
    def test_posteriors_normalize_over_retained(self):
        _, _, scores = _scored_node(seed=5)
        post = node_posteriors(scores)
        if scores.accepted.any():
            assert post.sum() == pytest.approx(1.0)
            assert (post[~scores.accepted] == 0).all()
        else:
            assert (post == 0).all()

    def test_selection_counts(self):
        data, _, scores = _scored_node(seed=6)
        rng = GibbsRandom(make_stream(1, "sel"))
        weighted, uniform = select_node_splits(data, scores, rng, n_select=3)
        assert len(uniform) == 3
        assert len(weighted) in (0, 3)

    def test_selected_splits_reference_node(self):
        data, node, scores = _scored_node(seed=7)
        rng = GibbsRandom(make_stream(2, "sel"))
        weighted, uniform = select_node_splits(data, scores, rng, n_select=2)
        for split in weighted + uniform:
            assert split.node_id == node.node_id
            assert split.n_obs == node.observations.size
            assert 0 <= split.parent < data.shape[0]

    def test_weighted_selection_prefers_high_posterior(self):
        data, _, scores = _scored_node(seed=8)
        post = node_posteriors(scores)
        if not scores.accepted.any():
            pytest.skip("no retained splits for this seed")
        rng = GibbsRandom(make_stream(3, "sel"))
        picks = []
        for _ in range(50):
            weighted, _ = select_node_splits(data, scores, rng, n_select=1)
            picks.append(weighted[0].posterior)
        assert np.mean(picks) >= post[post > 0].mean() * 0.5


class TestParentScores:
    def test_weighted_average(self):
        splits = [
            Split(parent=1, value=0.0, node_id=0, posterior=0.8, n_obs=10),
            Split(parent=1, value=0.1, node_id=1, posterior=0.4, n_obs=30),
            Split(parent=2, value=0.2, node_id=0, posterior=0.5, n_obs=10),
        ]
        scores = accumulate_parent_scores(splits)
        assert scores[1] == pytest.approx((0.8 * 10 + 0.4 * 30) / 40)
        assert scores[2] == pytest.approx(0.5)

    def test_empty(self):
        assert accumulate_parent_scores([]) == {}

    def test_sorted_keys(self):
        splits = [
            Split(parent=5, value=0, node_id=0, posterior=0.1, n_obs=1),
            Split(parent=2, value=0, node_id=0, posterior=0.1, n_obs=1),
        ]
        assert list(accumulate_parent_scores(splits)) == [2, 5]
