"""Tests for the GENOMICA-style iterative two-step learner."""

import numpy as np
import pytest

from repro.analysis import module_recovery_score
from repro.data.synthetic import make_module_dataset
from repro.genomica import (
    GenomicaConfig,
    GenomicaLearner,
    ParallelGenomicaLearner,
)
from repro.core.config import ParallelConfig
from repro.parallel.trace import WorkTrace, project_time


@pytest.fixture(scope="module")
def easy_dataset():
    return make_module_dataset(36, 30, n_modules=3, noise=0.2, heavy_tail=0.0, seed=77)


@pytest.fixture(scope="module")
def easy_result(easy_dataset):
    config = GenomicaConfig(n_modules=3, max_iterations=8)
    return GenomicaLearner(config).learn(easy_dataset.matrix, seed=5)


class TestConfig:
    def test_defaults_valid(self):
        GenomicaConfig()

    @pytest.mark.parametrize(
        "field,value",
        [("n_modules", 0), ("max_iterations", 0), ("tree_update_steps", 0)],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            GenomicaConfig(**{field: value})


class TestLearning:
    def test_network_partitions_variables(self, easy_dataset, easy_result):
        network = easy_result.network
        labels = network.assignment_labels()
        assert (labels >= 0).all()
        assert sum(m.size for m in network.modules) == easy_dataset.matrix.n_vars

    def test_module_count_fixed(self, easy_result):
        assert easy_result.network.n_modules == 3

    def test_score_history_improves(self, easy_result):
        history = easy_result.score_history
        assert len(history) >= 2
        assert history[-1] > history[0]

    def test_convergence_flag(self, easy_result):
        if easy_result.converged:
            assert easy_result.n_iterations <= 8

    def test_recovers_easy_structure(self, easy_dataset, easy_result):
        ari = module_recovery_score(easy_result.network, easy_dataset.truth)
        assert ari > 0.5

    def test_deterministic(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=4)
        a = GenomicaLearner(config).learn(easy_dataset.matrix, seed=9)
        b = GenomicaLearner(config).learn(easy_dataset.matrix, seed=9)
        assert a.network == b.network
        assert a.score_history == b.score_history

    def test_seed_sensitivity(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=3)
        a = GenomicaLearner(config).learn(easy_dataset.matrix, seed=1)
        b = GenomicaLearner(config).learn(easy_dataset.matrix, seed=2)
        assert not np.array_equal(
            a.network.assignment_labels(), b.network.assignment_labels()
        )

    def test_trees_have_single_best_split(self, easy_result):
        for module in easy_result.network.modules:
            for tree in module.trees:
                for node in tree.internal_nodes():
                    assert len(node.weighted_splits) <= 1
                    for split in node.weighted_splits:
                        assert 0.0 < split.posterior <= 1.0

    def test_parent_scores_present(self, easy_result):
        parents = [
            p for m in easy_result.network.modules for p in m.weighted_parents
        ]
        assert parents

    def test_candidate_parent_restriction(self, easy_dataset):
        config = GenomicaConfig(
            n_modules=3, max_iterations=2, candidate_parents=(0, 1, 2, 3)
        )
        result = GenomicaLearner(config).learn(easy_dataset.matrix, seed=3)
        for module in result.network.modules:
            assert all(p < 4 for p in module.weighted_parents)

    def test_k_larger_than_n_clamped(self):
        ds = make_module_dataset(8, 10, n_modules=2, seed=1)
        config = GenomicaConfig(n_modules=50, max_iterations=2)
        result = GenomicaLearner(config).learn(ds.matrix, seed=1)
        assert result.network.n_modules <= 8

    def test_max_iterations_respected(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=1)
        result = GenomicaLearner(config).learn(easy_dataset.matrix, seed=4)
        assert result.n_iterations == 1


class TestParallelGenomica:
    """The Section 6 future-work extension: GENOMICA on the paper's
    parallel components, with the same consistency guarantee."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_identical_to_sequential(self, easy_dataset, p):
        config = GenomicaConfig(n_modules=3, max_iterations=3)
        sequential = GenomicaLearner(config).learn(easy_dataset.matrix, seed=5)
        parallel = ParallelGenomicaLearner(config).learn_parallel(
            easy_dataset.matrix, seed=5, p=p
        )
        assert parallel.network == sequential.network
        assert parallel.n_iterations == sequential.n_iterations
        assert parallel.converged == sequential.converged

    def test_score_history_matches_to_float_noise(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=3)
        sequential = GenomicaLearner(config).learn(easy_dataset.matrix, seed=7)
        parallel = ParallelGenomicaLearner(config).learn_parallel(
            easy_dataset.matrix, seed=7, p=3
        )
        assert len(parallel.score_history) == len(sequential.score_history)
        for a, b in zip(parallel.score_history, sequential.score_history):
            assert a == pytest.approx(b, rel=1e-9)

    def test_work_balanced_across_ranks(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=2)
        result = ParallelGenomicaLearner(config).learn_parallel(
            easy_dataset.matrix, seed=3, p=4
        )
        work = result.work_per_rank
        assert work.shape == (4,)
        assert work.max() < 1.5 * work.mean()

    def test_mrg_backend(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=2, rng_backend="mrg")
        sequential = GenomicaLearner(config).learn(easy_dataset.matrix, seed=2)
        parallel = ParallelGenomicaLearner(config).learn_parallel(
            easy_dataset.matrix, seed=2, p=2
        )
        assert parallel.network == sequential.network


class TestPooledGenomica:
    """The final network build on the persistent task-pool executor."""

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_identical_to_sequential(self, easy_dataset, easy_result, n_workers):
        config = GenomicaConfig(n_modules=3, max_iterations=8, parallel=ParallelConfig(n_workers=n_workers))
        pooled = GenomicaLearner(config).learn(easy_dataset.matrix, seed=5)
        assert pooled.network == easy_result.network
        assert pooled.n_iterations == easy_result.n_iterations
        assert pooled.score_history == easy_result.score_history

    def test_mrg_backend(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=3, rng_backend="mrg")
        sequential = GenomicaLearner(config).learn(easy_dataset.matrix, seed=2)
        pooled = GenomicaLearner(
            GenomicaConfig(
                n_modules=3, max_iterations=3, rng_backend="mrg",
                parallel=ParallelConfig(n_workers=2)
            )
        ).learn(easy_dataset.matrix, seed=2)
        assert pooled.network == sequential.network

    def test_single_pool_construction(self, easy_dataset):
        from repro.parallel import poolutil

        poolutil.reset_counters()
        config = GenomicaConfig(n_modules=3, max_iterations=3, parallel=ParallelConfig(n_workers=2))
        GenomicaLearner(config).learn(easy_dataset.matrix, seed=5)
        assert poolutil.counters()["pool_constructions"] == 1
        assert poolutil.counters()["matrix_transfers"] == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            GenomicaConfig(parallel=ParallelConfig(n_workers=-1))

    def test_dropped_flat_knob_rejected(self):
        # The one-release deprecation shim for the flat ``n_workers``
        # field is gone: the old spelling is now a hard error.
        with pytest.raises(TypeError):
            GenomicaConfig(n_workers=2)


class TestGenomicaTrace:
    def test_trace_recorded_and_projects(self, easy_dataset):
        config = GenomicaConfig(n_modules=3, max_iterations=3)
        trace = WorkTrace()
        result = GenomicaLearner(config).learn(easy_dataset.matrix, seed=5, trace=trace)
        phases = {s.phase for s in trace.steps}
        assert "modules.e_step" in phases
        assert "modules.split_search" in phases
        assert "modules.obs_reassign" in phases
        t1 = project_time(trace, 1).total
        assert t1 == pytest.approx(result.elapsed_seconds, rel=1e-6)
        assert project_time(trace, 16).total < t1
