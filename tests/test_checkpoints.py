"""Tests for resumable task-3 execution (per-module checkpoints)."""

import json

import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner


@pytest.fixture()
def setup(tiny_matrix, fast_config):
    learner = LemonTreeLearner(fast_config)
    samples = learner.sample_clusterings(tiny_matrix, seed=5)
    modules = learner.consensus(samples)
    return learner, tiny_matrix, modules


class TestCheckpoints:
    def test_checkpoints_written(self, setup, tmp_path):
        learner, matrix, modules = setup
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        files = sorted(tmp_path.glob("module_*.json"))
        assert len(files) == len(modules)

    def test_resume_reproduces_network(self, setup, tmp_path):
        """A run resumed from a partial checkpoint directory yields the
        exact network an uninterrupted run produces."""
        learner, matrix, modules = setup
        full = learner.learn_from_modules(matrix, modules, seed=5).network

        # Simulate an interrupted run: learn everything, then delete the
        # checkpoints of the last modules so they must be recomputed.
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        for module_id in range(len(modules) // 2, len(modules)):
            (tmp_path / f"module_{module_id}.json").unlink()
        resumed = learner.learn_from_modules(
            matrix, modules, seed=5, checkpoint_dir=tmp_path
        ).network
        assert resumed == full

    def test_checkpoints_actually_skip_work(self, setup, tmp_path):
        learner, matrix, modules = setup
        first = learner.learn_from_modules(
            matrix, modules, seed=5, checkpoint_dir=tmp_path
        )
        second = learner.learn_from_modules(
            matrix, modules, seed=5, checkpoint_dir=tmp_path
        )
        assert second.network == first.network
        # The warm run is dominated by JSON loading, far below learning time.
        assert second.task_times.modules < max(0.5, first.task_times.modules)

    def test_stale_config_checkpoint_ignored(self, setup, tmp_path):
        """Checkpoints carry a configuration fingerprint — changing the
        learning parameters must not silently reuse them."""
        learner, matrix, modules = setup
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        other = LemonTreeLearner(LearnerConfig(max_sampling_steps=7))
        result = other.learn_from_modules(
            matrix, modules, seed=5, checkpoint_dir=tmp_path
        )
        fresh = other.learn_from_modules(matrix, modules, seed=5)
        assert result.network == fresh.network

    def test_stale_seed_checkpoint_ignored(self, setup, tmp_path):
        learner, matrix, modules = setup
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        result = learner.learn_from_modules(
            matrix, modules, seed=6, checkpoint_dir=tmp_path
        )
        fresh = learner.learn_from_modules(matrix, modules, seed=6)
        assert result.network == fresh.network

    def test_mismatched_members_ignored(self, setup, tmp_path):
        learner, matrix, modules = setup
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        # Corrupt one checkpoint's membership record.
        path = tmp_path / "module_0.json"
        payload = json.loads(path.read_text())
        payload["members"] = payload["members"][::-1]
        path.write_text(json.dumps(payload))
        result = learner.learn_from_modules(
            matrix, modules, seed=5, checkpoint_dir=tmp_path
        )
        fresh = learner.learn_from_modules(matrix, modules, seed=5)
        assert result.network == fresh.network

    def test_no_temp_files_left(self, setup, tmp_path):
        learner, matrix, modules = setup
        learner.learn_from_modules(matrix, modules, seed=5, checkpoint_dir=tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
