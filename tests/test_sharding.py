"""The multi-node shard tier: protocol, partitioning, calibration, identity.

The tier's contract is the paper's output-consistency property lifted one
level: for a fixed seed and RNG backend, the learned network is
bit-identical for every shard count x worker count, on both the socket
(real OS processes) and thread (in-process fallback) transports.  These
tests pin the frame codec, the LPT shard planner, the tau/mu calibration
math, and that contract end to end.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.parallel.costmodel import (
    DEFAULT_REMOTE_PENALTY,
    MachineModel,
    calibrate_from_roundtrips,
    resolve_remote_penalty,
    set_calibrated_model,
    steal_penalty,
)
from repro.parallel.sharding import (
    MAX_FRAME_BYTES,
    NodeCrashedError,
    ShardedExecutor,
    decode_frame_length,
    encode_frame,
    lpt_partition,
)
from repro.parallel.trace import WorkTrace
from repro.validation.metrics import network_fingerprint


def _sharded_config(
    n_nodes: int,
    node_backend: str = "thread",
    n_workers: int = 1,
    rng_backend: str = "philox",
) -> LearnerConfig:
    return LearnerConfig(
        n_ganesh_runs=4,
        max_sampling_steps=4,
        rng_backend=rng_backend,
        parallel=ParallelConfig(
            n_workers=n_workers, n_nodes=n_nodes, node_backend=node_backend
        ),
    )


def _sequential_config(rng_backend: str = "philox") -> LearnerConfig:
    return _sharded_config(1, n_workers=1, rng_backend=rng_backend)


class TestFrameCodec:
    def test_round_trip(self):
        message = ("result", {"results": [np.arange(5)], "seconds": 0.25})
        frame = encode_frame(message)
        length = decode_frame_length(frame[:8])
        assert length == len(frame) - 8
        tag, payload = pickle.loads(frame[8:])
        assert tag == "result"
        np.testing.assert_array_equal(payload["results"][0], np.arange(5))

    def test_empty_message(self):
        frame = encode_frame(("close",))
        assert decode_frame_length(frame[:8]) == len(frame) - 8

    def test_oversized_header_rejected(self):
        import struct

        header = struct.pack("!Q", MAX_FRAME_BYTES + 1)
        with pytest.raises(NodeCrashedError, match="corrupt"):
            decode_frame_length(header)

    def test_max_frame_accepted(self):
        import struct

        assert decode_frame_length(struct.pack("!Q", MAX_FRAME_BYTES)) == (
            MAX_FRAME_BYTES
        )


class TestLptPartition:
    def test_covers_all_indices_once(self):
        parts = lpt_partition([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0], 3)
        flat = sorted(i for part in parts for i in part)
        assert flat == list(range(7))

    def test_deterministic(self):
        costs = [2.0, 2.0, 2.0, 1.0, 1.0]
        assert lpt_partition(costs, 2) == lpt_partition(costs, 2)

    def test_largest_first_balance(self):
        # Classic LPT: [5, 4, 3, 2, 1] on 2 shards -> loads 8 / 7.
        parts = lpt_partition([5.0, 4.0, 3.0, 2.0, 1.0], 2)
        loads = sorted(sum([5.0, 4.0, 3.0, 2.0, 1.0][i] for i in part)
                       for part in parts)
        assert loads == [7.0, 8.0]

    def test_descending_order_within_part(self):
        costs = [1.0, 6.0, 2.0, 5.0, 3.0, 4.0]
        for part in lpt_partition(costs, 2):
            part_costs = [costs[i] for i in part]
            assert part_costs == sorted(part_costs, reverse=True)

    def test_single_part(self):
        assert lpt_partition([1.0, 2.0], 1) == [[1, 0]]

    def test_more_parts_than_items(self):
        parts = lpt_partition([1.0], 3)
        assert sum(len(p) for p in parts) == 1

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            lpt_partition([1.0], 0)


class TestCalibration:
    def test_tau_from_small_echoes(self):
        model = calibrate_from_roundtrips([4e-6, 2e-6, 6e-6], [1.0], 1)
        assert model.tau == pytest.approx(2e-6)  # median(small) / 2

    def test_mu_from_payload_excess(self):
        # 1 ms empty echo, 3 ms with 1000 words each way:
        # mu = (3ms - 1ms) / (2 * 1000 words).
        model = calibrate_from_roundtrips([1e-3], [3e-3], 1000)
        assert model.tau == pytest.approx(0.5e-3)
        assert model.mu == pytest.approx(1e-6)

    def test_mu_clamped_nonnegative(self):
        # Jitter can make the large echo measure *faster*; mu clamps to 0.
        model = calibrate_from_roundtrips([2e-3], [1e-3], 1000)
        assert model.mu == 0.0

    def test_median_resists_outliers(self):
        model = calibrate_from_roundtrips([1e-6, 1e-6, 5e-1], [1.0], 1)
        assert model.tau == pytest.approx(0.5e-6)

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            calibrate_from_roundtrips([], [1.0], 1)
        with pytest.raises(ValueError):
            calibrate_from_roundtrips([1.0], [], 1)
        with pytest.raises(ValueError):
            calibrate_from_roundtrips([1.0], [1.0], 0)


class TestRemotePenaltyResolution:
    def test_explicit_wins(self):
        previous = set_calibrated_model(MachineModel(tau=1.0, mu=1.0))
        try:
            assert resolve_remote_penalty(2.5) == 2.5
        finally:
            set_calibrated_model(previous)

    def test_fallback_without_calibration(self):
        previous = set_calibrated_model(None)
        try:
            assert resolve_remote_penalty() == DEFAULT_REMOTE_PENALTY
        finally:
            set_calibrated_model(previous)

    def test_calibrated_model_supplies_penalty(self):
        model = MachineModel(tau=1e-5, mu=1e-8)
        previous = set_calibrated_model(model)
        try:
            assert resolve_remote_penalty() == pytest.approx(
                steal_penalty(model)
            )
        finally:
            set_calibrated_model(previous)

    def test_schedulers_pick_up_calibration(self):
        from repro.parallel.scheduler import placement_lpt_schedule
        from repro.parallel.topology import MachineTopology, plan_placement

        topology = MachineTopology(
            numa_domains=((0, 1, 2, 3), (4, 5, 6, 7)), source="sysfs"
        )
        placement = plan_placement(topology, 4)
        sizes = np.full(8, 4, dtype=np.int64)
        costs = np.ones(int(sizes.sum()))
        # With no explicit penalty the scheduler must resolve through the
        # installed calibration; an extreme wire model steers every group
        # home, so the makespan is the perfectly balanced one.
        previous = set_calibrated_model(
            MachineModel(tau=10.0, mu=10.0)
        )
        try:
            result = placement_lpt_schedule(costs, sizes, placement)
        finally:
            set_calibrated_model(previous)
        assert result.makespan == pytest.approx(costs.sum() / 4)


class TestThreadCommPointToPoint:
    def test_send_recv_orders_per_channel(self):
        from repro.parallel.comm import _Context, ThreadComm

        ctx = _Context(2)
        a, b = ThreadComm(ctx, 0), ThreadComm(ctx, 1)
        a.send("first", dest=1)
        a.send("second", dest=1)
        assert b.recv(source=0) == "first"
        assert b.recv(source=0) == "second"
        b.send(42, dest=0)
        assert a.recv(source=1) == 42

    def test_recv_timeout(self):
        from repro.parallel.comm import _Context, ThreadComm

        ctx = _Context(2)
        b = ThreadComm(ctx, 1)
        with pytest.raises(TimeoutError):
            b.recv(source=0, timeout=0.01)

    def test_bad_destination_rejected(self):
        from repro.parallel.comm import _Context, ThreadComm

        ctx = _Context(2)
        a = ThreadComm(ctx, 0)
        with pytest.raises(ValueError):
            a.send("x", dest=2)


class TestConfigValidation:
    def test_n_nodes_floor(self):
        with pytest.raises(ValueError, match="n_nodes"):
            ParallelConfig(n_nodes=0)

    def test_node_backend_choices(self):
        with pytest.raises(ValueError, match="node_backend"):
            ParallelConfig(node_backend="carrier-pigeon")
        for backend in ("socket", "thread"):
            assert ParallelConfig(node_backend=backend).node_backend == backend

    def test_executor_validates_too(self, tiny_matrix):
        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        config = LearnerConfig(max_sampling_steps=3)
        with pytest.raises(ValueError):
            ShardedExecutor(
                tiny_matrix.values, parents, config, 0, n_nodes=0
            )
        with pytest.raises(ValueError):
            ShardedExecutor(
                tiny_matrix.values, parents, config, 0,
                n_nodes=2, node_backend="smoke-signals",
            )


class TestShardedIdentityThread:
    """Thread-transport identity: fast enough for every-PR runs."""

    @pytest.mark.parametrize("rng_backend", ["philox", "mrg"])
    @pytest.mark.parametrize("n_nodes", [2, 4])
    def test_learn_bit_identical(self, tiny_matrix, n_nodes, rng_backend):
        reference = LemonTreeLearner(
            _sequential_config(rng_backend)
        ).learn(tiny_matrix, seed=7)
        sharded = LemonTreeLearner(
            _sharded_config(n_nodes, "thread", rng_backend=rng_backend)
        ).learn(tiny_matrix, seed=7)
        assert network_fingerprint(sharded.network) == network_fingerprint(
            reference.network
        )

    def test_learner_reports_shard_stats(self, tiny_matrix):
        result = LemonTreeLearner(
            _sharded_config(2, "thread")
        ).learn(tiny_matrix, seed=7)
        executor_stats = result.stats["executor"]
        assert executor_stats["n_workers"] == 2
        assert executor_stats["pools_constructed"] == 2
        assert executor_stats["matrix_transfers"] == 2

    def test_trace_records_node_tier(self, tiny_matrix):
        trace = WorkTrace()
        LemonTreeLearner(_sharded_config(2, "thread")).learn(
            tiny_matrix, seed=7, trace=trace
        )
        assert set(trace.node_times) == {"shard0", "shard1"}
        assert all(v >= 0 for v in trace.node_times.values())
        assert sum(trace.node_transfer_bytes.values()) > 0
        assert trace.calibration is not None
        assert trace.calibration["tau"] >= 0.0
        assert trace.calibration["mu"] >= 0.0
        assert trace.topology["shard_nodes"] == 2

    def test_checkpoint_resume_through_tier(self, tiny_matrix, tmp_path):
        config = _sharded_config(2, "thread")
        learner = LemonTreeLearner(config)
        first = learner.sample_clusterings(
            tiny_matrix, seed=3, checkpoint_dir=tmp_path
        )
        stamps = {
            f.name: f.stat().st_mtime_ns for f in tmp_path.glob("ganesh_*.npz")
        }
        assert len(stamps) == config.n_ganesh_runs
        second = learner.sample_clusterings(
            tiny_matrix, seed=3, checkpoint_dir=tmp_path
        )
        for got, want in zip(second, first):
            np.testing.assert_array_equal(got, want)
        for f in tmp_path.glob("ganesh_*.npz"):
            assert f.stat().st_mtime_ns == stamps[f.name]

    def test_calibration_restored_after_close(self, tiny_matrix):
        from repro.parallel.costmodel import calibrated_model

        before = calibrated_model()
        LemonTreeLearner(_sharded_config(2, "thread")).learn(
            tiny_matrix, seed=7
        )
        assert calibrated_model() is before


class TestShardedIdentitySocket:
    """Socket-transport identity: real OS node processes, one cell per
    PR (the full grid runs in the slow/CI shard job)."""

    def test_learn_bit_identical_two_nodes(self, tiny_matrix):
        reference = LemonTreeLearner(_sequential_config()).learn(
            tiny_matrix, seed=7
        )
        sharded = LemonTreeLearner(_sharded_config(2, "socket")).learn(
            tiny_matrix, seed=7
        )
        assert network_fingerprint(sharded.network) == network_fingerprint(
            reference.network
        )

    def test_node_pids_are_real_processes(self, tiny_matrix):
        import os

        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        config = LearnerConfig(n_ganesh_runs=2, max_sampling_steps=3)
        with ShardedExecutor(
            tiny_matrix.values, parents, config, 1,
            n_nodes=2, node_backend="socket", n_workers=1,
        ) as executor:
            executor.start()
            assert len(set(executor.node_pids)) == 2
            assert os.getpid() not in executor.node_pids
            assert executor.calibration is not None
            assert executor.calibration["node_backend"] == "socket"


@pytest.mark.slow
class TestShardedAcceptanceGrid:
    """The issue's acceptance grid: node counts {1, 2, 4} x worker counts
    x RNG backends, socket and thread transports, all bit-identical."""

    @pytest.mark.parametrize("node_backend", ["thread", "socket"])
    @pytest.mark.parametrize("rng_backend", ["philox", "mrg"])
    def test_full_grid(self, tiny_matrix, node_backend, rng_backend):
        reference = network_fingerprint(
            LemonTreeLearner(_sequential_config(rng_backend))
            .learn(tiny_matrix, seed=11)
            .network
        )
        for n_nodes in (1, 2, 4):
            for n_workers in (1, 2):
                if n_nodes == 1 and n_workers == 1:
                    continue  # that cell *is* the reference
                config = _sharded_config(
                    n_nodes, node_backend,
                    n_workers=n_workers, rng_backend=rng_backend,
                )
                got = network_fingerprint(
                    LemonTreeLearner(config).learn(tiny_matrix, seed=11).network
                )
                assert got == reference, (
                    f"diverged at n_nodes={n_nodes} x w={n_workers} "
                    f"({node_backend}/{rng_backend})"
                )


class TestValidationGridNodeAxis:
    def test_node_counts_extend_grid(self):
        from repro.validation.runner import backend_grid

        base = backend_grid(smoke=True)
        extended = backend_grid(smoke=True, node_counts=(1, 2))
        shard_cells = [c for c in extended if c.n_nodes > 1]
        # n=1 differentiates nothing; only n=2 joins, once per RNG backend.
        assert len(extended) == len(base) + 2
        assert {c.n_nodes for c in shard_cells} == {2}
        assert {c.rng_backend for c in shard_cells} == {"philox", "mrg"}
        assert all(c.node_backend == "socket" for c in shard_cells)

    def test_combo_label_names_shard_tier(self):
        from repro.validation.report import ComboResult

        cell = ComboResult(1, "numpy", "mrg", n_nodes=2, node_backend="thread")
        assert cell.label == "n=2(thread)/w=1/numpy/mrg"


class TestCliNodeFlags:
    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["learn", "--preset", "yeast"])
        assert args.nodes == 1
        assert args.node_backend == "socket"

    def test_learn_accepts_nodes(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["learn", "--preset", "yeast", "--nodes", "2",
             "--node-backend", "thread"]
        )
        assert args.nodes == 2
        assert args.node_backend == "thread"

    def test_validate_accepts_node_axis(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["validate", "--smoke", "--nodes", "1", "2"]
        )
        assert args.nodes == [1, 2]

    def test_rejects_unknown_backend(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["learn", "--preset", "yeast", "--node-backend", "bogus"]
            )
