"""Tests for the SPMD parallel learner (Algorithms 1-6)."""

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.parallel.engine import ParallelLearner


class TestConsistency:
    """The paper's core property (Section 3): the parallel learner yields
    exactly the sequential network for every processor count."""

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_identical_to_sequential(self, tiny_matrix, fast_config, p):
        sequential = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=5)
        parallel = ParallelLearner(fast_config).learn(tiny_matrix, seed=5, p=p)
        assert parallel.network == sequential.network

    def test_identical_across_seeds(self, tiny_matrix, fast_config):
        for seed in (1, 2, 9):
            sequential = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=seed)
            parallel = ParallelLearner(fast_config).learn(tiny_matrix, seed=seed, p=3)
            assert parallel.network == sequential.network

    def test_mrg_backend(self, tiny_matrix):
        config = LearnerConfig(max_sampling_steps=3, rng_backend="mrg")
        sequential = LemonTreeLearner(config).learn(tiny_matrix, seed=2)
        parallel = ParallelLearner(config).learn(tiny_matrix, seed=2, p=2)
        assert parallel.network == sequential.network

    def test_multi_ganesh_runs_grouped(self, tiny_matrix):
        """G=3 runs on p=3: each group of one rank handles one run
        (Section 3.2.1) and the result still matches sequential."""
        config = LearnerConfig(n_ganesh_runs=3, max_sampling_steps=3)
        sequential = LemonTreeLearner(config).learn(tiny_matrix, seed=4)
        parallel = ParallelLearner(config).learn(tiny_matrix, seed=4, p=3)
        assert parallel.network == sequential.network

    def test_multi_ganesh_runs_more_ranks_than_runs(self, tiny_matrix):
        config = LearnerConfig(n_ganesh_runs=2, max_sampling_steps=3)
        sequential = LemonTreeLearner(config).learn(tiny_matrix, seed=6)
        parallel = ParallelLearner(config).learn(tiny_matrix, seed=6, p=4)
        assert parallel.network == sequential.network

    def test_candidate_parent_subset(self, tiny_matrix):
        config = LearnerConfig(
            max_sampling_steps=3, candidate_parents=tuple(range(8))
        )
        sequential = LemonTreeLearner(config).learn(tiny_matrix, seed=3)
        parallel = ParallelLearner(config).learn(tiny_matrix, seed=3, p=2)
        assert parallel.network == sequential.network
        for module in parallel.network.modules:
            assert all(parent < 8 for parent in module.weighted_parents)


class TestWorkAccounting:
    def test_work_recorded_per_rank(self, tiny_matrix, fast_config):
        result = ParallelLearner(fast_config).learn(tiny_matrix, seed=1, p=3)
        assert result.work_per_rank.shape == (3,)
        assert (result.work_per_rank > 0).all()

    def test_total_work_independent_of_p(self, tiny_matrix, fast_config):
        """Same computation, different partition: the unit totals agree."""
        totals = [
            ParallelLearner(fast_config)
            .learn(tiny_matrix, seed=1, p=p)
            .work_per_rank.sum()
            for p in (1, 2, 4)
        ]
        assert totals[0] == pytest.approx(totals[1], rel=1e-9)
        assert totals[0] == pytest.approx(totals[2], rel=1e-9)

    def test_work_roughly_balanced(self, small_matrix, fast_config):
        result = ParallelLearner(fast_config).learn(small_matrix, seed=2, p=4)
        work = result.work_per_rank
        assert work.max() < 2.5 * work.mean()


class TestLearnWithComm:
    def test_serial_comm_path(self, tiny_matrix, fast_config):
        from repro.parallel.comm import SerialComm

        learner = ParallelLearner(fast_config)
        network, units = learner.learn_with_comm(SerialComm(), tiny_matrix, seed=7)
        sequential = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=7)
        assert network == sequential.network
        assert units > 0
