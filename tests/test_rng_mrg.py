"""Tests for the multiple recursive generator backend."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.mrg import MODULUS, MRGStream, _mat_pow, _TRANSITION


class TestModulus:
    def test_sophie_germain(self):
        """Both M and 2M+1 must be prime (the paper's TRNG mrg3s family)."""

        def is_prime(n: int) -> bool:
            if n < 2:
                return False
            for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
                if n % p == 0:
                    return n == p
            d, r = n - 1, 0
            while d % 2 == 0:
                d //= 2
                r += 1
            for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
                x = pow(a, d, n)
                if x in (1, n - 1):
                    continue
                for _ in range(r - 1):
                    x = x * x % n
                    if x == n - 1:
                        break
                else:
                    return False
            return True

        assert is_prime(MODULUS)
        assert is_prime(2 * MODULUS + 1)


class TestMatrixPower:
    def test_identity(self):
        assert _mat_pow(_TRANSITION, 0, MODULUS) == [
            [1, 0, 0],
            [0, 1, 0],
            [0, 0, 1],
        ]

    def test_power_one(self):
        assert _mat_pow(_TRANSITION, 1, MODULUS) == _TRANSITION

    @given(st.integers(0, 10000))
    @settings(max_examples=25, deadline=None)
    def test_power_additivity(self, k):
        from repro.rng.mrg import _mat_mul

        a = _mat_pow(_TRANSITION, k, MODULUS)
        b = _mat_pow(_TRANSITION, k + 3, MODULUS)
        assert _mat_mul(a, _mat_pow(_TRANSITION, 3, MODULUS), MODULUS) == b


class TestMRGStream:
    def test_uniform_range(self):
        draws = MRGStream(1).next_uniforms(2000)
        assert (draws >= 0).all() and (draws < 1).all()
        assert abs(draws.mean() - 0.5) < 0.05

    def test_deterministic(self):
        a = MRGStream(3, "p").next_uniforms(32)
        b = MRGStream(3, "p").next_uniforms(32)
        np.testing.assert_array_equal(a, b)

    @given(start=st.integers(0, 300), count=st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_jump_ahead_matches_sequential(self, start, count):
        """O(log k) matrix jump must land exactly where stepping would."""
        reference = MRGStream(17, "j").next_uniforms(start + count)
        block = MRGStream(17, "j").block(start, count)
        np.testing.assert_array_equal(block, reference[start : start + count])

    def test_jump_to(self):
        stream = MRGStream(5)
        ref = stream.block(0, 10)
        stream.jump_to(4)
        assert stream.next_uniform() == ref[4]
        assert stream.offset == 5

    def test_split_independence(self):
        a = MRGStream(1).split(0).next_uniforms(50)
        b = MRGStream(1).split(1).next_uniforms(50)
        assert not np.allclose(a, b)

    def test_clone(self):
        stream = MRGStream(9)
        stream.next_uniforms(13)
        clone = stream.clone()
        np.testing.assert_array_equal(clone.next_uniforms(7), stream.next_uniforms(7))

    def test_no_obvious_serial_correlation(self):
        draws = MRGStream(2).next_uniforms(5000)
        corr = np.corrcoef(draws[:-1], draws[1:])[0, 1]
        assert abs(corr) < 0.05

    def test_backend_interface_matches_philox(self):
        """MRG and Philox expose the same stream interface."""
        from repro.rng.philox import PhiloxStream

        for attr in ("next_uniform", "next_uniforms", "block", "split", "clone", "jump_to"):
            assert hasattr(MRGStream(1), attr)
            assert hasattr(PhiloxStream(1), attr)
