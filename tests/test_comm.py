"""Tests for the thread-based message-passing communicator."""

import numpy as np
import pytest

from repro.parallel.comm import SerialComm, SpmdFailure, run_spmd


class TestRunSpmd:
    def test_returns_rank_order(self):
        results = run_spmd(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_single_rank_uses_serial_comm(self):
        results = run_spmd(1, lambda comm: type(comm).__name__)
        assert results == ["SerialComm"]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(SpmdFailure) as err:
            run_spmd(4, fn)
        assert any(rank == 2 for rank, _ in err.value.errors)

    def test_passes_args(self):
        results = run_spmd(2, lambda comm, x, y=0: x + y + comm.rank, 5, y=7)
        assert results == [12, 13]


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            value = f"from-{comm.rank}" if comm.rank == 1 else None
            return comm.bcast(value, root=1)

        assert run_spmd(3, fn) == ["from-1"] * 3

    def test_allgather(self):
        results = run_spmd(4, lambda comm: comm.allgather(comm.rank**2))
        assert all(r == [0, 1, 4, 9] for r in results)

    def test_gather_root_only(self):
        def fn(comm):
            return comm.gather(comm.rank, root=2)

        results = run_spmd(3, fn)
        assert results[2] == [0, 1, 2]
        assert results[0] is None and results[1] is None

    def test_allreduce_sum(self):
        results = run_spmd(4, lambda comm: comm.allreduce(comm.rank + 1))
        assert all(r == 10 for r in results)

    def test_allreduce_custom_op(self):
        results = run_spmd(4, lambda comm: comm.allreduce(comm.rank, op=max))
        assert all(r == 3 for r in results)

    def test_allreduce_arrays(self):
        def fn(comm):
            return comm.allreduce(np.full(3, comm.rank, dtype=float))

        for result in run_spmd(3, fn):
            np.testing.assert_array_equal(result, [3.0, 3.0, 3.0])

    def test_exscan(self):
        results = run_spmd(4, lambda comm: comm.exscan(comm.rank + 1))
        assert results == [0, 1, 3, 6]

    def test_maxloc_lowest_rank_wins_ties(self):
        def fn(comm):
            value = 5.0 if comm.rank in (1, 3) else 0.0
            return comm.allreduce_max_with_index(value, payload=f"p{comm.rank}")

        for value, rank, payload in run_spmd(4, fn):
            assert (value, rank, payload) == (5.0, 1, "p1")

    def test_allgather_concat(self):
        def fn(comm):
            return comm.allgather_concat(np.arange(comm.rank + 1, dtype=float))

        for result in run_spmd(3, fn):
            np.testing.assert_array_equal(result, [0, 0, 1, 0, 1, 2])

    def test_repeated_collectives_do_not_interfere(self):
        def fn(comm):
            out = []
            for i in range(10):
                out.append(comm.allreduce(comm.rank + i))
            return out

        results = run_spmd(3, fn)
        expected = [sum(r + i for r in range(3)) for i in range(10)]
        assert all(r == expected for r in results)


class TestSplit:
    def test_split_groups(self):
        def fn(comm):
            color = comm.rank // 2
            sub = comm.split(color)
            return (color, sub.rank, sub.size, sub.allreduce(comm.rank))

        results = run_spmd(4, fn)
        assert results[0] == (0, 0, 2, 1)
        assert results[1] == (0, 1, 2, 1)
        assert results[2] == (1, 0, 2, 5)
        assert results[3] == (1, 1, 2, 5)

    def test_split_twice(self):
        def fn(comm):
            a = comm.split(comm.rank % 2)
            b = comm.split(comm.rank // 2)
            return (a.size, b.size)

        assert run_spmd(4, fn) == [(2, 2)] * 4


class TestSerialComm:
    def test_identities(self):
        comm = SerialComm()
        assert comm.bcast(42) == 42
        assert comm.allgather("x") == ["x"]
        assert comm.allreduce(5) == 5
        assert comm.exscan(3) == 0
        assert comm.exscan(3.5) == 0.0
        np.testing.assert_array_equal(comm.exscan(np.ones(2)), [0, 0])
        assert comm.allreduce_max_with_index(1.0, "pl") == (1.0, 0, "pl")
        np.testing.assert_array_equal(comm.allgather_concat(np.arange(3)), [0, 1, 2])
        assert comm.split("any").size == 1
