"""Tests for the lazy-margin split-scoring kernel.

The kernel's contract has three legs:

* **bit identity** — chain and grid-best scores from the kernel equal the
  dense materialized-margins path exactly, including duplicate-value nodes
  and partitioned sub-ranges (the pool/SPMD ``item_indices`` path);
* **memory** — scoring never materializes more than O(P * n_obs) at once,
  proven by scoring a node whose dense margins matrix would blow a hard
  allocation cap;
* **dedup accounting** — duplicate candidate values share one cached score
  table but still consume their own private uniforms, so RNG-lockstep draw
  accounting is untouched.
"""

import numpy as np
import pytest

from repro.rng.streams import make_stream
from repro.scoring.kernel import (
    AllocationCapExceeded,
    LazySplitKernel,
    allocation_cap,
    split_kernel_from_arrays,
)
from repro.scoring.split_score import SplitScorer
from repro.trees.splits import margins_from_arrays


def _uniform_block(n_items, dpi, seed=0):
    return make_stream(seed, "u").block(0, n_items * dpi).reshape(n_items, dpi)


def _node_arrays(seed, n_vars=20, n_obs=14, n_parents=5, duplicates=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_vars, n_obs))
    if duplicates:
        # Quantize hard so many candidate split values collide per parent.
        data = np.round(data)
    obs = np.arange(n_obs, dtype=np.int64)
    left_obs = rng.choice(obs, size=n_obs // 2, replace=False)
    parents = rng.choice(n_vars, size=n_parents, replace=False).astype(np.int64)
    return data, obs, left_obs, parents


class TestKernelConstruction:
    def test_groups_cover_all_items(self):
        data, obs, left_obs, parents = _node_arrays(0)
        kernel = split_kernel_from_arrays(data, obs, left_obs, parents, (1.0, 2.0))
        assert kernel.n_items == parents.size * obs.size
        assert kernel.item_groups.shape == (kernel.n_items,)
        assert kernel.n_groups <= kernel.n_items
        assert (kernel.item_groups >= 0).all()
        assert (kernel.item_groups < kernel.n_groups).all()

    def test_duplicates_collapse_groups(self):
        data, obs, left_obs, parents = _node_arrays(1, duplicates=True)
        kernel = split_kernel_from_arrays(data, obs, left_obs, parents, (1.0, 2.0))
        assert kernel.n_groups < kernel.n_items

    def test_group_maps_to_own_value(self):
        data, obs, left_obs, parents = _node_arrays(2, duplicates=True)
        kernel = split_kernel_from_arrays(data, obs, left_obs, parents, (1.0,))
        values = data[parents][:, obs]
        for item in range(kernel.n_items):
            g = kernel.item_groups[item]
            assert kernel.group_row[g] == item // obs.size
            assert kernel.group_value[g] == values[item // obs.size, item % obs.size]

    def test_mismatched_grid_rejected(self):
        data, obs, left_obs, parents = _node_arrays(3)
        scorer = SplitScorer(max_steps=2)
        kernel = split_kernel_from_arrays(data, obs, left_obs, parents, (1.0, 2.0))
        with pytest.raises(ValueError):
            scorer.score_batch_kernel(
                kernel, _uniform_block(kernel.n_items, scorer.draws_per_item)
            )


class TestBitIdentity:
    @pytest.mark.parametrize("duplicates", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_chain_matches_dense(self, seed, duplicates):
        data, obs, left_obs, parents = _node_arrays(seed, duplicates=duplicates)
        scorer = SplitScorer(max_steps=6, stop_repeats=2)
        margins = margins_from_arrays(data, obs, left_obs, parents)
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, scorer.beta_grid
        )
        uniforms = _uniform_block(margins.shape[0], scorer.draws_per_item, seed)
        dense = scorer.score_batch(margins, uniforms)
        lazy = scorer.score_batch_kernel(kernel, uniforms)
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("duplicates", [False, True])
    def test_grid_best_matches_dense(self, duplicates):
        data, obs, left_obs, parents = _node_arrays(7, duplicates=duplicates)
        scorer = SplitScorer(max_steps=3)
        margins = margins_from_arrays(data, obs, left_obs, parents)
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, scorer.beta_grid
        )
        dense = scorer.score_grid_best(margins)
        lazy = scorer.score_grid_best_kernel(kernel)
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)

    def test_subrange_item_indices(self):
        """The partitioned backends score [row0, row1) slices against a
        kernel built on a parent sub-slice — exactly this arithmetic."""
        data, obs, left_obs, parents = _node_arrays(11, n_parents=6)
        scorer = SplitScorer(max_steps=5, stop_repeats=2)
        n_obs = obs.size
        margins = margins_from_arrays(data, obs, left_obs, parents)
        n_items = margins.shape[0]
        uniforms = _uniform_block(n_items, scorer.draws_per_item, 11)
        full = scorer.score_batch(margins, uniforms)

        for row0, row1 in [(0, n_items), (3, 17), (n_obs, 3 * n_obs), (5, 6)]:
            l0, l1 = row0 // n_obs, (row1 - 1) // n_obs + 1
            kernel = split_kernel_from_arrays(
                data, obs, left_obs, parents[l0:l1], scorer.beta_grid
            )
            items = np.arange(row0 - l0 * n_obs, row1 - l0 * n_obs)
            part = scorer.score_batch_kernel(
                kernel, uniforms[row0:row1], item_indices=items
            )
            for got, want in zip(part, full):
                np.testing.assert_array_equal(got, want[row0:row1])

    def test_chain_then_grid_best_share_cache(self):
        """score_grid_best_kernel on a chain-warmed kernel reuses cached
        entries and still matches the dense exhaustive search."""
        data, obs, left_obs, parents = _node_arrays(13)
        scorer = SplitScorer(max_steps=6, stop_repeats=2)
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, scorer.beta_grid
        )
        uniforms = _uniform_block(kernel.n_items, scorer.draws_per_item, 13)
        scorer.score_batch_kernel(kernel, uniforms)
        evals_after_chain = kernel.evaluations
        dense = scorer.score_grid_best(margins_from_arrays(data, obs, left_obs, parents))
        lazy = scorer.score_grid_best_kernel(kernel)
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)
        # The exhaustive pass only filled in pairs the chain never visited.
        assert kernel.evaluations <= kernel.n_groups * scorer.beta_grid.size
        assert kernel.evaluations > evals_after_chain


class TestDedupAccounting:
    def test_duplicates_share_evaluations_not_draws(self):
        """Duplicate values are scored once per beta, but every item keeps
        consuming its own private uniforms — identical results to dense."""
        data, obs, left_obs, parents = _node_arrays(17, duplicates=True)
        scorer = SplitScorer(max_steps=8, stop_repeats=3)
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, scorer.beta_grid
        )
        assert kernel.n_groups < kernel.n_items
        uniforms = _uniform_block(kernel.n_items, scorer.draws_per_item, 17)
        lazy = scorer.score_batch_kernel(kernel, uniforms)
        # Two items with equal (parent, value) can still walk different
        # chains (different uniforms): steps may differ even though their
        # score tables are shared.
        assert kernel.evaluations <= kernel.n_groups * scorer.beta_grid.size
        dense = scorer.score_batch(
            margins_from_arrays(data, obs, left_obs, parents), uniforms
        )
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)


class TestMemoryContract:
    def test_dense_margins_blocked_kernel_succeeds(self):
        """Acceptance criterion: score a node whose dense margins matrix
        would exceed a hard allocator cap — the kernel must finish under a
        cap of a few times P * n_obs while the dense path raises."""
        data, obs, left_obs, parents = _node_arrays(23, n_vars=40, n_obs=30, n_parents=10)
        scorer = SplitScorer(max_steps=4, stop_repeats=2)
        n_items = parents.size * obs.size  # 300 candidates
        # Dense margins need n_items * n_obs = 9000 elements.  The kernel's
        # largest guarded allocation is its (n_groups, n_beta) score cache —
        # still linear in P * n_obs — so a cap just above it proves laziness.
        cap = n_items * scorer.beta_grid.size + 4 * n_items
        assert cap < n_items * obs.size
        uniforms = _uniform_block(n_items, scorer.draws_per_item, 23)
        with allocation_cap(cap):
            with pytest.raises(AllocationCapExceeded):
                margins_from_arrays(data, obs, left_obs, parents)
            kernel = split_kernel_from_arrays(
                data, obs, left_obs, parents, scorer.beta_grid
            )
            lazy = scorer.score_batch_kernel(kernel, uniforms)
            assert kernel.peak_chunk_elements <= cap
        dense = scorer.score_batch(
            margins_from_arrays(data, obs, left_obs, parents), uniforms
        )
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)

    def test_cap_restored_on_exit(self):
        with allocation_cap(10):
            with pytest.raises(AllocationCapExceeded):
                LazySplitKernel(np.zeros((4, 4)), np.ones(4), (1.0, 2.0))
        # No cap outside the context manager.
        LazySplitKernel(np.zeros((4, 4)), np.ones(4), (1.0, 2.0))

    def test_chunking_bounds_temporaries(self):
        data, obs, left_obs, parents = _node_arrays(29, n_obs=16, n_parents=8)
        scorer = SplitScorer(max_steps=3)
        kernel = split_kernel_from_arrays(
            data, obs, left_obs, parents, scorer.beta_grid,
            max_chunk_elements=5 * obs.size,
        )
        uniforms = _uniform_block(kernel.n_items, scorer.draws_per_item, 29)
        lazy = scorer.score_batch_kernel(kernel, uniforms)
        assert kernel.peak_chunk_elements <= 5 * obs.size
        dense = scorer.score_batch(
            margins_from_arrays(data, obs, left_obs, parents), uniforms
        )
        for got, want in zip(lazy, dense):
            np.testing.assert_array_equal(got, want)
