"""Tests for the normal-gamma marginal likelihood."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.normal_gamma import (
    DEFAULT_PRIOR,
    NormalGammaPrior,
    log_marginal,
    log_marginal_scalar,
)


def _stats(values):
    v = np.asarray(values, dtype=np.float64)
    return float(v.size), float(v.sum()), float((v * v).sum())


def _predictive_logml(values, prior=DEFAULT_PRIOR):
    """Chain-rule reference: log p(x_1..n) = sum_i log p(x_i | x_<i) with
    the student-t posterior predictive of the normal-gamma model."""
    mu, lam, alpha, beta = prior.mu0, prior.lambda0, prior.alpha0, prior.beta0
    total = 0.0
    for x in values:
        nu = 2.0 * alpha
        scale_sq = beta * (lam + 1.0) / (alpha * lam)
        z = (x - mu) / math.sqrt(scale_sq)
        total += (
            math.lgamma((nu + 1) / 2)
            - math.lgamma(nu / 2)
            - 0.5 * math.log(nu * math.pi * scale_sq)
            - (nu + 1) / 2 * math.log1p(z * z / nu)
        )
        # posterior update
        mu_new = (lam * mu + x) / (lam + 1)
        beta = beta + lam * (x - mu) ** 2 / (2 * (lam + 1))
        mu = mu_new
        lam += 1.0
        alpha += 0.5
    return total


class TestPriorValidation:
    def test_defaults_valid(self):
        NormalGammaPrior()

    @pytest.mark.parametrize("field", ["lambda0", "alpha0", "beta0"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            NormalGammaPrior(**{field: 0.0})
        with pytest.raises(ValueError):
            NormalGammaPrior(**{field: -1.0})

    def test_cached_logs(self):
        prior = NormalGammaPrior(lambda0=2.0, beta0=3.0, alpha0=1.5)
        assert prior.log_lambda0 == pytest.approx(math.log(2.0))
        assert prior.log_beta0 == pytest.approx(math.log(3.0))
        assert prior.lgamma_alpha0 == pytest.approx(math.lgamma(1.5))


class TestLogMarginal:
    def test_empty_block_scores_zero(self):
        assert log_marginal(0.0, 0.0, 0.0) == 0.0

    def test_matches_predictive_chain_rule(self):
        """The closed form must equal the sequential predictive product —
        a full derivation check of the marginal likelihood."""
        rng = np.random.default_rng(0)
        for size in (1, 2, 5, 20):
            values = rng.normal(0.3, 1.2, size=size)
            closed = log_marginal(*_stats(values))
            chain = _predictive_logml(values)
            assert closed == pytest.approx(chain, rel=1e-10, abs=1e-10)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(1)
        counts, totals, sumsqs = [], [], []
        expected = []
        for size in (1, 3, 8, 30):
            values = rng.normal(size=size)
            c, t, q = _stats(values)
            counts.append(c)
            totals.append(t)
            sumsqs.append(q)
            expected.append(log_marginal_scalar(c, t, q))
        out = log_marginal(np.array(counts), np.array(totals), np.array(sumsqs))
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_scalar_returns_float(self):
        assert isinstance(log_marginal(3.0, 1.0, 2.0), float)

    def test_tight_data_beats_spread_data(self):
        tight = log_marginal(*_stats([1.0, 1.01, 0.99, 1.0]))
        spread = log_marginal(*_stats([5.0, -5.0, 3.0, -3.0]))
        assert tight > spread

    def test_permutation_invariance(self):
        values = [0.5, -1.2, 3.3, 0.0, 2.1]
        a = log_marginal(*_stats(values))
        b = log_marginal(*_stats(values[::-1]))
        assert a == pytest.approx(b, rel=1e-14)

    @given(
        st.lists(st.floats(-5, 5), min_size=1, max_size=30),
        st.lists(st.floats(-5, 5), min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_chain_decomposition_property(self, xs, ys):
        """log p(x ++ y) = log p(x) + log p(y | x): joint >= product of
        independent marginals is NOT guaranteed, but the closed form must be
        internally consistent under concatenation via the predictive."""
        joint = log_marginal(*_stats(xs + ys))
        via_chain = _predictive_logml(xs + ys)
        assert joint == pytest.approx(via_chain, rel=1e-8, abs=1e-8)

    def test_cancellation_guard(self):
        """Huge offsets make sum-of-squares cancellation severe; the clip
        must keep the result finite."""
        values = np.full(10, 1e8) + np.random.default_rng(3).normal(0, 1e-4, 10)
        out = log_marginal(*_stats(values))
        assert np.isfinite(out)

    def test_scalar_empty(self):
        assert log_marginal_scalar(0, 0, 0) == 0.0
