"""Tests for the distributed sampling oracles and scans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.comm import run_spmd
from repro.parallel.costmodel import block_range
from repro.parallel.primitives import (
    segmented_scan,
    select_unif_rand,
    select_wtd_rand_gather,
    select_wtd_rand_scan,
)
from repro.rng.streams import GibbsRandom, make_stream


def _rng(seed=1):
    return GibbsRandom(make_stream(seed, "prim"))


class TestSelectUnifRand:
    def test_matches_sequential_randint(self):
        a = select_unif_rand(_rng(3), 17)
        assert a == _rng(3).randint(17)


class TestSelectWtdRandGather:
    """The gather oracle must agree with the sequential choice bit-for-bit
    for every block distribution — the engine's consistency lever."""

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_matches_sequential(self, p):
        scores = np.array([0.0, 0.7, -0.3, 0.2, 1.1, -2.0, 0.05])

        def fn(comm):
            lo, hi = block_range(scores.size, comm.size, comm.rank)
            return select_wtd_rand_gather(comm, _rng(11), scores[lo:hi])

        expected = _rng(11).weighted_choice_logs(scores)
        assert run_spmd(p, fn) == [expected] * p

    @given(seed=st.integers(0, 100), size=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_agreement_over_random_inputs(self, seed, size):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=size)

        def fn(comm):
            lo, hi = block_range(scores.size, comm.size, comm.rank)
            return select_wtd_rand_gather(comm, _rng(seed), scores[lo:hi])

        expected = _rng(seed).weighted_choice_logs(scores)
        assert run_spmd(3, fn) == [expected] * 3


class TestSelectWtdRandScan:
    """The partial-sum oracle (paper's O(|B|/p) formulation)."""

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_well_separated_weights_agree_with_gather(self, p):
        scores = np.array([-10.0, 5.0, -8.0, 0.0, -3.0])

        def fn(comm):
            lo, hi = block_range(scores.size, comm.size, comm.rank)
            return select_wtd_rand_scan(comm, _rng(7), scores[lo:hi])

        expected = _rng(7).weighted_choice_logs(scores)
        assert run_spmd(p, fn) == [expected] * p

    def test_all_impossible_falls_back_uniform(self):
        scores = np.full(6, -np.inf)

        def fn(comm):
            lo, hi = block_range(scores.size, comm.size, comm.rank)
            return select_wtd_rand_scan(comm, _rng(9), scores[lo:hi])

        results = run_spmd(2, fn)
        assert all(0 <= r < 6 for r in results)
        assert len(set(results)) == 1

    def test_consumes_one_replicated_uniform(self):
        """Statistical agreement with the sequential distribution."""
        scores = np.log(np.array([1.0, 3.0]))
        picks = []
        for seed in range(300):
            def fn(comm, s=seed):
                lo, hi = block_range(2, comm.size, comm.rank)
                return select_wtd_rand_scan(comm, _rng(s + 500), scores[lo:hi])

            picks.append(run_spmd(2, fn)[0])
        assert abs(np.mean(picks) - 0.75) < 0.07

    def test_empty_rank_blocks(self):
        scores = np.array([0.0, 1.0])

        def fn(comm):
            lo, hi = block_range(scores.size, comm.size, comm.rank)
            return select_wtd_rand_scan(comm, _rng(13), scores[lo:hi])

        results = run_spmd(5, fn)  # ranks 2-4 own nothing
        assert len(set(results)) == 1


class TestSegmentedScan:
    def test_basic(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        segments = np.array([0, 0, 1, 1, 1])
        np.testing.assert_allclose(
            segmented_scan(values, segments), [1, 3, 3, 7, 12]
        )

    def test_single_segment_is_cumsum(self):
        values = np.arange(6, dtype=float)
        out = segmented_scan(values, np.zeros(6, dtype=int))
        np.testing.assert_allclose(out, np.cumsum(values))

    def test_empty(self):
        out = segmented_scan(np.zeros(0), np.zeros(0, dtype=int))
        assert out.size == 0

    def test_rejects_decreasing_segments(self):
        with pytest.raises(ValueError):
            segmented_scan(np.ones(3), np.array([1, 0, 0]))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            segmented_scan(np.ones(3), np.zeros(2, dtype=int))

    @given(
        st.lists(st.floats(-10, 10), min_size=1, max_size=40),
        st.integers(1, 5),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_per_segment_cumsum(self, values, n_segments, seed):
        rng = np.random.default_rng(seed)
        vals = np.array(values)
        segments = np.sort(rng.integers(0, n_segments, size=vals.size))
        out = segmented_scan(vals, segments)
        for seg in np.unique(segments):
            mask = segments == seg
            np.testing.assert_allclose(out[mask], np.cumsum(vals[mask]), atol=1e-9)
