"""Tests for the GaneSH sweep drivers."""

import numpy as np
import pytest

from repro.ganesh.coclustering import (
    SweepHooks,
    merge_obs_sweep,
    merge_var_sweep,
    reassign_obs_sweep,
    reassign_var_sweep,
    run_ganesh,
    run_obs_only_ganesh,
)
from repro.ganesh.state import CoClusterState, ObsClustering, _compact
from repro.rng.streams import GibbsRandom, make_stream


def _rng(seed=1):
    return GibbsRandom(make_stream(seed, "sweeps"))


def _state(seed=0, n=15, m=10, k=4):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, m))
    labels = _compact(rng.integers(0, k, size=n))
    obs = [rng.integers(0, 2, size=m) for _ in range(int(labels.max()) + 1)]
    return CoClusterState(data, labels, obs), data


class TestSweeps:
    def test_reassign_var_preserves_invariants(self):
        state, _ = _state()
        reassign_var_sweep(state, _rng())
        state.check_invariants()

    def test_merge_var_preserves_invariants(self):
        state, _ = _state(seed=1)
        merge_var_sweep(state, _rng(2))
        state.check_invariants()

    def test_obs_sweeps_preserve_invariants(self):
        state, data = _state(seed=2)
        cluster = state.clusters[0]
        block = data[cluster.members]
        reassign_obs_sweep(cluster.obs, block, _rng(3))
        merge_obs_sweep(cluster.obs, _rng(4))
        cluster.obs.check_invariants(block)

    def test_sweep_determinism(self):
        outcomes = []
        for _ in range(2):
            state, _ = _state(seed=3)
            reassign_var_sweep(state, _rng(5))
            outcomes.append(state.var_labels.copy())
        np.testing.assert_array_equal(outcomes[0], outcomes[1])

    def test_hooks_record_every_iteration(self):
        state, _ = _state(seed=4)
        records = []
        hooks = SweepHooks(record=lambda phase, costs, nc: records.append((phase, len(costs))))
        reassign_var_sweep(state, _rng(6), hooks)
        assert len(records) == state.n_vars
        assert all(phase == "ganesh.var_reassign" for phase, _ in records)


class TestRunGanesh:
    def test_output_shape(self, tiny_matrix):
        result = run_ganesh(tiny_matrix.values, _rng(7))
        assert result.var_labels.shape == (tiny_matrix.n_vars,)
        assert result.n_iterations == 1
        result.state.check_invariants()

    def test_deterministic(self, tiny_matrix):
        a = run_ganesh(tiny_matrix.values, _rng(8)).var_labels
        b = run_ganesh(tiny_matrix.values, _rng(8)).var_labels
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_result(self, tiny_matrix):
        a = run_ganesh(tiny_matrix.values, _rng(9)).var_labels
        b = run_ganesh(tiny_matrix.values, _rng(10)).var_labels
        assert not np.array_equal(a, b)

    def test_respects_init_cluster_count(self, tiny_matrix):
        result = run_ganesh(tiny_matrix.values, _rng(11), init_var_clusters=2)
        # After one update step cluster count may change but must be valid.
        assert 1 <= result.state.n_clusters <= tiny_matrix.n_vars

    def test_multiple_update_steps(self, tiny_matrix):
        result = run_ganesh(tiny_matrix.values, _rng(12), n_update_steps=2)
        assert result.n_iterations == 2
        result.state.check_invariants()

    def test_update_improves_score_on_average(self):
        """Gibbs moves are score-weighted, so across seeds the final score
        should beat the random initialization clearly more often than not."""
        wins = 0
        for seed in range(6):
            rng = np.random.default_rng(seed)
            data = rng.normal(size=(20, 12))
            data[:10] += 3.0  # two obvious groups
            init_rng = _rng(seed + 100)
            labels = _compact(init_rng.random_labels(20, 10))
            obs = [
                init_rng.random_labels(12, 3)
                for _ in range(int(labels.max()) + 1)
            ]
            state = CoClusterState(data, labels, obs)
            before = state.score()
            reassign_var_sweep(state, init_rng)
            merge_var_sweep(state, init_rng)
            if state.score() > before:
                wins += 1
        assert wins >= 4


class TestObsOnlyGanesh:
    def test_single_sample_default(self, tiny_matrix):
        block = tiny_matrix.values[:5]
        samples = run_obs_only_ganesh(block, _rng(13))
        assert len(samples) == 1
        assert samples[0].shape == (tiny_matrix.n_obs,)

    def test_burn_in_discards_early_samples(self, tiny_matrix):
        block = tiny_matrix.values[:5]
        samples = run_obs_only_ganesh(block, _rng(14), n_update_steps=4, burn_in=2)
        assert len(samples) == 2

    def test_full_burn_in_still_yields_one_sample(self, tiny_matrix):
        block = tiny_matrix.values[:5]
        samples = run_obs_only_ganesh(block, _rng(15), n_update_steps=3, burn_in=3)
        assert len(samples) == 1

    def test_labels_are_compact(self, tiny_matrix):
        block = tiny_matrix.values[:6]
        (labels,) = run_obs_only_ganesh(block, _rng(16))
        n_clusters = labels.max() + 1
        assert set(labels.tolist()) == set(range(n_clusters))

    def test_single_row_block(self, tiny_matrix):
        (labels,) = run_obs_only_ganesh(tiny_matrix.values[3], _rng(17))
        assert labels.shape == (tiny_matrix.n_obs,)
