"""Tests for the network report generator."""

import pytest

from repro.analysis.report import network_report, parent_score_summary
from repro.core.learner import LemonTreeLearner
from repro.datatypes import Module, ModuleNetwork


@pytest.fixture(scope="module")
def learned_network(request):
    from repro.core.config import LearnerConfig
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
    return LemonTreeLearner(LearnerConfig(max_sampling_steps=5)).learn(
        matrix, seed=1
    ).network


class TestNetworkReport:
    def test_contains_headline_stats(self, learned_network):
        report = network_report(learned_network)
        assert f"{learned_network.n_vars} variables" in report
        assert f"{learned_network.n_modules} modules" in report
        assert "module graph:" in report

    def test_lists_every_module(self, learned_network):
        report = network_report(learned_network)
        for module in learned_network.modules:
            assert f"M{module.module_id} ({module.size} variables)" in report

    def test_respects_top_regulators(self, learned_network):
        short = network_report(learned_network, top_regulators=1)
        long = network_report(learned_network, top_regulators=10)
        assert len(long) >= len(short)

    def test_tree_shapes_reported(self, learned_network):
        report = network_report(learned_network)
        assert "leaves" in report and "depth" in report

    def test_handles_network_without_parents(self):
        network = ModuleNetwork(
            [Module(module_id=0, members=[0, 1])], ["a", "b"], n_obs=4
        )
        report = network_report(network)
        assert "(none retained)" in report
        assert "(acyclic)" in report


class TestParentScoreSummary:
    def test_summary_fields(self, learned_network):
        summary = parent_score_summary(learned_network)
        assert summary["n_weighted_parents"] >= 0
        if summary["n_weighted_parents"]:
            assert 0.0 <= summary["weighted_mean"] <= 1.0

    def test_empty_network(self):
        network = ModuleNetwork([Module(module_id=0, members=[0])], ["a"], n_obs=2)
        summary = parent_score_summary(network)
        assert summary["n_weighted_parents"] == 0.0
