"""Tests for the persistent shared-memory executor (Task 3).

The central contracts:

* pooled module-level and split-level runs produce networks bit-identical
  to the sequential learner for every worker count and schedule;
* resuming from a partially written checkpoint directory reproduces the
  uninterrupted network, with workers writing their own checkpoints;
* the expression matrix is transferred to workers exactly once per
  ``learn_from_modules`` call (instrumented initializer) and no ``mp.Pool``
  is constructed more than once per call.
"""

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.datatypes import ModuleNetwork
from repro.parallel import pool as pool_mod
from repro.parallel import poolutil
from repro.parallel.executor import (
    ModuleExecutor,
    TaskPoolExecutor,
    choose_mode,
    estimate_module_cost,
    learn_modules_percall_pool,
    tree_phase,
)
from repro.parallel.trace import WorkTrace


@pytest.fixture(scope="module")
def setup():
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
    config = LearnerConfig(max_sampling_steps=5)
    learner = LemonTreeLearner(config)
    members = learner.consensus(learner.sample_clusterings(matrix, seed=5))
    reference = learner.learn_from_modules(matrix, members, seed=5).network
    return matrix, config, members, reference


def _parents(matrix, config):
    return np.asarray(config.resolve_candidate_parents(matrix.n_vars), np.int64)


class TestEquivalence:
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["module", "split"])
    def test_network_bit_identical(self, setup, mode, n_workers, schedule):
        matrix, config, members, reference = setup
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=n_workers, mode=mode, schedule=schedule
            )
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5
        ).network
        assert net == reference

    def test_auto_mode_bit_identical(self, setup):
        matrix, config, members, reference = setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="auto"))
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5
        ).network
        assert net == reference

    def test_spawn_context_pool_matches(self, setup):
        """The per-call pool falls back to spawn when fork is forced off;
        results stay bit-identical (macOS/Windows portability path)."""
        from repro.parallel.pool import score_splits_pool

        matrix, config, members, reference = setup
        _trees, _nodes, records, _mrng = tree_phase(
            matrix.values, 0, list(members[0]), config, seed=5
        )
        parents = _parents(matrix, config)
        serial = score_splits_pool(
            matrix.values, records, parents, config, seed=5, n_workers=1
        )
        spawned = score_splits_pool(
            matrix.values, records, parents, config, seed=5, n_workers=2,
            mp_context="spawn",
        )
        for a, b in zip(serial, spawned):
            np.testing.assert_array_equal(a, b)


class TestCheckpoints:
    def test_resume_from_partial_directory(self, setup, tmp_path):
        """A pooled run resumed from a partially written checkpoint
        directory yields the exact uninterrupted network."""
        matrix, config, members, reference = setup
        LemonTreeLearner(config).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        (tmp_path / "module_0.json").unlink()
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="module"))
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        ).network
        assert net == reference

    def test_workers_write_checkpoints(self, setup, tmp_path):
        """In module mode the workers themselves checkpoint each completed
        module, so an interruption loses only the modules in flight."""
        matrix, config, members, reference = setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="module"))
        LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        names = sorted(p.name for p in tmp_path.glob("module_*.json"))
        assert names == [f"module_{i}.json" for i in range(len(members))]
        # A sequential run resumes from the worker-written checkpoints.
        resumed = LemonTreeLearner(config).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        assert resumed.network == reference
        assert resumed.task_times.modules < 0.5

    def test_split_mode_writes_checkpoints(self, setup, tmp_path):
        matrix, config, members, reference = setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="split"))
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        ).network
        assert net == reference
        assert len(list(tmp_path.glob("module_*.json"))) == len(members)


class TestSingleTransfer:
    def test_matrix_shipped_once_and_single_pool(self, setup):
        """The executor's central contract: one pool, one matrix transfer
        per Task 3, one initializer run per worker — even across repeated
        scoring calls on the same executor."""
        matrix, config, members, reference = setup
        parents = _parents(matrix, config)
        poolutil.reset_counters()
        with ModuleExecutor(
            matrix.values, parents, config.with_updates(parallel=ParallelConfig(n_workers=2)), 5,
            parallel_mode="split",
        ) as executor:
            first = executor.learn_modules(members)
            second = executor.learn_modules(members)  # pool is reused
            assert executor.worker_inits() == 2
        counts = poolutil.counters()
        assert counts["pool_constructions"] == 1
        assert counts["matrix_transfers"] == 1
        assert executor.stats.pools_constructed == 1
        assert executor.stats.matrix_transfers == 1
        for mods in (first, second):
            assert (
                ModuleNetwork(mods, matrix.var_names, matrix.n_obs) == reference
            )

    def test_executor_beats_percall_pool_on_construction_count(self, setup):
        """CI smoke for the speedup mechanism, timing-free: the seed
        per-call backend builds one pool per module, the executor one per
        task."""
        matrix, config, members, reference = setup
        parents = _parents(matrix, config)

        poolutil.reset_counters()
        base = learn_modules_percall_pool(
            matrix.values, parents, members, config, seed=5, n_workers=2
        )
        percall_pools = poolutil.counters()["pool_constructions"]
        # One pool per module that has candidate splits to score (a module
        # whose trees have no internal nodes skips its scoring call).
        assert 2 <= percall_pools <= len(members)
        assert ModuleNetwork(base, matrix.var_names, matrix.n_obs) == reference

        poolutil.reset_counters()
        with ModuleExecutor(
            matrix.values, parents, config.with_updates(parallel=ParallelConfig(n_workers=2)), 5,
            parallel_mode="module",
        ) as executor:
            executor.learn_modules(members)
        executor_pools = poolutil.counters()["pool_constructions"]
        assert executor_pools == 1 < percall_pools


def _echo_run(ctx, item):
    """submit_runs test task: prove the worker context is installed."""
    assert ctx["data"] is not None and ctx["config"] is not None
    return item * 10


def _raise_run(ctx, item):
    raise ValueError(f"injected for item {item}")


class TestSubmitRuns:
    @pytest.mark.parametrize("n_workers", [1, 2])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_results_in_item_order(self, setup, n_workers, schedule):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        with TaskPoolExecutor(
            matrix.values, parents, config, 5, n_workers=n_workers,
            schedule=schedule,
        ) as executor:
            results = executor.submit_runs(_echo_run, list(range(7)))
        assert results == [i * 10 for i in range(7)]

    def test_dispatch_hook_does_not_change_result_order(self, setup):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        TaskPoolExecutor.dispatch_order_hook = staticmethod(
            lambda order: list(reversed(order))
        )
        try:
            with TaskPoolExecutor(
                matrix.values, parents, config, 5, n_workers=2
            ) as executor:
                results = executor.submit_runs(_echo_run, list(range(6)))
        finally:
            TaskPoolExecutor.dispatch_order_hook = None
        assert results == [i * 10 for i in range(6)]

    def test_empty_items(self, setup):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        with TaskPoolExecutor(
            matrix.values, parents, config, 5, n_workers=2
        ) as executor:
            assert executor.submit_runs(_echo_run, []) == []
            assert executor.worker_inits() == 0  # pool never constructed

    def test_task_exception_propagates(self, setup):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        with TaskPoolExecutor(
            matrix.values, parents, config, 5, n_workers=2
        ) as executor:
            with pytest.raises(ValueError, match="injected"):
                executor.submit_runs(_raise_run, [0, 1, 2])


class TestTeardown:
    def test_segment_unlinked_on_exception_inside_context(self, setup):
        """Regression: an exception raised while the pool is live must not
        leak the shared-memory segment (the learn_from_modules path exits
        through the executor's context manager)."""
        from multiprocessing import shared_memory

        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        segment = None
        with pytest.raises(RuntimeError, match="injected"):
            with TaskPoolExecutor(
                matrix.values, parents, config, 5, n_workers=2
            ) as executor:
                executor.submit_runs(_echo_run, [1, 2])
                segment = executor._shared.spec[0]
                raise RuntimeError("injected")
        assert segment is not None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)

    def test_learn_from_modules_closes_executor_on_failure(
        self, setup, monkeypatch
    ):
        """Regression for the teardown leak: an exception raised inside a
        worker task during learn_from_modules propagates as itself and the
        context-manager exit unlinks the shared segment."""
        from repro.parallel import executor as executor_mod

        matrix, config, members, _reference = setup

        def boom(*args, **kwargs):
            raise ValueError("injected module failure")

        # Fork-inherited: workers resolve learn_single_module through the
        # executor module's globals, so the patch reaches them.
        monkeypatch.setattr(executor_mod, "learn_single_module", boom)
        before = _shm_names()
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="module"))
        with pytest.raises(ValueError, match="injected module failure"):
            LemonTreeLearner(cfg).learn_from_modules(matrix, members, seed=5)
        assert _shm_names() == before

    def test_serial_close_clears_worker_state(self, setup):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        with TaskPoolExecutor(
            matrix.values, parents, config, 5, n_workers=1
        ) as executor:
            executor.submit_runs(_echo_run, [0, 1])
            assert pool_mod._WORKER  # installed in-process
        assert pool_mod._WORKER == {}

    def test_close_is_idempotent(self, setup):
        matrix, config, _members, _reference = setup
        parents = _parents(matrix, config)
        executor = TaskPoolExecutor(matrix.values, parents, config, 5, n_workers=2)
        executor.submit_runs(_echo_run, [0])
        executor.close()
        executor.close()  # second close must be a no-op, not an error


def _shm_names():
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestModeHeuristic:
    def test_balanced_many_modules_pick_module_level(self):
        assert choose_mode([1.0] * 8, 4) == "module"

    def test_dominating_module_picks_split_level(self):
        assert choose_mode([100.0, 1, 1, 1, 1, 1, 1, 1], 4) == "split"

    def test_fewer_modules_than_workers_picks_split_level(self):
        assert choose_mode([1.0, 1.0], 4) == "split"

    def test_cost_estimate_ranks_by_size(self):
        big = estimate_module_cost(list(range(20)), 50, LearnerConfig())
        small = estimate_module_cost(list(range(2)), 50, LearnerConfig())
        assert big > small


class TestTrace:
    def test_worker_times_and_steps_recorded(self, setup):
        matrix, config, members, _ = setup
        trace = WorkTrace()
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2, mode="module"))
        LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, trace=trace
        )
        assert trace.worker_times
        assert all(t >= 0.0 for t in trace.worker_times.values())
        assert trace.worker_imbalance() >= 0.0
        # Worker-recorded supersteps are merged back in module order.
        assert any(s.phase == "modules.split_scoring" for s in trace.steps)
        assert trace.times.get("modules", 0.0) > 0.0

    def test_worker_times_round_trip(self, setup, tmp_path):
        from repro.parallel.trace import load_trace, save_trace

        trace = WorkTrace()
        trace.mark_worker_time("worker-0", 1.5)
        trace.mark_worker_time("worker-0", 0.5)
        trace.mark_worker_time("worker-1", 1.0)
        save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(tmp_path / "t.npz")
        assert loaded.worker_times == {"worker-0": 2.0, "worker-1": 1.0}
