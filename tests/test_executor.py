"""Tests for the persistent shared-memory executor (Task 3).

The central contracts:

* pooled module-level and split-level runs produce networks bit-identical
  to the sequential learner for every worker count and schedule;
* resuming from a partially written checkpoint directory reproduces the
  uninterrupted network, with workers writing their own checkpoints;
* the expression matrix is transferred to workers exactly once per
  ``learn_from_modules`` call (instrumented initializer) and no ``mp.Pool``
  is constructed more than once per call.
"""

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.datatypes import ModuleNetwork
from repro.parallel import poolutil
from repro.parallel.executor import (
    ModuleExecutor,
    choose_mode,
    estimate_module_cost,
    learn_modules_percall_pool,
    tree_phase,
)
from repro.parallel.trace import WorkTrace


@pytest.fixture(scope="module")
def setup():
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
    config = LearnerConfig(max_sampling_steps=5)
    learner = LemonTreeLearner(config)
    members = learner.consensus(learner.sample_clusterings(matrix, seed=5))
    reference = learner.learn_from_modules(matrix, members, seed=5).network
    return matrix, config, members, reference


def _parents(matrix, config):
    return np.asarray(config.resolve_candidate_parents(matrix.n_vars), np.int64)


class TestEquivalence:
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["module", "split"])
    def test_network_bit_identical(self, setup, mode, n_workers, schedule):
        matrix, config, members, reference = setup
        cfg = config.with_updates(
            n_workers=n_workers, parallel_mode=mode, schedule=schedule
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5
        ).network
        assert net == reference

    def test_auto_mode_bit_identical(self, setup):
        matrix, config, members, reference = setup
        cfg = config.with_updates(n_workers=2, parallel_mode="auto")
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5
        ).network
        assert net == reference

    def test_spawn_context_pool_matches(self, setup):
        """The per-call pool falls back to spawn when fork is forced off;
        results stay bit-identical (macOS/Windows portability path)."""
        from repro.parallel.pool import score_splits_pool

        matrix, config, members, reference = setup
        _trees, _nodes, records, _mrng = tree_phase(
            matrix.values, 0, list(members[0]), config, seed=5
        )
        parents = _parents(matrix, config)
        serial = score_splits_pool(
            matrix.values, records, parents, config, seed=5, n_workers=1
        )
        spawned = score_splits_pool(
            matrix.values, records, parents, config, seed=5, n_workers=2,
            mp_context="spawn",
        )
        for a, b in zip(serial, spawned):
            np.testing.assert_array_equal(a, b)


class TestCheckpoints:
    def test_resume_from_partial_directory(self, setup, tmp_path):
        """A pooled run resumed from a partially written checkpoint
        directory yields the exact uninterrupted network."""
        matrix, config, members, reference = setup
        LemonTreeLearner(config).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        (tmp_path / "module_0.json").unlink()
        cfg = config.with_updates(n_workers=2, parallel_mode="module")
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        ).network
        assert net == reference

    def test_workers_write_checkpoints(self, setup, tmp_path):
        """In module mode the workers themselves checkpoint each completed
        module, so an interruption loses only the modules in flight."""
        matrix, config, members, reference = setup
        cfg = config.with_updates(n_workers=2, parallel_mode="module")
        LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        names = sorted(p.name for p in tmp_path.glob("module_*.json"))
        assert names == [f"module_{i}.json" for i in range(len(members))]
        # A sequential run resumes from the worker-written checkpoints.
        resumed = LemonTreeLearner(config).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        )
        assert resumed.network == reference
        assert resumed.task_times.modules < 0.5

    def test_split_mode_writes_checkpoints(self, setup, tmp_path):
        matrix, config, members, reference = setup
        cfg = config.with_updates(n_workers=2, parallel_mode="split")
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, checkpoint_dir=tmp_path
        ).network
        assert net == reference
        assert len(list(tmp_path.glob("module_*.json"))) == len(members)


class TestSingleTransfer:
    def test_matrix_shipped_once_and_single_pool(self, setup):
        """The executor's central contract: one pool, one matrix transfer
        per Task 3, one initializer run per worker — even across repeated
        scoring calls on the same executor."""
        matrix, config, members, reference = setup
        parents = _parents(matrix, config)
        poolutil.reset_counters()
        with ModuleExecutor(
            matrix.values, parents, config.with_updates(n_workers=2), 5,
            parallel_mode="split",
        ) as executor:
            first = executor.learn_modules(members)
            second = executor.learn_modules(members)  # pool is reused
            assert executor.worker_inits() == 2
        counts = poolutil.counters()
        assert counts["pool_constructions"] == 1
        assert counts["matrix_transfers"] == 1
        assert executor.stats.pools_constructed == 1
        assert executor.stats.matrix_transfers == 1
        for mods in (first, second):
            assert (
                ModuleNetwork(mods, matrix.var_names, matrix.n_obs) == reference
            )

    def test_executor_beats_percall_pool_on_construction_count(self, setup):
        """CI smoke for the speedup mechanism, timing-free: the seed
        per-call backend builds one pool per module, the executor one per
        task."""
        matrix, config, members, reference = setup
        parents = _parents(matrix, config)

        poolutil.reset_counters()
        base = learn_modules_percall_pool(
            matrix.values, parents, members, config, seed=5, n_workers=2
        )
        percall_pools = poolutil.counters()["pool_constructions"]
        # One pool per module that has candidate splits to score (a module
        # whose trees have no internal nodes skips its scoring call).
        assert 2 <= percall_pools <= len(members)
        assert ModuleNetwork(base, matrix.var_names, matrix.n_obs) == reference

        poolutil.reset_counters()
        with ModuleExecutor(
            matrix.values, parents, config.with_updates(n_workers=2), 5,
            parallel_mode="module",
        ) as executor:
            executor.learn_modules(members)
        executor_pools = poolutil.counters()["pool_constructions"]
        assert executor_pools == 1 < percall_pools


class TestModeHeuristic:
    def test_balanced_many_modules_pick_module_level(self):
        assert choose_mode([1.0] * 8, 4) == "module"

    def test_dominating_module_picks_split_level(self):
        assert choose_mode([100.0, 1, 1, 1, 1, 1, 1, 1], 4) == "split"

    def test_fewer_modules_than_workers_picks_split_level(self):
        assert choose_mode([1.0, 1.0], 4) == "split"

    def test_cost_estimate_ranks_by_size(self):
        big = estimate_module_cost(list(range(20)), 50, LearnerConfig())
        small = estimate_module_cost(list(range(2)), 50, LearnerConfig())
        assert big > small


class TestTrace:
    def test_worker_times_and_steps_recorded(self, setup):
        matrix, config, members, _ = setup
        trace = WorkTrace()
        cfg = config.with_updates(n_workers=2, parallel_mode="module")
        LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, trace=trace
        )
        assert trace.worker_times
        assert all(t >= 0.0 for t in trace.worker_times.values())
        assert trace.worker_imbalance() >= 0.0
        # Worker-recorded supersteps are merged back in module order.
        assert any(s.phase == "modules.split_scoring" for s in trace.steps)
        assert trace.times.get("modules", 0.0) > 0.0

    def test_worker_times_round_trip(self, setup, tmp_path):
        from repro.parallel.trace import load_trace, save_trace

        trace = WorkTrace()
        trace.mark_worker_time("worker-0", 1.5)
        trace.mark_worker_time("worker-0", 0.5)
        trace.mark_worker_time("worker-1", 1.0)
        save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(tmp_path / "t.npz")
        assert loaded.worker_times == {"worker-0": 2.0, "worker-1": 1.0}
