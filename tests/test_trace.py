"""Tests for work traces and run-time projection."""

import numpy as np
import pytest

from repro.core.learner import LemonTreeLearner
from repro.parallel.costmodel import MachineModel
from repro.parallel.trace import (
    ProjectedTime,
    TraceStep,
    WorkTrace,
    project_time,
    scaling_curve,
)

FREE_COMM = MachineModel(tau=0.0, mu=0.0)


def _synthetic_trace():
    trace = WorkTrace()
    trace.record("ganesh.var_reassign", np.full(8, 10.0), n_collectives=2)
    trace.record("ganesh.var_reassign", np.full(8, 10.0), n_collectives=2)
    trace.record("modules.split_scoring", np.full(100, 2.0), n_collectives=1)
    trace.record("modules.split_scoring", np.full(100, 2.0), n_collectives=1)
    trace.mark_time("ganesh", 4.0)
    trace.mark_time("consensus", 0.5)
    trace.mark_time("modules", 8.0)
    return trace


class TestWorkTrace:
    def test_total_units(self):
        trace = _synthetic_trace()
        assert trace.total_units() == 160 + 400
        assert trace.total_units("ganesh") == 160
        assert trace.total_units("modules") == 400

    def test_rate_calibration(self):
        trace = _synthetic_trace()
        assert trace.rate("ganesh") == pytest.approx(160 / 4.0)
        assert trace.rate("modules") == pytest.approx(400 / 8.0)

    def test_rate_without_time_is_inf(self):
        trace = WorkTrace()
        trace.record("ganesh.x", np.ones(3))
        assert trace.rate("ganesh") == float("inf")

    def test_mark_time_accumulates(self):
        trace = WorkTrace()
        trace.mark_time("ganesh", 1.0)
        trace.mark_time("ganesh", 2.0)
        assert trace.times["ganesh"] == 3.0

    def test_mark_time_rejects_unknown_task(self):
        with pytest.raises(ValueError):
            WorkTrace().mark_time("nonsense", 1.0)

    def test_phase_units(self):
        units = _synthetic_trace().phase_units()
        assert units["ganesh.var_reassign"] == 160
        assert units["modules.split_scoring"] == 400

    def test_bulk_costs_concatenate(self):
        trace = _synthetic_trace()
        assert trace.bulk_costs("modules.split_scoring").size == 200

    def test_step_task_parsing(self):
        step = TraceStep("modules.split_scoring", np.ones(1))
        assert step.task == "modules"


class TestProjection:
    def test_t1_matches_measured_time(self):
        """Calibration anchor: the projected single-rank time equals the
        measured sequential time exactly."""
        trace = _synthetic_trace()
        projected = project_time(trace, 1)
        assert projected.total == pytest.approx(4.0 + 0.5 + 8.0)

    def test_perfect_scaling_without_comm(self):
        trace = _synthetic_trace()
        p2 = project_time(trace, 2, model=FREE_COMM)
        assert p2.ganesh == pytest.approx(2.0)
        assert p2.modules == pytest.approx(4.0)
        assert p2.consensus == pytest.approx(0.5)  # sequential always

    def test_consensus_independent_of_p(self):
        trace = _synthetic_trace()
        assert project_time(trace, 64).consensus == project_time(trace, 1).consensus

    def test_comm_overhead_grows_with_p(self):
        trace = _synthetic_trace()
        heavy = MachineModel(tau=1.0, mu=1e-3)  # latency-dominated machine
        t4 = project_time(trace, 4, model=heavy).total
        t1024 = project_time(trace, 1024, model=heavy).total
        assert t1024 > t4  # comm term (log2 p) dominates once compute shrinks

    def test_monotone_compute_decrease(self):
        trace = _synthetic_trace()
        times = [project_time(trace, p, model=FREE_COMM).total for p in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_bulk_phase_partitions_once(self):
        """Two recorded bulk steps of 100 items each must be partitioned as
        one 200-item list: with p=2 each rank gets 100 items, not the
        stepwise 2 x max(50)."""
        trace = WorkTrace()
        trace.record("modules.split_scoring", np.array([8.0] * 10), n_collectives=0)
        trace.record("modules.split_scoring", np.array([1.0] * 10), n_collectives=0)
        trace.mark_time("modules", 90.0)  # rate = 1 unit/sec
        projected = project_time(trace, 2, model=FREE_COMM)
        # Flat list = [8]*10 + [1]*10; blocks of 10 -> max = 80.
        assert projected.modules == pytest.approx(80.0)

    def test_stepwise_phase_partitions_each_step(self):
        trace = WorkTrace()
        trace.record("ganesh.var_reassign", np.array([8.0] * 10), n_collectives=0)
        trace.record("ganesh.var_reassign", np.array([1.0] * 10), n_collectives=0)
        trace.mark_time("ganesh", 90.0)
        projected = project_time(trace, 2, model=FREE_COMM)
        assert projected.ganesh == pytest.approx(40.0 + 5.0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            project_time(_synthetic_trace(), 0)

    def test_compute_scale(self):
        trace = _synthetic_trace()
        base = project_time(trace, 1)
        scaled = project_time(trace, 1, compute_scale=4.0)
        assert scaled.total == pytest.approx(base.total * 4.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            project_time(_synthetic_trace(), 2, compute_scale=0.0)

    def test_scaling_curve(self):
        curve = scaling_curve(_synthetic_trace(), [1, 2, 4])
        assert [pt.p for pt in curve] == [1, 2, 4]
        assert all(isinstance(pt, ProjectedTime) for pt in curve)


class TestGroupParallelGanesh:
    def _multi_run_trace(self):
        trace = WorkTrace()
        for run in range(4):
            trace.record("ganesh.var_reassign", np.full(10, 5.0), run=run)
        trace.mark_time("ganesh", 4.0)
        trace.n_ganesh_runs = 4
        return trace

    def test_groups_run_concurrently(self):
        """4 runs on p=4: each group of 1 rank does one run -> total time is
        one run's time, not four."""
        trace = self._multi_run_trace()
        t = project_time(trace, 4, model=FREE_COMM)
        assert t.ganesh == pytest.approx(1.0)

    def test_waves_when_fewer_ranks_than_runs(self):
        trace = self._multi_run_trace()
        t = project_time(trace, 2, model=FREE_COMM)
        assert t.ganesh == pytest.approx(2.0)  # 2 waves of 2 concurrent runs

    def test_disabled_grouping_serializes(self):
        trace = self._multi_run_trace()
        t = project_time(trace, 4, model=FREE_COMM, group_parallel_ganesh=False)
        # 4 runs in sequence, each 10x5 units split over 4 ranks:
        # max block = 3 items -> 15 units at rate 50/s = 0.3 s per run.
        assert t.ganesh == pytest.approx(4 * 15 / 50)

    def test_breakdown_sums_to_total(self):
        trace = _synthetic_trace()
        pt = project_time(trace, 8)
        assert pt.total == pytest.approx(sum(pt.breakdown().values()))


class TestLearnerIntegration:
    def test_trace_from_real_run_projects(self, tiny_matrix, fast_config):
        trace = WorkTrace()
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=1, trace=trace)
        assert trace.total_units() > 0
        t1 = project_time(trace, 1)
        assert t1.total == pytest.approx(result.task_times.total, rel=1e-6)
        t8 = project_time(trace, 8)
        assert t8.total < t1.total

    def test_split_imbalance_metric(self, tiny_matrix, fast_config):
        trace = WorkTrace()
        LemonTreeLearner(fast_config).learn(tiny_matrix, seed=1, trace=trace)
        imb = trace.split_imbalance(4)
        assert imb >= 0.0
