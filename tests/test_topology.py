"""Tests for hardware topology probing, placement and the ParallelConfig API.

The contracts this file pins down:

* the sysfs probe is deterministic, clamps to the affinity mask, and any
  missing or unparseable entry degrades to the flat single-domain model;
* a placement plan assigns every worker exactly one domain and its chunk
  bounds partition any flat work range — degenerating to plain
  ``block_bounds`` on a flat topology;
* pinned (topology "auto" / multi-domain) and unpinned (topology "flat")
  executor runs produce bit-identical networks on the Task 3 fixture;
* per-domain cache descriptors flow into per-domain kernel chunk sizes,
  degenerating to the machine-wide value on a flat topology;
* the old flat config knobs (``LearnerConfig.n_workers`` /
  ``parallel_mode`` / ``schedule``, ``GenomicaConfig.n_workers``) are
  gone — the ``config.parallel`` spelling is the only one.
"""

import os
import pickle

import pytest

import repro
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.genomica.learner import GenomicaConfig
from repro.parallel.costmodel import block_bounds
from repro.parallel.topology import (
    FLAT_CHUNK_ELEMENTS,
    MAX_CHUNK_ELEMENTS,
    MIN_CHUNK_ELEMENTS,
    MachineTopology,
    Placement,
    _parse_cache_size,
    _parse_cpulist,
    available_cpus,
    chunk_elements_for,
    flat_topology,
    pin_to,
    plan_placement,
    probe_topology,
    resolve_topology,
)
from repro.parallel.trace import WorkTrace, load_trace, save_trace


def _write(path, text):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def _make_sysfs(root, node_cpulists, l2="2048K", l3="16M", cache_cpu=None):
    """A fake sysfs tree under ``root`` (driven via ``sysfs_root``)."""
    for i, cpulist in enumerate(node_cpulists):
        _write(root / "devices" / "system" / "node" / f"node{i}" / "cpulist",
               f"{cpulist}\n")
    if cache_cpu is None:
        cache_cpu = available_cpus()[0]
    cache = root / "devices" / "system" / "cpu" / f"cpu{cache_cpu}" / "cache"
    levels = [("index0", "1", "Data", "32K"), ("index1", "1", "Instruction", "32K"),
              ("index2", "2", "Unified", l2), ("index3", "3", "Unified", l3)]
    for name, level, ctype, size in levels:
        _write(cache / name / "level", f"{level}\n")
        _write(cache / name / "type", f"{ctype}\n")
        _write(cache / name / "size", f"{size}\n")


class TestProbe:
    def test_sysfs_probe_deterministic(self, tmp_path):
        cpu = available_cpus()[0]
        _make_sysfs(tmp_path, [str(cpu)])
        first = probe_topology(sysfs_root=tmp_path)
        second = probe_topology(sysfs_root=tmp_path)
        assert first == second
        assert first.source == "sysfs"
        assert first.numa_domains == ((cpu,),)
        assert first.l2_bytes == 2048 << 10
        assert first.l3_bytes == 16 << 20

    def test_missing_sysfs_falls_back_flat(self, tmp_path):
        first = probe_topology(sysfs_root=tmp_path / "no-such-sysfs")
        second = probe_topology(sysfs_root=tmp_path / "no-such-sysfs")
        assert first == second == flat_topology()
        assert first.source == "flat"
        assert first.l2_bytes == 0 and first.l3_bytes == 0

    def test_unschedulable_nodes_dropped(self, tmp_path):
        cpus = available_cpus()
        bogus = max(cpus) + 1
        _make_sysfs(tmp_path, [str(cpus[0]), str(bogus)])
        topology = probe_topology(sysfs_root=tmp_path)
        assert topology.numa_domains == ((cpus[0],),)

    def test_all_nodes_unschedulable_falls_back_flat(self, tmp_path):
        bogus = max(available_cpus()) + 1
        _make_sysfs(tmp_path, [str(bogus)])
        assert probe_topology(sysfs_root=tmp_path) == flat_topology()

    def test_unparseable_cpulist_falls_back_flat(self, tmp_path):
        _make_sysfs(tmp_path, ["not-a-cpulist"])
        assert probe_topology(sysfs_root=tmp_path) == flat_topology()

    def test_bad_cache_entries_leave_sizes_unknown(self, tmp_path):
        cpu = available_cpus()[0]
        _make_sysfs(tmp_path, [str(cpu)], l2="banana", l3="nonsense")
        topology = probe_topology(sysfs_root=tmp_path)
        assert topology.source == "sysfs"
        assert topology.l2_bytes == 0 and topology.l3_bytes == 0
        assert chunk_elements_for(topology) == FLAT_CHUNK_ELEMENTS

    def test_flat_topology_matches_affinity_mask(self):
        assert flat_topology().numa_domains == (available_cpus(),)
        assert flat_topology(3).numa_domains == ((0, 1, 2),)

    def test_parse_cpulist(self):
        assert _parse_cpulist("0-3,8,10-11") == (0, 1, 2, 3, 8, 10, 11)
        assert _parse_cpulist("5\n") == (5,)
        with pytest.raises(ValueError):
            _parse_cpulist("a-b")

    def test_parse_cache_size(self):
        assert _parse_cache_size("2048K") == 2048 << 10
        assert _parse_cache_size("32M\n") == 32 << 20
        assert _parse_cache_size("1G") == 1 << 30
        assert _parse_cache_size("512") == 512
        with pytest.raises(ValueError):
            _parse_cache_size("lots")

    def test_resolve_topology(self):
        explicit = flat_topology(2)
        assert resolve_topology(explicit) is explicit
        assert resolve_topology("flat") == flat_topology()
        assert resolve_topology("auto").n_cores >= 1
        with pytest.raises(ValueError):
            resolve_topology("numa")

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            MachineTopology(numa_domains=())
        with pytest.raises(ValueError):
            MachineTopology(numa_domains=((0,),), l2_bytes=-1)
        with pytest.raises(ValueError):
            MachineTopology(numa_domains=((0,),), source="dmi")


class TestChunkSizing:
    def test_unknown_caches_keep_fixed_default(self):
        assert chunk_elements_for(flat_topology()) == FLAT_CHUNK_ELEMENTS

    def test_l2_budget_power_of_two(self):
        # 2 MiB L2, ample L3: half the L2 is 1 MiB -> 2^17 float64 elements.
        topology = MachineTopology(
            numa_domains=((0,),), l2_bytes=2 << 20, l3_bytes=1 << 30, source="sysfs"
        )
        assert chunk_elements_for(topology) == 1 << 17

    def test_shared_l3_caps_per_core_budget(self):
        # 8 cores sharing 8 MiB L3: 1 MiB per core beats the 2 MiB half-L2.
        topology = MachineTopology(
            numa_domains=(tuple(range(8)),), l2_bytes=4 << 20, l3_bytes=8 << 20,
            source="sysfs",
        )
        assert chunk_elements_for(topology) == 1 << 17

    def test_clamped_to_bounds(self):
        tiny = MachineTopology(numa_domains=((0,),), l2_bytes=1024, source="sysfs")
        huge = MachineTopology(numa_domains=((0,),), l2_bytes=1 << 30, source="sysfs")
        assert chunk_elements_for(tiny) == MIN_CHUNK_ELEMENTS
        assert chunk_elements_for(huge) == MAX_CHUNK_ELEMENTS


def _two_domain_topology():
    cpu = available_cpus()[0]
    # Two synthetic domains mapped onto schedulable CPUs so pinning works
    # even on a single-core runner.
    return MachineTopology(
        numa_domains=((cpu,), (cpu,)), l2_bytes=2 << 20, l3_bytes=16 << 20,
        source="sysfs",
    )


def _uneven_topology():
    return MachineTopology(
        numa_domains=((0,), (1, 2, 3), (4, 5)), source="sysfs"
    )


class TestPlacement:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize(
        "topology", [flat_topology(4), _two_domain_topology(), _uneven_topology()]
    )
    def test_every_worker_placed_exactly_once(self, topology, n_workers):
        placement = plan_placement(topology, n_workers)
        assert placement.n_workers == n_workers
        assert len(placement.worker_domains) == n_workers
        assert all(0 <= d < topology.n_domains for d in placement.worker_domains)
        # Contiguous runs: same-domain workers own adjacent static blocks.
        assert list(placement.worker_domains) == sorted(placement.worker_domains)
        for w in range(n_workers):
            assert placement.worker_cpus(w) == topology.numa_domains[
                placement.domain_of(w)
            ]

    def test_workers_apportioned_by_core_share(self):
        placement = plan_placement(_uneven_topology(), 6)
        counts = [placement.worker_domains.count(d) for d in range(3)]
        assert counts == [1, 3, 2]

    def test_replacement_workers_wrap_onto_plan(self):
        placement = plan_placement(_two_domain_topology(), 2)
        assert placement.domain_of(2) == placement.domain_of(0)
        assert placement.worker_cpus(3) == placement.worker_cpus(1)

    @pytest.mark.parametrize("total", [1, 7, 64, 1000])
    @pytest.mark.parametrize("chunks_per_worker", [1, 4])
    @pytest.mark.parametrize(
        "topology", [flat_topology(4), _two_domain_topology(), _uneven_topology()]
    )
    def test_chunk_bounds_partition_range(self, topology, total, chunks_per_worker):
        placement = plan_placement(topology, 3)
        bounds = placement.chunk_bounds(total, chunks_per_worker)
        pos = 0
        for lo, hi in bounds:
            assert lo == pos and hi >= lo
            pos = hi
        assert pos == total

    @pytest.mark.parametrize("total", [1, 7, 64, 1000])
    def test_domain_blocks_partition_range(self, total):
        placement = plan_placement(_uneven_topology(), 5)
        blocks = placement.domain_blocks(total)
        assert len(blocks) == 3
        pos = 0
        for lo, hi in blocks:
            assert lo == pos and hi >= lo
            pos = hi
        assert pos == total

    @pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
    @pytest.mark.parametrize("total", [1, 17, 100])
    def test_flat_placement_degenerates_to_block_bounds(self, n_workers, total):
        placement = plan_placement(flat_topology(), n_workers)
        assert placement.is_flat
        assert placement.chunk_bounds(total) == list(block_bounds(total, n_workers))
        assert placement.chunk_bounds(total, 4) == list(
            block_bounds(total, 4 * n_workers)
        )

    def test_pin_to_current_mask_succeeds(self):
        if not hasattr(os, "sched_setaffinity"):
            pytest.skip("no sched_setaffinity on this platform")
        assert pin_to(available_cpus()) is True
        assert pin_to(()) is False

    def test_describe_is_json_ready(self):
        import json

        placement = plan_placement(_uneven_topology(), 4)
        summary = json.loads(json.dumps(placement.describe()))
        assert summary["worker_domains"] == list(placement.worker_domains)
        assert summary["topology"]["n_domains"] == 3


@pytest.fixture(scope="module")
def task3_setup():
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(20, 10, n_modules=3, seed=17).matrix
    config = LearnerConfig(max_sampling_steps=4)
    learner = LemonTreeLearner(config)
    members = learner.consensus(learner.sample_clusterings(matrix, seed=9))
    reference = learner.learn_from_modules(matrix, members, seed=9).network
    return matrix, config, members, reference


class TestBitIdentity:
    """Placement changes where work runs, never what it computes."""

    @pytest.mark.parametrize("topology", ["auto", "flat"])
    def test_pinned_matches_unpinned(self, task3_setup, topology):
        matrix, config, members, reference = task3_setup
        cfg = config.with_updates(
            parallel=ParallelConfig(n_workers=2, topology=topology)
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=9
        ).network
        assert net == reference

    def test_multi_domain_placement_matches(self, task3_setup):
        matrix, config, members, reference = task3_setup
        cfg = config.with_updates(
            parallel=ParallelConfig(
                n_workers=2, mode="split", schedule="static",
                topology=_two_domain_topology(),
            )
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=9
        ).network
        assert net == reference

    def test_trace_records_topology_and_domain_times(self, task3_setup, tmp_path):
        matrix, config, members, _ = task3_setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2))
        trace = WorkTrace()
        LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=9, trace=trace
        )
        assert trace.topology is not None
        assert trace.topology["topology"]["n_domains"] >= 1
        assert trace.domain_times
        assert all(k.startswith("node") for k in trace.domain_times)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.topology == trace.topology
        assert back.domain_times == pytest.approx(trace.domain_times)


class TestDomainChunks:
    """Per-domain cache descriptors drive per-domain kernel chunk sizes."""

    def _hetero_topology(self):
        # Domain 0: 2 MiB L2 / 16 MiB L3 over 2 cores; domain 1: 512 KiB
        # L2 / 4 MiB L3 over 4 cores — a big.LITTLE-style split.
        return MachineTopology(
            numa_domains=((0, 1), (2, 3, 4, 5)),
            l2_bytes=2 << 20, l3_bytes=16 << 20, source="sysfs",
            domain_l2_bytes=(2 << 20, 512 << 10),
            domain_l3_bytes=(16 << 20, 4 << 20),
        )

    def test_per_domain_list_must_match_domain_count(self):
        with pytest.raises(ValueError):
            MachineTopology(
                numa_domains=((0,), (1,)), source="sysfs",
                domain_l2_bytes=(1 << 20,),
            )
        with pytest.raises(ValueError):
            MachineTopology(
                numa_domains=((0,),), source="sysfs", domain_l3_bytes=(-1,)
            )

    def test_domain_caches_fall_back_to_machine_wide(self):
        topology = MachineTopology(
            numa_domains=((0,), (1,)), l2_bytes=2 << 20, l3_bytes=8 << 20,
            source="sysfs",
        )
        assert topology.domain_caches(0) == (2 << 20, 8 << 20)
        assert topology.domain_caches(1) == (2 << 20, 8 << 20)

    def test_chunk_elements_differ_across_heterogeneous_domains(self):
        topology = self._hetero_topology()
        # Domain 0: half of 2 MiB L2 = 1 MiB -> 2^17 elements (L3 share
        # 16M/2 = 8M doesn't bind).  Domain 1: half of 512K = 256K -> 2^15
        # elements (L3 share 4M/4 = 1M doesn't bind).
        assert chunk_elements_for(topology, 0) == 1 << 17
        assert chunk_elements_for(topology, 1) == 1 << 15

    def test_domain_l3_divided_by_domain_cores_only(self):
        # 8 MiB L3 shared by the domain's own 4 cores -> 2 MiB share;
        # the other domain's 12 cores must not shrink it.
        topology = MachineTopology(
            numa_domains=(tuple(range(4)), tuple(range(4, 16))),
            l2_bytes=8 << 20, l3_bytes=8 << 20, source="sysfs",
        )
        # Half-L2 = 4 MiB, L3 share = 8M/4 = 2 MiB binds -> 2^18 elements.
        assert chunk_elements_for(topology, 0) == 1 << 18

    def test_single_domain_matches_machine_wide(self):
        # Flat degeneration: per-domain chunk == machine-wide chunk, so a
        # flat machine takes the exact pre-change value.
        topology = MachineTopology(
            numa_domains=(tuple(range(4)),), l2_bytes=2 << 20,
            l3_bytes=16 << 20, source="sysfs",
        )
        assert chunk_elements_for(topology, 0) == chunk_elements_for(topology)
        flat = flat_topology(4)
        assert chunk_elements_for(flat, 0) == FLAT_CHUNK_ELEMENTS

    def test_placement_ships_per_worker_chunks(self):
        topology = self._hetero_topology()
        placement = plan_placement(topology, 3)
        per_domain = placement.domain_chunk_elements()
        assert per_domain == (1 << 17, 1 << 15)
        for worker in range(placement.n_workers):
            domain = placement.domain_of(worker)
            assert placement.chunk_elements(worker) == per_domain[domain]

    def test_describe_round_trips_per_domain_caches(self):
        topology = self._hetero_topology()
        desc = topology.describe()
        assert desc["domain_l2_bytes"] == [2 << 20, 512 << 10]
        assert desc["domain_l3_bytes"] == [16 << 20, 4 << 20]
        assert flat_topology(2).describe()["domain_l2_bytes"] is None

    def test_probe_records_per_domain_caches(self, tmp_path):
        cpus = available_cpus()
        _make_sysfs(tmp_path, [str(c) for c in cpus[:2]])
        topology = probe_topology(sysfs_root=tmp_path)
        assert topology.source == "sysfs"
        assert topology.domain_l2_bytes is not None
        assert len(topology.domain_l2_bytes) == topology.n_domains
        # Domain 0's probe found the fake cache tree; machine-wide sizes
        # mirror domain 0 (the probe's reference domain).
        assert topology.domain_l2_bytes[0] == topology.l2_bytes == 2048 << 10

    def test_spread_domains_cycles_plan(self):
        placement = plan_placement(_two_domain_topology(), 2)
        assert placement.spread_domains(5) == [0, 1, 0, 1, 0]
        flat = plan_placement(flat_topology(4), 3)
        assert flat.spread_domains(4) == [0, 0, 0, 0]


class TestParallelConfigApi:
    """``config.parallel`` is the only spelling of the backend knobs."""

    def test_dropped_flat_knobs_rejected(self):
        # The one-release deprecation shims for the flat knobs are gone:
        # the old spellings are now hard errors.
        with pytest.raises(TypeError):
            LearnerConfig(n_workers=2)
        with pytest.raises(TypeError):
            LearnerConfig(parallel_mode="module")
        with pytest.raises(TypeError):
            LearnerConfig(schedule="static")
        with pytest.raises(TypeError):
            GenomicaConfig(n_workers=2)
        with pytest.raises(TypeError):
            LearnerConfig().with_updates(n_workers=4)

    def test_dropped_property_reads_are_attribute_errors(self):
        cfg = LearnerConfig(parallel=ParallelConfig(n_workers=5))
        with pytest.raises(AttributeError):
            cfg.n_workers
        with pytest.raises(AttributeError):
            cfg.parallel_mode
        with pytest.raises(AttributeError):
            GenomicaConfig().n_workers

    def test_with_updates_replaces_parallel(self):
        cfg = LearnerConfig()
        updated = cfg.with_updates(
            parallel=ParallelConfig(n_workers=4), max_sampling_steps=3
        )
        assert updated.parallel.n_workers == 4
        assert updated.max_sampling_steps == 3

    def test_new_pickle_round_trips(self):
        cfg = LearnerConfig(parallel=ParallelConfig(n_workers=2, topology="flat"))
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_resolve_n_workers_clamps_to_affinity_mask(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("no sched_getaffinity on this platform")
        allowed = len(os.sched_getaffinity(0))
        assert ParallelConfig(n_workers=0).resolve_n_workers() == max(1, allowed)
        assert ParallelConfig(n_workers=7).resolve_n_workers() == 7
        assert LearnerConfig().with_updates(
            parallel=ParallelConfig(n_workers=0)
        ).resolve_n_workers() == max(1, allowed)

    def test_parallel_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(mode="threads")
        with pytest.raises(ValueError):
            ParallelConfig(schedule="work-stealing")
        with pytest.raises(ValueError):
            ParallelConfig(topology="numa")
        with pytest.raises(ValueError):
            ParallelConfig(steal="yes")
        assert ParallelConfig(topology=flat_topology(2)).resolve_topology(
        ) == flat_topology(2)
        assert ParallelConfig().steal is True

    def test_package_exports(self):
        assert repro.ParallelConfig is ParallelConfig
        assert repro.MachineTopology is MachineTopology
        assert "ParallelConfig" in repro.__all__
        assert "MachineTopology" in repro.__all__
