"""Tests for the counter-based Philox stream."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.philox import PhiloxStream, derive_key


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(1, "a", 2) == derive_key(1, "a", 2)

    def test_seed_sensitivity(self):
        assert derive_key(1, "a") != derive_key(2, "a")

    def test_path_sensitivity(self):
        assert derive_key(1, "a") != derive_key(1, "b")
        assert derive_key(1, "a", 0) != derive_key(1, "a", 1)

    def test_path_order_matters(self):
        assert derive_key(1, "a", "b") != derive_key(1, "b", "a")

    def test_fits_in_64_bits(self):
        for seed in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= derive_key(seed, "x") < 2**64

    def test_empty_path(self):
        assert derive_key(7) == 7  # no mixing without path parts


class TestSequentialDraws:
    def test_uniform_range(self):
        stream = PhiloxStream(1)
        draws = stream.next_uniforms(1000)
        assert (draws >= 0).all() and (draws < 1).all()

    def test_deterministic_replay(self):
        a = PhiloxStream(5, "x").next_uniforms(64)
        b = PhiloxStream(5, "x").next_uniforms(64)
        np.testing.assert_array_equal(a, b)

    def test_offset_advances(self):
        stream = PhiloxStream(1)
        assert stream.offset == 0
        stream.next_uniform()
        assert stream.offset == 1
        stream.next_uniforms(10)
        assert stream.offset == 11

    def test_scalar_matches_vector(self):
        vec = PhiloxStream(9).next_uniforms(8)
        stream = PhiloxStream(9)
        scalars = [stream.next_uniform() for _ in range(8)]
        np.testing.assert_allclose(scalars, vec)

    def test_mean_is_centered(self):
        draws = PhiloxStream(3).next_uniforms(20000)
        assert abs(draws.mean() - 0.5) < 0.01


class TestBlockAccess:
    @given(start=st.integers(0, 500), count=st.integers(0, 64))
    @settings(max_examples=50, deadline=None)
    def test_block_matches_sequential(self, start, count):
        reference = PhiloxStream(11, "blk").next_uniforms(start + count)
        block = PhiloxStream(11, "blk").block(start, count)
        np.testing.assert_array_equal(block, reference[start : start + count])

    def test_block_does_not_move_position(self):
        stream = PhiloxStream(2)
        stream.block(100, 10)
        assert stream.offset == 0

    def test_adjacent_blocks_tile_the_stream(self):
        stream = PhiloxStream(4)
        whole = stream.block(0, 30)
        parts = np.concatenate([stream.block(0, 7), stream.block(7, 13), stream.block(20, 10)])
        np.testing.assert_array_equal(whole, parts)

    def test_jump_to(self):
        stream = PhiloxStream(6)
        ref = stream.block(0, 20)
        stream.jump_to(12)
        assert stream.next_uniform() == ref[12]

    def test_unaligned_offsets(self):
        # Philox granule is 4 draws; every residue class must work.
        ref = PhiloxStream(8).next_uniforms(32)
        for start in range(9):
            got = PhiloxStream(8).block(start, 5)
            np.testing.assert_array_equal(got, ref[start : start + 5])


class TestSplitting:
    def test_split_gives_independent_streams(self):
        parent = PhiloxStream(1)
        a = parent.split("child", 0).next_uniforms(100)
        b = parent.split("child", 1).next_uniforms(100)
        assert not np.allclose(a, b)

    def test_split_is_deterministic(self):
        a = PhiloxStream(1).split("c").next_uniforms(10)
        b = PhiloxStream(1).split("c").next_uniforms(10)
        np.testing.assert_array_equal(a, b)

    def test_nested_split_equals_flat_path(self):
        nested = PhiloxStream(1).split("a").split("b").next_uniforms(5)
        flat = PhiloxStream(1, "a", "b").next_uniforms(5)
        np.testing.assert_array_equal(nested, flat)

    def test_clone_preserves_position(self):
        stream = PhiloxStream(1)
        stream.next_uniforms(17)
        clone = stream.clone()
        np.testing.assert_array_equal(clone.next_uniforms(5), stream.next_uniforms(5))


class TestReplication:
    """The replicated-stream contract of Section 4.2: identical seeds and
    call sequences yield identical draws on every (simulated) rank."""

    def test_lockstep_ranks_agree(self):
        ranks = [PhiloxStream(99, "replicated") for _ in range(4)]
        for _ in range(20):
            draws = [stream.next_uniform() for stream in ranks]
            assert len(set(draws)) == 1

    @pytest.mark.parametrize("n_blocks", [1, 2, 3, 7])
    def test_block_split_is_partition_invariant(self, n_blocks):
        """Block-splitting the stream across ranks covers the same draws."""
        total = 42
        whole = PhiloxStream(5, "w").block(0, total)
        bounds = np.linspace(0, total, n_blocks + 1).astype(int)
        parts = [
            PhiloxStream(5, "w").block(int(lo), int(hi - lo))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        np.testing.assert_array_equal(np.concatenate(parts), whole)
