"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold for *any* seed, shape or input the strategies
generate — the contracts downstream users rely on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus import consensus_clusters
from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_from_json, network_to_json
from repro.data.synthetic import make_module_dataset
from repro.datatypes import Module, ModuleNetwork, RegressionTree, Split, TreeNode
from repro.parallel.engine import ParallelLearner
from repro.parallel.topology import MachineTopology, available_cpus

FAST = LearnerConfig(max_sampling_steps=3)
SLOW_OK = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Learner-level invariants
# ---------------------------------------------------------------------------


class TestLearnerInvariants:
    @given(seed=st.integers(0, 10_000))
    @SLOW_OK
    def test_output_is_a_partition(self, seed):
        matrix = make_module_dataset(14, 8, n_modules=2, seed=1).matrix
        network = LemonTreeLearner(FAST).learn(matrix, seed=seed).network
        labels = network.assignment_labels()
        assert (labels >= 0).all()
        assert sum(m.size for m in network.modules) == matrix.n_vars
        # every tree's root covers all observations
        for module in network.modules:
            for tree in module.trees:
                assert tree.root.observations.size == matrix.n_obs

    @given(seed=st.integers(0, 10_000))
    @SLOW_OK
    def test_parent_scores_are_probabilities(self, seed):
        matrix = make_module_dataset(14, 8, n_modules=2, seed=2).matrix
        network = LemonTreeLearner(FAST).learn(matrix, seed=seed).network
        for module in network.modules:
            for score in module.weighted_parents.values():
                assert 0.0 <= score <= 1.0 + 1e-12
            for score in module.uniform_parents.values():
                assert 0.0 <= score <= 1.0 + 1e-12

    @given(seed=st.integers(0, 10_000))
    @SLOW_OK
    def test_json_roundtrip_of_learned_networks(self, seed):
        matrix = make_module_dataset(12, 8, n_modules=2, seed=3).matrix
        network = LemonTreeLearner(FAST).learn(matrix, seed=seed).network
        assert network_from_json(network_to_json(network)) == network

    @given(seed=st.integers(0, 500), p=st.sampled_from([2, 3]))
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_parallel_consistency_for_arbitrary_seeds(self, seed, p):
        """The paper's consistency property, probed over random seeds
        rather than the fixed ones in test_consistency.py."""
        matrix = make_module_dataset(12, 8, n_modules=2, seed=4).matrix
        sequential = LemonTreeLearner(FAST).learn(matrix, seed=seed)
        parallel = ParallelLearner(FAST).learn(matrix, seed=seed, p=p)
        assert parallel.network == sequential.network


# ---------------------------------------------------------------------------
# Steal-dispatch invariants
# ---------------------------------------------------------------------------


@st.composite
def machine_topologies(draw):
    """Random 1-3 domain machine models over the schedulable CPUs, with
    optionally heterogeneous per-domain caches."""
    cpus = available_cpus()
    n_domains = draw(st.integers(1, 3))
    domains = tuple((cpus[d % len(cpus)],) for d in range(n_domains))
    l2 = draw(st.sampled_from([0, 2 << 20]))
    per_domain = (
        tuple(
            draw(st.sampled_from([512 << 10, 1 << 20, 2 << 20]))
            for _ in range(n_domains)
        )
        if l2 and draw(st.booleans())
        else None
    )
    return MachineTopology(
        numa_domains=domains,
        l2_bytes=l2,
        l3_bytes=16 << 20 if l2 else 0,
        source="sysfs",
        domain_l2_bytes=per_domain,
    )


class TestStealDispatchInvariants:
    @given(
        topology=machine_topologies(),
        seed=st.integers(0, 500),
        backend=st.sampled_from(["philox", "mrg"]),
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_steal_bit_identical_to_static_and_serial(
        self, topology, seed, backend
    ):
        """Dynamic dispatch with domain-affine stealing moves work between
        workers, never changes it: for any machine model the learned
        network equals the static-schedule and single-worker runs."""
        matrix = make_module_dataset(12, 8, n_modules=2, seed=5).matrix
        base = LearnerConfig(max_sampling_steps=3, rng_backend=backend)
        serial = LemonTreeLearner(base).learn(matrix, seed=seed).network
        steal = LemonTreeLearner(
            base.with_updates(
                parallel=ParallelConfig(
                    n_workers=2, schedule="dynamic", topology=topology
                )
            )
        ).learn(matrix, seed=seed).network
        static = LemonTreeLearner(
            base.with_updates(
                parallel=ParallelConfig(
                    n_workers=2, schedule="static", topology=topology
                )
            )
        ).learn(matrix, seed=seed).network
        assert steal == serial
        assert static == serial


# ---------------------------------------------------------------------------
# Consensus invariants
# ---------------------------------------------------------------------------


class TestConsensusInvariants:
    @given(
        n=st.integers(4, 20),
        n_samples=st.integers(1, 6),
        n_clusters=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_consensus_is_a_partition(self, n, n_samples, n_clusters, seed):
        rng = np.random.default_rng(seed)
        samples = [rng.integers(0, n_clusters, size=n) for _ in range(n_samples)]
        clusters = consensus_clusters(samples, threshold=0.3)
        flat = sorted(v for c in clusters for v in c)
        assert flat == list(range(n))

    @given(n=st.integers(4, 15), seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_unanimous_ensemble_recovered_exactly(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=n)
        clusters = consensus_clusters([labels] * 4, threshold=0.5)
        expected = sorted(
            sorted(np.flatnonzero(labels == cid).tolist())
            for cid in np.unique(labels)
        )
        assert sorted(map(sorted, clusters)) == expected


# ---------------------------------------------------------------------------
# Serialization invariants over synthetic networks
# ---------------------------------------------------------------------------


@st.composite
def module_networks(draw):
    n_vars = draw(st.integers(2, 12))
    n_modules = draw(st.integers(1, min(4, n_vars)))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(1, n_vars - 1),
                min_size=n_modules - 1,
                max_size=n_modules - 1,
                unique=True,
            )
        )
    )
    bounds = [0] + boundaries + [n_vars]
    modules = []
    for mid in range(n_modules):
        members = list(range(bounds[mid], bounds[mid + 1]))
        n_parents = draw(st.integers(0, 3))
        parents = {
            draw(st.integers(0, n_vars - 1)): draw(
                st.floats(0, 1, allow_nan=False)
            )
            for _ in range(n_parents)
        }
        obs = np.arange(draw(st.integers(1, 6)))
        root = TreeNode(node_id=0, observations=obs)
        root.weighted_splits = [
            Split(
                parent=draw(st.integers(0, n_vars - 1)),
                value=draw(st.floats(-5, 5, allow_nan=False)),
                node_id=0,
                posterior=draw(st.floats(0, 1, allow_nan=False)),
                n_obs=int(obs.size),
            )
            for _ in range(draw(st.integers(0, 2)))
        ]
        modules.append(
            Module(
                module_id=mid,
                members=members,
                trees=[RegressionTree(module_id=mid, root=root)],
                weighted_parents=parents,
            )
        )
    names = [f"v{i}" for i in range(n_vars)]
    return ModuleNetwork(modules, names, n_obs=8)


class TestSerializationProperties:
    @given(network=module_networks())
    @settings(max_examples=50, deadline=None)
    def test_json_roundtrip_identity(self, network):
        assert network_from_json(network_to_json(network)) == network

    @given(network=module_networks())
    @settings(max_examples=30, deadline=None)
    def test_signature_stable(self, network):
        assert network.signature() == network.signature()

    @given(network=module_networks())
    @settings(max_examples=30, deadline=None)
    def test_xml_well_formed(self, network):
        import xml.etree.ElementTree as ET

        from repro.core.output import network_to_xml

        root = ET.fromstring(network_to_xml(network))
        assert len(root.findall("Module")) == network.n_modules
