"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.data.synthetic import make_module_dataset
from repro.datatypes import ExpressionMatrix


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 24 x 12 module-structured data set (fast end-to-end runs)."""
    return make_module_dataset(24, 12, n_modules=3, seed=42)


@pytest.fixture(scope="session")
def small_dataset():
    """A 40 x 20 module-structured data set."""
    return make_module_dataset(40, 20, n_modules=4, seed=13)


@pytest.fixture(scope="session")
def tiny_matrix(tiny_dataset) -> ExpressionMatrix:
    return tiny_dataset.matrix


@pytest.fixture(scope="session")
def small_matrix(small_dataset) -> ExpressionMatrix:
    return small_dataset.matrix


@pytest.fixture()
def fast_config() -> LearnerConfig:
    """Minimum-run-time configuration (the paper's experimental setting)."""
    return LearnerConfig(max_sampling_steps=5)


@pytest.fixture(scope="session")
def rng_np():
    return np.random.default_rng(2024)
