"""Distributed Task 1: pool-parallel GaneSH on the task-pool executor.

The contracts under test (the paper's Section 4.2 consistency property
applied to Task 1, plus the resume/failure semantics of the executor):

* the parallel G-run ensemble is bit-identical to the sequential learner
  for every worker count, both RNG backends, and any dispatch/completion
  order (exercised via the executor's ``dispatch_order_hook``);
* a run interrupted after k of G checkpoints re-executes only the G-k
  missing runs and produces the identical consensus modules;
* a worker process dying mid-run surfaces as ``WorkerCrashedError`` (not
  a hang), leaves the completed checkpoints valid, and the retry resumes
  from them;
* one ``learn`` call constructs one pool and ships the matrix once even
  when Tasks 1 and 3 both ride the executor.
"""

import os

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner, _GaneshCheckpoints
from repro.parallel import poolutil
from repro.parallel.executor import (
    TaskPoolExecutor,
    WorkerCrashedError,
    _ganesh_run,
)
from repro.parallel.trace import WorkTrace


G_RUNS = 5
SEED = 17


@pytest.fixture(scope="module")
def setup(request):
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
    config = LearnerConfig(n_ganesh_runs=G_RUNS, max_sampling_steps=5)
    reference = LemonTreeLearner(config).sample_clusterings(matrix, seed=SEED)
    return matrix, config, reference


def _parents(matrix, config):
    return np.asarray(config.resolve_candidate_parents(matrix.n_vars), np.int64)


def _assert_same_ensemble(samples, reference):
    assert len(samples) == len(reference)
    for got, want in zip(samples, reference):
        np.testing.assert_array_equal(got, want)


class TestEquivalence:
    @pytest.mark.parametrize(
        "n_workers", [1, 2, pytest.param(4, marks=pytest.mark.slow)]
    )
    def test_bit_identical_across_worker_counts(self, setup, n_workers):
        matrix, config, reference = setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=n_workers))
        samples = LemonTreeLearner(cfg).sample_clusterings(matrix, seed=SEED)
        _assert_same_ensemble(samples, reference)

    @pytest.mark.parametrize(
        "n_workers", [2, pytest.param(4, marks=pytest.mark.slow)]
    )
    def test_bit_identical_mrg_backend(self, setup, n_workers):
        matrix, config, _ = setup
        cfg = config.with_updates(rng_backend="mrg")
        reference = LemonTreeLearner(cfg).sample_clusterings(matrix, seed=SEED)
        samples = LemonTreeLearner(
            cfg.with_updates(parallel=ParallelConfig(n_workers=n_workers))
        ).sample_clusterings(matrix, seed=SEED)
        _assert_same_ensemble(samples, reference)

    @pytest.mark.parametrize("permute", ["reverse", "shuffle"])
    def test_out_of_order_dispatch(self, setup, permute):
        """Shuffled dispatch (hence shuffled completion) must not change
        the ensemble: results are reassembled by run index."""
        matrix, config, reference = setup

        def hook(order):
            if permute == "reverse":
                return list(reversed(order))
            rng = np.random.default_rng(99)
            return list(rng.permutation(order))

        TaskPoolExecutor.dispatch_order_hook = staticmethod(hook)
        try:
            cfg = config.with_updates(parallel=ParallelConfig(n_workers=2))
            samples = LemonTreeLearner(cfg).sample_clusterings(matrix, seed=SEED)
        finally:
            TaskPoolExecutor.dispatch_order_hook = None
        _assert_same_ensemble(samples, reference)

    def test_full_learn_bit_identical(self, setup):
        """The whole pipeline (Tasks 1-3) with the pool equals sequential."""
        matrix, config, _ = setup
        sequential = LemonTreeLearner(config).learn(matrix, seed=SEED).network
        parallel = LemonTreeLearner(
            config.with_updates(parallel=ParallelConfig(n_workers=2))
        ).learn(matrix, seed=SEED).network
        assert parallel == sequential

    def test_trace_recorded_with_pool(self, setup):
        """Worker busy times and per-run supersteps come back from the
        pool, merged in ascending run order."""
        matrix, config, _ = setup
        seq_trace = WorkTrace()
        LemonTreeLearner(config).sample_clusterings(
            matrix, seed=SEED, trace=seq_trace
        )
        par_trace = WorkTrace()
        LemonTreeLearner(config.with_updates(parallel=ParallelConfig(n_workers=2))).sample_clusterings(
            matrix, seed=SEED, trace=par_trace
        )
        assert par_trace.worker_times
        assert [(s.phase, s.run) for s in par_trace.steps] == [
            (s.phase, s.run) for s in seq_trace.steps
        ]
        for a, b in zip(par_trace.steps, seq_trace.steps):
            np.testing.assert_array_equal(a.costs, b.costs)


class TestResume:
    def _checkpoint_files(self, directory):
        return sorted(directory.glob("ganesh_*.npz"))

    def test_only_missing_runs_reexecute(self, setup, tmp_path):
        """Delete k of G checkpoints; the resumed run recreates exactly
        those k files and leaves the survivors untouched (byte-for-byte
        the same inode content — they are never rewritten)."""
        matrix, config, reference = setup
        cfg = config.with_updates(parallel=ParallelConfig(n_workers=2))
        LemonTreeLearner(cfg).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        files = self._checkpoint_files(tmp_path)
        assert [f.name for f in files] == [
            f"ganesh_{g}.npz" for g in range(G_RUNS)
        ]
        for killed in (1, 3):
            (tmp_path / f"ganesh_{killed}.npz").unlink()
        survivor_stamps = {
            f.name: f.stat().st_mtime_ns for f in self._checkpoint_files(tmp_path)
        }

        samples = LemonTreeLearner(cfg).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        _assert_same_ensemble(samples, reference)
        for f in self._checkpoint_files(tmp_path):
            if f.name in survivor_stamps:
                assert f.stat().st_mtime_ns == survivor_stamps[f.name]
        assert len(self._checkpoint_files(tmp_path)) == G_RUNS

    def test_sequential_resumes_parallel_checkpoints(self, setup, tmp_path):
        """Checkpoints written by pool workers are valid for a sequential
        resume (and vice versa) — one on-disk format, one fingerprint."""
        matrix, config, reference = setup
        LemonTreeLearner(config.with_updates(parallel=ParallelConfig(n_workers=2))).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        samples = LemonTreeLearner(config).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        _assert_same_ensemble(samples, reference)

    def test_full_learn_consensus_unchanged_after_resume(self, setup, tmp_path):
        """Interrupt after k runs, relearn: the final consensus modules
        (and network) equal the uninterrupted run's."""
        matrix, config, _ = setup
        reference = LemonTreeLearner(config).learn(matrix, seed=SEED).network
        # "Interrupt": persist only k of the G runs, as a killed pool would.
        checkpoints = _GaneshCheckpoints(tmp_path, SEED, config, matrix.n_vars)
        learner = LemonTreeLearner(config)
        samples = learner.sample_clusterings(matrix, seed=SEED)
        for g in (0, 2):
            checkpoints.store(g, samples[g])

        resumed = LemonTreeLearner(config.with_updates(parallel=ParallelConfig(n_workers=2))).learn(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        assert resumed.network == reference

    def test_foreign_fingerprint_ignored(self, setup, tmp_path):
        """A checkpoint written under different sweep parameters is
        re-executed, not silently reused."""
        matrix, config, reference = setup
        other = config.with_updates(n_update_steps=2)
        LemonTreeLearner(other).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        samples = LemonTreeLearner(config).sample_clusterings(
            matrix, seed=SEED, checkpoint_dir=tmp_path
        )
        _assert_same_ensemble(samples, reference)


def _die_on_first_item(ctx, item):
    """Test task: kill the worker process outright on item 0."""
    g, want_trace = item
    if g == 0:
        os._exit(13)
    return _ganesh_run(ctx, item)


class TestWorkerCrash:
    def test_dead_worker_raises_and_checkpoints_survive(self, setup, tmp_path):
        """A worker dying mid-run is detected (no hang); the surviving
        runs' checkpoints make the retry execute only the lost runs."""
        matrix, config, reference = setup
        parents = _parents(matrix, config)
        with TaskPoolExecutor(
            matrix.values, parents, config.with_updates(parallel=ParallelConfig(n_workers=2)), SEED,
            checkpoint_dir=tmp_path, crash_poll_seconds=0.2,
        ) as executor:
            with pytest.raises(WorkerCrashedError):
                executor.submit_runs(
                    _die_on_first_item,
                    [(g, False) for g in range(G_RUNS)],
                    schedule="dynamic",
                )
        # Run 0 died; at least one other run completed and checkpointed.
        names = {f.name for f in tmp_path.glob("ganesh_*.npz")}
        assert "ganesh_0.npz" not in names
        assert names

        samples = LemonTreeLearner(
            config.with_updates(parallel=ParallelConfig(n_workers=2))
        ).sample_clusterings(matrix, seed=SEED, checkpoint_dir=tmp_path)
        _assert_same_ensemble(samples, reference)

    def test_segment_unlinked_after_crash(self, setup, tmp_path):
        """The shared-memory matrix never outlives the executor, even when
        the pool is torn down around a crashed worker."""
        from multiprocessing import shared_memory

        matrix, config, _ = setup
        parents = _parents(matrix, config)
        executor = TaskPoolExecutor(
            matrix.values, parents, config.with_updates(parallel=ParallelConfig(n_workers=2)), SEED,
            checkpoint_dir=tmp_path, crash_poll_seconds=0.2,
        )
        try:
            with pytest.raises(WorkerCrashedError):
                executor.submit_runs(
                    _die_on_first_item, [(g, False) for g in range(G_RUNS)]
                )
            segment = executor._shared.spec[0]
        finally:
            executor.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)


class TestSingleTransfer:
    def test_one_pool_one_transfer_across_tasks(self, setup):
        """One ``learn`` call with Tasks 1 and 3 both parallel: exactly one
        pool construction, one shared-memory transfer, one initializer run
        per worker."""
        matrix, config, _ = setup
        poolutil.reset_counters()
        result = LemonTreeLearner(
            config.with_updates(parallel=ParallelConfig(n_workers=2))
        ).learn(matrix, seed=SEED)
        counts = poolutil.counters()
        assert counts["pool_constructions"] == 1
        assert counts["matrix_transfers"] == 1
        stats = result.stats["executor"]
        assert stats["pools_constructed"] == 1
        assert stats["matrix_transfers"] == 1
        assert stats["worker_inits"] == stats["n_workers"] == 2

    def test_single_run_skips_pool_for_task1(self, setup):
        """G = 1 has no Task 1 parallelism: the executor must not spin the
        pool up for it (lazy construction) but still serves Task 3."""
        matrix, config, _ = setup
        poolutil.reset_counters()
        cfg = config.with_updates(n_ganesh_runs=1, parallel=ParallelConfig(n_workers=2))
        LemonTreeLearner(cfg).learn(matrix, seed=SEED)
        assert poolutil.counters()["pool_constructions"] == 1
