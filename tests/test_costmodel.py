"""Tests for the machine model and block-partition accounting."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.costmodel import (
    MachineModel,
    block_bounds,
    block_range,
    block_sums,
    load_imbalance,
    max_block_sum,
)


class TestMachineModel:
    def test_defaults_positive(self):
        model = MachineModel()
        assert model.tau > 0 and model.mu > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MachineModel(tau=-1.0)

    def test_serial_comm_is_free(self):
        assert MachineModel().collective_time(100, p=1) == 0.0

    def test_log_scaling(self):
        model = MachineModel(tau=1.0, mu=0.0)
        assert model.collective_time(1, p=4) == pytest.approx(2.0)
        assert model.collective_time(1, p=16) == pytest.approx(4.0)

    def test_word_scaling(self):
        model = MachineModel(tau=0.0, mu=1.0)
        assert model.collective_time(10, p=2) == pytest.approx(10.0)

    def test_count_multiplies(self):
        model = MachineModel(tau=1.0, mu=0.0)
        assert model.collective_time(1, p=2, count=5) == pytest.approx(5.0)
        assert model.collective_time(1, p=2, count=0) == 0.0

    def test_point_to_point(self):
        model = MachineModel(tau=2.0, mu=0.5)
        assert model.point_to_point(4) == pytest.approx(4.0)


class TestBlockBounds:
    @given(n=st.integers(0, 200), p=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, n, p):
        bounds = block_bounds(n, p)
        assert len(bounds) == p
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        sizes = [hi - lo for lo, hi in bounds]
        assert all(s >= 0 for s in sizes)
        assert max(sizes) - min(sizes) <= 1  # equal-count to within one
        for (lo1, hi1), (lo2, _hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            block_bounds(10, 0)

    @given(n=st.integers(0, 100), p=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_block_range_matches_bounds(self, n, p):
        bounds = block_bounds(n, p)
        for rank in range(p):
            assert block_range(n, p, rank) == bounds[rank]


class TestBlockSums:
    @given(
        st.lists(st.floats(0, 100), min_size=0, max_size=60),
        st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_sums_cover_total(self, costs, p):
        costs = np.array(costs)
        sums = block_sums(costs, p)
        assert sums.shape == (p,)
        assert sums.sum() == pytest.approx(costs.sum(), abs=1e-9)

    def test_matches_manual_partition(self):
        costs = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        np.testing.assert_allclose(block_sums(costs, 2), [6.0, 9.0])
        np.testing.assert_allclose(block_sums(costs, 5), costs)

    @given(
        st.lists(st.floats(0, 100), min_size=1, max_size=60),
        st.integers(1, 12),
    )
    @settings(max_examples=60, deadline=None)
    def test_max_block_sum_consistency(self, costs, p):
        costs = np.array(costs)
        assert max_block_sum(costs, p) == pytest.approx(
            float(block_sums(costs, p).max()), abs=1e-9
        )

    def test_max_with_p_exceeding_items(self):
        costs = np.array([3.0, 7.0])
        assert max_block_sum(costs, 10) == 7.0

    def test_empty(self):
        assert max_block_sum(np.zeros(0), 4) == 0.0


class TestLoadImbalance:
    def test_uniform_costs_balance(self):
        assert load_imbalance(np.ones(100), 4) == pytest.approx(0.0)

    def test_imbalance_grows_with_p_for_skewed_costs(self):
        """The Section 5.3.1 phenomenon: with heavy-tailed per-item costs
        the (max - mean)/mean metric increases with processor count."""
        rng = np.random.default_rng(0)
        costs = rng.pareto(1.5, size=20000) + 1
        imb = [load_imbalance(costs, p) for p in (4, 64, 1024)]
        assert imb[0] < imb[1] < imb[2]

    def test_zero_work(self):
        assert load_imbalance(np.zeros(10), 4) == 0.0

    def test_definition(self):
        costs = np.array([1.0, 1.0, 4.0, 0.0])
        sums = block_sums(costs, 2)  # [2, 4]
        expected = (sums.max() - sums.mean()) / sums.mean()
        assert load_imbalance(costs, 2) == pytest.approx(expected)
