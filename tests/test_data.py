"""Tests for the synthetic data generator and matrix I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.io import read_expression_tsv, write_expression_tsv
from repro.data.synthetic import (
    THALIANA_SHAPE,
    YEAST_SHAPE,
    make_module_dataset,
    thaliana_like,
    yeast_like,
)


class TestMakeModuleDataset:
    def test_shape(self):
        ds = make_module_dataset(30, 15, seed=0)
        assert ds.matrix.shape == (30, 15)

    def test_deterministic(self):
        a = make_module_dataset(20, 10, seed=3)
        b = make_module_dataset(20, 10, seed=3)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)
        np.testing.assert_array_equal(a.truth.module_of_gene, b.truth.module_of_gene)

    def test_seed_changes_data(self):
        a = make_module_dataset(20, 10, seed=1)
        b = make_module_dataset(20, 10, seed=2)
        assert not np.allclose(a.matrix.values, b.matrix.values)

    def test_ground_truth_consistent(self):
        ds = make_module_dataset(40, 20, n_modules=5, seed=4)
        truth = ds.truth
        assert truth.n_modules == 5
        assert truth.module_of_gene.shape == (40,)
        assert truth.module_of_gene.max() < 5
        for module in range(5):
            assert (truth.module_of_gene == module).any()  # no empty modules
            regs = truth.regulators_of(module)
            assert 1 <= len(regs) <= 2
            program = truth.programs[module]
            assert len(program.leaf_means) == 2 ** len(program.regulators)

    def test_module_structure_is_detectable(self):
        """Within-module correlation must exceed between-module correlation
        (otherwise the learner has nothing to find)."""
        ds = make_module_dataset(40, 60, n_modules=4, noise=0.3, heavy_tail=0.0, seed=5)
        values = ds.matrix.values
        corr = np.corrcoef(values)
        labels = ds.truth.module_of_gene
        same = np.asarray(labels)[:, None] == np.asarray(labels)[None, :]
        np.fill_diagonal(same, False)
        within = corr[same].mean()
        between = corr[~same & ~np.eye(40, dtype=bool)].mean()
        assert within > between + 0.1

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            make_module_dataset(2, 10)

    def test_finite_values(self):
        ds = make_module_dataset(25, 12, seed=6)
        assert np.isfinite(ds.matrix.values).all()

    def test_default_module_scaling(self):
        small = make_module_dataset(24, 10, seed=0)
        large = make_module_dataset(240, 10, seed=0)
        assert large.truth.n_modules > small.truth.n_modules


class TestGeneratorProperties:
    """Hypothesis invariants of the generative process itself — the
    scenario matrix trusts these to hold for every sampled cell."""

    params = st.fixed_dictionaries(
        {
            "n_vars": st.integers(min_value=4, max_value=48),
            "n_obs": st.integers(min_value=4, max_value=24),
            "noise": st.floats(min_value=0.0, max_value=2.0),
            "heavy_tail": st.floats(min_value=0.0, max_value=0.9),
            "missing_rate": st.floats(min_value=0.0, max_value=0.8),
            "seed": st.integers(min_value=0, max_value=2**31 - 1),
        }
    )

    @settings(max_examples=40, deadline=None)
    @given(params=params)
    def test_seed_determinism(self, params):
        a = make_module_dataset(**params)
        b = make_module_dataset(**params)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)
        np.testing.assert_array_equal(
            a.truth.module_of_gene, b.truth.module_of_gene
        )
        assert a.truth.programs == b.truth.programs

    @settings(max_examples=40, deadline=None)
    @given(params=params)
    def test_ground_truth_invariants(self, params):
        ds = make_module_dataset(**params)
        truth = ds.truth
        n_vars = params["n_vars"]
        # Labels cover every gene, hit every module, and index programs.
        assert truth.module_of_gene.shape == (n_vars,)
        assert truth.module_of_gene.min() >= 0
        assert truth.module_of_gene.max() < truth.n_modules
        assert len(np.unique(truth.module_of_gene)) == truth.n_modules
        for program in truth.programs:
            # One threshold per regulator; one leaf mean per program leaf.
            assert len(program.thresholds) == len(program.regulators)
            assert len(program.leaf_means) == 2 ** len(program.regulators)

    @settings(max_examples=40, deadline=None)
    @given(params=params)
    def test_missingness_contract(self, params):
        ds = make_module_dataset(**params)
        values = ds.matrix.values
        assert not np.isinf(values).any()
        if params["missing_rate"] == 0.0:
            assert ds.missing_mask is None
            assert not np.isnan(values).any()
        else:
            assert ds.missing_mask is not None
            np.testing.assert_array_equal(np.isnan(values), ds.missing_mask)
            # Every variable keeps at least one observed value, so
            # row-mean imputation is always defined and complete.
            assert (~ds.missing_mask).any(axis=1).all()
            imputed = ds.matrix.impute_missing()
            assert np.isfinite(imputed.values).all()
            observed = ~ds.missing_mask
            np.testing.assert_array_equal(
                imputed.values[observed], values[observed]
            )

    @settings(max_examples=20, deadline=None)
    @given(
        scale=st.floats(min_value=1 / 512, max_value=1 / 16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_preset_scale_factors(self, scale, seed):
        ds = yeast_like(scale=scale, seed=seed)
        assert ds.matrix.n_vars == max(8, round(YEAST_SHAPE[0] * scale))
        assert ds.matrix.n_obs == max(8, round(YEAST_SHAPE[1] * scale))

    def test_rejects_bad_missing_rate(self):
        with pytest.raises(ValueError, match="missing_rate"):
            make_module_dataset(8, 8, missing_rate=1.0)
        with pytest.raises(ValueError, match="missing_rate"):
            make_module_dataset(8, 8, missing_rate=-0.1)


class TestPresets:
    def test_yeast_like_shape_scales(self):
        ds = yeast_like(scale=1 / 100)
        assert ds.matrix.n_vars == round(YEAST_SHAPE[0] / 100)
        assert ds.matrix.n_obs == round(YEAST_SHAPE[1] / 100)
        assert "yeast" in ds.name

    def test_thaliana_like_shape_scales(self):
        ds = thaliana_like(scale=1 / 200)
        assert ds.matrix.n_vars == round(THALIANA_SHAPE[0] / 200)
        assert "thaliana" in ds.name

    def test_thaliana_bigger_than_yeast(self):
        y = yeast_like(scale=1 / 100)
        t = thaliana_like(scale=1 / 100)
        assert t.matrix.n_vars > y.matrix.n_vars
        assert t.matrix.n_obs > y.matrix.n_obs

    def test_minimum_size_floor(self):
        ds = yeast_like(scale=1e-6)
        assert ds.matrix.n_vars >= 8 and ds.matrix.n_obs >= 8


class TestIO:
    def test_roundtrip(self, tmp_path):
        ds = make_module_dataset(12, 7, seed=7)
        path = tmp_path / "matrix.tsv"
        write_expression_tsv(ds.matrix, path)
        back = read_expression_tsv(path)
        np.testing.assert_allclose(back.values, ds.matrix.values, rtol=1e-9)
        assert back.var_names == ds.matrix.var_names
        assert back.obs_names == ds.matrix.obs_names

    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    def test_parallel_read_matches_serial(self, tmp_path, p):
        """The block-distributed read (Section 5.3) is value-identical."""
        ds = make_module_dataset(13, 6, seed=8)
        path = tmp_path / "matrix.tsv"
        write_expression_tsv(ds.matrix, path)
        serial = read_expression_tsv(path, p=1)
        parallel = read_expression_tsv(path, p=p)
        np.testing.assert_array_equal(parallel.values, serial.values)
        assert parallel.var_names == serial.var_names

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("JUSTONECELL\n")
        with pytest.raises(ValueError):
            read_expression_tsv(path)

    def test_row_without_values(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("GENE\tc1\ngene1\n")
        with pytest.raises(ValueError):
            read_expression_tsv(path)

    def test_inconsistent_row_length(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("GENE\tc1\tc2\ngene1\t1.0\n")
        with pytest.raises(ValueError):
            read_expression_tsv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("GENE\tc1\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_expression_tsv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("GENE\tc1\tc2\ng1\t1.0\t2.0\n\ng2\t3.0\t4.0\n")
        matrix = read_expression_tsv(path)
        assert matrix.n_vars == 2
