"""Tests for the partitioning-scheme ablation (Section 3.2.3 / 5.3.1 / 6)."""

import numpy as np
import pytest

from repro.parallel.scheduler import (
    chunked_lpt_schedule,
    flat_schedule,
    grouped_schedule,
    imbalance_sweep,
    lpt_schedule,
    placement_lpt_schedule,
)


def _skewed_workload(seed=0, n_groups=40):
    """Node-grouped split costs with heavy-tailed group sizes, mimicking
    the real candidate-split list (few huge nodes, many small ones)."""
    rng = np.random.default_rng(seed)
    group_sizes = (rng.pareto(1.2, size=n_groups) * 20 + 5).astype(np.int64)
    costs = rng.gamma(2.0, 3.0, size=int(group_sizes.sum()))
    return costs, group_sizes


class TestFlatSchedule:
    def test_covers_all_work(self):
        costs, _ = _skewed_workload()
        result = flat_schedule(costs, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())
        assert result.p == 8 and result.scheme == "flat"

    def test_uniform_costs_perfectly_balanced(self):
        result = flat_schedule(np.ones(64), 8)
        assert result.imbalance == pytest.approx(0.0)

    def test_makespan_at_least_mean(self):
        costs, _ = _skewed_workload(1)
        result = flat_schedule(costs, 16)
        assert result.makespan >= result.mean


class TestGroupedSchedule:
    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(2)
        result = grouped_schedule(costs, sizes, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            grouped_schedule(np.ones(10), np.array([3, 3]), 2)

    def test_flat_beats_grouped_on_skewed_work(self):
        """The paper's argument for flat partitioning: coarse per-node
        assignment suffers visibly worse imbalance."""
        wins = 0
        for seed in range(5):
            costs, sizes = _skewed_workload(seed)
            p = 16
            if flat_schedule(costs, p).makespan <= grouped_schedule(costs, sizes, p).makespan:
                wins += 1
        assert wins >= 4


class TestLptSchedule:
    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(3)
        result = lpt_schedule(costs, sizes, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())

    def test_lpt_beats_round_robin(self):
        """Dynamic balancing (future work, Section 6) improves on the
        coarse static assignment."""
        costs, sizes = _skewed_workload(4)
        p = 16
        assert (
            lpt_schedule(costs, sizes, p).makespan
            <= grouped_schedule(costs, sizes, p).makespan + 1e-9
        )

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            lpt_schedule(np.ones(5), np.array([2, 2]), 2)

    def test_lpt_within_4_3_of_lower_bound(self):
        """Graham's bound: LPT makespan <= (4/3 - 1/3p) * OPT, and OPT >=
        max(mean load, largest group)."""
        costs, sizes = _skewed_workload(5)
        p = 8
        result = lpt_schedule(costs, sizes, p)
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        group_costs = [costs[a:b].sum() for a, b in zip(bounds[:-1], bounds[1:])]
        lower = max(costs.sum() / p, max(group_costs))
        assert result.makespan <= (4 / 3) * lower + 1e-9


class TestChunkedLpt:
    def test_covers_all_work(self):
        costs, _ = _skewed_workload(7)
        result = chunked_lpt_schedule(costs, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())
        assert result.scheme == "chunked-lpt"

    def test_beats_flat_on_skewed_work(self):
        """The future-work dynamic schedule improves on static flat blocks
        once per-item costs are heavy-tailed."""
        rng = np.random.default_rng(8)
        costs = rng.pareto(1.2, size=5000) + 1
        p = 64
        assert (
            chunked_lpt_schedule(costs, p).makespan
            <= flat_schedule(costs, p).makespan + 1e-9
        )

    def test_not_limited_by_one_huge_group(self):
        """Unlike node-level LPT, a single expensive contiguous region can
        be subdivided."""
        costs = np.concatenate([np.full(1000, 10.0), np.full(1000, 0.1)])
        group_sizes = np.array([1000, 1000])
        p = 10
        node_level = lpt_schedule(costs, group_sizes, p)
        chunked = chunked_lpt_schedule(costs, p)
        assert chunked.makespan < node_level.makespan


class TestImbalanceSweep:
    def test_monotone_growth_on_heavy_tails(self):
        rng = np.random.default_rng(6)
        costs = rng.pareto(1.3, size=50000) + 1
        sweep = imbalance_sweep(costs, [8, 128, 2048])
        assert sweep[8] < sweep[128] < sweep[2048]

    def test_keys_are_processor_counts(self):
        sweep = imbalance_sweep(np.ones(100), [2, 4])
        assert set(sweep) == {2, 4}


class TestPlacementLpt:
    def _placement(self, domains, n_workers):
        from repro.parallel.topology import MachineTopology, plan_placement

        topology = MachineTopology(
            numa_domains=tuple(tuple(range(i * 4, i * 4 + c)) for i, c in enumerate(domains)),
            source="sysfs",
        )
        return plan_placement(topology, n_workers)

    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(3)
        result = placement_lpt_schedule(costs, sizes, self._placement((4, 4), 8))
        assert result.per_rank.size == 8
        assert result.scheme == "placement-lpt"
        # Remote penalties inflate effective work, so total >= raw sum.
        assert result.per_rank.sum() >= costs.sum() - 1e-9

    def test_flat_placement_degenerates_to_lpt(self):
        costs, sizes = _skewed_workload(4)
        placement = self._placement((8,), 8)
        with_placement = placement_lpt_schedule(costs, sizes, placement)
        plain = lpt_schedule(costs, sizes, 8)
        np.testing.assert_allclose(
            np.sort(with_placement.per_rank), np.sort(plain.per_rank)
        )

    def test_no_penalty_matches_plain_lpt_makespan(self):
        costs, sizes = _skewed_workload(5)
        placement = self._placement((4, 4), 8)
        result = placement_lpt_schedule(costs, sizes, placement, remote_penalty=1.0)
        plain = lpt_schedule(costs, sizes, 8)
        assert result.makespan == pytest.approx(plain.makespan)

    def test_penalty_steers_groups_home(self):
        # Two domains, uniform groups: with a stiff penalty every group
        # should land in its home domain and the schedule stays balanced.
        sizes = np.full(16, 4, dtype=np.int64)
        costs = np.ones(int(sizes.sum()))
        placement = self._placement((4, 4), 4)
        result = placement_lpt_schedule(costs, sizes, placement, remote_penalty=10.0)
        assert result.makespan == pytest.approx(costs.sum() / 4)

    def test_rejects_bad_inputs(self):
        costs, sizes = _skewed_workload(6)
        placement = self._placement((4, 4), 4)
        with pytest.raises(ValueError):
            placement_lpt_schedule(costs, sizes[:-1], placement)
        with pytest.raises(ValueError):
            placement_lpt_schedule(costs, sizes, placement, remote_penalty=0.5)
