"""Tests for the partitioning-scheme ablation (Section 3.2.3 / 5.3.1 / 6)
and the domain-affine steal dispatch (model and executor)."""

import time

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.data.synthetic import make_module_dataset
from repro.parallel.executor import TaskPoolExecutor
from repro.parallel.scheduler import (
    chunked_lpt_schedule,
    flat_schedule,
    grouped_schedule,
    imbalance_sweep,
    lpt_schedule,
    placement_lpt_schedule,
    placement_steal_schedule,
)
from repro.parallel.topology import (
    MachineTopology,
    available_cpus,
    plan_placement,
)
from repro.parallel.trace import WorkTrace


def _skewed_workload(seed=0, n_groups=40):
    """Node-grouped split costs with heavy-tailed group sizes, mimicking
    the real candidate-split list (few huge nodes, many small ones)."""
    rng = np.random.default_rng(seed)
    group_sizes = (rng.pareto(1.2, size=n_groups) * 20 + 5).astype(np.int64)
    costs = rng.gamma(2.0, 3.0, size=int(group_sizes.sum()))
    return costs, group_sizes


def _placement(domains, n_workers):
    """A synthetic multi-domain placement (cores need not be schedulable —
    the schedule models are analysis-only)."""
    topology = MachineTopology(
        numa_domains=tuple(
            tuple(range(i * 4, i * 4 + c)) for i, c in enumerate(domains)
        ),
        source="sysfs",
    )
    return plan_placement(topology, n_workers)


class TestFlatSchedule:
    def test_covers_all_work(self):
        costs, _ = _skewed_workload()
        result = flat_schedule(costs, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())
        assert result.p == 8 and result.scheme == "flat"

    def test_uniform_costs_perfectly_balanced(self):
        result = flat_schedule(np.ones(64), 8)
        assert result.imbalance == pytest.approx(0.0)

    def test_makespan_at_least_mean(self):
        costs, _ = _skewed_workload(1)
        result = flat_schedule(costs, 16)
        assert result.makespan >= result.mean


class TestGroupedSchedule:
    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(2)
        result = grouped_schedule(costs, sizes, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            grouped_schedule(np.ones(10), np.array([3, 3]), 2)

    def test_flat_beats_grouped_on_skewed_work(self):
        """The paper's argument for flat partitioning: coarse per-node
        assignment suffers visibly worse imbalance."""
        wins = 0
        for seed in range(5):
            costs, sizes = _skewed_workload(seed)
            p = 16
            if flat_schedule(costs, p).makespan <= grouped_schedule(costs, sizes, p).makespan:
                wins += 1
        assert wins >= 4


class TestLptSchedule:
    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(3)
        result = lpt_schedule(costs, sizes, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())

    def test_lpt_beats_round_robin(self):
        """Dynamic balancing (future work, Section 6) improves on the
        coarse static assignment."""
        costs, sizes = _skewed_workload(4)
        p = 16
        assert (
            lpt_schedule(costs, sizes, p).makespan
            <= grouped_schedule(costs, sizes, p).makespan + 1e-9
        )

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            lpt_schedule(np.ones(5), np.array([2, 2]), 2)

    def test_lpt_within_4_3_of_lower_bound(self):
        """Graham's bound: LPT makespan <= (4/3 - 1/3p) * OPT, and OPT >=
        max(mean load, largest group)."""
        costs, sizes = _skewed_workload(5)
        p = 8
        result = lpt_schedule(costs, sizes, p)
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        group_costs = [costs[a:b].sum() for a, b in zip(bounds[:-1], bounds[1:])]
        lower = max(costs.sum() / p, max(group_costs))
        assert result.makespan <= (4 / 3) * lower + 1e-9


class TestChunkedLpt:
    def test_covers_all_work(self):
        costs, _ = _skewed_workload(7)
        result = chunked_lpt_schedule(costs, 8)
        assert result.per_rank.sum() == pytest.approx(costs.sum())
        assert result.scheme == "chunked-lpt"

    def test_beats_flat_on_skewed_work(self):
        """The future-work dynamic schedule improves on static flat blocks
        once per-item costs are heavy-tailed."""
        rng = np.random.default_rng(8)
        costs = rng.pareto(1.2, size=5000) + 1
        p = 64
        assert (
            chunked_lpt_schedule(costs, p).makespan
            <= flat_schedule(costs, p).makespan + 1e-9
        )

    def test_not_limited_by_one_huge_group(self):
        """Unlike node-level LPT, a single expensive contiguous region can
        be subdivided."""
        costs = np.concatenate([np.full(1000, 10.0), np.full(1000, 0.1)])
        group_sizes = np.array([1000, 1000])
        p = 10
        node_level = lpt_schedule(costs, group_sizes, p)
        chunked = chunked_lpt_schedule(costs, p)
        assert chunked.makespan < node_level.makespan


class TestImbalanceSweep:
    def test_monotone_growth_on_heavy_tails(self):
        rng = np.random.default_rng(6)
        costs = rng.pareto(1.3, size=50000) + 1
        sweep = imbalance_sweep(costs, [8, 128, 2048])
        assert sweep[8] < sweep[128] < sweep[2048]

    def test_keys_are_processor_counts(self):
        sweep = imbalance_sweep(np.ones(100), [2, 4])
        assert set(sweep) == {2, 4}


class TestPlacementLpt:
    def _placement(self, domains, n_workers):
        return _placement(domains, n_workers)

    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(3)
        result = placement_lpt_schedule(costs, sizes, self._placement((4, 4), 8))
        assert result.per_rank.size == 8
        assert result.scheme == "placement-lpt"
        # Remote penalties inflate effective work, so total >= raw sum.
        assert result.per_rank.sum() >= costs.sum() - 1e-9

    def test_flat_placement_degenerates_to_lpt(self):
        costs, sizes = _skewed_workload(4)
        placement = self._placement((8,), 8)
        with_placement = placement_lpt_schedule(costs, sizes, placement)
        plain = lpt_schedule(costs, sizes, 8)
        np.testing.assert_allclose(
            np.sort(with_placement.per_rank), np.sort(plain.per_rank)
        )

    def test_no_penalty_matches_plain_lpt_makespan(self):
        costs, sizes = _skewed_workload(5)
        placement = self._placement((4, 4), 8)
        result = placement_lpt_schedule(costs, sizes, placement, remote_penalty=1.0)
        plain = lpt_schedule(costs, sizes, 8)
        assert result.makespan == pytest.approx(plain.makespan)

    def test_penalty_steers_groups_home(self):
        # Two domains, uniform groups: with a stiff penalty every group
        # should land in its home domain and the schedule stays balanced.
        sizes = np.full(16, 4, dtype=np.int64)
        costs = np.ones(int(sizes.sum()))
        placement = self._placement((4, 4), 4)
        result = placement_lpt_schedule(costs, sizes, placement, remote_penalty=10.0)
        assert result.makespan == pytest.approx(costs.sum() / 4)

    def test_rejects_bad_inputs(self):
        costs, sizes = _skewed_workload(6)
        placement = self._placement((4, 4), 4)
        with pytest.raises(ValueError):
            placement_lpt_schedule(costs, sizes[:-1], placement)
        with pytest.raises(ValueError):
            placement_lpt_schedule(costs, sizes, placement, remote_penalty=0.5)

class TestPlacementSteal:
    """The fake-clock model of the executor's domain-affine steal dispatch."""

    def test_covers_all_work(self):
        costs, sizes = _skewed_workload(3)
        result = placement_steal_schedule(costs, sizes, _placement((4, 4), 8))
        assert result.scheme == "placement-steal"
        assert result.per_rank.size == 8
        # Work conserving: every group runs exactly once, at raw cost when
        # local and at most remote_penalty times it when stolen.
        assert costs.sum() - 1e-9 <= result.per_rank.sum() <= 1.3 * costs.sum() + 1e-9

    def test_deterministic_clock_hand_checked(self):
        # Two domains, one worker each.  Domain 0's queue holds groups of
        # cost 10 and 6 (LPT order), domain 1's a single cost-1 group.
        # Rank 1 finishes its home group at t=1, finds its queue empty and
        # steals the cost-6 group at 1.3x: finish 1 + 7.8 = 8.8.  Rank 0
        # runs its cost-10 group: makespan 10, zero idle time.
        costs = np.array([5.0, 5.0, 3.0, 3.0] + [0.25] * 4)
        sizes = np.array([2, 2, 4], dtype=np.int64)
        placement = _placement((4, 4), 2)
        result = placement_steal_schedule(costs, sizes, placement)
        np.testing.assert_allclose(np.sort(result.per_rank), [8.8, 10.0])
        assert result.makespan == pytest.approx(10.0)
        # A stiffer penalty scales only the stolen group's execution.
        stiff = placement_steal_schedule(costs, sizes, placement, remote_penalty=2.0)
        np.testing.assert_allclose(np.sort(stiff.per_rank), [10.0, 13.0])

    def test_repeated_runs_identical(self):
        costs, sizes = _skewed_workload(9)
        placement = _placement((4, 4), 8)
        a = placement_steal_schedule(costs, sizes, placement)
        b = placement_steal_schedule(costs, sizes, placement)
        np.testing.assert_array_equal(a.per_rank, b.per_rank)

    def test_flat_placement_degenerates_to_lpt(self):
        for seed in range(10):
            costs, sizes = _skewed_workload(seed)
            with_placement = placement_steal_schedule(
                costs, sizes, _placement((8,), 8)
            )
            plain = lpt_schedule(costs, sizes, 8)
            np.testing.assert_allclose(
                np.sort(with_placement.per_rank), np.sort(plain.per_rank)
            )

    @pytest.mark.parametrize("n_workers", [4, 8])
    def test_never_worse_than_static_on_balanced_domains(self, n_workers):
        """The tentpole's scheduling claim: on balanced domains, letting
        idle workers steal never loses to the static placement-aware LPT
        assignment — the makespan is bounded by it on every draw."""
        for seed in range(20):
            costs, sizes = _skewed_workload(seed)
            placement = _placement((4, 4), n_workers)
            steal = placement_steal_schedule(costs, sizes, placement)
            static = placement_lpt_schedule(costs, sizes, placement)
            assert steal.makespan <= static.makespan + 1e-9, (
                f"seed {seed}: steal {steal.makespan} > static {static.makespan}"
            )

    def test_usually_wins_on_uneven_domains(self):
        # With unequal domains the greedy steal choice can occasionally
        # drag a huge group across domains; it still wins almost always.
        wins = 0
        for seed in range(20):
            costs, sizes = _skewed_workload(seed)
            placement = _placement((2, 4), 6)
            steal = placement_steal_schedule(costs, sizes, placement)
            static = placement_lpt_schedule(costs, sizes, placement)
            if steal.makespan <= static.makespan + 1e-9:
                wins += 1
        assert wins >= 17

    def test_rejects_bad_inputs(self):
        costs, sizes = _skewed_workload(6)
        placement = _placement((4, 4), 4)
        with pytest.raises(ValueError):
            placement_steal_schedule(costs, sizes[:-1], placement)
        with pytest.raises(ValueError):
            placement_steal_schedule(costs, sizes, placement, remote_penalty=0.5)


def _two_domain_topology():
    cpu = available_cpus()[0]
    # Two synthetic domains on schedulable CPUs, so pinning works even on
    # a single-core runner.
    return MachineTopology(
        numa_domains=((cpu,), (cpu,)), l2_bytes=2 << 20, l3_bytes=16 << 20,
        source="sysfs",
    )


def _timed_run(ctx, item):
    """submit_runs steal-test task: sleep item/100 seconds, echo the item."""
    assert ctx["data"] is not None
    time.sleep(item / 100.0)
    return item


@pytest.fixture(scope="module")
def steal_setup():
    dataset = make_module_dataset(24, 16, n_modules=3, seed=11)
    config = LearnerConfig()
    parents = np.asarray(
        config.resolve_candidate_parents(dataset.matrix.n_vars), np.int64
    )
    return dataset.matrix.values, parents


class TestExecutorSteal:
    """The real dispatch: domain-affine queues on the persistent pool."""

    def test_skewed_homes_actually_steal(self, steal_setup):
        # All items homed on domain 0: every task domain 1's worker runs
        # is by definition a steal, and the sleeps guarantee it runs some.
        data, parents = steal_setup
        config = LearnerConfig(
            parallel=ParallelConfig(n_workers=2, topology=_two_domain_topology())
        )
        items = [8, 2, 2, 2, 2, 2, 2, 2]
        trace = WorkTrace()
        with TaskPoolExecutor(data, parents, config, 5) as executor:
            assert executor._steal_possible()
            results = executor.submit_runs(
                _timed_run, items, schedule="dynamic", trace=trace,
                home_domains=[0] * len(items),
            )
            stats = executor.stats
        assert results == items  # bit-identity: reassembled by item index
        assert stats.steals >= 1
        assert stats.stolen_seconds > 0.0
        # Trace counters agree exactly with the executor's stats.
        assert trace.total_steals() == stats.steals
        assert sum(trace.worker_steals.values()) == stats.steals
        assert sum(trace.worker_stolen_seconds.values()) == pytest.approx(
            stats.stolen_seconds
        )
        # Every stolen second was homed on domain 0, so node0 is the only
        # victim and the locality rate reflects the split exactly.
        assert set(trace.domain_stolen_times) == {"node0"}
        local = sum(trace.domain_local_times.values())
        stolen = sum(trace.domain_stolen_times.values())
        assert trace.locality_hit_rate() == pytest.approx(
            local / (local + stolen)
        )
        assert trace.locality_hit_rate() < 1.0

    def test_default_homes_spread_over_domains(self, steal_setup):
        data, parents = steal_setup
        config = LearnerConfig(
            parallel=ParallelConfig(n_workers=2, topology=_two_domain_topology())
        )
        trace = WorkTrace()
        with TaskPoolExecutor(data, parents, config, 5) as executor:
            results = executor.submit_runs(
                _timed_run, [1] * 6, schedule="dynamic", trace=trace
            )
        assert results == [1] * 6
        # Both domains received home work (the balanced default spread).
        homed = set(trace.domain_local_times) | set(trace.domain_stolen_times)
        assert homed == {"node0", "node1"}

    def test_flat_topology_never_steals(self, steal_setup):
        # Flat machines must take the exact pre-change shared-queue path:
        # no steal scaffolding, zero steal counters, full locality.
        data, parents = steal_setup
        config = LearnerConfig(
            parallel=ParallelConfig(n_workers=2, topology="flat")
        )
        trace = WorkTrace()
        with TaskPoolExecutor(data, parents, config, 5) as executor:
            assert not executor._steal_possible()
            results = executor.submit_runs(
                _timed_run, [1] * 6, schedule="dynamic", trace=trace
            )
            assert executor._steal_shared is None
            stats = executor.stats
        assert results == [1] * 6
        assert stats.steals == 0 and stats.stolen_seconds == 0.0
        assert trace.total_steals() == 0
        assert trace.worker_steals == {} and trace.worker_stolen_seconds == {}
        assert trace.domain_local_times == {} and trace.domain_stolen_times == {}
        assert trace.locality_hit_rate() == 1.0

    def test_steal_knob_off_keeps_shared_queue(self, steal_setup):
        data, parents = steal_setup
        config = LearnerConfig(
            parallel=ParallelConfig(
                n_workers=2, topology=_two_domain_topology(), steal=False
            )
        )
        with TaskPoolExecutor(data, parents, config, 5) as executor:
            assert not executor._steal_possible()
            results = executor.submit_runs(_timed_run, [1, 2], schedule="dynamic")
            assert executor._steal_shared is None
            assert executor.stats.steals == 0
        assert results == [1, 2]

    def test_static_schedule_ignores_steal_queues(self, steal_setup):
        # Stealing is a dynamic-dispatch feature; static dispatch on the
        # same executor must not consume the steal scaffolding.
        data, parents = steal_setup
        config = LearnerConfig(
            parallel=ParallelConfig(n_workers=2, topology=_two_domain_topology())
        )
        with TaskPoolExecutor(data, parents, config, 5) as executor:
            results = executor.submit_runs(_timed_run, [1, 2, 3], schedule="static")
            assert executor.stats.steals == 0
        assert results == [1, 2, 3]
