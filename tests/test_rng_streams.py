"""Tests for the replicated/indexed stream discipline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.streams import (
    SCORE_QUANTUM,
    GibbsRandom,
    IndexedStream,
    make_stream,
    quantize_logs,
)


def _rng(seed=1, backend="philox"):
    return GibbsRandom(make_stream(seed, "test", backend=backend))


class TestMakeStream:
    def test_backends(self):
        assert make_stream(1, backend="philox").name == "philox"
        assert make_stream(1, backend="mrg").name == "mrg"

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown RNG backend"):
            make_stream(1, backend="xorshift")


class TestQuantize:
    def test_snaps_to_grid(self):
        out = quantize_logs([1.23456789012345, -2.0])
        assert out[0] == pytest.approx(round(1.23456789012345 / SCORE_QUANTUM) * SCORE_QUANTUM)

    def test_preserves_neg_inf(self):
        out = quantize_logs([-np.inf, 0.0])
        assert np.isneginf(out[0]) and out[1] == 0.0

    def test_noise_below_quantum_is_absorbed(self):
        a = quantize_logs([0.5])
        b = quantize_logs([0.5 + SCORE_QUANTUM / 10])
        assert a[0] == b[0]


class TestRandint:
    def test_bounds(self):
        rng = _rng()
        for n in (1, 2, 7, 100):
            for _ in range(50):
                assert 0 <= rng.randint(n) < n

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            _rng().randint(0)

    def test_consumes_one_draw(self):
        rng = _rng()
        rng.randint(10)
        assert rng.offset == 1

    def test_roughly_uniform(self):
        rng = _rng(7)
        counts = np.bincount([rng.randint(4) for _ in range(4000)], minlength=4)
        assert counts.min() > 800


class TestRandomLabels:
    def test_shape_and_range(self):
        labels = _rng().random_labels(100, 7)
        assert labels.shape == (100,)
        assert labels.min() >= 0 and labels.max() < 7

    def test_consumes_count_draws(self):
        rng = _rng()
        rng.random_labels(25, 3)
        assert rng.offset == 25


class TestWeightedChoiceLogs:
    def test_deterministic_given_stream(self):
        a = _rng(3).weighted_choice_logs([0.0, 1.0, -1.0])
        b = _rng(3).weighted_choice_logs([0.0, 1.0, -1.0])
        assert a == b

    def test_overwhelming_weight_wins(self):
        rng = _rng(5)
        for _ in range(30):
            assert rng.weighted_choice_logs([0.0, 500.0, -10.0]) == 1

    def test_neg_inf_never_chosen(self):
        rng = _rng(9)
        for _ in range(200):
            assert rng.weighted_choice_logs([-np.inf, 0.0, -np.inf]) == 1

    def test_all_neg_inf_falls_back_uniform(self):
        rng = _rng(11)
        picks = {rng.weighted_choice_logs([-np.inf] * 4) for _ in range(100)}
        assert picks <= {0, 1, 2, 3} and len(picks) > 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _rng().weighted_choice_logs([])

    def test_consumes_one_draw(self):
        rng = _rng()
        rng.weighted_choice_logs([0.0, 0.5])
        assert rng.offset == 1

    def test_quantization_absorbs_summation_noise(self):
        """The cross-implementation contract: scores differing below the
        quantum cannot flip the decision."""
        base = [0.123456, 0.523456, -0.3]
        noisy = [v + SCORE_QUANTUM / 50 for v in base]
        for seed in range(20):
            assert _rng(seed).weighted_choice_logs(base) == _rng(seed).weighted_choice_logs(noisy)

    def test_distribution_matches_weights(self):
        rng = _rng(21)
        logs = [math.log(1.0), math.log(3.0)]
        picks = [rng.weighted_choice_logs(logs) for _ in range(4000)]
        frac = sum(picks) / len(picks)
        assert abs(frac - 0.75) < 0.03

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=20), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_always_returns_valid_index(self, logs, seed):
        idx = _rng(seed).weighted_choice_logs(logs)
        assert 0 <= idx < len(logs)


class TestWeightedChoiceLinear:
    def test_zero_weights_fall_back(self):
        idx = _rng(2).weighted_choice([0.0, 0.0, 0.0])
        assert 0 <= idx < 3

    def test_dominant_weight(self):
        rng = _rng(4)
        for _ in range(20):
            assert rng.weighted_choice([0.0, 0.0, 1e9, 1.0]) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _rng().weighted_choice([])


class TestIndexedStream:
    def test_item_blocks_are_disjoint_and_deterministic(self):
        istream = IndexedStream(make_stream(1, "idx"), draws_per_item=5)
        a = istream.item_uniforms(3)
        b = istream.item_uniforms(4)
        assert a.shape == (5,)
        assert not np.array_equal(a, b)
        np.testing.assert_array_equal(a, istream.item_uniforms(3))

    def test_item_block_matches_flat_stream(self):
        """Item i owns draws [i*d, (i+1)*d) — ownership independent of the
        evaluation order (the Section 4.2 block-split rule)."""
        istream = IndexedStream(make_stream(2, "idx"), draws_per_item=4)
        flat = make_stream(2, "idx").block(0, 40)
        for i in (0, 3, 9):
            np.testing.assert_array_equal(istream.item_uniforms(i), flat[4 * i : 4 * i + 4])

    def test_partial_fetch(self):
        istream = IndexedStream(make_stream(3, "idx"), draws_per_item=6)
        np.testing.assert_array_equal(
            istream.item_uniforms(2, count=3), istream.item_uniforms(2)[:3]
        )

    def test_overfetch_rejected(self):
        istream = IndexedStream(make_stream(1, "idx"), draws_per_item=2)
        with pytest.raises(ValueError):
            istream.item_uniforms(0, count=3)

    def test_invalid_draws_per_item(self):
        with pytest.raises(ValueError):
            IndexedStream(make_stream(1), draws_per_item=0)

    def test_spawn_creates_distinct_stream(self):
        istream = IndexedStream(make_stream(1, "idx"), draws_per_item=3)
        child = istream.spawn("module", 7)
        assert not np.array_equal(child.item_uniforms(0), istream.item_uniforms(0))


class TestCrossBackendContract:
    """Both backends satisfy the same replication/consistency contracts."""

    @pytest.mark.parametrize("backend", ["philox", "mrg"])
    def test_lockstep_replication(self, backend):
        ranks = [GibbsRandom(make_stream(7, "r", backend=backend)) for _ in range(3)]
        for _ in range(10):
            draws = [r.uniform() for r in ranks]
            assert len(set(draws)) == 1

    @pytest.mark.parametrize("backend", ["philox", "mrg"])
    def test_choice_sequence_deterministic(self, backend):
        def run():
            rng = GibbsRandom(make_stream(5, "c", backend=backend))
            return [rng.weighted_choice_logs([0.0, 0.3, -0.2]) for _ in range(15)]

        assert run() == run()
