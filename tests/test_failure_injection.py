"""Failure injection and degenerate-input behaviour."""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.datatypes import ExpressionMatrix
from repro.parallel.comm import SpmdFailure, run_spmd
from repro.parallel.engine import ParallelLearner
from repro.parallel.executor import (
    TaskPoolExecutor,
    WorkerCrashedError,
    _ganesh_run,
)
from repro.parallel.topology import MachineTopology, available_cpus


class TestSpmdFailures:
    def test_one_rank_raising_reports_all(self):
        def fn(comm):
            comm.allreduce(1)
            if comm.rank == 1:
                raise ValueError("injected")
            # The surviving ranks block on the next collective; the abort
            # must release them rather than deadlock.
            comm.allreduce(2)

        with pytest.raises(SpmdFailure) as err:
            run_spmd(3, fn)
        ranks = [rank for rank, _ in err.value.errors]
        assert 1 in ranks

    def test_all_ranks_raising(self):
        def fn(comm):
            raise RuntimeError(f"rank {comm.rank}")

        with pytest.raises(SpmdFailure) as err:
            run_spmd(4, fn)
        assert len(err.value.errors) == 4

    def test_failure_message_readable(self):
        def fn(comm):
            if comm.rank == 0:
                raise KeyError("k")
            comm.barrier()

        with pytest.raises(SpmdFailure) as err:
            run_spmd(2, fn)
        assert "rank 0" in str(err.value)


def _exit_mid_run(ctx, item):
    """A task whose worker process dies outright partway through the
    batch (``os._exit`` skips all exception handling, like a kill -9)."""
    if item == 2:
        os._exit(1)
    return item


class TestWorkerDeath:
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_dead_worker_detected_not_hung(self, tiny_matrix, schedule):
        """mp.Pool silently respawns dead workers and would wait forever
        for the lost task; the executor must surface the crash instead."""
        config = LearnerConfig(max_sampling_steps=3, parallel=ParallelConfig(n_workers=2))
        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        with TaskPoolExecutor(
            tiny_matrix.values, parents, config, 1, crash_poll_seconds=0.2,
        ) as executor:
            with pytest.raises(WorkerCrashedError):
                executor.submit_runs(
                    _exit_mid_run, list(range(6)), schedule=schedule
                )
            # The replacement worker re-ran the initializer: visible proof
            # of the death, and the mechanism the detector relies on.
            assert executor.worker_inits() > 2


def _two_domain_topology():
    cpu = available_cpus()[0]
    return MachineTopology(
        numa_domains=((cpu,), (cpu,)), l2_bytes=2 << 20, l3_bytes=16 << 20,
        source="sysfs",
    )


def _die_on_ganesh_zero(ctx, item):
    """Steal-dispatch test task: the worker running run 0 dies outright
    (``os._exit`` skips all handling, like a kill -9 mid-steal)."""
    g, want_trace = item
    if g == 0:
        os._exit(13)
    return _ganesh_run(ctx, item)


class TestStealDispatchCrash:
    """A worker dying while the domain-affine steal queues are live must
    surface the crash — never deadlock the victim domain's queue."""

    def _config(self, n_runs=1):
        return LearnerConfig(
            max_sampling_steps=3,
            n_ganesh_runs=n_runs,
            parallel=ParallelConfig(
                n_workers=2, topology=_two_domain_topology()
            ),
        )

    def test_mid_steal_crash_detected_not_hung(self, tiny_matrix):
        config = self._config()
        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        with TaskPoolExecutor(
            tiny_matrix.values, parents, config, 1, crash_poll_seconds=0.2,
        ) as executor:
            assert executor._steal_possible()
            with pytest.raises(WorkerCrashedError):
                # All items homed on domain 0: domain 1's worker reaches
                # them only by stealing, so the poisoned item can die in a
                # thief's hands — detection must not depend on which side
                # held the reservation.
                executor.submit_runs(
                    _exit_mid_run, list(range(6)), schedule="dynamic",
                    home_domains=[0] * 6,
                )
            assert executor.worker_inits() > 2  # a replacement spawned
            # The crash handler restored the queues/pending invariant:
            # nothing pending, so the victim domain's queue is not wedged.
            queues, pending, lock = executor._steal_shared
            assert list(pending) == [0, 0]

    def test_resume_replays_only_unfinished_runs(self, tiny_matrix, tmp_path):
        """Kill a worker mid-steal-dispatch with checkpointing on: the
        surviving runs' checkpoints are valid and a resumed run replays
        only the lost runs (survivor files are never rewritten)."""
        n_runs = 4
        config = self._config(n_runs)
        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        reference = LemonTreeLearner(
            config.with_updates(parallel=ParallelConfig(n_workers=1))
        ).sample_clusterings(tiny_matrix, seed=1)

        with TaskPoolExecutor(
            tiny_matrix.values, parents, config, 1,
            checkpoint_dir=tmp_path, crash_poll_seconds=0.2,
        ) as executor:
            with pytest.raises(WorkerCrashedError):
                executor.submit_runs(
                    _die_on_ganesh_zero,
                    [(g, False) for g in range(n_runs)],
                    schedule="dynamic",
                    home_domains=[0] * n_runs,
                )
        names = {f.name for f in tmp_path.glob("ganesh_*.npz")}
        assert "ganesh_0.npz" not in names  # the poisoned run never landed
        assert names  # at least one survivor checkpointed
        survivor_stamps = {
            f.name: f.stat().st_mtime_ns for f in tmp_path.glob("ganesh_*.npz")
        }

        samples = LemonTreeLearner(config).sample_clusterings(
            tiny_matrix, seed=1, checkpoint_dir=tmp_path
        )
        assert len(samples) == n_runs
        for got, want in zip(samples, reference):
            np.testing.assert_array_equal(got, want)
        for f in tmp_path.glob("ganesh_*.npz"):
            if f.name in survivor_stamps:
                assert f.stat().st_mtime_ns == survivor_stamps[f.name]


_KILL_RESUME_SCRIPT = """
import sys
from repro.core.learner import LemonTreeLearner
from repro.validation import get_scenario
from tests.test_failure_injection import _tie_heavy_setup

config, matrix = _tie_heavy_setup()
print("ready", flush=True)
LemonTreeLearner(config).learn(matrix, seed=5, checkpoint_dir=sys.argv[1])
"""


def _tie_heavy_setup():
    """The adversarial kill-and-resume workload: exact duplicate rows (the
    tie-heavy scenario) with enough GaneSH runs that checkpoints appear
    one by one while the run is still in flight."""
    from repro.core.config import LearnerConfig
    from repro.validation import get_scenario

    spec = get_scenario("duplicate-genes")
    config = LearnerConfig(
        n_ganesh_runs=8, n_update_steps=3, max_sampling_steps=4
    )
    return config, spec.generate(2, smoke=True).matrix


@pytest.mark.slow
class TestScenarioKillResume:
    def test_killed_learn_resumes_bit_identical(self, tmp_path):
        """SIGKILL a checkpointing learn() mid-flight on the tie-heavy
        scenario; the resumed run must produce exactly the network an
        uninterrupted run does (ties make any replay-order leak visible)."""
        config, matrix = _tie_heavy_setup()
        uninterrupted = LemonTreeLearner(config).learn(matrix, seed=5).network

        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_RESUME_SCRIPT, str(tmp_path)],
            stdout=subprocess.PIPE,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            # Kill as soon as the first GaneSH checkpoint lands — the run
            # is then provably mid-flight, with most work still pending.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if list(tmp_path.glob("ganesh_*.npz")) or proc.poll() is not None:
                    break
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        survivors = {f.name for f in tmp_path.glob("ganesh_*.npz")}
        assert survivors  # the kill landed after work was checkpointed
        stamps = {
            f.name: f.stat().st_mtime_ns for f in tmp_path.glob("ganesh_*.npz")
        }

        resumed = (
            LemonTreeLearner(config)
            .learn(matrix, seed=5, checkpoint_dir=tmp_path)
            .network
        )
        assert resumed == uninterrupted
        # Survivor checkpoints were reused, never rewritten.
        for f in tmp_path.glob("ganesh_*.npz"):
            if f.name in stamps:
                assert f.stat().st_mtime_ns == stamps[f.name]


class TestShardNodeDeath:
    """Failure injection on the multi-node shard tier: a SIGKILLed node
    process must surface as a typed ``NodeCrashedError`` (never a hang),
    and a restarted run must resume bit-identically from the checkpoints
    the surviving nodes wrote."""

    def test_dead_node_raises_typed_error(self, tiny_matrix, tmp_path):
        """Kill a node before dispatch: the driver detects the dead peer
        deterministically and raises the shard tier's typed error."""
        from repro.parallel.sharding import NodeCrashedError, ShardedExecutor

        config = LearnerConfig(n_ganesh_runs=4, max_sampling_steps=3)
        parents = np.asarray(range(tiny_matrix.n_vars), dtype=np.int64)
        with ShardedExecutor(
            tiny_matrix.values, parents, config, 1,
            n_nodes=2, node_backend="socket", n_workers=1,
            checkpoint_dir=tmp_path,
        ) as executor:
            executor.start()
            assert len(executor.node_pids) == 2
            os.kill(executor.node_pids[1], signal.SIGKILL)
            with pytest.raises(NodeCrashedError):
                executor.sample_ganesh_runs(4)
            # A crashed tier refuses further dispatches instead of
            # silently computing on the surviving subset.
            with pytest.raises(NodeCrashedError):
                executor.sample_ganesh_runs(4)

    @pytest.mark.slow
    def test_sigkill_mid_run_resumes_bit_identical(self, tmp_path):
        """SIGKILL one shard node while chains are in flight on the
        tie-heavy workload; the survivors' checkpoints must carry a
        restarted run to exactly the uninterrupted ensemble."""
        from repro.parallel.sharding import NodeCrashedError, ShardedExecutor

        config, matrix = _tie_heavy_setup()
        reference = LemonTreeLearner(config).sample_clusterings(
            matrix, seed=5
        )
        parents = np.asarray(range(matrix.n_vars), dtype=np.int64)

        executor = ShardedExecutor(
            matrix.values, parents, config, 5,
            n_nodes=2, node_backend="socket", n_workers=1,
            checkpoint_dir=tmp_path,
        )
        killed = []

        def _kill_after_first_checkpoint():
            # Kill as soon as the first checkpoint lands — the run is
            # then provably mid-flight with most chains still pending.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if list(tmp_path.glob("ganesh_*.npz")):
                    break
                time.sleep(0.005)
            pid = executor.node_pids[1]
            os.kill(pid, signal.SIGKILL)
            killed.append(pid)

        try:
            executor.start()
            watcher = threading.Thread(
                target=_kill_after_first_checkpoint, daemon=True
            )
            watcher.start()
            with pytest.raises(NodeCrashedError):
                executor.sample_ganesh_runs(config.n_ganesh_runs)
            watcher.join(timeout=60.0)
        finally:
            executor.close()
        assert killed

        survivors = {
            f.name: f.stat().st_mtime_ns for f in tmp_path.glob("ganesh_*.npz")
        }
        assert survivors  # the kill landed after work was checkpointed
        assert len(survivors) < config.n_ganesh_runs  # ... but mid-flight

        # The restarted (sequential) run replays only the lost chains and
        # reproduces the uninterrupted ensemble bit for bit.
        resumed = LemonTreeLearner(config).sample_clusterings(
            matrix, seed=5, checkpoint_dir=tmp_path
        )
        assert len(resumed) == config.n_ganesh_runs
        for got, want in zip(resumed, reference):
            np.testing.assert_array_equal(got, want)
        for f in tmp_path.glob("ganesh_*.npz"):
            if f.name in survivors:
                assert f.stat().st_mtime_ns == survivors[f.name]


class TestMissingDataRejection:
    """NaN matrices must be rejected loudly at the pipeline boundary."""

    def _nan_matrix(self):
        from repro.data.synthetic import make_module_dataset

        return make_module_dataset(12, 8, missing_rate=0.2, seed=0).matrix

    def test_learn_rejects_nan(self, fast_config):
        with pytest.raises(ValueError, match="impute_missing"):
            LemonTreeLearner(fast_config).learn(self._nan_matrix(), seed=1)

    def test_sample_clusterings_rejects_nan(self, fast_config):
        with pytest.raises(ValueError, match="missing"):
            LemonTreeLearner(fast_config).sample_clusterings(
                self._nan_matrix(), seed=1
            )

    def test_learn_from_modules_rejects_nan(self, fast_config):
        with pytest.raises(ValueError, match="missing"):
            LemonTreeLearner(fast_config).learn_from_modules(
                self._nan_matrix(), [[0, 1, 2]], seed=1
            )

    def test_imputed_matrix_learns(self, fast_config):
        matrix = self._nan_matrix().impute_missing()
        result = LemonTreeLearner(fast_config).learn(matrix, seed=1)
        assert sum(m.size for m in result.network.modules) == matrix.n_vars

    def test_suffstats_reject_nan(self):
        from repro.scoring.suffstats import StatsArrays, SuffStats

        with pytest.raises(ValueError, match="NaN"):
            SuffStats.of(np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="NaN"):
            StatsArrays.grouped(
                np.array([1.0, np.nan, 2.0]),
                np.array([0, 0, 1], dtype=np.int64),
                2,
            )


class TestDegenerateData:
    def test_constant_matrix(self, fast_config):
        """All-equal values: scores degenerate but nothing crashes and the
        output is a complete partition."""
        matrix = ExpressionMatrix(np.ones((10, 8)))
        result = LemonTreeLearner(fast_config).learn(matrix, seed=1)
        assert sum(m.size for m in result.network.modules) == 10

    def test_constant_matrix_parallel_consistent(self, fast_config):
        matrix = ExpressionMatrix(np.full((8, 6), 3.14))
        sequential = LemonTreeLearner(fast_config).learn(matrix, seed=2)
        parallel = ParallelLearner(fast_config).learn(matrix, seed=2, p=2)
        assert parallel.network == sequential.network

    def test_single_variable_rows_duplicated(self, fast_config):
        """Identical rows must all land in modules (ties everywhere)."""
        row = np.linspace(-1, 1, 9)
        matrix = ExpressionMatrix(np.tile(row, (6, 1)))
        result = LemonTreeLearner(fast_config).learn(matrix, seed=3)
        assert result.network.n_modules >= 1

    def test_tiny_matrix(self, fast_config):
        matrix = ExpressionMatrix(np.random.default_rng(0).normal(size=(4, 4)))
        result = LemonTreeLearner(fast_config).learn(matrix, seed=4)
        assert result.network.n_vars == 4

    def test_extreme_magnitudes(self, fast_config):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(8, 8)) * 1e6 + 1e8
        matrix = ExpressionMatrix(values)
        result = LemonTreeLearner(fast_config).learn(matrix, seed=5)
        for module in result.network.modules:
            for score in module.weighted_parents.values():
                assert np.isfinite(score)

    def test_mixed_scales(self, fast_config):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(10, 8))
        values[0] *= 1e-8
        values[1] *= 1e8
        result = LemonTreeLearner(fast_config).learn(
            ExpressionMatrix(values), seed=6
        )
        assert result.network.n_modules >= 1

    def test_single_ganesh_cluster_config(self):
        """K0 = 1: everything starts in one cluster; reassignment can still
        split it via the fresh-cluster option."""
        config = LearnerConfig(init_var_clusters=1, max_sampling_steps=3)
        matrix = ExpressionMatrix(
            np.vstack([np.zeros((5, 10)), np.ones((5, 10)) * 9])
            + np.random.default_rng(3).normal(0, 0.1, size=(10, 10))
        )
        result = LemonTreeLearner(config).learn(matrix, seed=7)
        assert result.network.n_modules >= 1


class TestInitClusterResolution:
    def test_fraction(self):
        assert LearnerConfig(init_var_clusters=0.25).resolve_init_clusters(100) == 25

    def test_absolute(self):
        assert LearnerConfig(init_var_clusters=7).resolve_init_clusters(100) == 7

    def test_default_half(self):
        assert LearnerConfig().resolve_init_clusters(100) == 50

    def test_clamped_to_n(self):
        assert LearnerConfig(init_var_clusters=500).resolve_init_clusters(10) == 10

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LearnerConfig(init_var_clusters=0).resolve_init_clusters(10)
        with pytest.raises(ValueError):
            LearnerConfig(init_var_clusters=-0.5).resolve_init_clusters(10)

    def test_fraction_floor_is_one(self):
        assert LearnerConfig(init_var_clusters=0.001).resolve_init_clusters(10) == 1


# -- daemon crash isolation ---------------------------------------------------
#
# The always-on service must contain worker death to the job it struck:
# the job fails with the executor's typed error, the lease discards the
# poisoned pool, and the next queued job completes bit-identically on a
# fresh one.


def _daemon_job_config(workers: int = 2) -> LearnerConfig:
    """A multi-second job (so a worker can be killed mid-flight)."""
    return LearnerConfig(
        n_ganesh_runs=4,
        n_update_steps=3,
        n_splits_per_node=3,
        parallel=ParallelConfig(n_workers=workers),
    )


class TestDaemonCrashIsolation:
    @pytest.fixture(autouse=True)
    def _isolated_store(self):
        """The shared score store is process-global; the service installs
        one on construction, so reset around every test here to keep the
        rest of the suite's kernel counters untouched."""
        from repro.scoring.kernel import (
            consume_kernel_totals,
            set_shared_score_cache,
        )

        previous = set_shared_score_cache(None)
        consume_kernel_totals()
        yield
        set_shared_score_cache(previous)
        consume_kernel_totals()

    @pytest.mark.slow
    def test_sigkilled_worker_fails_job_next_job_bit_identical(self, tmp_path):
        from repro.data.synthetic import make_module_dataset
        from repro.service import InferenceService, JobFailed
        from repro.validation.metrics import network_fingerprint

        matrix = make_module_dataset(120, 60, n_modules=8, seed=3).matrix
        config = _daemon_job_config()
        oracle = network_fingerprint(
            LemonTreeLearner(
                config.with_updates(parallel=ParallelConfig(n_workers=1))
            ).learn(matrix, seed=9).network
        )
        with InferenceService(
            tmp_path, max_inflight=4, score_cache_bytes=0,
            crash_poll_seconds=0.2,
        ) as service:
            job = service.submit(matrix, config, 9, use_checkpoints=False)
            deadline = time.monotonic() + 60
            pids: list[int] = []
            while time.monotonic() < deadline:
                row = service.status(job)
                pids = row.get("worker_pids", [])
                # Wait for every (spawn-context) worker to finish booting:
                # killing one mid-import loses no task, the pool respawns
                # it, and the job would legitimately succeed.
                if (
                    row["state"] == "running"
                    and pids
                    and row.get("worker_inits", 0) >= 2
                ):
                    break
                if row["state"] in ("done", "failed"):
                    break
                time.sleep(0.01)
            assert pids, "job never reached a running pool"
            time.sleep(0.3)  # let the booted workers dequeue real work
            os.kill(pids[0], signal.SIGKILL)

            with pytest.raises(JobFailed) as err:
                service.wait(job, timeout=120)
            assert err.value.error_type == "WorkerCrashedError"
            assert service.status(job)["state"] == "failed"
            # The poisoned pool was discarded.
            assert service.stats()["executor"]["invalidations"] == 1

            # The NEXT job gets a fresh pool and the exact oracle network.
            job2 = service.submit(matrix, config, 9, use_checkpoints=False)
            payload = service.wait(job2, timeout=300)
            assert payload["fingerprint"] == oracle
            assert payload["executor_reused"] is False

    def test_admission_rejection_is_typed_and_recoverable(self, tiny_matrix, tmp_path):
        from repro.service import AdmissionRejected, InferenceService

        config = LearnerConfig(
            max_sampling_steps=5, parallel=ParallelConfig(n_workers=1)
        )
        service = InferenceService(tmp_path, max_inflight=2, autostart=False)
        try:
            kept = service.submit(tiny_matrix, config, 1)
            service.submit(tiny_matrix, config, 2)
            with pytest.raises(AdmissionRejected):
                service.submit(tiny_matrix, config, 3)
            # Rejection leaves the queue intact: both admitted jobs run.
            service.start()
            assert service.wait(kept, timeout=300)["fingerprint"]
        finally:
            service.close()

    def test_cancel_mid_queue_skips_only_the_cancelled_job(self, tiny_matrix, tmp_path):
        from repro.service import InferenceService, JobCancelled

        config = LearnerConfig(
            max_sampling_steps=5, parallel=ParallelConfig(n_workers=1)
        )
        service = InferenceService(tmp_path, max_inflight=8, autostart=False)
        try:
            first = service.submit(tiny_matrix, config, 1)
            doomed = service.submit(tiny_matrix, config, 2)
            last = service.submit(tiny_matrix, config, 3)
            assert service.cancel(doomed) is True
            service.start()
            assert service.wait(first, timeout=300)["fingerprint"]
            assert service.wait(last, timeout=300)["fingerprint"]
            with pytest.raises(JobCancelled):
                service.result(doomed)
            assert service.status(doomed)["state"] == "cancelled"
        finally:
            service.close()
