"""Tests for learner configuration."""

import pytest

from repro.core.config import LearnerConfig, parents_from_names


class TestValidation:
    def test_defaults_valid(self):
        LearnerConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_ganesh_runs", 0),
            ("n_update_steps", 0),
            ("tree_update_steps", 0),
            ("tree_burn_in", -1),
            ("n_splits_per_node", 0),
            ("max_sampling_steps", 0),
            ("consensus_threshold", 1.5),
            ("consensus_threshold", -0.1),
            ("rng_backend", "bad"),
        ],
    )
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            LearnerConfig(**{field: value})

    def test_frozen(self):
        config = LearnerConfig()
        with pytest.raises(AttributeError):
            config.n_ganesh_runs = 5


class TestCandidateParents:
    def test_default_is_all_variables(self):
        assert LearnerConfig().resolve_candidate_parents(4) == (0, 1, 2, 3)

    def test_explicit_subset(self):
        config = LearnerConfig(candidate_parents=(1, 3))
        assert config.resolve_candidate_parents(5) == (1, 3)

    def test_out_of_range_rejected(self):
        config = LearnerConfig(candidate_parents=(7,))
        with pytest.raises(ValueError):
            config.resolve_candidate_parents(5)

    def test_parents_from_names(self):
        assert parents_from_names(["b", "a"], ["a", "b", "c"]) == (1, 0)

    def test_parents_from_names_missing(self):
        with pytest.raises(KeyError):
            parents_from_names(["zz"], ["a", "b"])


class TestWithUpdates:
    def test_returns_modified_copy(self):
        base = LearnerConfig()
        changed = base.with_updates(n_ganesh_runs=3)
        assert changed.n_ganesh_runs == 3
        assert base.n_ganesh_runs == 1

    def test_validates_changes(self):
        with pytest.raises(ValueError):
            LearnerConfig().with_updates(max_sampling_steps=-1)
