"""Tests for the acyclicity post-processing (the paper's deferred step)."""

import networkx as nx
import pytest

from repro.analysis.acyclicity import make_acyclic
from repro.datatypes import Module, ModuleNetwork


def _cyclic_network():
    """M0 <-> M1 two-cycle plus a self-loop on M2."""
    m0 = Module(module_id=0, members=[0, 1], weighted_parents={2: 0.9})
    m1 = Module(module_id=1, members=[2, 3], weighted_parents={0: 0.2})
    m2 = Module(module_id=2, members=[4], weighted_parents={4: 0.5, 1: 0.3})
    return ModuleNetwork([m0, m1, m2], ["a", "b", "c", "d", "e"], n_obs=6)


class TestMakeAcyclic:
    def test_result_is_acyclic(self):
        cleaned, _removed = make_acyclic(_cyclic_network())
        assert nx.is_directed_acyclic_graph(cleaned.module_graph())
        assert cleaned.feedback_edges() == []

    def test_weakest_edge_cut(self):
        """The M0->M1 edge (mass 0.2) is weaker than M1->M0 (mass 0.9)."""
        cleaned, removed = make_acyclic(_cyclic_network())
        cut = {(e.source_module, e.target_module) for e in removed}
        assert (0, 1) in cut
        assert (1, 0) not in cut

    def test_self_loops_always_cut(self):
        _cleaned, removed = make_acyclic(_cyclic_network())
        assert any(e.source_module == e.target_module == 2 for e in removed)

    def test_parents_dropped_from_modules(self):
        cleaned, removed = make_acyclic(_cyclic_network())
        # M1 lost its parent 0 (a member of M0); M2 lost its self parent 4.
        assert 0 not in cleaned.modules[1].weighted_parents
        assert 4 not in cleaned.modules[2].weighted_parents
        # Strong edges survive.
        assert 2 in cleaned.modules[0].weighted_parents

    def test_removed_edges_report_mass(self):
        _cleaned, removed = make_acyclic(_cyclic_network())
        for edge in removed:
            assert edge.score_mass >= 0
            assert edge.parents

    def test_acyclic_input_unchanged(self):
        m0 = Module(module_id=0, members=[0], weighted_parents={})
        m1 = Module(module_id=1, members=[1], weighted_parents={0: 1.0})
        network = ModuleNetwork([m0, m1], ["a", "b"], n_obs=3)
        cleaned, removed = make_acyclic(network)
        assert removed == []
        assert cleaned.modules[1].weighted_parents == {0: 1.0}

    def test_original_network_untouched(self):
        network = _cyclic_network()
        make_acyclic(network)
        assert 0 in network.modules[1].weighted_parents  # not mutated

    def test_uniform_parents_preserved(self):
        network = _cyclic_network()
        network.modules[0].uniform_parents = {3: 0.1}
        cleaned, _ = make_acyclic(network)
        assert cleaned.modules[0].uniform_parents == {3: 0.1}

    def test_on_learned_network(self, tiny_matrix, fast_config):
        from repro.core.learner import LemonTreeLearner

        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=6)
        cleaned, removed = make_acyclic(result.network)
        assert nx.is_directed_acyclic_graph(cleaned.module_graph())
        # Total parent mass only decreases.
        before = sum(
            s for m in result.network.modules for s in m.weighted_parents.values()
        )
        after = sum(
            s for m in cleaned.modules for s in m.weighted_parents.values()
        )
        assert after <= before + 1e-12
