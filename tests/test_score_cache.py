"""Property tests of the process-shared split-score cache.

The :class:`~repro.scoring.score_cache.SharedScoreCache` promotes the
per-kernel-instance ``(group, beta)`` memo to a process-shared,
content-addressed LRU store.  The properties that make that promotion
safe are exactly what this file pins down:

* **eviction never changes results** — kernels adopt entry arrays by
  reference, so evicting an entry only changes counters, never a score;
* **the byte cap is a strict invariant** — ``current_bytes`` never
  exceeds ``max_bytes``, and oversize entries are rejected outright;
* **content addresses cannot collide across distinct inputs** — the key
  encodes the shapes before the payload bytes, so two different
  ``(values, sign, beta_grid)`` triples agree only if sha256 collides;
* **hit accounting keeps the existing ``DenseScoreMemo`` contract** —
  ``hits + evaluations`` per batch equals the lookup count, whether the
  kernel's memo came from the store or was built fresh.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.parallel.trace import WorkTrace
from repro.scoring.kernel import (
    DenseScoreMemo,
    LazySplitKernel,
    consume_kernel_totals,
    ensure_shared_score_cache,
    set_shared_score_cache,
    shared_score_cache,
)
from repro.scoring.score_cache import (
    CacheEntry,
    SharedScoreCache,
    score_cache_key,
)

BETA_GRID = (1.0, 5.0, 20.0)


@pytest.fixture(autouse=True)
def _isolated_store():
    """The store is process-global by design; keep tests independent."""
    previous = set_shared_score_cache(None)
    consume_kernel_totals()
    yield
    set_shared_score_cache(previous)
    consume_kernel_totals()


def _kernel(seed: int, shape=(4, 9), **kwargs) -> LazySplitKernel:
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)
    sign = np.where(rng.random(shape[1]) < 0.5, 1.0, -1.0)
    return LazySplitKernel(values, sign, BETA_GRID, **kwargs)


def _entry_for(seed: int, shape=(4, 9)) -> tuple[bytes, CacheEntry]:
    kernel = _kernel(seed, shape, shared_cache=None)
    key = score_cache_key(kernel.values, kernel.sign, kernel.beta_grid)
    entry = CacheEntry.from_arrays(
        kernel.item_groups,
        kernel.group_row,
        kernel.group_value,
        kernel.n_groups,
        kernel._cache,
        kernel._seen,
    )
    return key, entry


class TestContentAddress:
    def test_identical_inputs_share_a_key(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(3, 7))
        sign = np.ones(7)
        assert score_cache_key(values, sign, BETA_GRID) == score_cache_key(
            values.copy(), sign.copy(), list(BETA_GRID)
        )

    def test_distinct_matrices_get_distinct_keys(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(3, 7))
        sign = np.ones(7)
        base = score_cache_key(values, sign, BETA_GRID)
        bumped = values.copy()
        bumped[1, 3] += 1e-12
        assert score_cache_key(bumped, sign, BETA_GRID) != base

    def test_sign_and_beta_enter_the_key(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=(3, 7))
        sign = np.ones(7)
        base = score_cache_key(values, sign, BETA_GRID)
        flipped = sign.copy()
        flipped[0] = -1.0
        assert score_cache_key(values, flipped, BETA_GRID) != base
        assert score_cache_key(values, sign, BETA_GRID[:-1]) != base

    def test_shape_aliasing_impossible(self):
        """The key encodes (P, n_obs, n_beta) before the payload bytes, so
        reshapes of identical bytes cannot alias by construction."""
        values = np.arange(12.0).reshape(3, 4)
        k1 = score_cache_key(values, np.ones(4), BETA_GRID)
        k2 = score_cache_key(
            values.reshape(4, 3), np.ones(3), BETA_GRID
        )
        assert k1 != k2

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_pairs_never_collide(self, seed_a, seed_b):
        rng_a, rng_b = np.random.default_rng(seed_a), np.random.default_rng(seed_b)
        va, vb = rng_a.normal(size=(2, 5)), rng_b.normal(size=(2, 5))
        ka = score_cache_key(va, np.ones(5), BETA_GRID)
        kb = score_cache_key(vb, np.ones(5), BETA_GRID)
        assert (ka == kb) == np.array_equal(va, vb)


class TestByteCap:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SharedScoreCache(max_bytes=0)

    @given(st.integers(1, 12), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_cap_never_exceeded(self, n_entries, cap_entries):
        _, probe = _entry_for(0)
        store = SharedScoreCache(max_bytes=probe.nbytes * cap_entries + 1)
        for seed in range(n_entries):
            key, entry = _entry_for(seed)
            store.insert(key, entry)
            assert store.current_bytes <= store.max_bytes
        snap = store.snapshot()
        assert snap["bytes"] <= snap["max_bytes"]
        assert snap["entries"] == min(n_entries, len(store))

    def test_oversize_entry_rejected_not_stored(self):
        key, entry = _entry_for(3)
        store = SharedScoreCache(max_bytes=max(1, entry.nbytes - 1))
        store.insert(key, entry)
        assert len(store) == 0
        assert store.current_bytes == 0
        assert store.snapshot()["rejected"] == 1
        assert store.lookup(key) is None

    def test_lru_eviction_order(self):
        k0, e0 = _entry_for(0)
        k1, e1 = _entry_for(1)
        k2, e2 = _entry_for(2)
        store = SharedScoreCache(max_bytes=e0.nbytes + e1.nbytes)
        store.insert(k0, e0)
        store.insert(k1, e1)
        assert store.lookup(k0) is not None  # refresh k0: k1 is now LRU
        store.insert(k2, e2)
        assert store.lookup(k1) is None
        assert store.lookup(k0) is not None
        assert store.snapshot()["evictions"] == 1


class TestEvictionSafety:
    def test_evicted_kernel_keeps_serving_identical_scores(self):
        """Entries hand out their arrays by reference: a kernel built from
        the store keeps scoring correctly after its entry is evicted —
        eviction changes counters, never results."""
        reference = _kernel(7, shared_cache=None)
        groups = np.arange(reference.n_groups, dtype=np.int64)
        beta = np.zeros(reference.n_groups, dtype=np.int64)
        expected = reference.scores(groups, beta)

        _, probe = _entry_for(7)
        store = SharedScoreCache(max_bytes=probe.nbytes * 3)
        first = _kernel(7, shared_cache=store)  # miss: publishes the entry
        adopted = _kernel(7, shared_cache=store)  # hit: adopts by reference
        assert adopted.from_shared_cache
        pre_eviction = adopted.scores(groups[:4], beta[:4])
        # Evict everything by flooding with distinct entries (the peek
        # must not refresh LRU order, or the flood never wins).
        adopted_key = score_cache_key(
            adopted.values, adopted.sign, adopted.beta_grid
        )
        for seed in range(100, 140):
            k, e = _entry_for(seed)
            store.insert(k, e)
            if adopted_key not in store:
                break
        else:  # pragma: no cover - flood sized to always evict
            pytest.fail("entry never evicted")
        post_eviction = adopted.scores(groups, beta)
        np.testing.assert_array_equal(post_eviction, expected)
        np.testing.assert_array_equal(pre_eviction, expected[:4])
        np.testing.assert_array_equal(first.scores(groups, beta), expected)

    def test_adopted_memo_shares_evaluations(self):
        """The memo grows in place: pairs one kernel evaluates are hits
        for every later kernel of the same content."""
        store = SharedScoreCache(max_bytes=1 << 20)
        first = _kernel(11, shared_cache=store)
        groups = np.arange(first.n_groups, dtype=np.int64)
        beta = np.ones(first.n_groups, dtype=np.int64)
        first.scores(groups, beta)
        assert first.evaluations > 0

        second = _kernel(11, shared_cache=store)
        assert second.from_shared_cache
        second.scores(groups, beta)
        assert second.evaluations == 0
        assert second.hits == groups.size


class TestHitAccounting:
    @given(st.integers(0, 2**16), st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_lazy_kernel_keeps_dense_memo_contract(self, seed, n_lookups):
        """Per batch, hits + newly evaluated pairs == lookups — the
        observable ``DenseScoreMemo`` contract — store-backed or not."""
        rng = np.random.default_rng(seed)
        store = SharedScoreCache(max_bytes=1 << 20)
        for shared in (None, store, store):
            kernel = _kernel(seed % 7, shared_cache=shared)
            groups = rng.integers(0, kernel.n_groups, size=n_lookups)
            beta = rng.integers(0, len(BETA_GRID), size=n_lookups)
            hits0, evals0 = kernel.hits, kernel.evaluations
            kernel.scores(groups, beta)
            new_pairs = np.unique(
                groups * len(BETA_GRID) + beta
            ).size
            batch_hits = kernel.hits - hits0
            batch_evals = kernel.evaluations - evals0
            assert batch_hits + batch_evals >= n_lookups - new_pairs
            assert batch_hits + batch_evals <= n_lookups
            # Every looked-up pair is seen afterwards: a repeat batch is
            # all hits, zero evaluations (the memoization contract).
            hits1 = kernel.hits
            kernel.scores(groups, beta)
            assert kernel.evaluations == evals0 + batch_evals
            assert kernel.hits == hits1 + n_lookups

    def test_dense_and_lazy_agree_through_the_store(self):
        """Store-backed lazy scores equal the dense memo's for the same
        candidate enumeration (the bit-identity oracle)."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=(3, 8))
        sign = np.where(rng.random(8) < 0.5, 1.0, -1.0)
        store = SharedScoreCache(max_bytes=1 << 20)
        _ = LazySplitKernel(values, sign, BETA_GRID, shared_cache=store)
        kernel = LazySplitKernel(values, sign, BETA_GRID, shared_cache=store)
        assert kernel.from_shared_cache
        margins = sign[None, None, :] * (values[:, :, None] - values[:, None, :])
        memo = DenseScoreMemo(
            margins.reshape(-1, 8), np.asarray(BETA_GRID)
        )
        items = np.arange(kernel.n_items, dtype=np.int64)
        for b in range(len(BETA_GRID)):
            beta = np.full(items.size, b, dtype=np.int64)
            np.testing.assert_array_equal(
                kernel.scores(kernel.item_groups[items], beta),
                memo.scores(items, beta),
            )


class TestMemoLifecycleLeak:
    """The per-kernel-instance memo leak: without the store every job
    rebuilds and re-evaluates every kernel from scratch."""

    def _run(self, matrix, members, trace):
        config = LearnerConfig(
            max_sampling_steps=5,
            parallel=ParallelConfig(n_workers=1, score_cache_bytes=64 << 20),
        )
        return LemonTreeLearner(config).learn_from_modules(
            matrix, members, seed=5, trace=trace
        ).network

    def test_second_job_evaluations_zero(self, tiny_matrix):
        learner = LemonTreeLearner(LearnerConfig(max_sampling_steps=5))
        members = learner.consensus(
            learner.sample_clusterings(tiny_matrix, seed=5)
        )
        trace1, trace2 = WorkTrace(), WorkTrace()
        net1 = self._run(tiny_matrix, members, trace1)
        net2 = self._run(tiny_matrix, members, trace2)
        assert net1 == net2
        c1, c2 = trace1.kernel_counters, trace2.kernel_counters
        assert c1.get("evaluations", 0) > 0
        assert c1.get("store_misses", 0) > 0
        # The regression: the second identical job re-evaluates nothing.
        assert c2.get("evaluations", 0) == 0
        assert c2.get("store_hits", 0) > 0
        assert c2.get("store_misses", 0) == 0

    def test_store_counters_absent_when_cache_off(self, tiny_matrix):
        learner = LemonTreeLearner(LearnerConfig(max_sampling_steps=5))
        members = learner.consensus(
            learner.sample_clusterings(tiny_matrix, seed=5)
        )
        trace = WorkTrace()
        LemonTreeLearner(
            LearnerConfig(max_sampling_steps=5)
        ).learn_from_modules(tiny_matrix, members, seed=5, trace=trace)
        assert "store_hits" not in trace.kernel_counters
        assert "store_misses" not in trace.kernel_counters


class TestEnsureInstall:
    def test_ensure_is_first_wins(self):
        store = ensure_shared_score_cache(1 << 20)
        again = ensure_shared_score_cache(1 << 30)
        assert again is store
        assert shared_score_cache() is store

    def test_set_returns_previous(self):
        store = SharedScoreCache(max_bytes=1 << 20)
        assert set_shared_score_cache(store) is None
        assert set_shared_score_cache(None) is store
