"""Service-grade battery for the always-on inference daemon.

The tentpole invariant: a network served by the daemon — from any mix of
concurrent clients, on either RNG backend, with the shared score cache
on or off, checkpoints on or off — is bit-identical (by
:func:`~repro.validation.metrics.network_fingerprint`) to a fresh
one-shot ``learn()`` of the same job.  Everything else here (admission
control, FIFO-with-priority dispatch, cancel semantics, the socket
protocol, the CLI verbs) is the service machinery around that invariant.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import LearnerConfig, ParallelConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_from_json
from repro.scoring.kernel import consume_kernel_totals, set_shared_score_cache
from repro.service import (
    AdmissionRejected,
    InferenceService,
    JobCancelled,
    JobNotFound,
    ServiceClient,
    ServiceDaemon,
    job_fingerprint,
)
from repro.service.jobs import JobSpec
from repro.validation.metrics import network_fingerprint


@pytest.fixture(autouse=True)
def _isolated_store():
    """The shared store is process-global; keep tests independent."""
    previous = set_shared_score_cache(None)
    consume_kernel_totals()
    yield
    set_shared_score_cache(previous)
    consume_kernel_totals()


def _config(workers: int = 1, rng_backend: str = "philox") -> LearnerConfig:
    return LearnerConfig(
        max_sampling_steps=5,
        rng_backend=rng_backend,
        parallel=ParallelConfig(n_workers=workers),
    )


def _oracle_fingerprint(matrix, config, seed) -> str:
    """A fresh one-shot learn in this process — the bit-identity bar."""
    result = LemonTreeLearner(config).learn(matrix, seed)
    return network_fingerprint(result.network)


class TestBitIdentity:
    @pytest.mark.parametrize("rng_backend", ["philox", "mrg"])
    @pytest.mark.parametrize("cache_bytes", [0, 64 << 20])
    def test_served_equals_one_shot(
        self, tiny_matrix, tmp_path, rng_backend, cache_bytes
    ):
        config = _config(rng_backend=rng_backend)
        oracle = _oracle_fingerprint(tiny_matrix, config, seed=7)
        with InferenceService(
            tmp_path, max_inflight=4, score_cache_bytes=cache_bytes
        ) as service:
            for use_checkpoints in (True, False):
                job = service.submit(
                    tiny_matrix, config, 7, use_checkpoints=use_checkpoints
                )
                assert service.wait(job)["fingerprint"] == oracle

    def test_warm_repeat_identical_across_worker_counts(
        self, tiny_matrix, tmp_path
    ):
        oracle = _oracle_fingerprint(tiny_matrix, _config(), seed=7)
        with InferenceService(tmp_path, max_inflight=4) as service:
            for workers in (1, 2, 1):
                job = service.submit(tiny_matrix, _config(workers), 7)
                payload = service.wait(job)
                assert payload["fingerprint"] == oracle

    def test_distinct_seeds_distinct_namespaces(self, tiny_matrix, tmp_path):
        with InferenceService(tmp_path, max_inflight=4) as service:
            j1 = service.submit(tiny_matrix, _config(), 7)
            j2 = service.submit(tiny_matrix, _config(), 8)
            r1, r2 = service.wait(j1), service.wait(j2)
            assert r1["job_fingerprint"] != r2["job_fingerprint"]
            assert r1["fingerprint"] != r2["fingerprint"]


class TestConcurrentClients:
    @pytest.mark.parametrize("rng_backend", ["philox", "mrg"])
    @pytest.mark.parametrize("cache_bytes", [0, 64 << 20])
    def test_overlapping_submissions_bit_identical(
        self, tiny_matrix, tmp_path, rng_backend, cache_bytes
    ):
        """N threads race overlapping jobs on the same matrix; every
        result matches the fresh one-shot oracle for its (seed, config)."""
        seeds = [7, 7, 8, 7, 8]
        config = _config(rng_backend=rng_backend)
        oracles = {
            seed: _oracle_fingerprint(tiny_matrix, config, seed)
            for seed in set(seeds)
        }
        results: dict[int, str] = {}
        errors: list[Exception] = []
        with InferenceService(
            tmp_path, max_inflight=len(seeds), score_cache_bytes=cache_bytes
        ) as service:

            def client(idx: int, seed: int) -> None:
                try:
                    job = service.submit(tiny_matrix, config, seed)
                    results[idx] = service.wait(job)["fingerprint"]
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i, seed))
                for i, seed in enumerate(seeds)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
        assert not errors
        assert len(results) == len(seeds)
        for idx, seed in enumerate(seeds):
            assert results[idx] == oracles[seed]


class TestAdmissionControl:
    def test_rejects_beyond_bound(self, tiny_matrix, tmp_path):
        # autostart=False: nothing dequeues, so admission is deterministic.
        service = InferenceService(tmp_path, max_inflight=2, autostart=False)
        try:
            service.submit(tiny_matrix, _config(), 1)
            service.submit(tiny_matrix, _config(), 2)
            with pytest.raises(AdmissionRejected):
                service.submit(tiny_matrix, _config(), 3)
            assert service.counters["rejected"] == 1
        finally:
            service.close()

    def test_slot_frees_after_completion(self, tiny_matrix, tmp_path):
        with InferenceService(tmp_path, max_inflight=1) as service:
            job = service.submit(tiny_matrix, _config(), 7)
            service.wait(job)
            # The finished job no longer occupies the single slot.
            job2 = service.submit(tiny_matrix, _config(), 8)
            service.wait(job2)

    def test_priority_order_within_queue(self, tiny_matrix, tmp_path):
        service = InferenceService(tmp_path, max_inflight=8, autostart=False)
        try:
            low1 = service.submit(tiny_matrix, _config(), 1, priority=0)
            high = service.submit(tiny_matrix, _config(), 2, priority=5)
            low2 = service.submit(tiny_matrix, _config(), 3, priority=0)
            service.start()
            done = [service.wait(j) for j in (low1, high, low2)]
            order = sorted(done, key=lambda p: p["job_id"])
            finished = {p["job_id"]: p for p in done}
            # The high-priority job started before the FIFO tail.
            assert (
                service.status(high)["started_at"]
                <= service.status(low2)["started_at"]
            )
            assert all(p["fingerprint"] for p in order)
            assert finished[low1]["fingerprint"]
        finally:
            service.close()


class TestCancel:
    def test_cancel_queued_job(self, tiny_matrix, tmp_path):
        service = InferenceService(tmp_path, max_inflight=4, autostart=False)
        try:
            job = service.submit(tiny_matrix, _config(), 7)
            assert service.cancel(job) is True
            assert service.status(job)["state"] == "cancelled"
            with pytest.raises(JobCancelled):
                service.result(job)
            # Cancelled jobs never run once the runner starts.
            service.start()
            other = service.submit(tiny_matrix, _config(), 8)
            service.wait(other)
            assert service.status(job)["state"] == "cancelled"
        finally:
            service.close()

    def test_cancel_finished_job_is_noop(self, tiny_matrix, tmp_path):
        with InferenceService(tmp_path, max_inflight=4) as service:
            job = service.submit(tiny_matrix, _config(), 7)
            service.wait(job)
            assert service.cancel(job) is False
            assert service.status(job)["state"] == "done"

    def test_unknown_job_typed_error(self, tmp_path):
        with InferenceService(tmp_path, max_inflight=1) as service:
            with pytest.raises(JobNotFound):
                service.result("job-999999")
            with pytest.raises(JobNotFound):
                service.cancel("job-999999")


class TestJobFingerprint:
    def _spec(self, matrix, config, seed) -> JobSpec:
        return JobSpec(
            values=matrix.values,
            var_names=list(matrix.var_names),
            config=config,
            seed=seed,
        )

    def test_execution_knobs_share_a_fingerprint(self, tiny_matrix):
        """Jobs differing only in placement knobs are the same job: they
        share one checkpoint namespace and one warm path."""
        base = job_fingerprint(self._spec(tiny_matrix, _config(1), 7))
        pooled = job_fingerprint(self._spec(tiny_matrix, _config(2), 7))
        cached = job_fingerprint(
            self._spec(
                tiny_matrix,
                LearnerConfig(
                    max_sampling_steps=5,
                    parallel=ParallelConfig(
                        n_workers=1, score_cache_bytes=64 << 20
                    ),
                ),
                7,
            )
        )
        assert base == pooled == cached

    def test_result_knobs_split_fingerprints(self, tiny_matrix):
        base = job_fingerprint(self._spec(tiny_matrix, _config(), 7))
        assert base != job_fingerprint(self._spec(tiny_matrix, _config(), 8))
        assert base != job_fingerprint(
            self._spec(tiny_matrix, _config(rng_backend="mrg"), 7)
        )
        other = LearnerConfig(
            max_sampling_steps=5, n_splits_per_node=3,
            parallel=ParallelConfig(n_workers=1),
        )
        assert base != job_fingerprint(self._spec(tiny_matrix, other, 7))

    def test_matrix_content_splits_fingerprints(self, tiny_matrix):
        base = job_fingerprint(self._spec(tiny_matrix, _config(), 7))
        bumped = tiny_matrix.values.copy()
        bumped[0, 0] += 1e-9
        spec = JobSpec(
            values=bumped,
            var_names=list(tiny_matrix.var_names),
            config=_config(),
            seed=7,
        )
        assert base != job_fingerprint(spec)


class TestWarmPath:
    def test_checkpointed_repeat_is_warm(self, tiny_matrix, tmp_path):
        with InferenceService(tmp_path, max_inflight=4) as service:
            cold = service.wait(service.submit(tiny_matrix, _config(), 7))
            warm = service.wait(service.submit(tiny_matrix, _config(), 7))
            assert warm["fingerprint"] == cold["fingerprint"]
            # The warm repeat loads Task 1 and Task 3 from the namespace.
            assert warm["seconds"] < cold["seconds"]
            ns = service.namespace_dir(cold["job_fingerprint"])
            assert ns.exists() and any(ns.iterdir())

    def test_cache_only_repeat_reevaluates_nothing(self, tiny_matrix, tmp_path):
        with InferenceService(
            tmp_path, max_inflight=4, score_cache_bytes=64 << 20
        ) as service:
            cold = service.wait(
                service.submit(tiny_matrix, _config(), 7, use_checkpoints=False)
            )
            warm = service.wait(
                service.submit(tiny_matrix, _config(), 7, use_checkpoints=False)
            )
            assert warm["fingerprint"] == cold["fingerprint"]
            counters = warm["kernel_counters"]
            assert counters.get("evaluations", 0) == 0
            assert counters.get("store_hits", 0) > 0

    def test_executor_lease_reused_for_identical_jobs(
        self, tiny_matrix, tmp_path
    ):
        with InferenceService(tmp_path, max_inflight=4) as service:
            config = _config(workers=2)
            r1 = service.wait(service.submit(tiny_matrix, config, 7))
            r2 = service.wait(service.submit(tiny_matrix, config, 7))
            assert r1["executor_reused"] is False
            assert r2["executor_reused"] is True
            assert service.stats()["executor"]["reuses"] == 1


class TestDaemonProtocol:
    def test_socket_round_trip(self, tiny_matrix, tmp_path):
        config = _config()
        oracle = _oracle_fingerprint(tiny_matrix, config, seed=7)
        with ServiceDaemon(tmp_path, max_inflight=4) as daemon:
            client = ServiceClient.from_dir(tmp_path)
            assert client.ping()["pid"] > 0
            job = client.submit(tiny_matrix, config, 7)
            payload = client.wait(job, timeout=300)
            assert payload["fingerprint"] == oracle
            network = network_from_json(payload["network_json"])
            assert network_fingerprint(network) == oracle
            rows = client.status()
            assert [r["job_id"] for r in rows] == [job]
            stats = client.stats()
            assert stats["completed"] == 1

    def test_typed_errors_cross_the_wire(self, tiny_matrix, tmp_path):
        with ServiceDaemon(tmp_path, max_inflight=4) as daemon:
            client = ServiceClient.from_dir(tmp_path)
            with pytest.raises(JobNotFound):
                client.result("job-424242")
            # A NaN matrix fails at execution; the error arrives typed.
            bad = tiny_matrix.values.copy()
            bad[0, 0] = np.nan
            from repro.service import JobFailed

            job = client.submit(bad, config=_config(), seed=7)
            with pytest.raises(JobFailed) as err:
                client.wait(job, timeout=120)
            assert err.value.error_type == "ValueError"

    def test_bad_token_rejected(self, tiny_matrix, tmp_path):
        from repro.service import AuthError

        with ServiceDaemon(tmp_path, max_inflight=1) as daemon:
            client = ServiceClient(daemon.host, daemon.port, "wrong-token")
            with pytest.raises(AuthError):
                client.ping()

    def test_shutdown_verb_stops_daemon(self, tmp_path):
        daemon = ServiceDaemon(tmp_path, max_inflight=1)
        daemon.start()
        client = ServiceClient.from_dir(tmp_path)
        client.shutdown()
        daemon.serve_forever()  # returns promptly once shutdown is requested
        assert not daemon.endpoint_path.exists()


class TestCliVerbs:
    def test_serve_submit_status_shutdown(self, tiny_matrix, tmp_path):
        """The CLI round trip against an in-process daemon: submit --wait,
        status, result, cancel, shutdown."""
        from repro.cli import main

        from repro.data.io import write_expression_tsv

        tsv = tmp_path / "expr.tsv"
        write_expression_tsv(tiny_matrix, tsv)
        run = tmp_path / "run"
        with ServiceDaemon(run, max_inflight=4) as daemon:
            out1 = tmp_path / "net1.json"
            assert main([
                "submit", "--service", str(run), "--input", str(tsv),
                "--seed", "7", "--sampling-steps", "5",
                "--wait", "--out-json", str(out1),
            ]) == 0
            out2 = tmp_path / "net2.json"
            assert main([
                "submit", "--service", str(run), "--input", str(tsv),
                "--seed", "7", "--sampling-steps", "5",
                "--wait", "--out-json", str(out2),
            ]) == 0
            assert out1.read_text() == out2.read_text()
            assert main(["status", "--service", str(run)]) == 0
            assert main([
                "result", "--service", str(run), "--job", "job-000000",
            ]) == 0
            # Nothing queued: cancel reports not-cancellable via exit code.
            assert main([
                "cancel", "--service", str(run), "--job", "job-000000",
            ]) == 1
            assert main(["shutdown", "--service", str(run)]) == 0
