"""Tests for the native-compiled split-scoring backend.

Three contracts:

* **resolution semantics** — ``kernel_backend`` validation on
  :class:`ParallelConfig` and the CLI; ``"native"`` raises when the
  extension is unavailable while ``"auto"`` silently falls back to NumPy
  for *expected* absence (disabled, no cffi, no compiler) and warns once
  only for genuine failures;
* **bit identity** — the native chunk evaluator, grouped statistics and
  normal-gamma tail agree with the NumPy oracle bit for bit, property-based
  over random shapes, duplicate-heavy rows, sub-range ``item_indices``,
  both RNG stream backends, extreme magnitudes and an active
  ``allocation_cap`` (which must raise the same
  :class:`AllocationCapExceeded` wherever the NumPy path would);
* **seen-bitmask caching** — a legitimately non-finite score is cached
  like any other value instead of reading as a perpetual miss, and the
  kernel counters flow into :class:`WorkTrace.kernel_counters` from both
  the serial path and spawn pool workers.

All native-vs-numpy tests skip cleanly when the extension cannot build
(no cffi / no C compiler); the resolution-semantics and seen-bitmask tests
run everywhere.
"""

import warnings
from unittest import mock

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.scoring.kernel as kernel_mod
from repro import _native
from repro.core.config import LearnerConfig, ParallelConfig
from repro.rng.streams import make_stream
from repro.scoring.kernel import (
    AllocationCapExceeded,
    KERNEL_BACKENDS,
    LazySplitKernel,
    allocation_cap,
    consume_kernel_totals,
    resolve_kernel_backend,
    set_kernel_backend,
    split_kernel_from_arrays,
)
from repro.scoring.normal_gamma import NormalGammaPrior, log_marginal
from repro.scoring.split_score import SplitScorer
from repro.scoring.suffstats import StatsArrays

NATIVE = _native.load() is not None
needs_native = pytest.mark.skipif(
    not NATIVE,
    reason=f"native backend unavailable ({_native.availability()['status']})",
)
BACKENDS = ["numpy"] + (["native"] if NATIVE else [])


def _uniform_block(n_items, dpi, seed=0, backend="philox"):
    return (
        make_stream(seed, "u", backend=backend)
        .block(0, n_items * dpi)
        .reshape(n_items, dpi)
    )


def _node_arrays(seed, n_vars=20, n_obs=14, n_parents=5, duplicates=False, scale=1.0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n_vars, n_obs)) * scale
    if duplicates:
        data = np.round(data / scale) * scale
    obs = np.arange(n_obs, dtype=np.int64)
    left_obs = rng.choice(obs, size=max(1, n_obs // 2), replace=False)
    parents = rng.choice(n_vars, size=n_parents, replace=False).astype(np.int64)
    return data, obs, left_obs, parents


# -- resolution semantics ----------------------------------------------------


class TestBackendConfig:
    def test_parallel_config_accepts_backends(self):
        for name in KERNEL_BACKENDS:
            assert ParallelConfig(kernel_backend=name).kernel_backend == name

    def test_parallel_config_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            ParallelConfig(kernel_backend="cuda")

    def test_learner_config_embeds_backend(self):
        cfg = LearnerConfig(parallel=ParallelConfig(kernel_backend="numpy"))
        assert cfg.parallel.kernel_backend == "numpy"

    def test_set_kernel_backend_roundtrip(self):
        prev = set_kernel_backend("numpy")
        try:
            assert kernel_mod.configured_kernel_backend() == "numpy"
            assert resolve_kernel_backend() == ("numpy", None)
        finally:
            set_kernel_backend(prev)

    def test_set_kernel_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_kernel_backend("fortran")

    def test_numpy_never_touches_extension(self):
        name, kernels = resolve_kernel_backend("numpy")
        assert name == "numpy" and kernels is None

    def test_cli_flag_flows_into_config(self):
        from repro.cli import _parallel_config, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["modules", "--preset", "yeast", "--modules-file", "x.json",
             "--kernel-backend", "numpy"]
        )
        assert _parallel_config(args).kernel_backend == "numpy"


class TestAutoFallback:
    def test_disabled_is_silent(self, monkeypatch):
        """``REPRO_NATIVE_DISABLE`` is expected absence: auto falls back to
        NumPy without warning, explicit native raises."""
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        monkeypatch.setattr(kernel_mod, "_WARNED_NATIVE_FALLBACK", False)
        _native.invalidate()
        try:
            assert _native.load() is None
            assert _native.availability()["status"] == "disabled"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                name, kernels = resolve_kernel_backend("auto")
            assert name == "numpy" and kernels is None
            with pytest.raises(RuntimeError, match="native"):
                resolve_kernel_backend("native")
            kernel = LazySplitKernel(
                np.zeros((2, 3)), np.ones(3), (1.0,), backend="auto"
            )
            assert kernel.backend == "numpy"
        finally:
            monkeypatch.delenv("REPRO_NATIVE_DISABLE")
            _native.invalidate()

    @needs_native
    def test_native_available_resolves_native(self):
        name, kernels = resolve_kernel_backend("auto")
        assert name == "native" and kernels is not None
        assert _native.availability()["status"] == "native"
        assert kernels.provider in ("svml", "libm")


# -- bit identity: the split kernel ------------------------------------------


@needs_native
class TestSplitKernelBitIdentity:
    def _compare(self, data, obs, left_obs, parents, scorer, uniforms):
        results = {}
        for backend in ("numpy", "native"):
            kernel = split_kernel_from_arrays(
                data, obs, left_obs, parents, scorer.beta_grid, backend=backend
            )
            chain = scorer.score_batch_kernel(kernel, uniforms)
            best = scorer.score_grid_best_kernel(kernel)
            results[backend] = (kernel, chain, best)
        numpy_kernel, numpy_chain, numpy_best = results["numpy"]
        native_kernel, native_chain, native_best = results["native"]
        for got, want in zip(native_chain, numpy_chain):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(native_best, numpy_best):
            np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(native_kernel._seen, numpy_kernel._seen)
        np.testing.assert_array_equal(
            native_kernel._cache[native_kernel._seen],
            numpy_kernel._cache[numpy_kernel._seen],
        )
        assert native_kernel.evaluations == numpy_kernel.evaluations
        assert native_kernel.hits == numpy_kernel.hits

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_vars=st.integers(2, 12),
        n_obs=st.integers(1, 24),
        n_parents=st.integers(1, 6),
        duplicates=st.booleans(),
        scale=st.sampled_from([1.0, 1e-3, 1e6, 1e154]),
        rng_backend=st.sampled_from(["philox", "mrg"]),
    )
    def test_property_chain_and_grid(
        self, seed, n_vars, n_obs, n_parents, duplicates, scale, rng_backend
    ):
        n_parents = min(n_parents, n_vars)
        data, obs, left_obs, parents = _node_arrays(
            seed, n_vars=n_vars, n_obs=n_obs, n_parents=n_parents,
            duplicates=duplicates, scale=scale,
        )
        scorer = SplitScorer(max_steps=5, stop_repeats=2)
        uniforms = _uniform_block(
            parents.size * obs.size, scorer.draws_per_item, seed, rng_backend
        )
        self._compare(data, obs, left_obs, parents, scorer, uniforms)

    def test_subrange_item_indices(self):
        """The partitioned backends score [row0, row1) slices against a
        kernel built on a parent sub-slice — native must reproduce the
        NumPy kernel on exactly this arithmetic."""
        data, obs, left_obs, parents = _node_arrays(11, n_parents=6)
        scorer = SplitScorer(max_steps=5, stop_repeats=2)
        n_obs = obs.size
        n_items = parents.size * n_obs
        uniforms = _uniform_block(n_items, scorer.draws_per_item, 11)
        for row0, row1 in [(0, n_items), (3, 17), (n_obs, 3 * n_obs), (5, 6)]:
            l0, l1 = row0 // n_obs, (row1 - 1) // n_obs + 1
            items = np.arange(row0 - l0 * n_obs, row1 - l0 * n_obs)
            parts = {}
            for backend in ("numpy", "native"):
                kernel = split_kernel_from_arrays(
                    data, obs, left_obs, parents[l0:l1], scorer.beta_grid,
                    backend=backend,
                )
                parts[backend] = scorer.score_batch_kernel(
                    kernel, uniforms[row0:row1], item_indices=items
                )
            for got, want in zip(parts["native"], parts["numpy"]):
                np.testing.assert_array_equal(got, want)

    def test_allocation_cap_parity(self):
        """Under a cap that blocks the dense margins matrix, the native
        kernel chunks its evaluations exactly like the NumPy kernel (the
        guard lives in shared Python code) and still matches bit for bit;
        a cap that blocks construction raises for both backends."""
        from repro.trees.splits import margins_from_arrays

        data, obs, left_obs, parents = _node_arrays(
            23, n_vars=40, n_obs=30, n_parents=10
        )
        scorer = SplitScorer(max_steps=4, stop_repeats=2)
        n_items = parents.size * obs.size
        cap = n_items * scorer.beta_grid.size + 4 * n_items
        assert cap < n_items * obs.size
        uniforms = _uniform_block(n_items, scorer.draws_per_item, 23)
        out = {}
        with allocation_cap(cap):
            with pytest.raises(AllocationCapExceeded):
                margins_from_arrays(data, obs, left_obs, parents)
            for backend in ("numpy", "native"):
                kernel = split_kernel_from_arrays(
                    data, obs, left_obs, parents, scorer.beta_grid,
                    backend=backend,
                )
                out[backend] = scorer.score_batch_kernel(kernel, uniforms)
                assert kernel.peak_chunk_elements <= cap
        for got, want in zip(out["native"], out["numpy"]):
            np.testing.assert_array_equal(got, want)
        with allocation_cap(10):
            for backend in ("numpy", "native"):
                with pytest.raises(AllocationCapExceeded):
                    LazySplitKernel(
                        np.zeros((4, 4)), np.ones(4), (1.0, 2.0), backend=backend
                    )

    def test_explicit_chunk_bound_parity(self):
        data, obs, left_obs, parents = _node_arrays(29, n_obs=16, n_parents=8)
        scorer = SplitScorer(max_steps=3)
        out = {}
        uniforms = _uniform_block(
            parents.size * obs.size, scorer.draws_per_item, 29
        )
        for backend in ("numpy", "native"):
            kernel = split_kernel_from_arrays(
                data, obs, left_obs, parents, scorer.beta_grid,
                max_chunk_elements=5 * obs.size, backend=backend,
            )
            out[backend] = scorer.score_batch_kernel(kernel, uniforms)
            assert kernel.peak_chunk_elements <= 5 * obs.size
        for got, want in zip(out["native"], out["numpy"]):
            np.testing.assert_array_equal(got, want)


# -- bit identity: grouped stats and the normal-gamma tail -------------------


@needs_native
class TestStatsBitIdentity:
    @staticmethod
    def _numpy_oracle():
        import repro.scoring.normal_gamma as ng

        return mock.patch.object(ng, "_native_kernels", lambda: None)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(1, 40),
        cols=st.integers(0, 20),
        n_groups=st.integers(1, 8),
        scale=st.sampled_from([1.0, 1e8]),
    )
    def test_grouped_property(self, seed, rows, cols, n_groups, scale):
        rng = np.random.default_rng(seed)
        if cols == 0:  # 1-D shape
            vals = rng.normal(size=rows) * scale
            labels = rng.integers(0, n_groups, size=rows)
        else:
            vals = rng.normal(size=(rows, cols)) * scale
            labels = rng.integers(0, n_groups, size=cols)
        native = StatsArrays.grouped(vals, labels, n_groups)
        with self._numpy_oracle():
            oracle = StatsArrays.grouped(vals, labels, n_groups)
        np.testing.assert_array_equal(native.count, oracle.count)
        np.testing.assert_array_equal(native.total, oracle.total)
        np.testing.assert_array_equal(native.sumsq, oracle.sumsq)

    def test_grouped_out_of_range_labels_fall_back(self):
        """Labels beyond n_groups keep np.bincount's widening semantics."""
        vals = np.arange(6, dtype=np.float64)
        labels = np.arange(6)
        stats = StatsArrays.grouped(vals, labels, 3)
        assert len(stats) == 6  # widened, exactly as the NumPy path does

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        size=st.integers(1, 600),
        empty_frac=st.sampled_from([0.0, 0.5]),
        lambda0=st.sampled_from([0.1, 1.0]),
        alpha0=st.sampled_from([0.1, 2.5]),
    )
    def test_log_marginal_property(self, seed, size, empty_frac, lambda0, alpha0):
        rng = np.random.default_rng(seed)
        count = rng.integers(0, 50, size=size).astype(np.float64)
        count[rng.random(size) < empty_frac] = 0.0
        total = rng.normal(size=size) * count
        sumsq = total * total / np.maximum(count, 1.0) + np.abs(
            rng.normal(size=size)
        ) * count
        prior = NormalGammaPrior(lambda0=lambda0, alpha0=alpha0)
        native = log_marginal(count, total, sumsq, prior)
        with self._numpy_oracle():
            oracle = log_marginal(count, total, sumsq, prior)
        np.testing.assert_array_equal(native, oracle)

    def test_log_marginal_scalar_path_unchanged(self):
        # Scalars never dispatch to the extension; the vectorized oracle
        # and the pure-math scalar twin stay in close agreement.
        from repro.scoring.normal_gamma import log_marginal_scalar

        got = log_marginal(3.0, 1.5, 2.0)
        assert isinstance(got, float)
        assert got == pytest.approx(log_marginal_scalar(3.0, 1.5, 2.0), rel=1e-12)

    def test_log_marginal_2d_shape_preserved(self):
        rng = np.random.default_rng(0)
        count = rng.integers(0, 9, size=(4, 5)).astype(np.float64)
        total = rng.normal(size=(4, 5)) * count
        sumsq = np.abs(rng.normal(size=(4, 5))) * count + total**2 / np.maximum(count, 1)
        out = log_marginal(count, total, sumsq)
        assert out.shape == (4, 5)
        assert np.all(out[count == 0] == 0.0)


# -- the seen-bitmask cache --------------------------------------------------


class TestSeenBitmask:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_non_finite_score_cached(self, backend):
        """A NaN score (infinite parent values make a margin row mix inf
        and NaN) must hit the cache on re-lookup — under the old NaN
        sentinel it re-evaluated on every call."""
        values = np.array([[np.inf, -np.inf, 0.0, 1.0]])
        sign = np.array([1.0, -1.0, 1.0, -1.0])
        with np.errstate(all="ignore"):
            kernel = LazySplitKernel(values, sign, (1.0,), backend=backend)
            # The group holding the +inf candidate value scores NaN.
            inf_group = kernel.item_groups[0]
            g = np.array([inf_group], dtype=np.int64)
            b = np.zeros(1, dtype=np.int64)
            first = kernel.scores(g, b)
            evals = kernel.evaluations
            hits = kernel.hits
            second = kernel.scores(g, b)
        assert np.isnan(first[0]) and np.isnan(second[0])
        assert kernel.evaluations == evals  # no re-evaluation
        assert kernel.hits == hits + 1

    def test_zero_score_cached(self):
        """A legitimate exactly-0.0 score must not read as a miss (the
        bitmask, not the cache value, tracks presence)."""
        kernel = LazySplitKernel(np.zeros((1, 1)), np.zeros(1), (1.0,))
        g = np.zeros(1, dtype=np.int64)
        b = np.zeros(1, dtype=np.int64)
        kernel.scores(g, b)
        evals = kernel.evaluations
        kernel.scores(g, b)
        assert kernel.evaluations == evals


# -- counters into WorkTrace -------------------------------------------------


class TestKernelCounters:
    def test_consume_returns_none_when_untouched(self):
        consume_kernel_totals()  # drain whatever earlier tests left behind
        assert consume_kernel_totals() is None

    def test_consume_drains_and_resets(self):
        consume_kernel_totals()
        kernel = split_kernel_from_arrays(
            *_node_arrays(3)[:4], (1.0, 2.0), backend="numpy"
        )
        kernel.scores(
            np.zeros(4, dtype=np.int64), np.array([0, 0, 1, 1], dtype=np.int64)
        )
        totals = consume_kernel_totals()
        assert totals is not None
        assert totals["evaluations"] == kernel.evaluations
        assert totals["hits"] == kernel.hits
        assert totals["peak_chunk_elements"] == kernel.peak_chunk_elements
        assert totals["backends"] == ["numpy"]
        assert consume_kernel_totals() is None

    def test_trace_merge_and_roundtrip(self, tmp_path):
        from repro.parallel.trace import WorkTrace, load_trace, save_trace

        trace = WorkTrace()
        trace.mark_kernel(None)  # a task that scored nothing
        assert trace.kernel_counters == {}
        trace.mark_kernel(
            {"hits": 5, "evaluations": 7, "peak_chunk_elements": 100,
             "backends": ["numpy"]}
        )
        trace.mark_kernel(
            {"hits": 1, "evaluations": 2, "peak_chunk_elements": 50,
             "backends": ["native"]}
        )
        assert trace.kernel_counters == {
            "hits": 6, "evaluations": 9, "peak_chunk_elements": 100,
            "backends": ["native", "numpy"],
        }
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        assert load_trace(path).kernel_counters == trace.kernel_counters

    def test_serial_learn_records_counters(self):
        from repro.core.learner import LemonTreeLearner
        from repro.data.synthetic import make_module_dataset
        from repro.parallel.trace import WorkTrace

        matrix = make_module_dataset(16, 10, n_modules=2, seed=7).matrix
        config = LearnerConfig(max_sampling_steps=4)
        learner = LemonTreeLearner(config)
        members = learner.consensus(learner.sample_clusterings(matrix, seed=7))
        trace = WorkTrace()
        learner.learn_from_modules(matrix, members, seed=7, trace=trace)
        counters = trace.kernel_counters
        assert counters.get("evaluations", 0) > 0
        assert counters["backends"]


# -- spawn pool workers ------------------------------------------------------


@pytest.mark.slow
class TestPoolWorkers:
    def _reference(self):
        from repro.core.learner import LemonTreeLearner
        from repro.data.synthetic import make_module_dataset

        matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
        config = LearnerConfig(
            max_sampling_steps=5,
            parallel=ParallelConfig(kernel_backend="numpy"),
        )
        learner = LemonTreeLearner(config)
        members = learner.consensus(learner.sample_clusterings(matrix, seed=5))
        reference = learner.learn_from_modules(matrix, members, seed=5).network
        return matrix, members, reference

    @needs_native
    def test_native_pool_matches_numpy_sequential(self):
        """Spawn workers resolve the native backend from module state (no
        pickled kernels) and the learned network is bit-identical to the
        sequential NumPy run."""
        from repro.core.learner import LemonTreeLearner
        from repro.parallel.trace import WorkTrace

        matrix, members, reference = self._reference()
        trace = WorkTrace()
        cfg = LearnerConfig(
            max_sampling_steps=5,
            parallel=ParallelConfig(n_workers=2, kernel_backend="native"),
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, trace=trace
        ).network
        assert net == reference
        assert "native" in trace.kernel_counters.get("backends", [])
        assert trace.kernel_counters.get("evaluations", 0) > 0

    def test_numpy_pool_records_counters(self):
        from repro.core.learner import LemonTreeLearner
        from repro.parallel.trace import WorkTrace

        matrix, members, reference = self._reference()
        trace = WorkTrace()
        cfg = LearnerConfig(
            max_sampling_steps=5,
            parallel=ParallelConfig(n_workers=2, kernel_backend="numpy"),
        )
        net = LemonTreeLearner(cfg).learn_from_modules(
            matrix, members, seed=5, trace=trace
        ).network
        assert net == reference
        assert trace.kernel_counters.get("backends") == ["numpy"]
        assert trace.kernel_counters.get("evaluations", 0) > 0
