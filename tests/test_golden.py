"""Golden-output regression test.

A reproduction repository's core promise is that results do not drift:
the committed golden network (learned with a fixed seed, configuration and
synthetic data set) must be regenerated bit-for-bit by the current code.
Any intentional algorithm change must consciously regenerate
``tests/data/golden_network.json``:

    python -c "
    from repro.core.config import LearnerConfig
    from repro.core.learner import LemonTreeLearner
    from repro.core.output import network_to_json
    from repro.data.synthetic import make_module_dataset
    matrix = make_module_dataset(20, 12, n_modules=3, seed=2024).matrix
    net = LemonTreeLearner(LearnerConfig(max_sampling_steps=5)).learn(matrix, seed=99).network
    open('tests/data/golden_network.json', 'w').write(network_to_json(net))
    "
"""

from pathlib import Path

import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_from_json, network_to_json
from repro.data.synthetic import make_module_dataset

GOLDEN = Path(__file__).parent / "data" / "golden_network.json"


@pytest.fixture(scope="module")
def regenerated():
    matrix = make_module_dataset(20, 12, n_modules=3, seed=2024).matrix
    config = LearnerConfig(max_sampling_steps=5)
    return LemonTreeLearner(config).learn(matrix, seed=99).network


class TestGolden:
    def test_network_matches_golden(self, regenerated):
        golden = network_from_json(GOLDEN.read_text())
        assert regenerated == golden, (
            "learned network drifted from the committed golden output — "
            "if the change is intentional, regenerate tests/data/"
            "golden_network.json (see this file's docstring)"
        )

    def test_serialization_matches_golden_bytes(self, regenerated):
        """Even the serialized form is stable (field order, rounding)."""
        assert network_to_json(regenerated) == GOLDEN.read_text()

    def test_golden_is_well_formed(self):
        golden = network_from_json(GOLDEN.read_text())
        assert golden.n_vars == 20
        assert golden.n_obs == 12
        assert golden.n_modules >= 1
