"""Cross-implementation consistency: the paper's central verification.

Section 4.1: "we ... ensured that our implementation produces exactly the
same output as Lemon-Tree, given the same input data set and execution
parameters"; Section 3: the parallel algorithm is designed "to ensure
consistency of results with the sequential Lemon-Tree implementation".
Here: optimized sequential == pure-Python reference == SPMD parallel at
every p, for multiple seeds, configurations and RNG backends.
"""

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_from_json, network_to_json
from repro.core.reference import ReferenceLearner
from repro.parallel.engine import ParallelLearner


class TestOptimizedVsReference:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_identical_networks(self, tiny_matrix, fast_config, seed):
        optimized = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=seed)
        reference = ReferenceLearner(fast_config).learn(tiny_matrix, seed=seed)
        assert optimized.network == reference.network

    def test_identical_on_structured_data(self, small_matrix, fast_config):
        optimized = LemonTreeLearner(fast_config).learn(small_matrix, seed=5)
        reference = ReferenceLearner(fast_config).learn(small_matrix, seed=5)
        assert optimized.network == reference.network

    def test_identical_with_more_update_steps(self, tiny_matrix):
        config = LearnerConfig(n_update_steps=2, max_sampling_steps=4)
        optimized = LemonTreeLearner(config).learn(tiny_matrix, seed=8)
        reference = ReferenceLearner(config).learn(tiny_matrix, seed=8)
        assert optimized.network == reference.network

    def test_identical_with_multiple_trees(self, tiny_matrix):
        config = LearnerConfig(
            tree_update_steps=3, tree_burn_in=1, max_sampling_steps=3
        )
        optimized = LemonTreeLearner(config).learn(tiny_matrix, seed=9)
        reference = ReferenceLearner(config).learn(tiny_matrix, seed=9)
        assert optimized.network == reference.network

    def test_identical_with_multiple_ganesh_runs(self, tiny_matrix):
        config = LearnerConfig(n_ganesh_runs=2, max_sampling_steps=3)
        optimized = LemonTreeLearner(config).learn(tiny_matrix, seed=10)
        reference = ReferenceLearner(config).learn(tiny_matrix, seed=10)
        assert optimized.network == reference.network

    def test_identical_with_mrg_backend(self, tiny_matrix):
        config = LearnerConfig(max_sampling_steps=3, rng_backend="mrg")
        optimized = LemonTreeLearner(config).learn(tiny_matrix, seed=11)
        reference = ReferenceLearner(config).learn(tiny_matrix, seed=11)
        assert optimized.network == reference.network

    def test_identical_with_candidate_parents(self, tiny_matrix):
        config = LearnerConfig(
            max_sampling_steps=3, candidate_parents=tuple(range(0, 20, 2))
        )
        optimized = LemonTreeLearner(config).learn(tiny_matrix, seed=12)
        reference = ReferenceLearner(config).learn(tiny_matrix, seed=12)
        assert optimized.network == reference.network


class TestThreeWayAgreement:
    def test_all_three_agree(self, tiny_matrix, fast_config):
        optimized = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=21).network
        reference = ReferenceLearner(fast_config).learn(tiny_matrix, seed=21).network
        parallel = ParallelLearner(fast_config).learn(tiny_matrix, seed=21, p=3).network
        assert optimized == reference
        assert optimized == parallel

    def test_agreement_survives_serialization(self, tiny_matrix, fast_config):
        optimized = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=22).network
        parallel = ParallelLearner(fast_config).learn(tiny_matrix, seed=22, p=2).network
        assert network_from_json(network_to_json(optimized)) == network_from_json(
            network_to_json(parallel)
        )


class TestSeedSensitivity:
    def test_different_seeds_differ(self, tiny_matrix, fast_config):
        a = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=1).network
        b = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=2).network
        assert a != b

    def test_same_seed_reproduces(self, tiny_matrix, fast_config):
        a = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=7).network
        b = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=7).network
        assert a == b
        assert a.signature() == b.signature()
