"""Tests for consensus clustering (co-occurrence + spectral)."""

import numpy as np
import pytest

from repro.consensus.cooccurrence import cooccurrence_matrix
from repro.consensus.spectral import (
    _dominant_eigenvector,
    consensus_clusters,
    spectral_clusters,
)


class TestCooccurrence:
    def test_single_sample(self):
        matrix = cooccurrence_matrix([np.array([0, 0, 1])])
        assert matrix[0, 1] == 1.0
        assert matrix[0, 2] == 0.0
        assert matrix[0, 0] == 0.0  # diagonal zeroed

    def test_fraction_over_samples(self):
        samples = [np.array([0, 0, 1]), np.array([0, 1, 1])]
        matrix = cooccurrence_matrix(samples)
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[1, 2] == pytest.approx(0.5)
        assert matrix[0, 2] == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        samples = [rng.integers(0, 4, size=20) for _ in range(5)]
        matrix = cooccurrence_matrix(samples)
        np.testing.assert_array_equal(matrix, matrix.T)

    def test_threshold_zeroes_weak_pairs(self):
        samples = [np.array([0, 0, 1]), np.array([0, 1, 1]), np.array([0, 1, 2])]
        matrix = cooccurrence_matrix(samples, threshold=0.5)
        assert matrix[1, 2] == 0.0  # 1/3 < 0.5
        assert matrix[0, 1] == 0.0  # 1/3 < 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix([])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            cooccurrence_matrix([np.array([0, 1]), np.array([0, 1, 2])])


class TestDominantEigenvector:
    def test_matches_numpy_eig(self):
        rng = np.random.default_rng(1)
        raw = rng.random((8, 8))
        matrix = raw + raw.T  # symmetric
        matrix = np.abs(matrix)
        vec = _dominant_eigenvector(matrix)
        values, vectors = np.linalg.eigh(matrix)
        expected = np.abs(vectors[:, -1])
        np.testing.assert_allclose(np.abs(vec), expected, atol=1e-6)

    def test_zero_matrix(self):
        vec = _dominant_eigenvector(np.zeros((4, 4)))
        assert np.isfinite(vec).all()

    def test_deterministic(self):
        matrix = np.ones((5, 5))
        np.testing.assert_array_equal(
            _dominant_eigenvector(matrix), _dominant_eigenvector(matrix)
        )


class TestSpectralClusters:
    def test_block_diagonal_recovers_blocks(self):
        matrix = np.zeros((6, 6))
        matrix[np.ix_([0, 1, 2], [0, 1, 2])] = 1.0
        matrix[np.ix_([3, 4, 5], [3, 4, 5])] = 1.0
        np.fill_diagonal(matrix, 0.0)
        clusters = spectral_clusters(matrix)
        assert sorted(map(sorted, clusters)) == [[0, 1, 2], [3, 4, 5]]

    def test_isolated_nodes_become_singletons(self):
        matrix = np.zeros((4, 4))
        matrix[0, 1] = matrix[1, 0] = 1.0
        clusters = spectral_clusters(matrix)
        assert [0, 1] in clusters
        assert [2] in clusters and [3] in clusters

    def test_partition_is_exact(self):
        rng = np.random.default_rng(2)
        raw = rng.random((12, 12))
        matrix = (raw + raw.T) / 2
        np.fill_diagonal(matrix, 0.0)
        clusters = spectral_clusters(matrix)
        flat = sorted(v for c in clusters for v in c)
        assert flat == list(range(12))

    def test_max_clusters_cap(self):
        rng = np.random.default_rng(3)
        raw = rng.random((10, 10))
        matrix = (raw + raw.T) / 2
        np.fill_diagonal(matrix, 0.0)
        clusters = spectral_clusters(matrix, max_clusters=3)
        assert len(clusters) <= 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spectral_clusters(np.array([[0.0, -1.0], [-1.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            spectral_clusters(np.zeros((2, 3)))

    def test_modules_sorted_by_smallest_member(self):
        matrix = np.zeros((4, 4))
        matrix[2, 3] = matrix[3, 2] = 1.0
        matrix[0, 1] = matrix[1, 0] = 0.5
        clusters = spectral_clusters(matrix)
        firsts = [c[0] for c in clusters]
        assert firsts == sorted(firsts)


class TestConsensusEnd2End:
    def test_stable_ensemble_recovers_modules(self):
        """If every sample agrees, consensus returns exactly that clustering."""
        labels = np.array([0, 0, 0, 1, 1, 2, 2, 2])
        clusters = consensus_clusters([labels] * 5, threshold=0.5)
        assert sorted(map(sorted, clusters)) == [[0, 1, 2], [3, 4], [5, 6, 7]]

    def test_noisy_ensemble_majority_wins(self):
        base = np.array([0, 0, 0, 1, 1, 1])
        noisy = np.array([0, 0, 1, 1, 1, 0])
        clusters = consensus_clusters([base, base, base, noisy], threshold=0.5)
        assert sorted(map(sorted, clusters)) == [[0, 1, 2], [3, 4, 5]]

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        samples = [rng.integers(0, 3, size=15) for _ in range(4)]
        a = consensus_clusters(samples)
        b = consensus_clusters(samples)
        assert a == b
