"""Tests for the process-pool split-scoring backend."""

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.parallel.pool import (
    SplitTask,
    _subdivide,
    build_split_tasks,
    score_splits_pool,
)
from repro.rng.streams import IndexedStream, make_stream
from repro.scoring.split_score import SplitScorer
from repro.trees.splits import node_margins, score_node_splits


def _node_records_and_reference(matrix, config, seed):
    """Run the sequential module phase far enough to extract node records
    and reference split scores."""
    learner = LemonTreeLearner(config)
    data = matrix.values
    samples = learner._task_ganesh(data, seed, None)
    members = learner._task_consensus(samples)
    parents = np.asarray(config.resolve_candidate_parents(data.shape[0]))
    scorer = SplitScorer(
        beta_grid=config.beta_grid,
        max_steps=config.max_sampling_steps,
        stop_repeats=config.sampling_stop_repeats,
    )
    records = []
    ref_scores, ref_steps, ref_accept = [], [], []
    from repro.ganesh.coclustering import run_obs_only_ganesh
    from repro.rng.streams import GibbsRandom
    from repro.trees.hierarchy import build_tree_structure

    for module_id, mem in enumerate(members):
        block = data[mem]
        mrng = GibbsRandom(make_stream(seed, "modules", module_id))
        obs_samples = run_obs_only_ganesh(
            block, mrng, config.tree_update_steps, config.tree_burn_in, config.prior
        )
        istream = IndexedStream(
            make_stream(seed, "splits", module_id), scorer.draws_per_item
        )
        obs_base = 0
        for labels in obs_samples:
            tree = build_tree_structure(block, labels, module_id, config.prior)
            for node in tree.internal_nodes():
                records.append(
                    (module_id, node.observations, node.left.observations, obs_base)
                )
                scores = score_node_splits(
                    data, module_id, 0, node, parents, scorer, istream,
                    obs_base * parents.size,
                )
                ref_scores.append(scores.log_scores)
                ref_steps.append(scores.steps)
                ref_accept.append(scores.accepted)
                obs_base += int(node.observations.size)
    return (
        data,
        records,
        parents,
        np.concatenate(ref_scores) if ref_scores else np.zeros(0),
        np.concatenate(ref_steps) if ref_steps else np.zeros(0, dtype=int),
        np.concatenate(ref_accept) if ref_accept else np.zeros(0, dtype=bool),
    )


@pytest.fixture(scope="module")
def pool_setup(request):
    from repro.data.synthetic import make_module_dataset

    matrix = make_module_dataset(24, 12, n_modules=3, seed=42).matrix
    config = LearnerConfig(max_sampling_steps=5)
    return _node_records_and_reference(matrix, config, seed=11), config


class TestBuildTasks:
    def test_offsets_are_contiguous(self, pool_setup):
        (data, records, parents, *_), config = pool_setup
        tasks, total = build_split_tasks(records, len(parents))
        offset = 0
        for task in tasks:
            assert task.out_offset == offset
            offset += task.row1 - task.row0
        assert offset == total

    def test_subdivide_preserves_coverage(self, pool_setup):
        (data, records, parents, *_), config = pool_setup
        tasks, total = build_split_tasks(records, len(parents))
        pieces = _subdivide(tasks, total, 7)
        covered = sorted(
            (piece.out_offset, piece.out_offset + piece.row1 - piece.row0)
            for piece in pieces
        )
        position = 0
        for lo, hi in covered:
            assert lo == position
            position = hi
        assert position == total

    def test_subdivide_respects_node_boundaries(self, pool_setup):
        (data, records, parents, *_), config = pool_setup
        tasks, total = build_split_tasks(records, len(parents))
        for piece in _subdivide(tasks, total, 5):
            assert 0 <= piece.row0 < piece.row1


class TestPoolScoring:
    def test_serial_path_matches_reference(self, pool_setup):
        (data, records, parents, ref_s, ref_t, ref_a), config = pool_setup
        scores, steps, accepted = score_splits_pool(
            data, records, parents, config, seed=11, n_workers=1
        )
        np.testing.assert_array_equal(scores, ref_s)
        np.testing.assert_array_equal(steps, ref_t)
        np.testing.assert_array_equal(accepted, ref_a)

    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_pool_matches_reference(self, pool_setup, schedule):
        """Chunking/worker assignment must not change results — the
        index-addressed randomness contract."""
        (data, records, parents, ref_s, ref_t, ref_a), config = pool_setup
        scores, steps, accepted = score_splits_pool(
            data, records, parents, config, seed=11, n_workers=3, schedule=schedule
        )
        np.testing.assert_array_equal(scores, ref_s)
        np.testing.assert_array_equal(steps, ref_t)
        np.testing.assert_array_equal(accepted, ref_a)

    def test_rejects_unknown_schedule(self, pool_setup):
        (data, records, parents, *_), config = pool_setup
        with pytest.raises(ValueError):
            score_splits_pool(
                data, records, parents, config, seed=1, n_workers=2, schedule="magic"
            )
