"""Tests for recovery metrics and learner quality on easy data."""

import numpy as np
import pytest

from repro.analysis.recovery import (
    adjusted_rand_index,
    module_recovery_score,
    parent_recovery,
)
from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeled_partitions_equal(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 2, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_random_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        scores = [
            adjusted_rand_index(rng.integers(0, 4, 200), rng.integers(0, 4, 200))
            for _ in range(10)
        ]
        assert abs(np.mean(scores)) < 0.05

    def test_opposite_partition_low(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 1, 2, 0, 1, 2])
        assert adjusted_rand_index(a, b) < 0.1

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.zeros(3), np.zeros(4))

    def test_single_element(self):
        assert adjusted_rand_index(np.array([0]), np.array([5])) == 1.0


class TestRecoveryOnEasyData:
    @pytest.fixture(scope="class")
    def easy_learned(self):
        """Well-separated modules, low noise — the learner should find
        most of the structure."""
        ds = make_module_dataset(
            36, 40, n_modules=3, noise=0.15, heavy_tail=0.0, seed=77
        )
        result = LemonTreeLearner(LearnerConfig(max_sampling_steps=5)).learn(
            ds.matrix, seed=5
        )
        return ds, result

    def test_module_recovery_beats_random(self, easy_learned):
        ds, result = easy_learned
        ari = module_recovery_score(result.network, ds.truth)
        assert ari > 0.25  # well above the ~0 random baseline

    def test_parent_recovery_reports_metrics(self, easy_learned):
        ds, result = easy_learned
        metrics = parent_recovery(result.network, ds.truth, top_k=3)
        assert set(metrics) == {"precision", "recall", "true_positives"}
        assert 0.0 <= metrics["precision"] <= 1.0
        assert 0.0 <= metrics["recall"] <= 1.0

    def test_parents_are_scored(self, easy_learned):
        _, result = easy_learned
        scored = [
            score
            for module in result.network.modules
            for score in module.weighted_parents.values()
        ]
        assert scored, "expected at least one weighted parent"
        assert all(0.0 <= s <= 1.0 for s in scored)

    def test_regulator_recovery_with_candidate_list(self, easy_learned):
        """With the candidate-regulator restriction (the TF-list practice
        of real Lemon-Tree studies), true regulators are found."""
        ds, _ = easy_learned
        candidates = tuple(range(max(2, ds.matrix.n_vars // 10)))
        config = LearnerConfig(max_sampling_steps=8, candidate_parents=candidates)
        result = LemonTreeLearner(config).learn(ds.matrix, seed=5)
        metrics = parent_recovery(result.network, ds.truth, top_k=1)
        assert metrics["precision"] > 0.3
