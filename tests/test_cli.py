"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.output import network_from_json
from repro.data.io import read_expression_tsv


@pytest.fixture()
def matrix_file(tmp_path):
    path = tmp_path / "expr.tsv"
    code = main(["generate", "--n", "24", "--m", "14", "--seed", "3",
                 "--out", str(path)])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_learn_requires_data_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["learn"])

    def test_input_and_preset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["learn", "--input", "x.tsv", "--preset", "yeast"]
            )


class TestGenerate:
    def test_writes_readable_matrix(self, matrix_file):
        matrix = read_expression_tsv(matrix_file)
        assert matrix.shape == (24, 14)


class TestLearn:
    def test_learn_from_file(self, matrix_file, tmp_path, capsys):
        out_json = tmp_path / "net.json"
        out_xml = tmp_path / "net.xml"
        code = main([
            "learn", "--input", str(matrix_file), "--seed", "1",
            "--sampling-steps", "4",
            "--out-json", str(out_json), "--out-xml", str(out_xml),
        ])
        assert code == 0
        network = network_from_json(out_json.read_text())
        assert network.n_vars == 24
        assert out_xml.read_text().startswith("<ModuleNetwork")
        assert "learned" in capsys.readouterr().out

    def test_learn_from_preset(self, capsys):
        code = main([
            "learn", "--preset", "yeast", "--scale", "0.004",
            "--sampling-steps", "3", "--seed", "2",
        ])
        assert code == 0
        assert "modules" in capsys.readouterr().out

    def test_learn_parallel_matches_sequential(self, matrix_file, tmp_path):
        seq_path = tmp_path / "seq.json"
        par_path = tmp_path / "par.json"
        common = ["--input", str(matrix_file), "--seed", "5",
                  "--sampling-steps", "4"]
        main(["learn", *common, "--out-json", str(seq_path)])
        main(["learn", *common, "--workers", "3", "--out-json", str(par_path)])
        assert network_from_json(seq_path.read_text()) == network_from_json(
            par_path.read_text()
        )

    def test_learn_acyclic(self, matrix_file, tmp_path):
        out_json = tmp_path / "dag.json"
        code = main([
            "learn", "--input", str(matrix_file), "--seed", "1",
            "--sampling-steps", "4", "--acyclic", "--out-json", str(out_json),
        ])
        assert code == 0
        network = network_from_json(out_json.read_text())
        assert network.feedback_edges() == []

    def test_init_clusters_fraction(self, matrix_file, capsys):
        code = main([
            "learn", "--input", str(matrix_file), "--seed", "1",
            "--sampling-steps", "3", "--init-clusters", "0.25",
        ])
        assert code == 0


class TestScale:
    def test_scale_table(self, matrix_file, capsys):
        code = main([
            "scale", "--input", str(matrix_file), "--seed", "1",
            "--sampling-steps", "3", "--procs", "1", "8", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_1" in out and "speedup" in out

    def test_scale_custom_machine(self, matrix_file, capsys):
        code = main([
            "scale", "--input", str(matrix_file), "--seed", "1",
            "--sampling-steps", "3", "--procs", "4",
            "--tau", "1e-4", "--mu", "1e-8",
        ])
        assert code == 0


class TestCompare:
    def test_compare_runs(self, matrix_file, capsys):
        code = main([
            "compare", "--input", str(matrix_file), "--seed", "1",
            "--modules", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GENOMICA" in out and "agreement" in out


class TestTaskWorkflow:
    """The Lemon-Tree multi-invocation workflow: ganesh -> consensus ->
    modules with intermediate files, equivalent to one-shot learn."""

    def test_task_pipeline_matches_learn(self, matrix_file, tmp_path):
        clusters = tmp_path / "clusters.json"
        modules = tmp_path / "modules.json"
        net_tasks = tmp_path / "net_tasks.json"
        net_learn = tmp_path / "net_learn.json"

        assert main(["ganesh", "--input", str(matrix_file), "--seed", "4",
                     "--out", str(clusters)]) == 0
        assert main(["consensus", "--inputs", str(clusters),
                     "--out", str(modules)]) == 0
        assert main(["modules", "--input", str(matrix_file), "--seed", "4",
                     "--modules-file", str(modules), "--sampling-steps", "4",
                     "--out-json", str(net_tasks)]) == 0
        assert main(["learn", "--input", str(matrix_file), "--seed", "4",
                     "--sampling-steps", "4", "--out-json", str(net_learn)]) == 0

        assert network_from_json(net_tasks.read_text()) == network_from_json(
            net_learn.read_text()
        )

    def test_ganesh_multiple_runs(self, matrix_file, tmp_path):
        out = tmp_path / "c.json"
        assert main(["ganesh", "--input", str(matrix_file), "--seed", "1",
                     "--runs", "3", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert len(payload["samples"]) == 3
        assert all(len(s) == 24 for s in payload["samples"])

    def test_consensus_combines_files(self, matrix_file, tmp_path):
        """G runs as separate invocations (separate cluster jobs) combine."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["ganesh", "--input", str(matrix_file), "--seed", "1", "--out", str(a)])
        main(["ganesh", "--input", str(matrix_file), "--seed", "2", "--out", str(b)])
        out = tmp_path / "mods.json"
        assert main(["consensus", "--inputs", str(a), str(b),
                     "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        flat = sorted(v for mod in payload["modules"] for v in mod)
        assert flat == list(range(24))

    def test_modules_rejects_mismatched_matrix(self, matrix_file, tmp_path):
        other = tmp_path / "other.tsv"
        main(["generate", "--n", "10", "--m", "8", "--out", str(other)])
        clusters = tmp_path / "c.json"
        modules = tmp_path / "m.json"
        main(["ganesh", "--input", str(matrix_file), "--seed", "1",
              "--out", str(clusters)])
        main(["consensus", "--inputs", str(clusters), "--out", str(modules)])
        with pytest.raises(SystemExit):
            main(["modules", "--input", str(other), "--seed", "1",
                  "--modules-file", str(modules)])


class TestReport:
    def test_report_from_network_json(self, matrix_file, tmp_path, capsys):
        net = tmp_path / "net.json"
        main(["learn", "--input", str(matrix_file), "--seed", "1",
              "--sampling-steps", "4", "--out-json", str(net)])
        capsys.readouterr()
        assert main(["report", "--network", str(net)]) == 0
        out = capsys.readouterr().out
        assert "module network:" in out
        assert "module graph:" in out
        assert "tree:" in out


class TestModulesCheckpoint:
    def test_checkpoint_dir_flag(self, matrix_file, tmp_path):
        clusters = tmp_path / "c.json"
        modules = tmp_path / "m.json"
        ckpt = tmp_path / "ckpt"
        main(["ganesh", "--input", str(matrix_file), "--seed", "1",
              "--out", str(clusters)])
        main(["consensus", "--inputs", str(clusters), "--out", str(modules)])
        assert main(["modules", "--input", str(matrix_file), "--seed", "1",
                     "--modules-file", str(modules), "--sampling-steps", "4",
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert list(ckpt.glob("module_*.json"))


class TestValidate:
    def test_list_scenarios(self, capsys):
        assert main(["validate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "clean-baseline" in out and "tie-grid" in out

    def test_unknown_scenario_fails_loudly(self):
        with pytest.raises(KeyError, match="no-such"):
            main(["validate", "--scenarios", "no-such"])

    def test_single_scenario_smoke_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(["validate", "--smoke", "--scenarios", "tie-grid",
                     "--workers", "1", "--out", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "tie-grid" in out and "ok" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["scenarios"][0]["name"] == "tie-grid"
        assert all(
            combo["identical"]
            for combo in payload["scenarios"][0]["combos"]
        )

    @pytest.mark.slow
    def test_smoke_matrix_via_cli(self, tmp_path):
        """The exact invocation CI's scenario-smoke job runs."""
        report_path = tmp_path / "report.json"
        assert main(["validate", "--smoke", "--out", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["n_scenarios"] >= 5
