"""Scenario-matrix validation harness: generators, grid, differential runs."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.learner import LemonTreeLearner
from repro.validation import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    ToleranceBand,
    backend_grid,
    get_scenario,
    network_fingerprint,
    run_matrix,
    run_scenario,
    select_scenarios,
)
from repro.validation.runner import RNG_BACKENDS, BackendCombo


class TestRegistry:
    def test_names_match_keys(self):
        for name, spec in SCENARIOS.items():
            assert spec.name == name

    def test_smoke_subset_registered(self):
        assert set(SMOKE_SCENARIOS) <= set(SCENARIOS)

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="clean-baseline"):
            get_scenario("no-such-scenario")

    def test_select_default_is_full_registry(self):
        assert len(select_scenarios()) == len(SCENARIOS)

    def test_select_smoke_is_reduced(self):
        smoke = select_scenarios(smoke=True)
        assert 0 < len(smoke) < len(SCENARIOS)
        assert [s.name for s in smoke] == list(SMOKE_SCENARIOS)

    def test_explicit_names_win_over_smoke(self):
        picked = select_scenarios(["tie-grid"], smoke=True)
        assert [s.name for s in picked] == ["tie-grid"]


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic_and_well_formed(self, name):
        """Every scenario is a pure function of its seed — the property
        the differential harness rests on."""
        spec = SCENARIOS[name]
        a = spec.generate(3, smoke=True)
        b = spec.generate(3, smoke=True)
        np.testing.assert_array_equal(a.matrix.values, b.matrix.values)
        np.testing.assert_array_equal(
            a.truth.module_of_gene, b.truth.module_of_gene
        )
        # NaN only where a missing mask says so; never inf.
        assert not np.isinf(a.matrix.values).any()
        if a.missing_mask is not None:
            np.testing.assert_array_equal(
                np.isnan(a.matrix.values), a.missing_mask
            )
        else:
            assert not np.isnan(a.matrix.values).any()
        labels = a.truth.module_of_gene
        assert labels.shape == (a.matrix.n_vars,)
        assert labels.min() >= 0

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_smoke_shape_not_larger(self, name):
        spec = SCENARIOS[name]
        smoke = spec.generate(0, smoke=True).matrix
        full = spec.generate(0, smoke=False).matrix
        assert smoke.n_vars <= full.n_vars
        assert smoke.n_obs <= full.n_obs

    def test_tie_grid_is_all_ties(self):
        ds = SCENARIOS["tie-grid"].generate(1, smoke=True)
        assert (ds.matrix.values == ds.matrix.values[0]).all()

    def test_duplicate_genes_have_exact_duplicates(self):
        ds = SCENARIOS["duplicate-genes"].generate(1, smoke=True)
        values = ds.matrix.values
        assert any(
            (values[i] == values[i + 1]).all() for i in range(len(values) - 1)
        )

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        name=st.sampled_from(sorted(SCENARIOS)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sampled_scenarios_learnable(self, name, seed):
        """Hypothesis-driven scenario sampling: any (scenario, seed) cell
        must generate, impute if needed, and the sequential learner must
        run it twice to the same fingerprint without crashing."""
        spec = SCENARIOS[name]
        ds = spec.generate(seed, smoke=True)
        matrix = ds.matrix
        if matrix.has_missing:
            matrix = matrix.impute_missing()
        from repro.validation.runner import _base_config

        config = _base_config(spec)
        first = LemonTreeLearner(config).learn(matrix, seed=seed).network
        again = LemonTreeLearner(config).learn(matrix, seed=seed).network
        assert network_fingerprint(first) == network_fingerprint(again)
        assert sum(m.size for m in first.modules) == matrix.n_vars


class TestBackendGrid:
    def test_reference_cell_excluded(self):
        for combo in backend_grid():
            assert not (combo.n_workers == 1 and combo.kernel_backend == "numpy")

    def test_both_rng_backends_present(self):
        grid = backend_grid(smoke=True)
        assert {c.rng_backend for c in grid} == set(RNG_BACKENDS)

    def test_smoke_grid_is_smaller(self):
        assert len(backend_grid(smoke=True)) < len(backend_grid(smoke=False))

    def test_explicit_worker_counts(self):
        grid = backend_grid(worker_counts=(1, 3))
        assert {c.n_workers for c in grid} <= {1, 3}


class TestToleranceBand:
    def test_empty_band_never_violated(self):
        assert ToleranceBand().violations({}) == []

    def test_floor_violation_reported(self):
        band = ToleranceBand(min_module_ari=0.5)
        assert band.violations({"module_ari": 0.2})
        assert not band.violations({"module_ari": 0.7})

    def test_missing_metric_is_a_violation(self):
        band = ToleranceBand(min_regulator_recall=0.1)
        violations = band.violations({})
        assert violations and "missing" in violations[0]


class TestDifferentialRunner:
    """In-process differential cells (kernel/RNG swaps at w=1) run in the
    fast suite; multiprocess worker cells are exercised by the slow tests
    below and by the CI scenario-smoke job."""

    def test_tie_grid_kernel_swap_bit_identical(self):
        result = run_scenario(
            get_scenario("tie-grid"),
            seed=0,
            smoke=True,
            combos=[BackendCombo(1, "numpy", "mrg")],
        )
        # w=1/numpy/mrg must reproduce the mrg reference exactly.
        assert result.combos[0].identical
        assert result.ok

    def test_recovery_metrics_reported(self):
        result = run_scenario(
            get_scenario("clean-baseline"), seed=0, smoke=True, combos=[]
        )
        assert set(result.metrics) == {
            "module_ari", "regulator_precision", "regulator_recall",
        }
        assert not result.band_violations

    def test_truth_free_scenario_has_no_metrics(self):
        result = run_scenario(
            get_scenario("tie-grid"), seed=0, smoke=True, combos=[]
        )
        assert result.metrics == {}

    def test_crash_recorded_not_raised(self, monkeypatch):
        """A combination that crashes becomes a failing cell, not an
        aborted matrix."""
        from repro.validation import runner as runner_mod

        real = runner_mod._learn_fingerprint

        def poisoned(matrix, config, seed):
            # References pin kernel_backend="numpy"; poison only the
            # "auto" combo cell so the reference pass survives.
            if config.parallel.kernel_backend == "auto":
                raise RuntimeError("injected degeneracy")
            return real(matrix, config, seed)

        monkeypatch.setattr(runner_mod, "_learn_fingerprint", poisoned)
        result = run_scenario(
            get_scenario("tie-grid"),
            seed=0,
            smoke=True,
            combos=[BackendCombo(1, "auto", "mrg")],
        )
        assert not result.ok
        assert result.crashed and "injected degeneracy" in result.crashed[0].error

    def test_report_json_round_trips(self):
        report = run_matrix(
            scenario_names=["tie-grid"],
            seed=1,
            smoke=True,
            worker_counts=(1,),
        )
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["n_scenarios"] == 1
        scenario = payload["scenarios"][0]
        assert scenario["name"] == "tie-grid"
        assert set(scenario["reference_fingerprints"]) == set(RNG_BACKENDS)
        for combo in scenario["combos"]:
            assert combo["identical"] is True
        assert "tie-grid" in report.summarize()

    def test_divergence_detected(self, monkeypatch):
        """A backend whose network differs from the reference must be
        flagged — the harness's entire reason to exist."""
        from repro.validation import runner as runner_mod

        real = runner_mod._learn_fingerprint

        def skewed(matrix, config, seed):
            network, fingerprint = real(matrix, config, seed)
            # References pin kernel_backend="numpy", so only the combo
            # cell's fingerprint is corrupted.
            if config.parallel.kernel_backend == "auto":
                fingerprint = "0" * 64
            return network, fingerprint

        monkeypatch.setattr(runner_mod, "_learn_fingerprint", skewed)
        skewed_result = run_scenario(
            get_scenario("tie-grid"),
            seed=0,
            smoke=True,
            combos=[BackendCombo(1, "auto", "philox")],
        )
        assert not skewed_result.ok
        assert skewed_result.divergent


@pytest.mark.slow
class TestExecutorDifferential:
    """Multiprocess cells of the grid: worker counts beyond 1."""

    @pytest.mark.parametrize("name", ["tie-grid", "duplicate-genes"])
    def test_two_workers_bit_identical(self, name):
        result = run_scenario(
            get_scenario(name),
            seed=0,
            smoke=True,
            combos=[
                BackendCombo(2, "numpy", rng) for rng in RNG_BACKENDS
            ],
        )
        assert [c.identical for c in result.combos] == [True, True], (
            result.to_dict()
        )

    def test_smoke_matrix_green(self):
        """The reduced grid — what CI's scenario-smoke job asserts."""
        report = run_matrix(smoke=True, seed=0)
        assert report.ok, report.summarize()
