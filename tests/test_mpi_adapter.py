"""Contract tests for the communicator implementations.

Real-MPI runs require mpi4py + mpirun and are exercised only where
available; the interface-parity checks below guarantee the SPMD learner
stays runnable on every communicator.
"""

import importlib.util

import pytest

from repro.parallel.comm import SerialComm, ThreadComm, _Context
from repro.parallel.mpi_adapter import COMM_INTERFACE, MpiComm

HAS_MPI = importlib.util.find_spec("mpi4py") is not None


class TestInterfaceParity:
    @pytest.mark.parametrize("cls", [ThreadComm, SerialComm, MpiComm])
    def test_all_methods_present(self, cls):
        for name in COMM_INTERFACE:
            assert hasattr(cls, name) or name in getattr(cls, "__slots__", ()) or name in (
                "rank",
                "size",
            ), f"{cls.__name__} missing {name}"

    def test_thread_comm_has_attributes(self):
        comm = ThreadComm(_Context(1), 0)
        for name in COMM_INTERFACE:
            assert hasattr(comm, name)

    def test_serial_comm_has_attributes(self):
        comm = SerialComm()
        for name in COMM_INTERFACE:
            assert hasattr(comm, name)


class TestWithoutMpi:
    @pytest.mark.skipif(HAS_MPI, reason="mpi4py present")
    def test_helpful_error_without_mpi4py(self):
        with pytest.raises(RuntimeError, match="mpi4py is not installed"):
            MpiComm()


@pytest.mark.skipif(not HAS_MPI, reason="mpi4py not installed")
class TestWithMpi:  # pragma: no cover - exercised on MPI-enabled hosts
    def test_single_rank_collectives(self):
        comm = MpiComm()
        assert comm.size >= 1
        assert comm.allreduce(1) == comm.size
        assert comm.bcast("x") == "x"

    def test_engine_runs_under_mpi(self, tiny_matrix, fast_config):
        from repro.core.learner import LemonTreeLearner
        from repro.parallel.engine import ParallelLearner

        comm = MpiComm()
        network, _work = ParallelLearner(fast_config).learn_with_comm(
            comm, tiny_matrix, seed=3
        )
        sequential = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=3)
        assert network == sequential.network
