"""Tests for sufficient-statistic containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scoring.suffstats import StatsArrays, SuffStats

finite_floats = st.floats(-100, 100, allow_nan=False)


class TestSuffStats:
    def test_of_computes_moments(self):
        stats = SuffStats.of(np.array([1.0, 2.0, 3.0]))
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.sumsq == 14.0

    def test_of_flattens(self):
        stats = SuffStats.of(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert stats.count == 4

    @given(st.lists(finite_floats, min_size=1, max_size=20), st.lists(finite_floats, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_add_remove_roundtrip(self, xs, ys):
        a = SuffStats.of(np.array(xs))
        b = SuffStats.of(np.array(ys))
        back = a.add(b).remove(b)
        assert back.count == pytest.approx(a.count)
        assert back.total == pytest.approx(a.total, abs=1e-9)
        assert back.sumsq == pytest.approx(a.sumsq, abs=1e-6)

    def test_add_is_concatenation(self):
        xs, ys = [1.0, 2.0], [3.0, -1.0, 0.5]
        combined = SuffStats.of(np.array(xs)).add(SuffStats.of(np.array(ys)))
        direct = SuffStats.of(np.array(xs + ys))
        assert combined.count == direct.count
        assert combined.total == pytest.approx(direct.total)
        assert combined.sumsq == pytest.approx(direct.sumsq)

    def test_is_empty(self):
        assert SuffStats().is_empty()
        assert not SuffStats.of(np.array([1.0])).is_empty()

    def test_log_marginal_delegates(self):
        stats = SuffStats.of(np.array([0.1, -0.2, 0.4]))
        from repro.scoring.normal_gamma import log_marginal

        assert stats.log_marginal() == pytest.approx(
            float(log_marginal(stats.count, stats.total, stats.sumsq))
        )


class TestStatsArraysGrouped:
    def test_grouped_1d(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        labels = np.array([0, 1, 0, 1])
        stats = StatsArrays.grouped(values, labels, 2)
        np.testing.assert_array_equal(stats.count, [2, 2])
        np.testing.assert_array_equal(stats.total, [4.0, 6.0])
        np.testing.assert_array_equal(stats.sumsq, [10.0, 20.0])

    def test_grouped_2d_pools_rows(self):
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        labels = np.array([0, 1])
        stats = StatsArrays.grouped(values, labels, 2)
        np.testing.assert_array_equal(stats.count, [2, 2])
        np.testing.assert_array_equal(stats.total, [4.0, 6.0])

    def test_grouped_handles_empty_groups(self):
        stats = StatsArrays.grouped(np.array([1.0]), np.array([2]), 4)
        np.testing.assert_array_equal(stats.count, [0, 0, 1, 0])

    def test_grouped_rejects_3d(self):
        with pytest.raises(ValueError):
            StatsArrays.grouped(np.zeros((2, 2, 2)), np.array([0, 1]), 2)

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.integers(1, 5),
        st.integers(0, 10**6),
    )
    @settings(max_examples=50, deadline=None)
    def test_grouped_matches_manual(self, values, n_groups, seed):
        rng = np.random.default_rng(seed)
        vals = np.array(values)
        labels = rng.integers(0, n_groups, size=vals.size)
        stats = StatsArrays.grouped(vals, labels, n_groups)
        for g in range(n_groups):
            sel = vals[labels == g]
            assert stats.count[g] == sel.size
            assert stats.total[g] == pytest.approx(sel.sum(), abs=1e-9)
            assert stats.sumsq[g] == pytest.approx((sel**2).sum(), abs=1e-9)


class TestStatsArraysMutation:
    def _make(self):
        return StatsArrays.grouped(
            np.array([1.0, 2.0, 3.0, 4.0, 5.0]), np.array([0, 0, 1, 1, 2]), 3
        )

    def test_add_remove_at(self):
        stats = self._make()
        extra = SuffStats.of(np.array([10.0]))
        stats.add_at(1, extra)
        assert stats.count[1] == 3
        stats.remove_at(1, extra)
        assert stats.count[1] == 2
        assert stats.total[1] == pytest.approx(7.0)

    def test_drop_shifts(self):
        stats = self._make()
        stats.drop(1)
        assert len(stats) == 2
        np.testing.assert_array_equal(stats.count, [2, 1])

    def test_append(self):
        stats = self._make()
        stats.append(SuffStats.of(np.array([7.0, 7.0])))
        assert len(stats) == 4
        assert stats.count[3] == 2

    def test_pooled_equals_total(self):
        stats = self._make()
        pooled = stats.pooled()
        assert pooled.count == 5
        assert pooled.total == pytest.approx(15.0)

    def test_copy_is_independent(self):
        stats = self._make()
        clone = stats.copy()
        clone.add_at(0, SuffStats.of(np.array([9.0])))
        assert stats.count[0] == 2 and clone.count[0] == 3

    def test_score_is_sum_of_block_marginals(self):
        stats = self._make()
        assert stats.score() == pytest.approx(float(stats.log_marginals().sum()))

    def test_block_accessor(self):
        stats = self._make()
        block = stats.block(2)
        assert block.count == 1 and block.total == 5.0
