"""Tests for core data types."""

import numpy as np
import pytest

from repro.datatypes import (
    ExpressionMatrix,
    Module,
    ModuleNetwork,
    RegressionTree,
    Split,
    TaskTimes,
    TreeNode,
    compact_labels,
)


class TestExpressionMatrix:
    def test_basic_properties(self):
        matrix = ExpressionMatrix(np.zeros((3, 5)))
        assert matrix.n_vars == 3
        assert matrix.n_obs == 5
        assert matrix.shape == (3, 5)
        assert matrix.var_names == ["G0", "G1", "G2"]

    def test_custom_names(self):
        matrix = ExpressionMatrix(np.zeros((2, 2)), ["a", "b"], ["x", "y"])
        assert matrix.var_names == ["a", "b"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros(5))

    def test_rejects_nan(self):
        values = np.zeros((2, 2))
        values[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            ExpressionMatrix(values)

    def test_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 2)), var_names=["only-one"])
        with pytest.raises(ValueError):
            ExpressionMatrix(np.zeros((2, 2)), obs_names=["a", "b", "c"])

    def test_subsample_takes_prefix(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        sub = ExpressionMatrix(values).subsample(2, 3)
        np.testing.assert_array_equal(sub.values, values[:2, :3])
        assert sub.var_names == ["G0", "G1"]

    def test_subsample_validates(self):
        matrix = ExpressionMatrix(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            matrix.subsample(4, 2)
        with pytest.raises(ValueError):
            matrix.subsample(2, 0)

    def test_subsample_is_copy(self):
        matrix = ExpressionMatrix(np.zeros((3, 4)))
        sub = matrix.subsample(2, 2)
        sub.values[0, 0] = 99.0
        assert matrix.values[0, 0] == 0.0

    def test_standardized(self):
        rng = np.random.default_rng(1)
        matrix = ExpressionMatrix(rng.normal(3.0, 2.0, size=(4, 50)))
        std = matrix.standardized()
        np.testing.assert_allclose(std.values.mean(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(std.values.std(axis=1), 1.0, atol=1e-12)

    def test_standardized_constant_row(self):
        matrix = ExpressionMatrix(np.ones((2, 4)))
        std = matrix.standardized()
        assert np.isfinite(std.values).all()


class TestTreeNode:
    def _tree(self):
        la = TreeNode(0, np.array([0, 1]))
        lb = TreeNode(1, np.array([2]))
        lc = TreeNode(2, np.array([3, 4]))
        inner = TreeNode(3, np.array([0, 1, 2]), left=la, right=lb)
        root = TreeNode(4, np.array([0, 1, 2, 3, 4]), left=inner, right=lc)
        return root

    def test_is_leaf(self):
        root = self._tree()
        assert not root.is_leaf
        assert root.right.is_leaf

    def test_internal_nodes_preorder(self):
        ids = [n.node_id for n in self._tree().internal_nodes()]
        assert ids == [4, 3]

    def test_leaves(self):
        ids = [n.node_id for n in self._tree().leaves()]
        assert ids == [0, 1, 2]

    def test_depth(self):
        assert self._tree().depth() == 3
        assert TreeNode(0, np.array([0])).depth() == 1

    def test_regression_tree_helpers(self):
        tree = RegressionTree(module_id=0, root=self._tree())
        assert tree.n_leaves() == 3
        assert len(tree.internal_nodes()) == 2


def _network():
    m0 = Module(module_id=0, members=[0, 1], weighted_parents={2: 0.9})
    m1 = Module(module_id=1, members=[2, 3], weighted_parents={0: 0.5, 3: 0.2})
    return ModuleNetwork([m0, m1], ["a", "b", "c", "d"], n_obs=7)


class TestModuleNetwork:
    def test_assignment(self):
        net = _network()
        assert net.assignment(0) == 0
        assert net.assignment(2) == 1
        assert net.n_modules == 2 and net.n_vars == 4

    def test_assignment_labels(self):
        net = _network()
        np.testing.assert_array_equal(net.assignment_labels(), [0, 0, 1, 1])

    def test_unassigned_variable(self):
        net = ModuleNetwork([Module(0, [0])], ["a", "b"], n_obs=3)
        assert net.assignment(1) is None
        assert net.assignment_labels()[1] == -1

    def test_rejects_double_assignment(self):
        with pytest.raises(ValueError):
            ModuleNetwork([Module(0, [0]), Module(1, [0])], ["a"], n_obs=1)

    def test_module_graph_edges(self):
        graph = _network().module_graph()
        # parent 2 of M0 lives in M1 -> edge M1 -> M0; parents 0, 3 of M1
        # live in M0 and M1 -> edges M0 -> M1 and the self-loop M1 -> M1.
        assert graph.has_edge(1, 0)
        assert graph.has_edge(0, 1)

    def test_feedback_edges_found(self):
        edges = _network().feedback_edges()
        assert edges  # the 0 <-> 1 cycle must be broken

    def test_acyclic_network_has_no_feedback(self):
        m0 = Module(module_id=0, members=[0], weighted_parents={})
        m1 = Module(module_id=1, members=[1], weighted_parents={0: 1.0})
        net = ModuleNetwork([m0, m1], ["a", "b"], n_obs=2)
        assert net.feedback_edges() == []

    def test_equality_and_signature(self):
        assert _network() == _network()
        assert _network().signature() == _network().signature()

    def test_inequality(self):
        other = _network()
        other.modules[0].weighted_parents[2] = 0.1
        assert _network() != other

    def test_eq_against_other_type(self):
        assert _network() != "not a network"


class TestTaskTimes:
    def test_total_and_fractions(self):
        times = TaskTimes(ganesh=1.0, consensus=0.5, modules=2.5)
        assert times.total == 4.0
        fractions = times.fractions()
        assert fractions["modules"] == pytest.approx(0.625)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_zero_total(self):
        times = TaskTimes(0.0, 0.0, 0.0)
        assert times.fractions()["ganesh"] == 0.0


class TestCompactLabels:
    def test_first_appearance(self):
        np.testing.assert_array_equal(compact_labels([9, 4, 9, 1]), [0, 1, 0, 2])

    def test_empty(self):
        assert compact_labels([]).size == 0


class TestSplit:
    def test_frozen(self):
        split = Split(parent=1, value=0.5, node_id=2, posterior=0.3, n_obs=4)
        with pytest.raises(AttributeError):
            split.parent = 2
