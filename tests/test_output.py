"""Tests for network serialization (JSON / XML)."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.learner import LemonTreeLearner
from repro.core.output import network_from_json, network_to_json, network_to_xml


@pytest.fixture(scope="module")
def learned(tiny_matrix_module):
    from repro.core.config import LearnerConfig

    return LemonTreeLearner(LearnerConfig(max_sampling_steps=5)).learn(
        tiny_matrix_module, seed=1
    )


@pytest.fixture(scope="module")
def tiny_matrix_module():
    from repro.data.synthetic import make_module_dataset

    return make_module_dataset(24, 12, n_modules=3, seed=42).matrix


class TestJson:
    def test_roundtrip_preserves_network(self, learned):
        document = network_to_json(learned.network)
        restored = network_from_json(document)
        assert restored == learned.network

    def test_valid_json(self, learned):
        payload = json.loads(network_to_json(learned.network))
        assert "modules" in payload and "var_names" in payload

    def test_roundtrip_preserves_trees(self, learned):
        restored = network_from_json(network_to_json(learned.network))
        for orig, back in zip(learned.network.modules, restored.modules):
            assert len(orig.trees) == len(back.trees)
            for t_orig, t_back in zip(orig.trees, back.trees):
                orig_nodes = t_orig.internal_nodes()
                back_nodes = t_back.internal_nodes()
                assert len(orig_nodes) == len(back_nodes)
                for a, b in zip(orig_nodes, back_nodes):
                    assert a.node_id == b.node_id
                    assert len(a.weighted_splits) == len(b.weighted_splits)

    def test_roundtrip_preserves_parent_scores(self, learned):
        restored = network_from_json(network_to_json(learned.network))
        for orig, back in zip(learned.network.modules, restored.modules):
            assert orig.weighted_parents == back.weighted_parents
            assert orig.uniform_parents == back.uniform_parents

    def test_deterministic_output(self, learned):
        assert network_to_json(learned.network) == network_to_json(learned.network)


class TestXml:
    def test_well_formed(self, learned):
        document = network_to_xml(learned.network)
        root = ET.fromstring(document)
        assert root.tag == "ModuleNetwork"

    def test_module_count_attribute(self, learned):
        root = ET.fromstring(network_to_xml(learned.network))
        assert int(root.get("modules")) == learned.network.n_modules
        assert len(root.findall("Module")) == learned.network.n_modules

    def test_members_carry_names(self, learned):
        root = ET.fromstring(network_to_xml(learned.network))
        for module_el, module in zip(root.findall("Module"), learned.network.modules):
            names = [
                var.get("name") for var in module_el.find("Members").findall("Variable")
            ]
            assert names == [learned.network.var_names[v] for v in module.members]

    def test_parents_listed(self, learned):
        root = ET.fromstring(network_to_xml(learned.network))
        total_parents = sum(
            len(m.findall("Parents/Parent")) for m in root.findall("Module")
        )
        expected = sum(
            len(m.weighted_parents) + len(m.uniform_parents)
            for m in learned.network.modules
        )
        assert total_parents == expected

    def test_trees_nested(self, learned):
        root = ET.fromstring(network_to_xml(learned.network))
        for module_el, module in zip(root.findall("Module"), learned.network.modules):
            trees = module_el.find("RegressionTrees").findall("Tree")
            assert len(trees) == len(module.trees)
