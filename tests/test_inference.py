"""Tests for CPD fitting, held-out likelihood and sampling."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.analysis import make_acyclic
from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.data.synthetic import make_module_dataset
from repro.datatypes import ExpressionMatrix
from repro.inference import fit_network, holdout_log_likelihood, train_test_split_obs
from repro.inference.cpd import LeafPredictive, _leaf_predictive
from repro.scoring.normal_gamma import DEFAULT_PRIOR


@pytest.fixture(scope="module")
def learned_setup():
    # Enough observations per leaf that the fitted predictives generalize;
    # with very small training splits the routing can overfit (its
    # improvement over the pooled null is data-dependent, as in any
    # generative-model comparison).
    ds = make_module_dataset(36, 60, n_modules=3, noise=0.2, heavy_tail=0.0, seed=77)
    train, test = train_test_split_obs(ds.matrix, test_fraction=0.25, seed=1)
    config = LearnerConfig(max_sampling_steps=10, candidate_parents=tuple(range(4)))
    network = LemonTreeLearner(config).learn(train, seed=5).network
    return ds, train, test, network


class TestLeafPredictive:
    def test_matches_chain_rule_marginal(self):
        """log p(test | train) via the predictive must equal
        logml(train + test) - logml(train) — the Bayesian identity."""
        from repro.scoring.normal_gamma import log_marginal

        rng = np.random.default_rng(0)
        train = rng.normal(1.0, 2.0, size=12)
        test = rng.normal(1.0, 2.0, size=5)

        def ml(v):
            return float(log_marginal(v.size, v.sum(), (v * v).sum()))

        direct = ml(np.concatenate([train, test])) - ml(train)
        # Predictive must be applied sequentially (test points are not
        # i.i.d. under the posterior; condition on each in turn).
        total = 0.0
        seen = list(train)
        for x in test:
            leaf = _leaf_predictive(np.asarray(seen), DEFAULT_PRIOR)
            total += leaf.log_pdf(np.asarray([x]))
            seen.append(x)
        assert total == pytest.approx(direct, rel=1e-9)

    def test_mean_tracks_data(self):
        leaf = _leaf_predictive(np.full(100, 7.0), DEFAULT_PRIOR)
        assert leaf.mu == pytest.approx(7.0, abs=0.1)

    def test_more_data_sharper_predictive(self):
        rng = np.random.default_rng(1)
        small = _leaf_predictive(rng.normal(0, 1, size=5), DEFAULT_PRIOR)
        large = _leaf_predictive(rng.normal(0, 1, size=500), DEFAULT_PRIOR)
        assert large.variance < small.variance

    def test_log_pdf_integrates_sensibly(self):
        leaf = LeafPredictive(mu=0.0, df=10.0, scale=1.0)
        # density at the mode exceeds density in the tail
        assert leaf.log_pdf(np.array([0.0])) > leaf.log_pdf(np.array([5.0]))

    def test_sampling_distribution(self):
        leaf = _leaf_predictive(np.random.default_rng(2).normal(3, 0.5, 200), DEFAULT_PRIOR)
        draws = leaf.sample(5000, np.random.default_rng(3))
        assert abs(draws.mean() - 3.0) < 0.1

    def test_empty_leaf_falls_back_to_prior(self):
        leaf = _leaf_predictive(np.zeros(0), DEFAULT_PRIOR)
        assert leaf.mu == DEFAULT_PRIOR.mu0
        assert math.isfinite(leaf.log_pdf(np.array([0.5])))


class TestTrainTestSplit:
    def test_partitions_columns(self, learned_setup):
        ds, train, test, _ = learned_setup
        assert train.n_obs + test.n_obs == ds.matrix.n_obs
        assert set(train.obs_names).isdisjoint(test.obs_names)
        assert train.n_vars == ds.matrix.n_vars

    def test_deterministic(self):
        matrix = ExpressionMatrix(np.random.default_rng(0).normal(size=(5, 20)))
        a = train_test_split_obs(matrix, 0.3, seed=4)
        b = train_test_split_obs(matrix, 0.3, seed=4)
        np.testing.assert_array_equal(a[1].values, b[1].values)

    def test_rejects_bad_fraction(self):
        matrix = ExpressionMatrix(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            train_test_split_obs(matrix, 0.0)
        with pytest.raises(ValueError):
            train_test_split_obs(matrix, 1.0)


class TestFitNetwork:
    def test_covers_all_modules(self, learned_setup):
        _, train, _, network = learned_setup
        fitted = fit_network(network, train)
        assert len(fitted.modules) == network.n_modules
        assert sum(len(m.members) for m in fitted.modules) == network.n_vars

    def test_regulators_are_candidates(self, learned_setup):
        _, train, _, network = learned_setup
        fitted = fit_network(network, train)
        for module in fitted.modules:
            assert module.regulators <= set(range(4))

    def test_rejects_mismatched_training(self, learned_setup):
        _, train, test, network = learned_setup
        with pytest.raises(ValueError):
            fit_network(network, test)  # wrong observation count

    def test_routing_reaches_a_leaf(self, learned_setup):
        _, train, _, network = learned_setup
        fitted = fit_network(network, train)
        condition = train.values[:, 0]
        for module in fitted.modules:
            leaf = module.predictive_for(condition)
            assert math.isfinite(leaf.mu)


class TestHoldoutLikelihood:
    def test_reports_all_metrics(self, learned_setup):
        _, train, test, network = learned_setup
        result = holdout_log_likelihood(network, train, test)
        assert set(result) == {
            "total_log_likelihood",
            "per_condition",
            "null_total_log_likelihood",
            "null_per_condition",
            "improvement_per_condition",
        }
        assert math.isfinite(result["total_log_likelihood"])

    def test_regulatory_routing_beats_null(self, learned_setup):
        """On module-structured data the learned program must carry
        information beyond the pooled per-module Gaussian."""
        _, train, test, network = learned_setup
        result = holdout_log_likelihood(network, train, test)
        assert result["improvement_per_condition"] > 0

    def test_train_likelihood_exceeds_test(self, learned_setup):
        _, train, test, network = learned_setup
        fitted = fit_network(network, train)
        train_per = fitted.log_likelihood(train) / train.n_obs
        test_per = fitted.log_likelihood(test) / test.n_obs
        assert train_per >= test_per - 5.0  # no wild generalization gap

    def test_per_condition_vector(self, learned_setup):
        _, train, test, network = learned_setup
        fitted = fit_network(network, train)
        per = fitted.per_condition_log_likelihood(test)
        assert per.shape == (test.n_obs,)
        assert per.sum() == pytest.approx(fitted.log_likelihood(test))


class TestSampling:
    def test_sampled_data_has_module_structure(self, learned_setup):
        _, train, _, network = learned_setup
        dag, _removed = make_acyclic(network)
        order = list(nx.topological_sort(dag.module_graph()))
        fitted = fit_network(dag, train)
        sampled = fitted.sample(40, np.random.default_rng(5), order)
        assert sampled.shape == (train.n_vars, 40)
        assert np.isfinite(sampled).all()
        # Within-module correlation exceeds between-module correlation.
        labels = dag.assignment_labels()
        corr = np.corrcoef(sampled)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        off = ~same & ~np.eye(labels.size, dtype=bool)
        if same.any() and off.any():
            assert np.nanmean(corr[same]) > np.nanmean(corr[off]) - 0.05

    def test_incomplete_order_rejected(self, learned_setup):
        _, train, _, network = learned_setup
        fitted = fit_network(network, train)
        with pytest.raises((ValueError, KeyError)):
            fitted.sample(5, np.random.default_rng(0), module_order=[0])


class TestRoutingGuard:
    def test_disabled_guard_routes_everything(self, learned_setup):
        """min_routing_accuracy = 0: every retained split routes."""
        _, train, _, network = learned_setup
        guarded = fit_network(network, train, min_routing_accuracy=0.75)
        unguarded = fit_network(network, train, min_routing_accuracy=0.0)
        n_guarded = sum(len(m.regulators) for m in guarded.modules)
        n_unguarded = sum(len(m.regulators) for m in unguarded.modules)
        assert n_unguarded >= n_guarded

    def test_impossible_guard_equals_null_model(self, learned_setup):
        """min_routing_accuracy > 1 collapses every node: the fitted model
        must score exactly like the pooled null."""
        _, train, test, network = learned_setup
        collapsed = fit_network(network, train, min_routing_accuracy=1.1)
        assert all(not m.regulators for m in collapsed.modules)
        metrics = holdout_log_likelihood(network, train, test)
        assert collapsed.log_likelihood(test) == pytest.approx(
            metrics["null_total_log_likelihood"]
        )

    def test_guard_never_hurts_training_fit_much(self, learned_setup):
        """The guard only removes splits that misroute the training data,
        so the guarded model's training likelihood stays close."""
        _, train, _, network = learned_setup
        guarded = fit_network(network, train)
        unguarded = fit_network(network, train, min_routing_accuracy=0.0)
        assert guarded.log_likelihood(train) >= unguarded.log_likelihood(train) - 50.0
