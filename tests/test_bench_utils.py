"""Tests for the benchmark-harness utilities."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.paper import PAPER
from repro.bench.reporting import render_figure_series, render_table
from repro.bench.runtime_model import (
    FullScaleEstimate,
    estimate_full_scale_runtime,
    fit_growth_exponent,
    growth_ratios,
)


class TestPaperData:
    def test_all_sections_present(self):
        assert set(PAPER) >= {
            "table1", "table2", "growth", "fig5", "fig6", "imbalance",
            "estimates", "shapes",
        }

    def test_table1_speedups_in_reported_band(self):
        for _lemon, _ours, speedup in PAPER["table1"].values():
            assert 3.6 <= speedup <= 3.8

    def test_table1_ratio_consistent_with_times(self):
        for lemon, ours, speedup in PAPER["table1"].values():
            assert lemon / ours == pytest.approx(speedup, abs=0.06)

    def test_table2_efficiency_consistent(self):
        t256 = PAPER["table2"][256][0]
        for p, (tp, speedup, eff) in PAPER["table2"].items():
            assert t256 / tp == pytest.approx(speedup, abs=0.06)
            # published efficiencies derive from the unrounded speedups
            assert (t256 / tp) / (p / 256) * 100 == pytest.approx(eff, abs=0.3)

    def test_shapes(self):
        assert PAPER["shapes"]["yeast"] == (5716, 2577)
        assert PAPER["shapes"]["thaliana"] == (18373, 5102)


class TestGrowthFits:
    def test_exact_power_law_recovered(self):
        sizes = np.array([10, 20, 40, 80])
        times = 3.0 * sizes**2.0
        assert fit_growth_exponent(sizes, times) == pytest.approx(2.0)

    @given(exponent=st.floats(0.5, 3.0), scale=st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_recovers_any_power_law(self, exponent, scale):
        sizes = np.array([8.0, 16.0, 32.0, 64.0])
        times = scale * sizes**exponent
        assert fit_growth_exponent(sizes, times) == pytest.approx(exponent, abs=1e-9)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_growth_exponent([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_growth_exponent([1.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_growth_exponent([1.0, 2.0], [1.0])

    def test_growth_ratios_baseline_is_one(self):
        ratios = growth_ratios([20, 10, 40], [4.0, 1.0, 16.0])
        assert ratios == [1.0, 4.0, 16.0]


class TestFullScaleEstimate:
    def test_scaling_formula(self):
        estimate = estimate_full_scale_runtime(
            100.0, (10, 10), (20, 30), m_exponent=2.0, n_exponent=1.0
        )
        assert estimate.estimated_seconds == pytest.approx(100.0 * 9.0 * 2.0)

    def test_unit_conversions(self):
        estimate = FullScaleEstimate(3600.0, (1, 1), (1, 1), 2.0, 1.8)
        assert estimate.estimated_hours == pytest.approx(1.0)
        assert estimate.estimated_days == pytest.approx(1 / 24)

    def test_identity_at_same_shape(self):
        estimate = estimate_full_scale_runtime(42.0, (10, 20), (10, 20))
        assert estimate.estimated_seconds == pytest.approx(42.0)

    def test_rejects_nonpositive_measurement(self):
        with pytest.raises(ValueError):
            estimate_full_scale_runtime(0.0, (1, 1), (2, 2))


class TestRendering:
    def test_table_contains_all_cells(self):
        out = render_table("Title", ["a", "bb"], [[1, "x"], [22, "yy"]])
        assert "Title" in out
        for token in ("a", "bb", "1", "x", "22", "yy"):
            assert token in out

    def test_table_column_alignment(self):
        out = render_table("T", ["col"], [["a"], ["bbbb"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines[2:]}) == 1  # uniform width

    def test_float_formatting(self):
        out = render_table("T", ["v"], [[0.001234], [12345.6], [3.14159]])
        assert "0.00123" in out
        assert "1.23e+04" in out
        assert "3.14" in out

    def test_figure_series_grid(self):
        out = render_figure_series(
            "F", "x", {"s1": {1: 1.0, 2: 4.0}, "s2": {2: 8.0}}
        )
        assert "s1" in out and "s2" in out
        assert "-" in out  # missing point placeholder

    def test_save_and_load_results(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        path = reporting.save_results("demo", {"value": 3})
        assert json.loads(path.read_text())["value"] == 3
        assert reporting.load_results("demo")["experiment"] == "demo"
        assert reporting.load_results("missing") is None
