"""End-to-end tests of the sequential learner pipeline."""

import numpy as np
import pytest

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.parallel.trace import WorkTrace


class TestPipeline:
    def test_learn_produces_complete_network(self, tiny_matrix, fast_config):
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=1)
        network = result.network
        assert network.n_vars == tiny_matrix.n_vars
        assert network.n_obs == tiny_matrix.n_obs
        # Every variable belongs to exactly one module.
        labels = network.assignment_labels()
        assert (labels >= 0).all()
        sizes = sum(module.size for module in network.modules)
        assert sizes == tiny_matrix.n_vars

    def test_every_module_has_a_tree(self, tiny_matrix, fast_config):
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=2)
        for module in result.network.modules:
            assert len(module.trees) == 1  # R = 1 by default
            np.testing.assert_array_equal(
                module.trees[0].root.observations, np.arange(tiny_matrix.n_obs)
            )

    def test_splits_attached_to_internal_nodes(self, tiny_matrix, fast_config):
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=3)
        for module in result.network.modules:
            for tree in module.trees:
                for node in tree.internal_nodes():
                    assert len(node.uniform_splits) == fast_config.n_splits_per_node
                    assert len(node.weighted_splits) in (
                        0,
                        fast_config.n_splits_per_node,
                    )

    def test_task_times_positive(self, tiny_matrix, fast_config):
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=4)
        assert result.task_times.ganesh > 0
        assert result.task_times.consensus > 0
        assert result.task_times.modules > 0

    def test_stats_reported(self, tiny_matrix, fast_config):
        result = LemonTreeLearner(fast_config).learn(tiny_matrix, seed=5)
        assert result.stats["n_modules"] == result.network.n_modules
        assert len(result.stats["module_sizes"]) == result.network.n_modules
        assert result.stats["n_trees"] >= result.network.n_modules

    def test_consensus_runtime_negligible(self, small_matrix, fast_config):
        """Section 3.2.2: consensus clustering is a negligible slice of the
        total run-time (the paper measures < 0.04%; at this toy scale we
        only require it to be clearly the smallest task).  The module task's
        dominance *grows* with data size and is asserted at benchmark scale
        in benchmarks/bench_fig5_strong_scaling.py."""
        result = LemonTreeLearner(fast_config).learn(small_matrix, seed=6)
        fractions = result.task_times.fractions()
        assert fractions["consensus"] < fractions["modules"]
        assert fractions["consensus"] < fractions["ganesh"]
        assert fractions["consensus"] < 0.2

    def test_trace_recording(self, tiny_matrix, fast_config):
        trace = WorkTrace()
        LemonTreeLearner(fast_config).learn(tiny_matrix, seed=7, trace=trace)
        phases = set(s.phase for s in trace.steps)
        assert "ganesh.var_reassign" in phases
        assert "modules.split_scoring" in phases
        assert trace.times.keys() == {"ganesh", "consensus", "modules"}

    def test_trace_split_scoring_dominates_units(self, small_matrix, fast_config):
        """Section 2.2.3: split scoring is the dominant cost (>90% in the
        paper's runs)."""
        trace = WorkTrace()
        LemonTreeLearner(fast_config).learn(small_matrix, seed=8, trace=trace)
        split_units = trace.phase_units()["modules.split_scoring"]
        assert split_units / trace.total_units() > 0.8


class TestConfigEffects:
    def test_more_trees_with_more_samples(self, tiny_matrix):
        config = LearnerConfig(tree_update_steps=3, tree_burn_in=1, max_sampling_steps=3)
        result = LemonTreeLearner(config).learn(tiny_matrix, seed=9)
        for module in result.network.modules:
            assert len(module.trees) == 2  # steps 2 and 3 sampled

    def test_multiple_ganesh_runs(self, tiny_matrix):
        config = LearnerConfig(n_ganesh_runs=3, max_sampling_steps=3)
        result = LemonTreeLearner(config).learn(tiny_matrix, seed=10)
        assert result.network.n_modules >= 1

    def test_max_modules_cap(self, tiny_matrix):
        config = LearnerConfig(max_modules=2, max_sampling_steps=3)
        result = LemonTreeLearner(config).learn(tiny_matrix, seed=11)
        assert result.network.n_modules <= 2

    def test_candidate_parent_restriction(self, tiny_matrix):
        config = LearnerConfig(candidate_parents=(0, 1, 2), max_sampling_steps=3)
        result = LemonTreeLearner(config).learn(tiny_matrix, seed=12)
        for module in result.network.modules:
            for parent in list(module.weighted_parents) + list(module.uniform_parents):
                assert parent in (0, 1, 2)

    def test_higher_n_splits(self, tiny_matrix):
        config = LearnerConfig(n_splits_per_node=4, max_sampling_steps=3)
        result = LemonTreeLearner(config).learn(tiny_matrix, seed=13)
        for module in result.network.modules:
            for tree in module.trees:
                for node in tree.internal_nodes():
                    assert len(node.uniform_splits) == 4

    def test_subsample_grid_runs(self, small_matrix, fast_config):
        """The paper's n x m grid methodology: prefixes of a bigger matrix."""
        sub = small_matrix.subsample(20, 10)
        result = LemonTreeLearner(fast_config).learn(sub, seed=14)
        assert result.network.n_vars == 20
