"""Tests for the candidate-split posterior scorer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng.streams import IndexedStream, make_stream
from repro.scoring.split_score import (
    DEFAULT_BETA_GRID,
    SplitScorer,
    _neighbor_scalar,
)


def _uniform_block(n_items, dpi, seed=0):
    return make_stream(seed, "u").block(0, n_items * dpi).reshape(n_items, dpi)


class TestConstruction:
    def test_defaults(self):
        scorer = SplitScorer()
        assert scorer.draws_per_item == 1 + 2 * scorer.max_steps

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SplitScorer(max_steps=0)
        with pytest.raises(ValueError):
            SplitScorer(stop_repeats=0)
        with pytest.raises(ValueError):
            SplitScorer(beta_grid=(1.0,))


class TestNeighborProposal:
    def test_reflects_at_ends(self):
        assert _neighbor_scalar(0, 0.1, 5) == 1
        assert _neighbor_scalar(4, 0.9, 5) == 3

    def test_moves_one_step(self):
        assert _neighbor_scalar(2, 0.1, 5) == 1
        assert _neighbor_scalar(2, 0.9, 5) == 3


class TestBatchVsScalar:
    """The vectorized and pure-Python chains must agree item by item —
    the cross-implementation consistency contract."""

    @given(seed=st.integers(0, 200), n_obs=st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_identical_results(self, seed, n_obs):
        rng = np.random.default_rng(seed)
        scorer = SplitScorer(max_steps=6)
        n_items = 8
        margins = rng.normal(0, 1.5, size=(n_items, n_obs))
        uniforms = _uniform_block(n_items, scorer.draws_per_item, seed)
        scores, steps, betas, accepted = scorer.score_batch(margins, uniforms)
        for i in range(n_items):
            one = scorer.score_one(list(margins[i]), list(uniforms[i]))
            assert one.log_score == scores[i]
            assert one.steps == steps[i]
            assert one.beta_index == betas[i]
            assert one.accepted == accepted[i]


class TestChainBehaviour:
    def test_steps_bounded(self):
        scorer = SplitScorer(max_steps=7)
        margins = np.random.default_rng(1).normal(size=(20, 6))
        _s, steps, _b, _a = scorer.score_batch(
            margins, _uniform_block(20, scorer.draws_per_item, 1)
        )
        assert (steps >= 1).all() and (steps <= 7).all()

    def test_step_counts_vary(self):
        """Variable per-split cost is the load-imbalance driver (5.3.1)."""
        scorer = SplitScorer(max_steps=10)
        margins = np.random.default_rng(2).normal(size=(200, 8))
        _s, steps, _b, _a = scorer.score_batch(
            margins, _uniform_block(200, scorer.draws_per_item, 2)
        )
        assert len(set(steps.tolist())) > 1

    def test_perfect_split_accepted(self):
        """A split whose margins are all strongly positive separates the
        children perfectly and must beat the coin-flip baseline."""
        scorer = SplitScorer(max_steps=8)
        margins = np.full((1, 10), 3.0)
        _s, _steps, _b, accepted = scorer.score_batch(
            margins, _uniform_block(1, scorer.draws_per_item, 3)
        )
        assert accepted[0]

    def test_anti_split_rejected(self):
        """All-negative margins (observations on the wrong side) cannot
        beat the baseline."""
        scorer = SplitScorer(max_steps=8)
        margins = np.full((1, 10), -3.0)
        scores, _steps, _b, accepted = scorer.score_batch(
            margins, _uniform_block(1, scorer.draws_per_item, 4)
        )
        assert not accepted[0]
        assert scores[0] < 10 * math.log(0.5)

    def test_score_at_most_zero(self):
        """log sigmoid <= 0 always, so scores are non-positive."""
        scorer = SplitScorer(max_steps=5)
        margins = np.random.default_rng(5).normal(size=(50, 7))
        scores, *_ = scorer.score_batch(
            margins, _uniform_block(50, scorer.draws_per_item, 5)
        )
        assert (scores <= 1e-12).all()

    def test_determinism(self):
        scorer = SplitScorer(max_steps=5)
        margins = np.random.default_rng(6).normal(size=(10, 5))
        u = _uniform_block(10, scorer.draws_per_item, 6)
        a = scorer.score_batch(margins, u)
        b = scorer.score_batch(margins, u)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_large_margins_stable(self):
        scorer = SplitScorer(max_steps=3)
        margins = np.array([[1000.0, -1000.0, 500.0]])
        scores, *_ = scorer.score_batch(
            margins, _uniform_block(1, scorer.draws_per_item, 7)
        )
        assert np.isfinite(scores).all()

    def test_result_independent_of_batching(self):
        """Scoring items in one batch or in two halves must agree — the
        property that makes the flat partitioning of Algorithm 5 exact."""
        scorer = SplitScorer(max_steps=6)
        rng = np.random.default_rng(8)
        margins = rng.normal(size=(12, 6))
        u = _uniform_block(12, scorer.draws_per_item, 8)
        full = scorer.score_batch(margins, u)
        first = scorer.score_batch(margins[:5], u[:5])
        second = scorer.score_batch(margins[5:], u[5:])
        np.testing.assert_array_equal(full[0], np.concatenate([first[0], second[0]]))
        np.testing.assert_array_equal(full[1], np.concatenate([first[1], second[1]]))
        np.testing.assert_array_equal(full[3], np.concatenate([first[3], second[3]]))


class TestMemoizedBatchVsScalar:
    """Satellite contract of the lazy-margin PR: the memoized batch path
    must stay bit-identical to the scalar reference across the chain's
    early-stopping corners, and the memo must observably do its job."""

    @given(
        seed=st.integers(0, 500),
        n_obs=st.integers(2, 10),
        max_steps=st.sampled_from([1, 2, 5, 10]),
        stop_repeats=st.sampled_from([1, 2, 3, 5]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_across_corners(self, seed, n_obs, max_steps, stop_repeats):
        rng = np.random.default_rng(seed)
        scorer = SplitScorer(max_steps=max_steps, stop_repeats=stop_repeats)
        n_items = 6
        margins = rng.normal(0, 1.5, size=(n_items, n_obs))
        uniforms = _uniform_block(n_items, scorer.draws_per_item, seed)
        scores, steps, betas, accepted = scorer.score_batch(margins, uniforms)
        for i in range(n_items):
            one = scorer.score_one(list(margins[i]), list(uniforms[i]))
            assert one.log_score == scores[i]
            assert one.steps == steps[i]
            assert one.beta_index == betas[i]
            assert one.accepted == accepted[i]

    def test_memoization_hits_counted(self):
        """A multi-step chain over a 7-point grid must revisit betas: the
        batch memo serves those lookups from cache and counts them."""
        scorer = SplitScorer(max_steps=10, stop_repeats=3)
        margins = np.random.default_rng(11).normal(size=(40, 8))
        uniforms = _uniform_block(40, scorer.draws_per_item, 11)
        scores, steps, _b, _a = scorer.score_batch(margins, uniforms)
        memo = scorer.last_memo
        # Every lookup is either a fresh evaluation or a cache hit...
        lookups = 40 + int(steps.sum())  # initial scores + one per step
        assert memo.hits + memo.evaluations == lookups
        # ...the cache is bounded by the (item, beta) table...
        assert memo.evaluations <= 40 * scorer.beta_grid.size
        # ...and chains long enough to bounce between grid points hit it.
        assert memo.hits > 0

    def test_memo_bounds_evaluations_per_item(self):
        """No (item, beta) pair is ever evaluated twice in one batch."""
        scorer = SplitScorer(max_steps=25, stop_repeats=2)
        margins = np.random.default_rng(12).normal(size=(30, 6))
        uniforms = _uniform_block(30, scorer.draws_per_item, 12)
        scorer.score_batch(margins, uniforms)
        memo = scorer.last_memo
        assert memo.evaluations <= 30 * scorer.beta_grid.size


class TestGrid:
    def test_default_grid_sorted_positive(self):
        grid = np.asarray(DEFAULT_BETA_GRID)
        assert (grid > 0).all()
        assert (np.diff(grid) > 0).all()

    def test_custom_grid(self):
        scorer = SplitScorer(beta_grid=(0.5, 1.0, 2.0), max_steps=4)
        margins = np.random.default_rng(9).normal(size=(5, 4))
        _s, _steps, betas, _a = scorer.score_batch(
            margins, _uniform_block(5, scorer.draws_per_item, 9)
        )
        assert (betas >= 0).all() and (betas < 3).all()
