"""Tests for trace persistence and paper-scale projection parameters."""

import numpy as np
import pytest

from repro.core.learner import LemonTreeLearner
from repro.parallel.costmodel import MachineModel
from repro.parallel.trace import WorkTrace, load_trace, project_time, save_trace


def _trace():
    trace = WorkTrace()
    trace.record("ganesh.var_reassign", np.array([1.0, 2.0, 3.0]), run=0)
    trace.record("modules.split_scoring", np.arange(10, dtype=float), n_collectives=1, words=4)
    trace.mark_time("ganesh", 1.0)
    trace.mark_time("consensus", 0.2)
    trace.mark_time("modules", 3.0)
    trace.mark_node_time("shard0", 0.8)
    trace.mark_node_transfer("shard0", 4096, 0.01)
    trace.mark_node_steal("shard0", 2)
    trace.calibration = {"tau": 2e-6, "mu": 6.4e-10}
    return trace


class TestSaveLoad:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = _trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.times == trace.times
        assert back.n_ganesh_runs == trace.n_ganesh_runs == 1
        assert len(back.steps) == len(trace.steps)
        for a, b in zip(trace.steps, back.steps):
            assert a.phase == b.phase
            assert a.n_collectives == b.n_collectives
            assert a.words == b.words
            assert a.run == b.run
            np.testing.assert_array_equal(a.costs, b.costs)
        assert back.node_times == trace.node_times
        assert back.node_transfer_bytes == trace.node_transfer_bytes
        assert back.node_transfer_seconds == trace.node_transfer_seconds
        assert back.node_steals == trace.node_steals
        assert back.total_node_steals() == 2
        assert back.calibration == trace.calibration

    def test_roundtrip_preserves_projection(self, tmp_path):
        trace = _trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        back = load_trace(path)
        for p in (1, 4, 64):
            assert project_time(back, p).total == pytest.approx(
                project_time(trace, p).total
            )

    def test_real_learner_trace_roundtrip(self, tmp_path, tiny_matrix, fast_config):
        trace = WorkTrace()
        LemonTreeLearner(fast_config).learn(tiny_matrix, seed=1, trace=trace)
        path = tmp_path / "real.npz"
        save_trace(trace, path)
        back = load_trace(path)
        assert back.total_units() == pytest.approx(trace.total_units())
        assert back.split_imbalance(8) == pytest.approx(trace.split_imbalance(8))


class TestPaperScaleProjection:
    def test_consensus_scaled_separately(self):
        trace = _trace()
        pt = project_time(trace, 1, compute_scale=100.0, consensus_scale=4.0)
        assert pt.consensus == pytest.approx(0.2 * 4.0)
        assert pt.ganesh + pt.modules == pytest.approx((1.0 + 3.0) * 100.0)

    def test_consensus_defaults_to_compute_scale(self):
        trace = _trace()
        pt = project_time(trace, 1, compute_scale=10.0)
        assert pt.consensus == pytest.approx(2.0)

    def test_comm_scale_raises_collective_cost(self):
        trace = _trace()
        model = MachineModel(tau=1e-3, mu=1e-6)
        base = project_time(trace, 64, model=model).total
        scaled = project_time(trace, 64, model=model, comm_scale=10.0).total
        assert scaled > base

    def test_rejects_bad_scales(self):
        trace = _trace()
        with pytest.raises(ValueError):
            project_time(trace, 2, comm_scale=0.0)
        with pytest.raises(ValueError):
            project_time(trace, 2, consensus_scale=-1.0)

    def test_paper_scale_t1_identity(self):
        """compute_scale = consensus_scale = s multiplies T_1 by exactly s
        — the anchor the Section 5.2.2 benches rely on."""
        trace = _trace()
        t1 = project_time(trace, 1).total
        scaled = project_time(trace, 1, compute_scale=7.0, consensus_scale=7.0).total
        assert scaled == pytest.approx(7.0 * t1)
