#!/usr/bin/env python
"""Quickstart — learn a module network from synthetic expression data.

Generates a small yeast-like expression matrix, learns a module network
with the sequential Lemon-Tree learner, and prints the modules, their
top regulators, and the (possibly cyclic) module graph.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LearnerConfig, LemonTreeLearner, network_to_json, yeast_like


def main() -> None:
    # A scaled-down S.-cerevisiae-shaped data set (see repro.data.synthetic).
    dataset = yeast_like(scale=1 / 64, seed=7)
    matrix = dataset.matrix
    print(f"data set: {dataset.name} -> {matrix.n_vars} genes x {matrix.n_obs} conditions")

    # The paper's minimum-run-time configuration: one GaneSH run, one update
    # step, one regression tree per module, all genes candidate regulators.
    config = LearnerConfig(max_sampling_steps=10)
    learner = LemonTreeLearner(config)
    result = learner.learn(matrix, seed=2021)
    network = result.network

    print(f"\nlearned {network.n_modules} modules "
          f"in {result.task_times.total:.1f} s "
          f"(ganesh {result.task_times.ganesh:.1f} s, "
          f"consensus {result.task_times.consensus:.2f} s, "
          f"modules {result.task_times.modules:.1f} s)")

    print("\nmodules and top regulators (weighted parent score):")
    for module in network.modules:
        genes = ", ".join(matrix.var_names[v] for v in module.members[:5])
        if module.size > 5:
            genes += f", ... ({module.size} genes)"
        ranked = sorted(module.weighted_parents.items(), key=lambda kv: -kv[1])
        regs = ", ".join(
            f"{matrix.var_names[p]}({score:.2f})" for p, score in ranked[:3]
        )
        print(f"  M{module.module_id:<3} [{genes}]")
        print(f"        regulators: {regs or '(none retained)'}")

    graph = network.module_graph()
    print(f"\nmodule graph: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")
    feedback = network.feedback_edges()
    if feedback:
        print(f"cycles present (acyclicity is not enforced, as in the paper); "
              f"{len(feedback)} feedback edge(s): {feedback}")

    out = "quickstart_network.json"
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(network_to_json(network))
    print(f"\nnetwork written to {out}")


if __name__ == "__main__":
    main()
