#!/usr/bin/env python
"""Parallel execution and the consistency guarantee.

Runs the SPMD parallel learner (thread ranks + simulated MPI collectives)
at several processor counts and verifies the paper's central property: the
learned network is bit-identical to the sequential result for every p
(Section 3).  Then fans the dominant split-scoring phase out over *real*
local processes and reports the measured wall-clock speedup, again with
identical results under both the static (Algorithm 5) and dynamic
(Section 6) schedules.

Run:  python examples/parallel_consistency.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import LearnerConfig, LemonTreeLearner, ParallelLearner
from repro.data import make_module_dataset
from repro.ganesh.coclustering import run_obs_only_ganesh
from repro.parallel.pool import score_splits_pool
from repro.rng.streams import GibbsRandom, make_stream
from repro.trees.hierarchy import build_tree_structure

SEED = 17


def main() -> None:
    dataset = make_module_dataset(48, 24, n_modules=4, seed=23)
    matrix = dataset.matrix
    config = LearnerConfig(max_sampling_steps=8)
    print(f"data set: {matrix.n_vars} x {matrix.n_obs}")

    sequential = LemonTreeLearner(config).learn(matrix, seed=SEED)
    print(f"sequential run: {sequential.network.n_modules} modules\n")

    print("SPMD parallel learner (thread ranks, simulated MPI):")
    for p in (1, 2, 4, 8):
        result = ParallelLearner(config).learn(matrix, seed=SEED, p=p)
        identical = result.network == sequential.network
        work = result.work_per_rank
        print(f"  p={p}: identical to sequential: {identical}; "
              f"per-rank work units {np.array2string(work, precision=0)} "
              f"(imbalance {(work.max() - work.mean()) / work.mean():.2f})")
        assert identical, "consistency violated!"

    # Real multi-process execution of the dominant phase.
    print("\nprocess-pool split scoring (real cores):")
    data = matrix.values
    learner = LemonTreeLearner(config)
    samples = learner._task_ganesh(data, SEED, None)
    members = learner._task_consensus(samples)
    records = []
    for module_id, mem in enumerate(members):
        block = data[mem]
        mrng = GibbsRandom(make_stream(SEED, "modules", module_id))
        for labels in run_obs_only_ganesh(
            block, mrng, config.tree_update_steps, config.tree_burn_in, config.prior
        ):
            tree = build_tree_structure(block, labels, module_id, config.prior)
            obs_base = 0
            for node in tree.internal_nodes():
                records.append(
                    (module_id, node.observations, node.left.observations, obs_base)
                )
                obs_base += int(node.observations.size)
    parents = np.arange(data.shape[0])

    reference = None
    for workers in (1, 2, os.cpu_count() or 2):
        for schedule in ("static", "dynamic"):
            t0 = time.perf_counter()
            out = score_splits_pool(
                data, records, parents, config, seed=SEED,
                n_workers=workers, schedule=schedule,
            )
            elapsed = time.perf_counter() - t0
            if reference is None:
                reference = out
                status = "baseline"
            else:
                same = all(np.array_equal(a, b) for a, b in zip(out, reference))
                status = "identical" if same else "MISMATCH"
            print(f"  workers={workers:<2} schedule={schedule:<8} "
                  f"{elapsed:6.2f} s  [{status}]")

    print("\nall execution modes agree bit-for-bit — the block-split PRNG at work.")


if __name__ == "__main__":
    main()
