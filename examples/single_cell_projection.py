#!/usr/bin/env python
"""Single-cell-scale feasibility study — the paper's concluding motivation.

The paper's conclusions point at single-cell genomics, "where a data set
can include hundreds of thousands of observations", as the next frontier
the parallel method enables.  This example quantifies that claim with the
repository's own §5.2.2 methodology: measure a sequential run, fit the
growth laws, extrapolate the sequential time to single-cell shapes
(m = 10k..200k cells), and project the parallel run-time at p = 4096 —
showing which experiments move from "impossible" to "overnight".

Run:  python examples/single_cell_projection.py
"""

from __future__ import annotations

from repro import LearnerConfig, LemonTreeLearner, WorkTrace, project_time
from repro.bench.runtime_model import estimate_full_scale_runtime
from repro.data import make_module_dataset

#: single-cell scenarios: (label, genes, cells)
SCENARIOS = [
    ("10x pilot (3k cells)", 5716, 3_000),
    ("atlas slice (10k cells)", 5716, 10_000),
    ("tissue atlas (50k cells)", 12_000, 50_000),
    ("organism atlas (200k cells)", 18_373, 200_000),
]


def main() -> None:
    base = make_module_dataset(150, 120, seed=41, name="calibration")
    matrix = base.matrix
    config = LearnerConfig(max_sampling_steps=20, sampling_stop_repeats=2)
    trace = WorkTrace()
    result = LemonTreeLearner(config).learn(matrix, seed=9, trace=trace)
    t1 = result.task_times.total
    print(f"calibration run: {matrix.n_vars} x {matrix.n_obs} in {t1:.1f} s\n")

    print(f"{'scenario':<28} {'shape':>16} {'sequential':>12} {'p=4096':>10}")
    for label, genes, cells in SCENARIOS:
        estimate = estimate_full_scale_runtime(
            t1, matrix.shape, (genes, cells), m_exponent=2.0, n_exponent=1.8
        )
        scale = estimate.estimated_seconds / t1
        consensus_scale = (genes / matrix.n_vars) ** 2
        projected = project_time(
            trace, 4096, compute_scale=scale, consensus_scale=consensus_scale
        ).total
        print(f"{label:<28} {genes:>7} x {cells:>6} "
              f"{_fmt(estimate.estimated_seconds):>12} {_fmt(projected):>10}")

    print("\nmethodology: the paper's Section 5.2.2 growth-law extrapolation")
    print("(Theta(m^2) x n^1.8) applied to a measured calibration run, then the")
    print("work-trace projection at p = 4096 under the HDR100-like machine model.")
    print("Sequential single-cell learning is measured in years; at 4096 cores")
    print("the pilot- and atlas-slice studies become overnight jobs — the")
    print("enablement the paper's conclusion claims — while the largest atlases")
    print("still motivate the m-subsampling and dynamic-balancing follow-ups.")


def _fmt(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 7200:
        return f"{seconds / 60:.0f} min"
    if seconds < 172800:
        return f"{seconds / 3600:.1f} h"
    if seconds < 2 * 365 * 86400:
        return f"{seconds / 86400:.0f} days"
    return f"{seconds / (365 * 86400):.1f} years"


if __name__ == "__main__":
    main()
