#!/usr/bin/env python
"""Lemon-Tree vs GENOMICA — the two module-network learning lineages.

The paper's related work (Section 1.1) contrasts GENOMICA (Segal et al.'s
iterative two-step algorithm, the target of earlier parallelization
attempts) with Lemon-Tree (the three-task pipeline it parallelizes), citing
studies that found Lemon-Tree more robust.  This example runs both learners
— they share this repository's scoring substrates — on the same synthetic
data with known ground truth and compares module recovery, regulator
recovery and run-time, then post-processes both networks into DAGs with the
acyclicity step the paper defers.

Run:  python examples/approach_comparison.py
"""

from __future__ import annotations

import time

from repro import (
    GenomicaConfig,
    GenomicaLearner,
    LearnerConfig,
    LemonTreeLearner,
    make_acyclic,
    module_recovery_score,
    parent_recovery,
)
from repro.analysis.recovery import adjusted_rand_index
from repro.data import make_module_dataset


def main() -> None:
    dataset = make_module_dataset(
        n_vars=48, n_obs=60, n_modules=4, noise=0.2, heavy_tail=0.05, seed=55
    )
    matrix = dataset.matrix
    truth = dataset.truth
    # Candidate regulators: the generator's regulator pool (the first
    # genes), standing in for a transcription-factor list.  Without this
    # restriction both learners prefer a module's own members as parents —
    # they predict the module mean perfectly — which is exactly the
    # identifiability problem that makes TF lists standard Lemon-Tree
    # practice.
    candidates = tuple(range(max(2, matrix.n_vars // 10)))
    print(f"data: {matrix.n_vars} genes x {matrix.n_obs} conditions, "
          f"{truth.n_modules} ground-truth modules, "
          f"{len(candidates)} candidate regulators\n")

    t0 = time.perf_counter()
    lemon = LemonTreeLearner(
        LearnerConfig(max_sampling_steps=15, candidate_parents=candidates)
    ).learn(matrix, seed=8)
    t_lemon = time.perf_counter() - t0

    t0 = time.perf_counter()
    genomica = GenomicaLearner(
        GenomicaConfig(
            n_modules=truth.n_modules, max_iterations=10,
            candidate_parents=candidates,
        )
    ).learn(matrix, seed=8)
    t_genomica = time.perf_counter() - t0

    print(f"{'metric':<34} {'Lemon-Tree':>12} {'GENOMICA':>12}")
    print(f"{'run-time (s)':<34} {t_lemon:>12.1f} {t_genomica:>12.1f}")
    print(f"{'modules learned':<34} {lemon.network.n_modules:>12} "
          f"{genomica.network.n_modules:>12}")
    print(f"{'module recovery (ARI)':<34} "
          f"{module_recovery_score(lemon.network, truth):>12.2f} "
          f"{module_recovery_score(genomica.network, truth):>12.2f}")
    for top_k in (1, 3):
        lp = parent_recovery(lemon.network, truth, top_k=top_k)
        gp = parent_recovery(genomica.network, truth, top_k=top_k)
        print(f"{f'regulator precision @ top-{top_k}':<34} "
              f"{lp['precision']:>12.2f} {gp['precision']:>12.2f}")

    agreement = adjusted_rand_index(
        lemon.network.assignment_labels(), genomica.network.assignment_labels()
    )
    print(f"\ncross-approach module agreement (ARI): {agreement:.2f}")
    print(f"GENOMICA iterations: {genomica.n_iterations} "
          f"(converged: {genomica.converged}); "
          f"score trajectory {['%.0f' % s for s in genomica.score_history]}")

    # Acyclicity post-processing (the step the paper leaves to follow-ups).
    for name, network in (("Lemon-Tree", lemon.network), ("GENOMICA", genomica.network)):
        dag, removed = make_acyclic(network)
        print(f"{name}: {len(network.feedback_edges())} feedback edge(s) "
              f"-> DAG after cutting {len(removed)} edge(s) "
              f"(score mass removed: "
              f"{sum(e.score_mass for e in removed):.2f})")


if __name__ == "__main__":
    main()
