#!/usr/bin/env python
"""Held-out evaluation — module networks as generative models.

A module network is a parameter-sharing Bayesian network (Section 2.1 of
the paper), so the right end-to-end quality measure is predictive: learn on
a training split of the conditions, fit the regression-tree CPDs, and
score *unseen* conditions given their regulator values — the test-set
likelihood selection criterion of Segal et al.  This example compares
three models on the same held-out conditions:

* the Lemon-Tree network's regulatory program,
* the GENOMICA-style network's program,
* the routing-free null (one pooled Gaussian per module),

and then samples brand-new conditions from the fitted (acyclified)
Lemon-Tree model to confirm the generative loop closes.

Run:  python examples/holdout_evaluation.py
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import (
    GenomicaConfig,
    GenomicaLearner,
    LearnerConfig,
    LemonTreeLearner,
    fit_network,
    holdout_log_likelihood,
    make_acyclic,
    train_test_split_obs,
)
from repro.data import make_module_dataset


def main() -> None:
    dataset = make_module_dataset(
        n_vars=48, n_obs=90, n_modules=4, noise=0.2, heavy_tail=0.0, seed=33
    )
    train, test = train_test_split_obs(dataset.matrix, test_fraction=0.25, seed=2)
    candidates = tuple(range(max(2, dataset.matrix.n_vars // 10)))
    print(f"data: {dataset.matrix.n_vars} genes; "
          f"train {train.n_obs} / test {test.n_obs} conditions; "
          f"{len(candidates)} candidate regulators\n")

    lemon = LemonTreeLearner(
        LearnerConfig(max_sampling_steps=12, candidate_parents=candidates)
    ).learn(train, seed=7).network
    genomica = GenomicaLearner(
        GenomicaConfig(n_modules=4, max_iterations=8, candidate_parents=candidates)
    ).learn(train, seed=7).network

    print(f"{'model':<26} {'test LL / condition':>20} {'vs null':>9}")
    for name, network in (("Lemon-Tree", lemon), ("GENOMICA", genomica)):
        metrics = holdout_log_likelihood(network, train, test)
        print(f"{name:<26} {metrics['per_condition']:>20.1f} "
              f"{metrics['improvement_per_condition']:>+9.1f}")
    null = holdout_log_likelihood(lemon, train, test)["null_per_condition"]
    print(f"{'pooled null (no routing)':<26} {null:>20.1f} {'+0.0':>9}")

    # Generative loop: sample new conditions from the fitted model.
    dag, removed = make_acyclic(lemon)
    order = list(nx.topological_sort(dag.module_graph()))
    fitted = fit_network(dag, train)
    sampled = fitted.sample(200, np.random.default_rng(11), order)
    labels = dag.assignment_labels()
    corr = np.corrcoef(sampled)
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    off_diag = ~same & ~np.eye(labels.size, dtype=bool)
    print(f"\nsampled 200 new conditions from the acyclified network "
          f"({len(removed)} feedback edge(s) cut):")
    print(f"  within-module correlation  {np.nanmean(corr[same]):.2f}")
    print(f"  between-module correlation {np.nanmean(corr[off_diag]):.2f}")
    print("  (sampled data reproduces the module structure the network encodes)")


if __name__ == "__main__":
    main()
