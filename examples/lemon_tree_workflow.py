#!/usr/bin/env python
"""File-based workflow — the Lemon-Tree command-line usage pattern.

Mirrors how Lemon-Tree is driven in practice: expression matrix on disk in
the tab-separated format, a candidate-regulator list (here: the known
regulator pool of the synthetic generator, standing in for a transcription-
factor list), learning restricted to those candidates, and the learned
module network written as the XML document rank 0 of the paper's MPI code
emits, plus the round-trippable JSON.

Run:  python examples/lemon_tree_workflow.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import (
    LearnerConfig,
    LemonTreeLearner,
    network_to_json,
    network_to_xml,
    read_expression_tsv,
    write_expression_tsv,
)
from repro.core.config import parents_from_names
from repro.data import make_module_dataset


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("lemon_tree_demo")
    out_dir.mkdir(parents=True, exist_ok=True)

    # 1. Produce an expression matrix on disk (in practice: your data).
    dataset = make_module_dataset(50, 40, n_modules=4, seed=5, name="workflow-demo")
    matrix_path = out_dir / "expression.tsv"
    write_expression_tsv(dataset.matrix, matrix_path)
    print(f"wrote {matrix_path} ({dataset.matrix.n_vars} x {dataset.matrix.n_obs})")

    # 2. Read it back (block-distributed parse, Section 5.3 of the paper).
    matrix = read_expression_tsv(matrix_path, p=4)

    # 3. Candidate regulators: the generator's regulator pool (first genes),
    #    playing the transcription-factor list biologists would supply.
    regulator_names = matrix.var_names[: max(2, matrix.n_vars // 10)]
    candidates = parents_from_names(regulator_names, matrix.var_names)
    print(f"candidate regulators: {', '.join(regulator_names)}")

    # 4. Learn with the restricted candidate list.
    config = LearnerConfig(max_sampling_steps=10, candidate_parents=candidates)
    result = LemonTreeLearner(config).learn(matrix, seed=2021)
    network = result.network
    print(f"learned {network.n_modules} modules in {result.task_times.total:.1f} s")

    # 5. Write outputs: Lemon-Tree-style XML and round-trippable JSON.
    xml_path = out_dir / "module_network.xml"
    xml_path.write_text(network_to_xml(network), encoding="utf-8")
    json_path = out_dir / "module_network.json"
    json_path.write_text(network_to_json(network), encoding="utf-8")
    print(f"wrote {xml_path}")
    print(f"wrote {json_path}")

    # 6. Summarize regulators per module (only candidates can appear).
    for module in network.modules:
        ranked = sorted(module.weighted_parents.items(), key=lambda kv: -kv[1])[:2]
        regs = ", ".join(f"{matrix.var_names[p]}({s:.2f})" for p, s in ranked)
        print(f"  M{module.module_id}: {module.size} genes; regulators: {regs or '-'}")


if __name__ == "__main__":
    main()
