#!/usr/bin/env python
"""Strong-scaling study — reproduce the paper's Figure 5/6 workflow.

Learns a module network once sequentially with work-trace instrumentation,
then projects the parallel run-time for processor counts up to the paper's
4096 on the simulated distributed-memory machine (HDR100-like tau/mu
collective model), printing speedup, efficiency, per-task breakdown and the
split-scoring load-imbalance metric of Section 5.3.1.

Run:  python examples/strong_scaling_study.py
"""

from __future__ import annotations

from repro import LearnerConfig, LemonTreeLearner, MachineModel, WorkTrace, project_time
from repro.data import make_module_dataset
from repro.parallel.trace import scaling_curve

PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def main() -> None:
    dataset = make_module_dataset(150, 120, seed=19, name="scaling-demo")
    matrix = dataset.matrix
    print(f"data set: {matrix.n_vars} genes x {matrix.n_obs} conditions")

    config = LearnerConfig(max_sampling_steps=20, sampling_stop_repeats=2)
    trace = WorkTrace()
    result = LemonTreeLearner(config).learn(matrix, seed=3, trace=trace)
    t1 = result.task_times.total
    print(f"sequential T_1 = {t1:.1f} s "
          f"({result.stats['n_modules']} modules, "
          f"{trace.total_units():.3g} work units recorded)\n")

    print(f"{'p':>6} {'T_p (s)':>10} {'speedup':>9} {'eff':>6} "
          f"{'ganesh':>8} {'consensus':>10} {'modules':>8} {'imbalance':>10}")
    for point in scaling_curve(trace, list(PROCESSOR_COUNTS)):
        speedup = t1 / point.total
        print(f"{point.p:>6} {point.total:>10.3f} {speedup:>9.1f} "
              f"{speedup / point.p:>6.0%} {point.ganesh:>8.3f} "
              f"{point.consensus:>10.3f} {point.modules:>8.3f} "
              f"{trace.split_imbalance(point.p):>10.2f}")

    # What would a slower interconnect do?  Sweep the machine model.
    print("\nmachine-model sensitivity (speedup at p = 1024):")
    for name, model in {
        "HDR100-like (default)": MachineModel(),
        "10x latency": MachineModel(tau=2e-5, mu=6.4e-10),
        "100x latency": MachineModel(tau=2e-4, mu=6.4e-10),
        "ideal (zero comm)": MachineModel(tau=0.0, mu=0.0),
    }.items():
        tp = project_time(trace, 1024, model=model).total
        print(f"  {name:<24} {t1 / tp:>8.1f}x")

    print("\npaper shape check: near-linear region at small p, taper from the")
    print("split-scoring load imbalance and the log(p) GaneSH collectives;")
    print("consensus clustering stays sequential and negligible throughout.")


if __name__ == "__main__":
    main()
