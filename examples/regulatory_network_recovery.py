#!/usr/bin/env python
"""Gene-regulatory-network recovery — the paper's motivating application.

Generates expression data from a *known* module network (ground-truth
modules, regulators and regression-tree programs — the generative model of
Segal et al. that module networks assume), learns a network back with the
Lemon-Tree pipeline, and scores how much of the generative structure was
recovered: module assignment (adjusted Rand index) and regulator
identification (precision/recall of top-ranked parents), with the uniform
random-control parents as the significance baseline the paper's pipeline
uses downstream.

Run:  python examples/regulatory_network_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import LearnerConfig, LemonTreeLearner
from repro.analysis import module_recovery_score, parent_recovery
from repro.data import make_module_dataset


def main() -> None:
    dataset = make_module_dataset(
        n_vars=60,
        n_obs=80,
        n_modules=5,
        noise=0.2,
        heavy_tail=0.05,
        seed=101,
        name="ground-truth-demo",
    )
    matrix = dataset.matrix
    truth = dataset.truth
    print(f"generated {matrix.n_vars} genes x {matrix.n_obs} conditions "
          f"from {truth.n_modules} ground-truth modules")
    for module in range(truth.n_modules):
        members = int((truth.module_of_gene == module).sum())
        regs = ", ".join(matrix.var_names[r] for r in truth.regulators_of(module))
        print(f"  true M{module}: {members} genes, regulators: {regs}")

    # Restrict candidate parents to the regulator pool (the generator's
    # first genes) — the transcription-factor-list practice of real
    # Lemon-Tree studies.  With every gene as a candidate, a module's own
    # members out-predict the true regulator (they *are* noisy copies of
    # the module mean), hiding the regulatory signal.
    candidates = tuple(range(max(2, matrix.n_vars // 10)))
    config = LearnerConfig(max_sampling_steps=15, candidate_parents=candidates)
    result = LemonTreeLearner(config).learn(matrix, seed=4)
    network = result.network
    print(f"\nlearned {network.n_modules} modules in {result.task_times.total:.1f} s")

    ari = module_recovery_score(network, truth)
    print(f"\nmodule recovery (adjusted Rand index): {ari:.2f} "
          f"(1 = exact, ~0 = random)")

    for top_k in (1, 3, 5):
        metrics = parent_recovery(network, truth, top_k=top_k)
        print(f"regulator recovery @ top-{top_k}: "
              f"precision {metrics['precision']:.2f}, "
              f"recall {metrics['recall']:.2f}")

    # The paper's significance control: weighted-selection parent scores
    # should separate from the uniform random-control scores.
    weighted = np.array(
        [s for m in network.modules for s in m.weighted_parents.values()]
    )
    uniform = np.array(
        [s for m in network.modules for s in m.uniform_parents.values()]
    )
    if weighted.size and uniform.size:
        print(f"\nparent-score distributions (mean +/- sd):")
        print(f"  weighted selection: {weighted.mean():.3f} +/- {weighted.std():.3f}")
        print(f"  uniform control:    {uniform.mean():.3f} +/- {uniform.std():.3f}")
        print("  (weighted scores concentrating above the control indicates "
              "informative regulators)")


if __name__ == "__main__":
    main()
