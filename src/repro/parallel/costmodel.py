"""Machine model for the simulated distributed-memory cluster.

Section 3.1 of the paper estimates communication time assuming ``tau``
seconds to set up a message and ``mu`` seconds per word, with tree-based
collectives costing ``(tau + mu * words) * log p``.  The defaults below are
calibrated to the paper's testbed (HDR100 InfiniBand, 100 Gbps, ~2 us MPI
latency); the compute rate is calibrated per run from measured sequential
time (see :func:`repro.parallel.trace.project_time`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Latency/bandwidth model of the interconnect."""

    #: message setup time (seconds) — MPI latency on HDR100-class fabric
    tau: float = 2.0e-6
    #: time per 8-byte word (seconds) — 100 Gbps = 12.5 GB/s
    mu: float = 6.4e-10

    def __post_init__(self) -> None:
        if self.tau < 0 or self.mu < 0:
            raise ValueError("tau and mu must be non-negative")

    def collective_time(self, words: int, p: int, count: int = 1) -> float:
        """Time for ``count`` tree collectives of ``words`` words on ``p`` ranks."""
        if p <= 1 or count == 0:
            return 0.0
        return count * (self.tau + self.mu * words) * math.log2(p)

    def point_to_point(self, words: int) -> float:
        return self.tau + self.mu * words


#: the default model used by all benchmarks
PHOENIX_LIKE = MachineModel()


def block_bounds(n_items: int, p: int) -> list[tuple[int, int]]:
    """Equal-count contiguous block boundaries (Algorithm 5, line 5).

    Item ``i`` belongs to block ``i * p // n_items``-ish; we use the
    standard balanced split where block ``k`` holds items
    ``[k * n // p + min(k, n % p) ...)`` so sizes differ by at most one.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    base, extra = divmod(n_items, p)
    bounds = []
    start = 0
    for k in range(p):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def block_range(n_items: int, p: int, rank: int) -> tuple[int, int]:
    """The half-open item range owned by ``rank`` of ``p``."""
    base, extra = divmod(n_items, p)
    start = rank * base + min(rank, extra)
    size = base + (1 if rank < extra else 0)
    return start, start + size


def max_block_sum(costs, p: int) -> float:
    """Maximum per-block sum of a contiguous equal-count partition.

    The simulated compute time of one superstep: every rank works through
    its block, the step ends when the slowest rank finishes.
    """
    import numpy as np

    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if n == 0:
        return 0.0
    if p >= n:
        return float(costs.max())
    cum = np.concatenate([[0.0], np.cumsum(costs)])
    base, extra = divmod(n, p)
    ranks = np.arange(p)
    starts = ranks * base + np.minimum(ranks, extra)
    ends = starts + base + (ranks < extra)
    return float((cum[ends] - cum[starts]).max())


def block_sums(costs, p: int):
    """All per-block sums of the contiguous equal-count partition."""
    import numpy as np

    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if n == 0:
        return np.zeros(p)
    cum = np.concatenate([[0.0], np.cumsum(costs)])
    base, extra = divmod(n, p)
    ranks = np.arange(p)
    starts = np.minimum(ranks * base + np.minimum(ranks, extra), n)
    ends = np.minimum(starts + base + (ranks < extra), n)
    return cum[ends] - cum[starts]


def load_imbalance(costs, p: int) -> float:
    """The paper's imbalance metric: (max - mean) / mean of per-rank work.

    Section 5.3.1: "the deviation of the maximum run-time of the loop on
    any process from the average run-time ... normalized by the average".
    """
    import numpy as np

    sums = block_sums(costs, p)
    mean = float(np.mean(sums))
    if mean == 0.0:
        return 0.0
    return float((sums.max() - mean) / mean)
