"""Machine model for the simulated distributed-memory cluster.

Section 3.1 of the paper estimates communication time assuming ``tau``
seconds to set up a message and ``mu`` seconds per word, with tree-based
collectives costing ``(tau + mu * words) * log p``.  The defaults below are
calibrated to the paper's testbed (HDR100 InfiniBand, 100 Gbps, ~2 us MPI
latency); the compute rate is calibrated per run from measured sequential
time (see :func:`repro.parallel.trace.project_time`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Latency/bandwidth model of the interconnect."""

    #: message setup time (seconds) — MPI latency on HDR100-class fabric
    tau: float = 2.0e-6
    #: time per 8-byte word (seconds) — 100 Gbps = 12.5 GB/s
    mu: float = 6.4e-10

    def __post_init__(self) -> None:
        if self.tau < 0 or self.mu < 0:
            raise ValueError("tau and mu must be non-negative")

    def collective_time(self, words: int, p: int, count: int = 1) -> float:
        """Time for ``count`` tree collectives of ``words`` words on ``p`` ranks."""
        if p <= 1 or count == 0:
            return 0.0
        return count * (self.tau + self.mu * words) * math.log2(p)

    def point_to_point(self, words: int) -> float:
        return self.tau + self.mu * words


#: the default model used by all benchmarks
PHOENIX_LIKE = MachineModel()

# -- measured calibration ----------------------------------------------------
#
# The defaults above describe the *paper's* testbed.  A real deployment of
# the shard tier (:mod:`repro.parallel.sharding`) measures its own tau/mu
# from echo round-trips over the actual node channels at startup and
# installs the result here, so every consumer of the machine model — the
# run-time projections and the steal-penalty charge below — reasons about
# the interconnect that is actually in use rather than the hardcoded
# HDR100 numbers.

#: uncalibrated cross-domain/cross-node steal charge: executing a work item
#: outside its home domain costs this factor times its work (remote DRAM /
#: interconnect reads).  1.3 matches the historical hardcoded default of
#: the placement schedulers; a measured calibration replaces it via
#: :func:`resolve_remote_penalty`.
DEFAULT_REMOTE_PENALTY = 1.3

#: nominal steal granule used to convert a transfer model into a penalty:
#: a ~512 KiB work-item payload (64 Ki 8-byte words) against the ~10 ms
#: median fine-grained chunk time measured by ``bench_executor.py``
STEAL_GRANULE_WORDS = 64 * 1024
STEAL_GRANULE_SECONDS = 0.010

#: the process-wide calibrated model (None until a shard tier installs one)
_CALIBRATED: MachineModel | None = None


def steal_penalty(
    model: MachineModel,
    words: int = STEAL_GRANULE_WORDS,
    compute_seconds: float = STEAL_GRANULE_SECONDS,
) -> float:
    """Bandwidth-derived steal charge: (compute + transfer) / compute.

    A stolen item's inputs cross the interconnect once, so its effective
    cost grows by the point-to-point time of the steal granule relative to
    the granule's compute time.  Clamped to at least 1 (a steal can never
    be cheaper than local execution).
    """
    if compute_seconds <= 0:
        raise ValueError("compute_seconds must be positive")
    return max(1.0, 1.0 + model.point_to_point(words) / compute_seconds)


def set_calibrated_model(model: MachineModel | None) -> MachineModel | None:
    """Install a measured machine model process-wide; returns the previous
    one so callers (the shard executor) can restore it on teardown."""
    global _CALIBRATED
    previous = _CALIBRATED
    _CALIBRATED = model
    return previous


def calibrated_model() -> MachineModel | None:
    """The currently installed measured model, or ``None``."""
    return _CALIBRATED


def resolve_remote_penalty(explicit: float | None = None) -> float:
    """The steal charge to use: explicit > calibrated > 1.3 fallback.

    This is the single source of the remote-penalty default for the
    placement schedulers (they historically duplicated a hardcoded 1.3):
    an explicitly passed value always wins; otherwise a calibrated model
    installed by :func:`set_calibrated_model` yields the bandwidth-derived
    :func:`steal_penalty`; without either, :data:`DEFAULT_REMOTE_PENALTY`.
    """
    if explicit is not None:
        return float(explicit)
    if _CALIBRATED is not None:
        return steal_penalty(_CALIBRATED)
    return DEFAULT_REMOTE_PENALTY


def calibrate_from_roundtrips(
    small_rtts: list[float], large_rtts: list[float], large_words: int
) -> MachineModel:
    """Fit (tau, mu) from measured echo round-trips.

    ``small_rtts`` are round-trip times of near-empty echo messages —
    two point-to-point messages of ~0 words, so ``tau = median / 2``.
    ``large_rtts`` carry ``large_words`` 8-byte words each way; the extra
    time over the small echo is pure payload, so
    ``mu = (median_large - median_small) / (2 * large_words)`` (clamped
    non-negative: on a noisy machine the payload cost can measure below
    the jitter).  Medians resist scheduler hiccups better than means.
    """
    if not small_rtts or not large_rtts:
        raise ValueError("need at least one round-trip of each size")
    if large_words <= 0:
        raise ValueError("large_words must be positive")

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    small = median(small_rtts)
    large = median(large_rtts)
    tau = max(0.0, small / 2.0)
    mu = max(0.0, (large - small) / (2.0 * large_words))
    return MachineModel(tau=tau, mu=mu)


def block_bounds(n_items: int, p: int) -> list[tuple[int, int]]:
    """Equal-count contiguous block boundaries (Algorithm 5, line 5).

    Item ``i`` belongs to block ``i * p // n_items``-ish; we use the
    standard balanced split where block ``k`` holds items
    ``[k * n // p + min(k, n % p) ...)`` so sizes differ by at most one.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    base, extra = divmod(n_items, p)
    bounds = []
    start = 0
    for k in range(p):
        size = base + (1 if k < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def block_range(n_items: int, p: int, rank: int) -> tuple[int, int]:
    """The half-open item range owned by ``rank`` of ``p``."""
    base, extra = divmod(n_items, p)
    start = rank * base + min(rank, extra)
    size = base + (1 if rank < extra else 0)
    return start, start + size


def max_block_sum(costs, p: int) -> float:
    """Maximum per-block sum of a contiguous equal-count partition.

    The simulated compute time of one superstep: every rank works through
    its block, the step ends when the slowest rank finishes.
    """
    import numpy as np

    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if n == 0:
        return 0.0
    if p >= n:
        return float(costs.max())
    cum = np.concatenate([[0.0], np.cumsum(costs)])
    base, extra = divmod(n, p)
    ranks = np.arange(p)
    starts = ranks * base + np.minimum(ranks, extra)
    ends = starts + base + (ranks < extra)
    return float((cum[ends] - cum[starts]).max())


def block_sums(costs, p: int):
    """All per-block sums of the contiguous equal-count partition."""
    import numpy as np

    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if n == 0:
        return np.zeros(p)
    cum = np.concatenate([[0.0], np.cumsum(costs)])
    base, extra = divmod(n, p)
    ranks = np.arange(p)
    starts = np.minimum(ranks * base + np.minimum(ranks, extra), n)
    ends = np.minimum(starts + base + (ranks < extra), n)
    return cum[ends] - cum[starts]


def load_imbalance(costs, p: int) -> float:
    """The paper's imbalance metric: (max - mean) / mean of per-rank work.

    Section 5.3.1: "the deviation of the maximum run-time of the loop on
    any process from the average run-time ... normalized by the average".
    """
    import numpy as np

    sums = block_sums(costs, p)
    mean = float(np.mean(sums))
    if mean == 0.0:
        return 0.0
    return float((sums.max() - mean) / mean)
