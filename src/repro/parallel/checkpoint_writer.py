"""Background checkpoint writer: serialize-and-rename off the hot path.

Workers checkpoint every completed unit (``module_<id>.json``,
``ganesh_<g>.npz``) so interrupted runs resume cheaply — but a synchronous
write stalls the worker for the full serialize+fsync latency before it can
pull the next task, and large modules make that stall material.  This
writer moves the filesystem work to a per-process background thread:

* :meth:`AsyncCheckpointWriter.submit` enqueues a zero-argument write
  closure and returns immediately — the closure owns private copies of its
  payload, so the worker is free to mutate or drop its buffers;
* writes execute in submission order on one daemon thread, each preserving
  the tmp-file-then-atomic-rename protocol, so a kill at any instant still
  never leaves a torn checkpoint — only a missing one, which resume
  recomputes;
* :meth:`AsyncCheckpointWriter.flush` blocks until everything enqueued so
  far is durably renamed (the executor drains every worker's writer before
  tearing down the pool);
* a write failure is captured and re-raised on the next ``submit``/
  ``flush``/``close`` rather than dying silently on the writer thread.
"""

from __future__ import annotations

import queue
import threading


class AsyncCheckpointWriter:
    """One background thread executing write closures in FIFO order."""

    def __init__(self, name: str = "checkpoint-writer") -> None:
        self._queue: queue.Queue = queue.Queue()
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            fn = self._queue.get()
            try:
                if fn is None:
                    return
                try:
                    fn()
                except BaseException as exc:  # surfaced on the caller's side
                    self._error = exc
            finally:
                self._queue.task_done()

    def _raise_pending(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def submit(self, fn) -> None:
        """Enqueue a write closure; raises any error a prior write left."""
        if self._closed:
            raise RuntimeError("writer is closed")
        self._raise_pending()
        self._queue.put(fn)

    def flush(self) -> None:
        """Block until every submitted write has completed."""
        self._queue.join()
        self._raise_pending()

    def close(self, timeout: float | None = 10.0) -> None:
        """Drain the queue and stop the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=timeout)
        self._raise_pending()
