"""Work traces and projection of parallel run-times.

The learner, when given a :class:`WorkTrace`, records one entry per
parallelizable superstep: the per-candidate work vector that Algorithms 1-5
partition across ranks, plus the collective calls the superstep performs.
:func:`project_time` then replays the trace for any processor count ``p``:

* **stepwise** phases (the Gibbs sweeps) synchronize every iteration — each
  step contributes ``max-block-work / rate + collectives``;
* **bulk** phases (candidate-split scoring, Algorithm 5) are partitioned
  once as one flat list — all their work vectors are concatenated before
  the block split, which is precisely the paper's flat partitioning of
  ``cand-splits`` and the reason its load balance beats per-module or
  per-tree assignment (Section 3.2.3);
* GaneSH runs are grouped: ``G`` runs execute concurrently on ``p / G``
  ranks each with no inter-group communication (Section 3.2.1).

The compute rate (work units per second) is calibrated per task from the
measured sequential wall time, so the projected ``T_1`` equals the measured
sequential time by construction and every projected speedup is anchored to
a real measurement.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.costmodel import (
    MachineModel,
    PHOENIX_LIKE,
    load_imbalance,
    max_block_sum,
)

#: trace phases that are partitioned once as a flat list (bulk) rather than
#: once per superstep ("split_search" is the GENOMICA extension's
#: deterministic best-split pass)
BULK_PHASES = frozenset({"modules.split_scoring", "modules.split_search"})

TASKS = ("ganesh", "consensus", "modules")


@dataclass
class TraceStep:
    phase: str
    costs: np.ndarray
    n_collectives: int = 0
    words: int = 1
    run: int | None = None  # GaneSH run id for group-parallel task 1

    @property
    def task(self) -> str:
        return self.phase.split(".", 1)[0]


@dataclass
class WorkTrace:
    """Recorded per-superstep work of one learning run."""

    steps: list[TraceStep] = field(default_factory=list)
    #: measured wall seconds per task ('ganesh' / 'consensus' / 'modules')
    times: dict[str, float] = field(default_factory=dict)
    n_ganesh_runs: int = 1
    #: measured busy wall seconds per executor worker ('worker-0', ...),
    #: recorded by the process executor so measured parallel speedups can
    #: be compared against the projected ones
    worker_times: dict[str, float] = field(default_factory=dict)
    #: measured busy wall seconds per NUMA domain ('node0', ...), recorded
    #: by the process executor when a placement plan is active
    domain_times: dict[str, float] = field(default_factory=dict)
    #: cross-domain steals per executor worker ('worker-0', ...): tasks the
    #: worker pulled from a foreign domain's affine queue because its home
    #: queue was empty
    worker_steals: dict[str, int] = field(default_factory=dict)
    #: busy wall seconds each worker spent on *stolen* (foreign-domain)
    #: tasks — the home/foreign split of ``worker_times``
    worker_stolen_seconds: dict[str, float] = field(default_factory=dict)
    #: busy seconds of each domain's *own* items executed by that domain's
    #: workers ('node0', ...) — the locality hits
    domain_local_times: dict[str, float] = field(default_factory=dict)
    #: busy seconds of each domain's items executed by *foreign* workers —
    #: the locality misses (stolen away)
    domain_stolen_times: dict[str, float] = field(default_factory=dict)
    #: the executor's placement plan (``Placement.describe()``): machine
    #: topology plus the worker->domain map, for benchmark reports
    topology: dict | None = None
    #: aggregated split-scoring kernel counters across every process that
    #: scored splits: ``hits`` / ``evaluations`` (cache behaviour),
    #: ``peak_chunk_elements`` (largest guarded temporary) and
    #: ``backends`` (the resolved backend names actually used)
    kernel_counters: dict = field(default_factory=dict)
    #: measured busy wall seconds per shard node ('shard0', ...), recorded
    #: by the sharded executor (the process-node tier above the pool)
    node_times: dict[str, float] = field(default_factory=dict)
    #: bytes shipped over each shard node's channel (both directions)
    node_transfer_bytes: dict[str, int] = field(default_factory=dict)
    #: wall seconds spent inside each shard node's channel send/recv calls
    node_transfer_seconds: dict[str, float] = field(default_factory=dict)
    #: work batches a node executed that were *stolen* from another node's
    #: shard queue by the driver's work-conserving dispatch
    node_steals: dict[str, int] = field(default_factory=dict)
    #: the measured tau/mu calibration of the shard channels, as recorded
    #: by :mod:`repro.parallel.sharding` (``{"tau": s, "mu": s/word, ...}``)
    calibration: dict | None = None

    # -- recording (the learner's hook) -----------------------------------
    def record(
        self,
        phase: str,
        costs: np.ndarray,
        n_collectives: int = 2,
        words: int = 1,
        run: int | None = None,
    ) -> None:
        self.steps.append(
            TraceStep(
                phase=phase,
                costs=np.asarray(costs, dtype=np.float64),
                n_collectives=int(n_collectives),
                words=int(words),
                run=run,
            )
        )

    def mark_time(self, task: str, seconds: float) -> None:
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r}")
        self.times[task] = self.times.get(task, 0.0) + float(seconds)

    def mark_worker_time(self, worker: str, seconds: float) -> None:
        """Accumulate busy wall time of one executor worker."""
        self.worker_times[worker] = self.worker_times.get(worker, 0.0) + float(
            seconds
        )

    def mark_domain_time(self, domain: str, seconds: float) -> None:
        """Accumulate busy wall time of one NUMA domain's workers."""
        self.domain_times[domain] = self.domain_times.get(domain, 0.0) + float(
            seconds
        )

    def mark_steal(self, worker: str, count: int, seconds: float) -> None:
        """Accumulate one worker's cross-domain steals and stolen seconds."""
        self.worker_steals[worker] = self.worker_steals.get(worker, 0) + int(count)
        self.worker_stolen_seconds[worker] = self.worker_stolen_seconds.get(
            worker, 0.0
        ) + float(seconds)

    def mark_domain_locality(self, domain: str, seconds: float, stolen: bool) -> None:
        """Accumulate one domain's work seconds as local (home worker ran
        the item) or stolen (a foreign worker drained it)."""
        target = self.domain_stolen_times if stolen else self.domain_local_times
        target[domain] = target.get(domain, 0.0) + float(seconds)

    def mark_node_time(self, node: str, seconds: float) -> None:
        """Accumulate busy wall time of one shard node."""
        self.node_times[node] = self.node_times.get(node, 0.0) + float(seconds)

    def mark_node_transfer(self, node: str, n_bytes: int, seconds: float) -> None:
        """Accumulate one shard node's channel traffic (bytes and wall
        seconds spent in send/recv), both directions combined."""
        self.node_transfer_bytes[node] = self.node_transfer_bytes.get(
            node, 0
        ) + int(n_bytes)
        self.node_transfer_seconds[node] = self.node_transfer_seconds.get(
            node, 0.0
        ) + float(seconds)

    def mark_node_steal(self, node: str, count: int = 1) -> None:
        """Count batches a shard node pulled from a foreign shard queue."""
        self.node_steals[node] = self.node_steals.get(node, 0) + int(count)

    def total_node_steals(self) -> int:
        """Cross-node steals summed over all shard nodes."""
        return sum(self.node_steals.values())

    def mark_kernel(self, counters: dict | None) -> None:
        """Merge one process's drained kernel-counter delta (see
        :func:`repro.scoring.kernel.consume_kernel_totals`); ``None`` (the
        task scored nothing) is accepted and ignored."""
        if not counters:
            return
        agg = self.kernel_counters
        agg["hits"] = agg.get("hits", 0) + int(counters.get("hits", 0))
        agg["evaluations"] = agg.get("evaluations", 0) + int(
            counters.get("evaluations", 0)
        )
        agg["peak_chunk_elements"] = max(
            agg.get("peak_chunk_elements", 0),
            int(counters.get("peak_chunk_elements", 0)),
        )
        agg["backends"] = sorted(
            set(agg.get("backends", [])) | set(counters.get("backends", []))
        )
        # Shared-score-cache traffic (store_hits / store_misses /
        # store_evictions) is only present when a process consulted a
        # shared store; merge without widening cache-off traces.
        for key in ("store_hits", "store_misses", "store_evictions"):
            if key in counters or key in agg:
                agg[key] = agg.get(key, 0) + int(counters.get(key, 0))

    def total_steals(self) -> int:
        """Cross-domain steals summed over all workers."""
        return sum(self.worker_steals.values())

    def locality_hit_rate(self) -> float:
        """Fraction of work seconds executed in the items' home domain.

        ``1.0`` when nothing was recorded (a flat run never steals and may
        skip locality accounting entirely).
        """
        local = sum(self.domain_local_times.values())
        stolen = sum(self.domain_stolen_times.values())
        total = local + stolen
        if total <= 0.0:
            return 1.0
        return local / total

    def domain_locality(self) -> dict[str, float]:
        """Per-domain locality hit rate (local / (local + stolen))."""
        out: dict[str, float] = {}
        for domain in sorted(
            set(self.domain_local_times) | set(self.domain_stolen_times)
        ):
            local = self.domain_local_times.get(domain, 0.0)
            stolen = self.domain_stolen_times.get(domain, 0.0)
            total = local + stolen
            out[domain] = local / total if total > 0.0 else 1.0
        return out

    def worker_imbalance(self) -> float:
        """Measured (max - mean) / mean busy time across executor workers."""
        if not self.worker_times:
            return 0.0
        busy = np.array(list(self.worker_times.values()), dtype=np.float64)
        mean = float(busy.mean())
        if mean == 0.0:
            return 0.0
        return float((busy.max() - mean) / mean)

    # -- summaries ---------------------------------------------------------
    def total_units(self, task: str | None = None) -> float:
        return float(
            sum(s.costs.sum() for s in self.steps if task is None or s.task == task)
        )

    def phase_units(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for step in self.steps:
            out[step.phase] += float(step.costs.sum())
        return dict(out)

    def rate(self, task: str) -> float:
        """Calibrated compute rate (work units per second) for ``task``."""
        units = self.total_units(task)
        seconds = self.times.get(task, 0.0)
        if seconds <= 0 or units <= 0:
            return float("inf")
        return units / seconds

    def bulk_costs(self, phase: str) -> np.ndarray:
        """Concatenated cost vector of a bulk phase (the flat split list)."""
        parts = [s.costs for s in self.steps if s.phase == phase]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def split_imbalance(self, p: int) -> float:
        """Load-imbalance metric of the split-scoring phase at ``p`` ranks."""
        return load_imbalance(self.bulk_costs("modules.split_scoring"), p)


@dataclass(frozen=True)
class ProjectedTime:
    """Simulated run-time of the traced computation on ``p`` ranks."""

    p: int
    ganesh: float
    consensus: float
    modules: float

    @property
    def total(self) -> float:
        return self.ganesh + self.consensus + self.modules

    def breakdown(self) -> dict[str, float]:
        return {
            "ganesh": self.ganesh,
            "consensus": self.consensus,
            "modules": self.modules,
        }


def _project_steps(
    steps: list[TraceStep], p: int, rate: float, model: MachineModel
) -> float:
    """Stepwise + bulk projection of one task's steps on ``p`` ranks."""
    compute = 0.0
    comm = 0.0
    bulk: dict[str, list[np.ndarray]] = defaultdict(list)
    for step in steps:
        if step.phase in BULK_PHASES:
            bulk[step.phase].append(step.costs)
            comm += model.collective_time(step.words, p, step.n_collectives)
        else:
            compute += max_block_sum(step.costs, p)
            comm += model.collective_time(step.words, p, step.n_collectives)
    for parts in bulk.values():
        compute += max_block_sum(np.concatenate(parts), p)
    if math.isinf(rate):
        return comm
    return compute / rate + comm


def project_time(
    trace: WorkTrace,
    p: int,
    model: MachineModel = PHOENIX_LIKE,
    group_parallel_ganesh: bool = True,
    compute_scale: float = 1.0,
    comm_scale: float = 1.0,
    consensus_scale: float | None = None,
) -> ProjectedTime:
    """Simulated run-time on ``p`` ranks of the traced learning run.

    GaneSH runs are executed by disjoint rank groups when
    ``group_parallel_ganesh`` (Section 3.2.1): with ``G`` runs and ``p``
    ranks, ``min(G, p)`` groups of ``p // groups`` ranks process the runs in
    ``ceil(G / groups)`` waves, each wave costing the maximum of its runs.
    Consensus clustering executes sequentially on every rank (Section
    3.2.2), so its time is independent of ``p``.

    ``compute_scale`` / ``comm_scale`` support *paper-scale extrapolation*:
    when a full-size run is infeasible sequentially (exactly the situation
    of Section 5.2.2, where the authors extrapolate with the measured
    Theta(m^2) x O(n^2) growth law), the trace of a scaled-down run is
    replayed with its compute units multiplied by the work-growth ratio and
    its collective counts by the iteration-growth ratio.  Consensus
    clustering grows as O(G n^2) — a *different* law than the dominant
    tasks — so ``consensus_scale`` scales it separately (defaults to
    ``compute_scale`` for backward compatibility of same-shape replays).
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    if compute_scale <= 0 or comm_scale <= 0:
        raise ValueError("scales must be positive")
    if consensus_scale is not None and consensus_scale <= 0:
        raise ValueError("scales must be positive")

    ganesh_steps = [s for s in trace.steps if s.task == "ganesh"]
    module_steps = [s for s in trace.steps if s.task == "modules"]
    ganesh_rate = trace.rate("ganesh") / compute_scale
    module_rate = trace.rate("modules") / compute_scale
    if comm_scale != 1.0:
        model = MachineModel(tau=model.tau * comm_scale, mu=model.mu * comm_scale)

    if ganesh_steps:
        by_run: dict[int, list[TraceStep]] = defaultdict(list)
        for step in ganesh_steps:
            by_run[step.run if step.run is not None else 0].append(step)
        n_runs = max(len(by_run), trace.n_ganesh_runs)
        if group_parallel_ganesh and n_runs > 1:
            groups = min(n_runs, p)
            p_group = max(1, p // groups)
            waves = math.ceil(n_runs / groups)
            run_times = [
                _project_steps(steps, p_group, ganesh_rate, model)
                for steps in by_run.values()
            ]
            ganesh_time = waves * max(run_times)
        else:
            ganesh_time = sum(
                _project_steps(steps, p, ganesh_rate, model)
                for steps in by_run.values()
            )
    else:
        ganesh_time = 0.0

    modules_time = _project_steps(module_steps, p, module_rate, model)
    if consensus_scale is None:
        consensus_scale = compute_scale
    consensus_time = trace.times.get("consensus", 0.0) * consensus_scale

    return ProjectedTime(
        p=p, ganesh=ganesh_time, consensus=consensus_time, modules=modules_time
    )


def save_trace(trace: WorkTrace, path) -> None:
    """Persist a trace to an ``.npz`` file (benchmark re-run cache)."""
    import json
    from pathlib import Path

    path = Path(path)
    meta = {
        "times": trace.times,
        "n_ganesh_runs": trace.n_ganesh_runs,
        "worker_times": trace.worker_times,
        "domain_times": trace.domain_times,
        "worker_steals": trace.worker_steals,
        "worker_stolen_seconds": trace.worker_stolen_seconds,
        "domain_local_times": trace.domain_local_times,
        "domain_stolen_times": trace.domain_stolen_times,
        "topology": trace.topology,
        "kernel_counters": trace.kernel_counters,
        "node_times": trace.node_times,
        "node_transfer_bytes": trace.node_transfer_bytes,
        "node_transfer_seconds": trace.node_transfer_seconds,
        "node_steals": trace.node_steals,
        "calibration": trace.calibration,
        "steps": [
            {
                "phase": s.phase,
                "n_collectives": s.n_collectives,
                "words": s.words,
                "run": s.run,
            }
            for s in trace.steps
        ],
    }
    arrays = {f"costs_{i}": s.costs for i, s in enumerate(trace.steps)}
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)


def load_trace(path) -> WorkTrace:
    """Load a trace saved by :func:`save_trace`."""
    import json

    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        trace = WorkTrace()
        trace.times = {k: float(v) for k, v in meta["times"].items()}
        trace.n_ganesh_runs = int(meta["n_ganesh_runs"])
        trace.worker_times = {
            k: float(v) for k, v in meta.get("worker_times", {}).items()
        }
        trace.domain_times = {
            k: float(v) for k, v in meta.get("domain_times", {}).items()
        }
        trace.worker_steals = {
            k: int(v) for k, v in meta.get("worker_steals", {}).items()
        }
        trace.worker_stolen_seconds = {
            k: float(v) for k, v in meta.get("worker_stolen_seconds", {}).items()
        }
        trace.domain_local_times = {
            k: float(v) for k, v in meta.get("domain_local_times", {}).items()
        }
        trace.domain_stolen_times = {
            k: float(v) for k, v in meta.get("domain_stolen_times", {}).items()
        }
        trace.topology = meta.get("topology")
        trace.kernel_counters = meta.get("kernel_counters") or {}
        trace.node_times = {
            k: float(v) for k, v in meta.get("node_times", {}).items()
        }
        trace.node_transfer_bytes = {
            k: int(v) for k, v in meta.get("node_transfer_bytes", {}).items()
        }
        trace.node_transfer_seconds = {
            k: float(v) for k, v in meta.get("node_transfer_seconds", {}).items()
        }
        trace.node_steals = {
            k: int(v) for k, v in meta.get("node_steals", {}).items()
        }
        trace.calibration = meta.get("calibration")
        for i, step in enumerate(meta["steps"]):
            trace.steps.append(
                TraceStep(
                    phase=step["phase"],
                    costs=data[f"costs_{i}"],
                    n_collectives=step["n_collectives"],
                    words=step["words"],
                    run=step["run"],
                )
            )
    return trace


def scaling_curve(
    trace: WorkTrace,
    processor_counts: list[int],
    model: MachineModel = PHOENIX_LIKE,
) -> list[ProjectedTime]:
    """Projected run-times over a sweep of processor counts."""
    return [project_time(trace, p, model) for p in processor_counts]
