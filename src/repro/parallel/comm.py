"""A thread-based message-passing communicator (simulated MPI).

Implements the collective operations the paper's algorithms use — barrier,
bcast, reduce/all-reduce, gather/all-gather, scan and segmented scan — over
``p`` Python threads with barrier-synchronised shared slots.  The semantics
mirror MPI: every collective is entered by all ranks of the communicator
and returns consistent results on all of them; reductions are applied in
rank order so results are deterministic.

This is the layer that makes the SPMD parallel learner
(:mod:`repro.parallel.engine`) a *real* parallel program rather than a
bookkeeping exercise: ranks genuinely execute concurrently and only
exchange data through these collectives.  ``SerialComm`` provides the
degenerate one-rank communicator so the same SPMD code runs sequentially.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


class _Context:
    """Shared state of one communicator (one instance per thread group)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.lock = threading.Lock()
        self.subgroups: dict[tuple[int, Any], "_Context"] = {}
        #: point-to-point mailboxes, one FIFO per (source, dest) pair,
        #: created lazily under ``lock`` (see :meth:`ThreadComm.send`)
        self.mailboxes: dict[tuple[int, int], Any] = {}

    def mailbox(self, source: int, dest: int):
        """The FIFO carrying messages from ``source`` to ``dest``."""
        import queue

        key = (source, dest)
        with self.lock:
            box = self.mailboxes.get(key)
            if box is None:
                box = self.mailboxes[key] = queue.Queue()
        return box


class ThreadComm:
    """One rank's handle on a thread communicator."""

    def __init__(self, context: _Context, rank: int) -> None:
        self._ctx = context
        self.rank = rank
        self.size = context.size
        self._split_epoch = 0

    # -- point-to-point ----------------------------------------------------
    # MPI_Send / MPI_Recv over per-(source, dest) FIFOs.  Unlike the
    # collectives these involve only the two named ranks — the shard
    # tier's thread backend (:mod:`repro.parallel.sharding`) drives its
    # in-process "nodes" through exactly this pair, so the same
    # driver/node protocol runs on threads and on sockets.

    def send(self, value: Any, dest: int) -> None:
        """Post ``value`` to ``dest``'s mailbox (non-blocking)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        self._ctx.mailbox(self.rank, dest).put(value)

    def recv(self, source: int, timeout: float | None = None) -> Any:
        """Take the next message ``source`` sent to this rank.

        Blocks until a message arrives; with ``timeout`` (seconds) raises
        :class:`TimeoutError` instead of waiting forever — the shard
        driver uses that to notice a node thread that died without
        replying.
        """
        import queue

        if not 0 <= source < self.size:
            raise ValueError(f"source {source} out of range for size {self.size}")
        try:
            return self._ctx.mailbox(source, self.rank).get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"no message from rank {source} within {timeout} s"
            ) from None

    # -- basic ------------------------------------------------------------
    def barrier(self) -> None:
        self._ctx.barrier.wait()

    def bcast(self, value: Any, root: int = 0) -> Any:
        ctx = self._ctx
        if self.rank == root:
            ctx.slots[root] = value
        ctx.barrier.wait()
        out = ctx.slots[root]
        ctx.barrier.wait()
        return out

    def allgather(self, value: Any) -> list[Any]:
        ctx = self._ctx
        ctx.slots[self.rank] = value
        ctx.barrier.wait()
        out = list(ctx.slots)
        ctx.barrier.wait()
        return out

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        out = self.allgather(value)
        return out if self.rank == root else None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce in rank order (deterministic); default op is ``+``."""
        parts = self.allgather(value)
        if op is None:
            result = parts[0]
            for part in parts[1:]:
                result = result + part
            return result
        result = parts[0]
        for part in parts[1:]:
            result = op(result, part)
        return result

    def allreduce_max_with_index(self, value: float, payload: Any = None) -> tuple[float, int, Any]:
        """MPI's MAXLOC: the maximum value, the lowest rank holding it, and
        that rank's payload (used by Algorithm 4's tree-merge reduction)."""
        parts = self.allgather((value, self.rank, payload))
        best = max(parts, key=lambda item: (item[0], -item[1]))
        return best

    def exscan(self, value: Any) -> Any:
        """Exclusive prefix sum over ranks; rank 0 receives 0 (or None)."""
        parts = self.allgather(value)
        if self.rank == 0:
            return type(value)() if not isinstance(value, np.ndarray) else np.zeros_like(value)
        result = parts[0]
        for part in parts[1 : self.rank]:
            result = result + part
        return result

    def allgather_concat(self, array: np.ndarray) -> np.ndarray:
        """All-gather of per-rank arrays concatenated in rank order —
        MPI_Allgatherv for the block-distributed vectors of Algorithms 1-5."""
        parts = self.allgather(np.asarray(array))
        return np.concatenate(parts) if parts else np.zeros(0)

    # -- communicator splitting --------------------------------------------
    def split(self, color: Any) -> "ThreadComm":
        """MPI_Comm_split: ranks sharing ``color`` form a sub-communicator.

        Sub-ranks are assigned in parent-rank order.  Used to run the ``G``
        GaneSH runs on disjoint rank groups (Section 3.2.1).
        """
        ctx = self._ctx
        colors = self.allgather(color)
        members = [r for r, c in enumerate(colors) if c == color]
        epoch = self._split_epoch
        self._split_epoch += 1
        key = (epoch, color)
        with ctx.lock:
            if key not in ctx.subgroups:
                ctx.subgroups[key] = _Context(len(members))
            sub_ctx = ctx.subgroups[key]
        sub_rank = members.index(self.rank)
        ctx.barrier.wait()  # all ranks created/found their group
        return ThreadComm(sub_ctx, sub_rank)


class SerialComm:
    """The one-rank communicator: all collectives are identities."""

    rank = 0
    size = 1

    def barrier(self) -> None:
        pass

    def bcast(self, value: Any, root: int = 0) -> Any:
        return value

    def allgather(self, value: Any) -> list[Any]:
        return [value]

    def gather(self, value: Any, root: int = 0) -> list[Any]:
        return [value]

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        return value

    def allreduce_max_with_index(self, value: float, payload: Any = None) -> tuple[float, int, Any]:
        return (value, 0, payload)

    def exscan(self, value: Any) -> Any:
        if isinstance(value, np.ndarray):
            return np.zeros_like(value)
        return type(value)()

    def allgather_concat(self, array: np.ndarray) -> np.ndarray:
        return np.asarray(array)

    def split(self, color: Any) -> "SerialComm":
        return SerialComm()


@dataclass
class SpmdFailure(Exception):
    """One or more SPMD ranks raised; carries every rank's exception."""

    errors: list[tuple[int, BaseException]]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "; ".join(f"rank {r}: {e!r}" for r, e in self.errors)


def run_spmd(p: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``p`` concurrent ranks.

    Returns the per-rank return values in rank order.  If any rank raises,
    the others are released (a broken barrier) and :class:`SpmdFailure`
    reports every failing rank.
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    if p == 1:
        return [fn(SerialComm(), *args, **kwargs)]

    context = _Context(p)
    results: list[Any] = [None] * p
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = ThreadComm(context, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            with errors_lock:
                errors.append((rank, exc))
            context.barrier.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(p)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        errors.sort(key=lambda item: item[0])
        raise SpmdFailure(errors)
    return results
