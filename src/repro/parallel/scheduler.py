"""Work-partitioning schemes and the load-imbalance study (Section 5.3.1).

The paper contrasts three ways of distributing the candidate-split
computations (Section 3.2.3):

* coarse assignment of whole modules / trees / nodes to processors — simple
  but "sub-optimal because the total number of splits assigned to different
  processors will vary significantly";
* the adopted **flat** scheme — the global candidate list is partitioned
  into ``p`` equal-count contiguous chunks;
* (future work, Section 6) **dynamic** load balancing, modelled here as an
  LPT-style greedy schedule over fine-grained node tasks.

Given the per-split cost vector from a work trace, each scheme yields a
per-rank work distribution from which the makespan and the paper's
imbalance metric ``(max - mean) / mean`` are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.costmodel import block_sums, resolve_remote_penalty


@dataclass(frozen=True)
class ScheduleResult:
    """Per-rank work of one partitioning scheme."""

    scheme: str
    p: int
    per_rank: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.per_rank.max()) if self.per_rank.size else 0.0

    @property
    def mean(self) -> float:
        return float(self.per_rank.mean()) if self.per_rank.size else 0.0

    @property
    def imbalance(self) -> float:
        mean = self.mean
        if mean == 0.0:
            return 0.0
        return (self.makespan - mean) / mean


def flat_schedule(split_costs: np.ndarray, p: int) -> ScheduleResult:
    """The paper's scheme: equal-count contiguous blocks of the flat list."""
    return ScheduleResult("flat", p, np.asarray(block_sums(split_costs, p)))


def grouped_schedule(
    split_costs: np.ndarray, group_sizes: np.ndarray, p: int, scheme: str = "per-node"
) -> ScheduleResult:
    """Coarse scheme: whole groups (nodes / trees / modules) round-robined.

    ``group_sizes`` gives the number of consecutive splits per group; group
    ``i`` goes to rank ``i % p`` — the "simple parallelization scheme" the
    paper rejects for its load imbalance.
    """
    split_costs = np.asarray(split_costs, dtype=np.float64)
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.sum() != split_costs.size:
        raise ValueError("group sizes must cover the cost vector exactly")
    per_rank = np.zeros(p, dtype=np.float64)
    start = 0
    for i, size in enumerate(group_sizes):
        per_rank[i % p] += split_costs[start : start + size].sum()
        start += size
    return ScheduleResult(scheme, p, per_rank)


def lpt_schedule(
    split_costs: np.ndarray, group_sizes: np.ndarray, p: int
) -> ScheduleResult:
    """Longest-processing-time greedy over groups — the dynamic-balancing
    upper bound the paper's future work targets.

    Whole groups (the natural task granularity: one node's splits) are
    assigned largest-first to the least-loaded rank.
    """
    split_costs = np.asarray(split_costs, dtype=np.float64)
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.sum() != split_costs.size:
        raise ValueError("group sizes must cover the cost vector exactly")
    bounds = np.concatenate([[0], np.cumsum(group_sizes)])
    group_costs = np.array(
        [split_costs[bounds[i] : bounds[i + 1]].sum() for i in range(group_sizes.size)]
    )
    per_rank = np.zeros(p, dtype=np.float64)
    for cost in sorted(group_costs, reverse=True):
        per_rank[np.argmin(per_rank)] += cost
    return ScheduleResult("lpt", p, per_rank)


def chunked_lpt_schedule(
    split_costs: np.ndarray, p: int, chunks_per_rank: int = 8
) -> ScheduleResult:
    """LPT over fine-grained equal-count chunks of the flat list.

    Models the dynamic load balancing the paper proposes in Section 6: the
    flat candidate-split list is cut into ``chunks_per_rank * p`` contiguous
    chunks (the natural work-stealing granule) and chunks are assigned
    largest-first to the least-loaded rank.  Unlike :func:`lpt_schedule`,
    no node is indivisible, so a single huge node cannot dominate the
    makespan.
    """
    split_costs = np.asarray(split_costs, dtype=np.float64)
    from repro.parallel.costmodel import block_sums

    chunk_costs = np.asarray(block_sums(split_costs, max(1, chunks_per_rank * p)))
    per_rank = np.zeros(p, dtype=np.float64)
    for cost in sorted(chunk_costs, reverse=True):
        per_rank[np.argmin(per_rank)] += cost
    return ScheduleResult("chunked-lpt", p, per_rank)


def placement_lpt_schedule(
    split_costs: np.ndarray,
    group_sizes: np.ndarray,
    placement,
    remote_penalty: float | None = None,
) -> ScheduleResult:
    """Placement-aware LPT: greedy over groups with NUMA locality costs.

    Models the executor's topology-aware dispatch: ``placement`` is a
    :class:`repro.parallel.topology.Placement`, each group's *home* domain
    is the domain whose contiguous block of the flat split range contains
    the group's midpoint (the region whose shared-memory pages that domain
    first-touched), and assigning a group to a rank outside its home
    domain costs ``remote_penalty`` times its work (remote DRAM reads).
    ``None`` (the default) resolves the charge through
    :func:`repro.parallel.costmodel.resolve_remote_penalty`: the
    bandwidth-derived value of a calibrated machine model when the shard
    tier has installed one, else the 1.3 fallback.
    Largest-first to the rank with the lowest *effective* finish time —
    degenerate to plain :func:`lpt_schedule` on a flat single-domain
    placement (every assignment is local).  Analysis-only, like the other
    schemes: the executor's real dispatch never changes results, this
    model just predicts what placement buys.
    """
    split_costs = np.asarray(split_costs, dtype=np.float64)
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.sum() != split_costs.size:
        raise ValueError("group sizes must cover the cost vector exactly")
    remote_penalty = resolve_remote_penalty(remote_penalty)
    if remote_penalty < 1.0:
        raise ValueError("remote_penalty must be at least 1")
    p = placement.n_workers
    total = int(split_costs.size)
    domain_blocks = placement.domain_blocks(total)
    bounds = np.concatenate([[0], np.cumsum(group_sizes)])
    group_costs = np.array(
        [split_costs[bounds[i] : bounds[i + 1]].sum() for i in range(group_sizes.size)]
    )

    def home_domain(group_index: int) -> int:
        mid = (bounds[group_index] + bounds[group_index + 1]) // 2
        for domain, (lo, hi) in enumerate(domain_blocks):
            if lo <= mid < hi:
                return domain
        return 0

    homes = np.array([home_domain(i) for i in range(group_sizes.size)])
    rank_domains = np.array(
        [placement.domain_of(rank) for rank in range(p)], dtype=np.int64
    )
    per_rank = np.zeros(p, dtype=np.float64)
    order = np.argsort(-group_costs, kind="stable")
    for g in order:
        effective = per_rank + np.where(
            rank_domains == homes[g], group_costs[g], group_costs[g] * remote_penalty
        )
        rank = int(np.argmin(effective))
        per_rank[rank] = effective[rank]
    return ScheduleResult("placement-lpt", p, per_rank)


def placement_steal_schedule(
    split_costs: np.ndarray,
    group_sizes: np.ndarray,
    placement,
    remote_penalty: float | None = None,
) -> ScheduleResult:
    """Domain-affine queues with idle stealing: a fake-clock simulation.

    Models the executor's steal dispatch exactly: every group lands on its
    *home* domain's LPT-ordered queue (home = the domain whose contiguous
    block of the flat split range contains the group's midpoint, as in
    :func:`placement_lpt_schedule`), and a deterministic event clock runs
    the ranks — whenever a rank falls idle it pops the largest remaining
    group of its home queue, or, when that queue is empty, *steals* the
    largest group from the most-loaded foreign domain at
    ``remote_penalty`` times its cost (remote DRAM reads).  Work
    conserving: no rank idles while any queue holds work, so ``per_rank``
    holds each rank's effective busy time and the makespan is the
    simulated finish time.

    On a single-domain placement no steal ever happens and the event clock
    reduces to greedy LPT list scheduling — bit-identical rank loads to
    :func:`lpt_schedule`.  Ties (equal finish times, equally loaded steal
    victims) break on the lowest rank / domain index, so the simulation is
    deterministic for any input.  Analysis-only, like the other schemes.

    ``remote_penalty=None`` resolves through
    :func:`repro.parallel.costmodel.resolve_remote_penalty` — the
    bandwidth-derived charge of a calibrated machine model when one is
    installed, else the 1.3 fallback — so this model and
    :func:`placement_lpt_schedule` always charge steals identically.
    """
    import heapq

    split_costs = np.asarray(split_costs, dtype=np.float64)
    group_sizes = np.asarray(group_sizes, dtype=np.int64)
    if group_sizes.sum() != split_costs.size:
        raise ValueError("group sizes must cover the cost vector exactly")
    remote_penalty = resolve_remote_penalty(remote_penalty)
    if remote_penalty < 1.0:
        raise ValueError("remote_penalty must be at least 1")
    p = placement.n_workers
    n_domains = placement.topology.n_domains
    total = int(split_costs.size)
    domain_blocks = placement.domain_blocks(total)
    bounds = np.concatenate([[0], np.cumsum(group_sizes)])
    group_costs = np.array(
        [split_costs[bounds[i] : bounds[i + 1]].sum() for i in range(group_sizes.size)]
    )

    def home_domain(group_index: int) -> int:
        mid = (bounds[group_index] + bounds[group_index + 1]) // 2
        for domain, (lo, hi) in enumerate(domain_blocks):
            if lo <= mid < hi:
                return domain
        return 0

    # Per-domain queues in LPT order (largest first); pop from the front.
    queues: list[list[float]] = [[] for _ in range(n_domains)]
    for g in np.argsort(-group_costs, kind="stable"):
        queues[home_domain(int(g))].append(float(group_costs[g]))
    remaining = [sum(q) for q in queues]

    rank_domains = [placement.domain_of(rank) for rank in range(p)]
    per_rank = np.zeros(p, dtype=np.float64)
    # Event clock: (finish_time, rank); the earliest-free rank acts next.
    clock = [(0.0, rank) for rank in range(p)]
    heapq.heapify(clock)
    while any(queues):
        finish, rank = heapq.heappop(clock)
        home = rank_domains[rank]
        if queues[home]:
            domain, penalty = home, 1.0
        else:
            # Steal from the most-loaded foreign domain (lowest index on
            # ties); only domains with queued work are candidates.
            domain = max(
                (d for d in range(n_domains) if queues[d]),
                key=lambda d: (remaining[d], -d),
            )
            penalty = remote_penalty
        cost = queues[domain].pop(0)
        remaining[domain] -= cost
        per_rank[rank] = finish + cost * penalty
        heapq.heappush(clock, (per_rank[rank], rank))
    return ScheduleResult("placement-steal", p, per_rank)


def imbalance_sweep(
    split_costs: np.ndarray, processor_counts: list[int]
) -> dict[int, float]:
    """The Section 5.3.1 measurement: flat-scheme imbalance per ``p``."""
    return {p: flat_schedule(split_costs, p).imbalance for p in processor_counts}
