"""Hardware topology probing and worker placement.

The paper's scaling results (Section 5, up to 4096 cores) rest on keeping
every core's working set local and busy.  The persistent executor
historically ignored machine topology on both axes: workers landed on
whatever core the OS picked, and the split-scoring kernel chunked its
evaluation temporaries to a fixed 2^18 elements whatever the cache
hierarchy looked like.  This module closes both gaps:

* :class:`MachineTopology` — cores, NUMA domains and L2/L3 capacities,
  probed from Linux sysfs (``/sys/devices/system/node`` and
  ``/sys/devices/system/cpu/cpu*/cache``) and clamped to the process
  affinity mask.  When sysfs is unavailable (non-Linux, restricted
  containers) the probe **falls back to a flat model**: a single NUMA
  domain holding every schedulable core with unknown cache sizes — which
  reproduces the pre-topology behaviour exactly (no pinning, the fixed
  2^18-element kernel chunk).
* :class:`Placement` — the per-worker plan derived from a topology:
  which NUMA domain each executor worker belongs to, the CPU set it is
  pinned to (``os.sched_setaffinity``), and the contiguous block of any
  flat work range its domain "owns" so shared-memory pages and static
  split chunks line up with the workers touching them.
* :func:`chunk_elements_for` — sizes the lazy split kernel's
  ``max_chunk_elements`` from the probed L2/L3 capacity instead of the
  fixed default.

**Topology never changes results.**  Placement decides *where* work runs
and *in what size* the kernel chunks its temporaries; every score is
computed row-independently from named, index-addressed random streams, so
pinning, page placement and chunk sizing are invisible to the learned
network (the golden and equivalence suites enforce this bit-for-bit, and
``tests/test_topology.py`` pins the flat-vs-auto identity directly).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path

#: fixed kernel chunk size used when cache capacities are unknown
#: (mirrors :data:`repro.scoring.kernel.DEFAULT_CHUNK_ELEMENTS`)
FLAT_CHUNK_ELEMENTS = 1 << 18

#: clamp range for the probed kernel chunk size: never below 16 Ki
#: elements (chunking overhead dominates) nor above 1 Mi elements
#: (8 MiB temporaries defeat the kernel's memory contract)
MIN_CHUNK_ELEMENTS = 1 << 14
MAX_CHUNK_ELEMENTS = 1 << 20


def available_cpus() -> tuple[int, ...]:
    """The CPU ids this process may run on (the affinity mask).

    Containerized CI typically grants fewer cores than ``os.cpu_count``
    reports for the host; every topology decision starts from the mask so
    the executor never plans for cores it cannot schedule onto.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return tuple(sorted(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return tuple(range(os.cpu_count() or 1))


@dataclass(frozen=True)
class MachineTopology:
    """Cores, NUMA domains and cache capacities of one machine.

    ``numa_domains`` lists the schedulable CPU ids per NUMA node (only
    nodes that own at least one schedulable CPU appear).  ``l2_bytes`` /
    ``l3_bytes`` are per-core-visible capacities of the unified caches;
    ``0`` means unknown (the flat fallback), in which case every consumer
    keeps its pre-topology default.

    ``domain_l2_bytes`` / ``domain_l3_bytes`` optionally carry *per-domain*
    cache capacities (one entry per NUMA domain) for heterogeneous
    machines — big.LITTLE or multi-die parts where each domain sees its
    own L2/L3.  ``None`` means homogeneous: every domain falls back to
    the machine-wide ``l2_bytes`` / ``l3_bytes``.
    """

    numa_domains: tuple[tuple[int, ...], ...]
    l2_bytes: int = 0
    l3_bytes: int = 0
    source: str = "flat"
    domain_l2_bytes: tuple[int, ...] | None = None
    domain_l3_bytes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.numa_domains or not any(self.numa_domains):
            raise ValueError("topology needs at least one non-empty domain")
        if self.l2_bytes < 0 or self.l3_bytes < 0:
            raise ValueError("cache sizes must be non-negative")
        if self.source not in ("sysfs", "flat"):
            raise ValueError("source must be 'sysfs' or 'flat'")
        for per_domain in (self.domain_l2_bytes, self.domain_l3_bytes):
            if per_domain is None:
                continue
            if len(per_domain) != len(self.numa_domains):
                raise ValueError("per-domain cache list must match domain count")
            if any(size < 0 for size in per_domain):
                raise ValueError("cache sizes must be non-negative")

    @property
    def n_domains(self) -> int:
        return len(self.numa_domains)

    @property
    def n_cores(self) -> int:
        return sum(len(d) for d in self.numa_domains)

    def domain_caches(self, domain: int) -> tuple[int, int]:
        """``(l2_bytes, l3_bytes)`` visible from one NUMA domain's cores.

        Falls back to the machine-wide capacities when no per-domain
        probe results are recorded (the homogeneous common case).
        """
        l2 = (
            self.domain_l2_bytes[domain]
            if self.domain_l2_bytes is not None
            else self.l2_bytes
        )
        l3 = (
            self.domain_l3_bytes[domain]
            if self.domain_l3_bytes is not None
            else self.l3_bytes
        )
        return l2, l3

    def describe(self) -> dict:
        """A JSON-serializable summary (recorded into work traces)."""
        return {
            "source": self.source,
            "n_cores": self.n_cores,
            "n_domains": self.n_domains,
            "domain_sizes": [len(d) for d in self.numa_domains],
            "l2_bytes": self.l2_bytes,
            "l3_bytes": self.l3_bytes,
            "domain_l2_bytes": (
                list(self.domain_l2_bytes)
                if self.domain_l2_bytes is not None
                else None
            ),
            "domain_l3_bytes": (
                list(self.domain_l3_bytes)
                if self.domain_l3_bytes is not None
                else None
            ),
        }


def flat_topology(n_cores: int | None = None) -> MachineTopology:
    """The documented fallback: one domain, every core, unknown caches.

    Deterministic for a fixed affinity mask — probing twice yields equal
    topologies — and behaviour-preserving: no worker pinning, no
    domain-interleaved page writes, the fixed 2^18-element kernel chunk.
    """
    cpus = tuple(range(n_cores)) if n_cores is not None else available_cpus()
    return MachineTopology(numa_domains=(cpus,), source="flat")


def _parse_cpulist(text: str) -> tuple[int, ...]:
    """Parse sysfs cpulist syntax: ``"0-3,8,10-11"`` -> cpu ids."""
    cpus: list[int] = []
    for part in text.strip().split(","):
        if not part:
            continue
        if "-" in part:
            lo, hi = part.split("-", 1)
            cpus.extend(range(int(lo), int(hi) + 1))
        else:
            cpus.append(int(part))
    return tuple(cpus)


def _parse_cache_size(text: str) -> int:
    """Parse sysfs cache size syntax: ``"2048K"`` / ``"32M"`` -> bytes."""
    match = re.fullmatch(r"(\d+)\s*([KMG]?)", text.strip(), re.IGNORECASE)
    if match is None:
        raise ValueError(f"unparseable cache size {text!r}")
    value = int(match.group(1))
    unit = match.group(2).upper()
    return value * {"": 1, "K": 1 << 10, "M": 1 << 20, "G": 1 << 30}[unit]


def _probe_caches(sysfs: Path, cpu: int) -> tuple[int, int]:
    """Per-level unified/data cache capacities visible from one CPU."""
    sizes: dict[int, int] = {}
    cache_dir = sysfs / "devices" / "system" / "cpu" / f"cpu{cpu}" / "cache"
    for index in sorted(cache_dir.glob("index*")):
        try:
            level = int((index / "level").read_text())
            ctype = (index / "type").read_text().strip()
            size = _parse_cache_size((index / "size").read_text())
        except (OSError, ValueError):
            continue
        if ctype not in ("Unified", "Data"):
            continue
        sizes[level] = max(sizes.get(level, 0), size)
    return sizes.get(2, 0), sizes.get(3, 0)


def probe_topology(sysfs_root: str | os.PathLike = "/sys") -> MachineTopology:
    """Probe NUMA domains and caches from sysfs, or fall back flat.

    Node CPU lists are intersected with the affinity mask; nodes left
    empty by the intersection are dropped (a container pinned to one
    socket sees a single domain even on a two-socket host).  Any missing
    or unparseable sysfs entry degrades to :func:`flat_topology` rather
    than guessing — the fallback is behaviour-preserving by construction.
    """
    sysfs = Path(sysfs_root)
    allowed = set(available_cpus())
    try:
        node_dirs = sorted(
            (sysfs / "devices" / "system" / "node").glob("node[0-9]*"),
            key=lambda p: int(p.name[4:]),
        )
        domains = []
        for node in node_dirs:
            cpus = tuple(
                c for c in _parse_cpulist((node / "cpulist").read_text())
                if c in allowed
            )
            if cpus:
                domains.append(cpus)
        if not domains:
            return flat_topology()
        # Probe caches from each domain's first CPU: on heterogeneous
        # (big.LITTLE / multi-die) parts the domains see different L2/L3.
        per_domain = [_probe_caches(sysfs, cpus[0]) for cpus in domains]
        l2, l3 = per_domain[0]
        return MachineTopology(
            numa_domains=tuple(domains),
            l2_bytes=l2,
            l3_bytes=l3,
            source="sysfs",
            domain_l2_bytes=tuple(c[0] for c in per_domain),
            domain_l3_bytes=tuple(c[1] for c in per_domain),
        )
    except (OSError, ValueError):
        return flat_topology()


def resolve_topology(spec) -> MachineTopology:
    """A :class:`MachineTopology` from a config override.

    ``"auto"`` probes the machine, ``"flat"`` forces the fallback model,
    and an explicit :class:`MachineTopology` passes through unchanged.
    """
    if isinstance(spec, MachineTopology):
        return spec
    if spec == "auto":
        return probe_topology()
    if spec == "flat":
        return flat_topology()
    raise ValueError(f"topology must be 'auto', 'flat' or a MachineTopology, got {spec!r}")


def chunk_elements_for(topology: MachineTopology, domain: int | None = None) -> int:
    """The lazy split kernel's chunk size for this machine (or one domain).

    One evaluation chunk is ``chunk_rows * n_obs`` float64 elements that
    are written once and immediately row-summed; keeping the chunk inside
    half the L2 (the other half holds the value slice and score table)
    keeps the hot loop out of L3 traffic.  The shared L3 caps the sum of
    all cores' chunks.  Unknown caches (the flat fallback) keep the fixed
    pre-topology default, and the result is clamped to
    ``[MIN_CHUNK_ELEMENTS, MAX_CHUNK_ELEMENTS]`` and rounded down to a
    power of two for stable, comparable measurements.

    With ``domain`` given, the budget comes from that NUMA domain's own
    cache capacities and the L3 share is divided among *that domain's*
    cores only — each socket's L3 is shared by its own cores, not the
    whole machine.  On a single-domain topology (flat fallback included)
    the per-domain result is identical to the machine-wide one, so flat
    machines keep the exact pre-change chunk size.
    """
    if domain is None or topology.n_domains <= 1:
        l2, l3 = topology.l2_bytes, topology.l3_bytes
        sharers = topology.n_cores
    else:
        l2, l3 = topology.domain_caches(domain)
        sharers = len(topology.numa_domains[domain])
    if l2 <= 0:
        return FLAT_CHUNK_ELEMENTS
    budget = l2 // 2
    if l3 > 0:
        budget = min(budget, l3 // max(1, sharers))
    elements = max(1, budget // 8)  # float64
    elements = min(max(elements, MIN_CHUNK_ELEMENTS), MAX_CHUNK_ELEMENTS)
    return 1 << (elements.bit_length() - 1)


@dataclass(frozen=True)
class Placement:
    """The worker->domain plan of one executor.

    ``worker_domains[w]`` is the index (into ``topology.numa_domains``) of
    the NUMA domain worker ``w`` is pinned to; workers are distributed
    over domains in contiguous blocks proportional to each domain's core
    count, so every worker appears in the plan exactly once and
    same-domain workers own adjacent blocks of any statically partitioned
    flat work range.
    """

    topology: MachineTopology
    worker_domains: tuple[int, ...]

    @property
    def n_workers(self) -> int:
        return len(self.worker_domains)

    @property
    def is_flat(self) -> bool:
        return self.topology.n_domains <= 1

    def worker_cpus(self, worker_index: int) -> tuple[int, ...]:
        """The CPU set worker ``worker_index`` is pinned to (its domain).

        Replacement workers spawned after a crash carry indices past
        ``n_workers``; they wrap onto the original plan.
        """
        domain = self.worker_domains[worker_index % self.n_workers]
        return self.topology.numa_domains[domain]

    def domain_of(self, worker_index: int) -> int:
        return self.worker_domains[worker_index % self.n_workers]

    def domain_blocks(self, total: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` block of a flat range per NUMA domain.

        Blocks are proportional to each domain's worker count, so the
        rows/splits a domain's workers process sit in one contiguous
        region — the region whose shared-memory pages
        :class:`repro.parallel.executor.SharedMatrix` first-touches from
        that domain.
        """
        from repro.parallel.costmodel import block_bounds

        counts = [0] * self.topology.n_domains
        for domain in self.worker_domains:
            counts[domain] += 1
        bounds = block_bounds(total, max(1, sum(counts)))
        # Proportional split along worker boundaries: domain d owns the
        # union of its workers' equal-count blocks, which are contiguous
        # because workers are assigned to domains in contiguous runs.
        blocks: list[tuple[int, int]] = []
        worker = 0
        for count in counts:
            if count == 0:
                pos = bounds[worker - 1][1] if worker else 0
                blocks.append((pos, pos))
            else:
                blocks.append((bounds[worker][0], bounds[worker + count - 1][1]))
                worker += count
        return blocks

    def chunk_bounds(self, total: int, chunks_per_worker: int = 1) -> list[tuple[int, int]]:
        """Per-worker (or finer) ``[lo, hi)`` bounds nested in domain blocks.

        The placement-aware counterpart of
        :func:`repro.parallel.costmodel.block_bounds`: each domain's block
        is subdivided equally among its workers, so worker ``w``'s static
        split chunk lies inside the region its domain first-touched.  With
        a single domain this degenerates to plain ``block_bounds``.
        """
        from repro.parallel.costmodel import block_bounds

        counts = [0] * self.topology.n_domains
        for domain in self.worker_domains:
            counts[domain] += 1
        out: list[tuple[int, int]] = []
        for (lo, hi), count in zip(self.domain_blocks(total), counts):
            if count == 0 or lo >= hi:
                continue
            for a, b in block_bounds(hi - lo, count * chunks_per_worker):
                out.append((lo + a, lo + b))
        return out

    def domain_chunk_elements(self) -> tuple[int, ...]:
        """Kernel chunk size per NUMA domain (see :func:`chunk_elements_for`).

        Shipped to workers through the executor's initializer so each
        pinned worker sizes its :class:`repro.scoring.kernel.LazySplitKernel`
        temporaries for *its own* domain's caches.
        """
        return tuple(
            chunk_elements_for(self.topology, domain)
            for domain in range(self.topology.n_domains)
        )

    def chunk_elements(self, worker_index: int) -> int:
        """The kernel chunk size of one worker (its domain's)."""
        return chunk_elements_for(self.topology, self.domain_of(worker_index))

    def spread_domains(self, n_items: int) -> list[int]:
        """Home domains for ``n_items`` queue items with no natural home.

        Cycles through the worker->domain plan so each domain's affine
        queue receives items in proportion to its worker count — the
        balanced default for workloads (e.g. the G GaneSH chains) whose
        items touch the whole matrix rather than a contiguous row block.
        """
        return [self.domain_of(i) for i in range(n_items)]

    def describe(self) -> dict:
        return {
            "topology": self.topology.describe(),
            "worker_domains": list(self.worker_domains),
            "domain_chunk_elements": list(self.domain_chunk_elements()),
        }


def plan_placement(topology: MachineTopology, n_workers: int) -> Placement:
    """Assign ``n_workers`` executor workers to NUMA domains.

    Workers are laid out in contiguous runs over the domains, each run
    sized proportionally to the domain's core count (the balanced-block
    split of :func:`repro.parallel.costmodel.block_bounds` applied to
    worker indices).  Every worker is assigned exactly one domain.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    domains = topology.numa_domains
    if len(domains) == 1:
        return Placement(topology=topology, worker_domains=(0,) * n_workers)
    total_cores = topology.n_cores
    # Largest-remainder apportionment of workers to domains by core share.
    shares = [len(d) * n_workers / total_cores for d in domains]
    counts = [int(s) for s in shares]
    remainders = sorted(
        range(len(domains)), key=lambda i: (shares[i] - counts[i], len(domains[i])),
        reverse=True,
    )
    short = n_workers - sum(counts)
    for i in remainders[:short]:
        counts[i] += 1
    # Every domain with zero workers stays empty unless workers outnumber
    # assignments (can't happen after apportionment: sum == n_workers).
    worker_domains: list[int] = []
    for domain_index, count in enumerate(counts):
        worker_domains.extend([domain_index] * count)
    return Placement(topology=topology, worker_domains=tuple(worker_domains))


def pin_to(cpus: tuple[int, ...]) -> bool:
    """Best-effort affinity pin of the calling process; False if refused.

    Pinning is a pure locality hint — a kernel or platform that refuses
    (no ``sched_setaffinity``, masked CPUs revoked by the cgroup) leaves
    the worker unpinned and the output unchanged.
    """
    setaffinity = getattr(os, "sched_setaffinity", None)
    if setaffinity is None or not cpus:
        return False
    try:
        setaffinity(0, set(cpus))
        return True
    except OSError:
        return False
