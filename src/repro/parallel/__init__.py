"""The simulated distributed-memory machine and parallel learner.

mpi4py is not available in this environment (see DESIGN.md), so the paper's
MPI implementation is reproduced with three cooperating layers:

* :mod:`repro.parallel.comm` — a thread-based message-passing communicator
  that really executes ``p`` SPMD ranks with barrier-synchronised
  collectives (bcast, all-reduce, all-gather, scan, segmented scan).
* :mod:`repro.parallel.engine` — the SPMD parallel learner implementing
  Algorithms 1-6 against that communicator: replicated state, block-
  partitioned score computations, distributed sampling oracles.  Its output
  is bit-identical to the sequential learner for every ``p`` — the paper's
  central consistency property.
* :mod:`repro.parallel.trace` + :mod:`repro.parallel.costmodel` — per-item
  work traces recorded during a (sequential) run, projected to simulated
  run-times ``T_p`` for arbitrary ``p`` (up to the paper's 4096) under a
  calibrated compute rate and a ``(tau + mu * words) * log2(p)`` collective
  model.  This is what regenerates the strong-scaling figures.
* :mod:`repro.parallel.pool` — a multiprocessing backend that fans the
  dominant split-scoring phase out across local cores for real wall-clock
  speedups (a fresh pool per scoring call).
* :mod:`repro.parallel.executor` — the persistent task-pool executor for
  Tasks 1 and 3: the expression matrix lives in shared memory, one pool
  survives the whole ``learn`` invocation, the G GaneSH chains run
  concurrently, and whole modules are learned concurrently
  (largest-first) with a fine-grained split-task fallback.
* :mod:`repro.parallel.topology` — the machine model behind the executor's
  placement: NUMA domains and cache sizes probed from sysfs (flat
  single-domain fallback), worker pinning, first-touch page placement and
  cache-derived kernel chunk sizing.  Placement never changes results.
"""

from repro.parallel.comm import SerialComm, ThreadComm, run_spmd
from repro.parallel.costmodel import MachineModel
from repro.parallel.engine import ParallelLearner
from repro.parallel.topology import (
    MachineTopology,
    Placement,
    flat_topology,
    plan_placement,
    probe_topology,
)
from repro.parallel.trace import WorkTrace, project_time

__all__ = [
    "ThreadComm",
    "SerialComm",
    "run_spmd",
    "MachineModel",
    "MachineTopology",
    "Placement",
    "flat_topology",
    "plan_placement",
    "probe_topology",
    "WorkTrace",
    "project_time",
    "ParallelLearner",
    "ModuleExecutor",
    "TaskPoolExecutor",
    "WorkerCrashedError",
]


def __getattr__(name: str):
    # Imported lazily: executor pulls in core.learner, which would make
    # ``import repro.parallel`` eagerly import most of the package.
    if name in ("ModuleExecutor", "TaskPoolExecutor", "WorkerCrashedError"):
        from repro.parallel import executor

        return getattr(executor, name)
    raise AttributeError(name)
