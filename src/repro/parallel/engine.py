"""SPMD parallel module-network learner (Algorithms 1-6).

Runs the full Lemon-Tree pipeline as a genuine SPMD program over a
communicator from :mod:`repro.parallel.comm`: every rank holds the complete
data set and a replicated copy of the clustering state (exactly the paper's
data distribution, Section 5.3), score computations are block-partitioned
across ranks, and ranks only exchange data through collectives.

The engine's defining property — inherited from the paper (Section 3) — is
**consistency**: for any processor count ``p`` the learned network is
bit-identical to the sequential :class:`repro.core.learner.LemonTreeLearner`
with the same seed.  Three mechanisms deliver it:

* replicated random streams advanced in lockstep on every rank
  (Section 4.2), so the Select-Unif-Rand / Select-Wtd-Rand oracles agree
  without communicating random bits;
* index-addressed randomness for candidate splits, so a split's sampling
  chain is the same no matter which rank owns its block;
* the gather-based weighted-selection oracle
  (:func:`repro.parallel.primitives.select_wtd_rand_gather`), whose
  floating-point behaviour matches the sequential ``cumsum`` exactly.

Per-rank work is accounted in the same analytic units the trace projection
uses, so the engine's measured imbalance cross-validates the projected one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.consensus import consensus_clusters
from repro.core.config import LearnerConfig
from repro.datatypes import ExpressionMatrix, Module, ModuleNetwork
from repro.ganesh.state import CoClusterState, ObsClustering, _compact
from repro.parallel.comm import run_spmd
from repro.parallel.costmodel import block_range
from repro.parallel.primitives import select_unif_rand, select_wtd_rand_gather
from repro.rng.streams import SCORE_QUANTUM, GibbsRandom, IndexedStream, make_stream
from repro.scoring.split_score import SplitScorer
from repro.scoring.suffstats import SuffStats
from repro.datatypes import RegressionTree, TreeNode
from repro.trees.hierarchy import leaf_order
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import NodeSplitScores, node_kernel, select_node_splits


@dataclass
class ParallelLearnResult:
    """Outcome of one SPMD run."""

    network: ModuleNetwork
    #: analytic work units executed per rank (imbalance cross-check)
    work_per_rank: np.ndarray
    stats: dict = field(default_factory=dict)


class _RankWork:
    """Per-rank analytic work accumulator."""

    __slots__ = ("units",)

    def __init__(self) -> None:
        self.units = 0.0

    def add(self, units: float) -> None:
        self.units += float(units)


def p_reassign_obs_sweep(
    comm, oc: ObsClustering, block: np.ndarray, rng, work: _RankWork
) -> None:
    """Parallel observation reassignment (Algorithm 2, lines 1-11).

    Shared by the parallel Lemon-Tree engine and the parallel GENOMICA
    extension: every rank scores its block of candidate clusters, the
    gather-based weighted oracle picks the move, all ranks apply it to
    their replicated clustering.
    """
    n_members, m = block.shape
    for _ in range(m):
        obs = select_unif_rand(rng, m)
        column = block[:, obs]
        k = oc.n_clusters + 1
        lo, hi = block_range(k, comm.size, comm.rank)
        local = oc.move_obs_scores(obs, column, (lo, hi))
        work.add((hi - lo) * (n_members + 1))
        choice = select_wtd_rand_gather(comm, rng, local)
        oc.move_obs(obs, choice, column)


def p_merge_obs_sweep(comm, oc: ObsClustering, rng, work: _RankWork) -> None:
    """Parallel observation-cluster merging (Algorithm 2, lines 12-20)."""
    cid = 0
    while cid < oc.n_clusters:
        lo, hi = block_range(oc.n_clusters, comm.size, comm.rank)
        local = oc.merge_obs_scores(cid, (lo, hi))
        work.add(hi - lo)
        choice = select_wtd_rand_gather(comm, rng, local)
        if choice == cid:
            cid += 1
        else:
            oc.merge_obs(cid, choice)


class ParallelLearner:
    """The distributed-memory learner."""

    def __init__(self, config: LearnerConfig | None = None) -> None:
        self.config = config or LearnerConfig()

    # -- public API ---------------------------------------------------------
    def learn(self, matrix: ExpressionMatrix, seed: int, p: int) -> ParallelLearnResult:
        """Learn with ``p`` concurrent SPMD ranks (threads)."""
        rank_results = run_spmd(p, self._rank_main, matrix, seed)
        networks = [net for net, _work in rank_results]
        works = np.array([work for _net, work in rank_results])
        # Replicated state must agree everywhere — a hard invariant.
        for rank, net in enumerate(networks[1:], start=1):
            if net.signature() != networks[0].signature():
                raise AssertionError(
                    f"rank {rank} diverged from rank 0 — replication broken"
                )
        return ParallelLearnResult(
            network=networks[0],
            work_per_rank=works,
            stats={"p": p, "total_work": float(works.sum())},
        )

    def learn_with_comm(self, comm, matrix: ExpressionMatrix, seed: int):
        """SPMD entry point for an externally-managed communicator."""
        return self._rank_main(comm, matrix, seed)

    # -- rank body ------------------------------------------------------------
    def _rank_main(self, comm, matrix: ExpressionMatrix, seed: int):
        config = self.config
        data = matrix.values
        work = _RankWork()

        samples = self._task_ganesh(comm, data, seed, work)
        modules_members = consensus_clusters(
            samples,
            threshold=config.consensus_threshold,
            max_clusters=config.max_modules,
        )
        modules = self._task_modules(comm, data, modules_members, seed, work)
        network = ModuleNetwork(modules, matrix.var_names, matrix.n_obs)
        return network, work.units

    # -- task 1: group-parallel GaneSH (Section 3.2.1) -------------------------
    def _task_ganesh(self, comm, data: np.ndarray, seed: int, work: _RankWork):
        config = self.config
        n_runs = config.n_ganesh_runs
        if n_runs == 1 or comm.size == 1:
            gcomm, color, groups = comm, 0, 1
        else:
            groups = min(n_runs, comm.size)
            color = comm.rank * groups // comm.size
            gcomm = comm.split(color)

        local_samples: list[tuple[int, np.ndarray]] = []
        for g in range(n_runs):
            if g % groups != color:
                continue
            rng = GibbsRandom(
                make_stream(seed, "ganesh", g, backend=config.rng_backend)
            )
            labels = self._run_ganesh(gcomm, data, rng, work)
            local_samples.append((g, labels))

        if groups == 1:
            gathered = local_samples
        else:
            # Group leaders exchange their runs' samples with everyone.
            parts = comm.allgather(local_samples if gcomm.rank == 0 else [])
            gathered = [item for part in parts for item in part]
        gathered.sort(key=lambda item: item[0])
        return [labels for _g, labels in gathered]

    def _run_ganesh(self, comm, data: np.ndarray, rng: GibbsRandom, work: _RankWork):
        config = self.config
        n, m = data.shape
        k0 = config.resolve_init_clusters(n)
        var_labels = _compact(rng.random_labels(n, k0))
        n_clusters = int(var_labels.max()) + 1
        sqrt_m = max(1, math.isqrt(m))
        obs_labels = [rng.random_labels(m, sqrt_m) for _ in range(n_clusters)]
        state = CoClusterState(data, var_labels, obs_labels, config.prior)

        for _ in range(config.n_update_steps):
            self._p_reassign_var_sweep(comm, state, rng, work)
            self._p_merge_var_sweep(comm, state, rng, work)
            for cluster in list(state.clusters):
                if not cluster.members:
                    continue
                block = data[cluster.members]
                self._p_reassign_obs_sweep(comm, cluster.obs, block, rng, work)
                self._p_merge_obs_sweep(comm, cluster.obs, rng, work)
        return state.var_labels.copy()

    # -- parallel sweeps (Algorithms 1 and 2) -----------------------------------
    def _p_reassign_var_sweep(self, comm, state: CoClusterState, rng, work) -> None:
        n = state.n_vars
        m = state.n_obs
        for _ in range(n):
            var = select_unif_rand(rng, n)
            k = state.n_clusters + 1
            lo, hi = block_range(k, comm.size, comm.rank)
            local = state.move_var_scores(var, (lo, hi))
            for cid in range(lo, hi):
                work.add(m + (state.clusters[cid].obs.n_clusters if cid < state.n_clusters else 0))
            choice = select_wtd_rand_gather(comm, rng, local)
            state.move_var(var, choice)

    def _p_merge_var_sweep(self, comm, state: CoClusterState, rng, work) -> None:
        m = state.n_obs
        cid = 0
        while cid < state.n_clusters:
            lo, hi = block_range(state.n_clusters, comm.size, comm.rank)
            local = state.merge_var_scores(cid, (lo, hi))
            for other in range(lo, hi):
                work.add(m + state.clusters[other].obs.n_clusters)
            choice = select_wtd_rand_gather(comm, rng, local)
            if choice == cid:
                cid += 1
            else:
                state.merge_var(cid, choice)

    def _p_reassign_obs_sweep(
        self, comm, oc: ObsClustering, block: np.ndarray, rng, work
    ) -> None:
        p_reassign_obs_sweep(comm, oc, block, rng, work)

    def _p_merge_obs_sweep(self, comm, oc: ObsClustering, rng, work) -> None:
        p_merge_obs_sweep(comm, oc, rng, work)

    # -- task 3 -------------------------------------------------------------
    def _task_modules(
        self, comm, data: np.ndarray, modules_members: list[list[int]], seed: int, work
    ) -> list[Module]:
        config = self.config
        n_vars = data.shape[0]
        parents = np.asarray(config.resolve_candidate_parents(n_vars), dtype=np.int64)
        scorer = SplitScorer(
            beta_grid=config.beta_grid,
            max_steps=config.max_sampling_steps,
            stop_repeats=config.sampling_stop_repeats,
        )

        # Phase A: tree structures, module by module on all ranks
        # (Algorithm 6, lines 3-4).
        modules: list[Module] = []
        module_rngs: list[GibbsRandom] = []
        for module_id, members in enumerate(modules_members):
            block = data[members]
            mrng = GibbsRandom(
                make_stream(seed, "modules", module_id, backend=config.rng_backend)
            )
            trees = self._p_learn_tree_structs(comm, block, module_id, mrng, work)
            modules.append(Module(module_id=module_id, members=list(members), trees=trees))
            module_rngs.append(mrng)

        # Phase B: one flat candidate-split list over every module, tree and
        # node, block-partitioned (Algorithm 5).
        descriptors = self._node_descriptors(modules)
        node_scores = self._p_score_splits(
            comm, data, descriptors, parents, scorer, seed, work
        )

        # Selection and parent learning, replicated (the gathered posteriors
        # are available on every rank after the all-gather).
        cursor = 0
        for module, mrng in zip(modules, module_rngs):
            all_weighted, all_uniform = [], []
            while cursor < len(descriptors) and descriptors[cursor][0] == module.module_id:
                scores = node_scores[cursor]
                weighted, uniform = select_node_splits(
                    data, scores, mrng, config.n_splits_per_node
                )
                scores.node.weighted_splits = weighted
                scores.node.uniform_splits = uniform
                all_weighted.extend(weighted)
                all_uniform.extend(uniform)
                cursor += 1
            module.weighted_parents = accumulate_parent_scores(all_weighted)
            module.uniform_parents = accumulate_parent_scores(all_uniform)
        return modules

    def _p_learn_tree_structs(
        self, comm, block: np.ndarray, module_id: int, mrng: GibbsRandom, work
    ) -> list[RegressionTree]:
        """Algorithm 4: constrained GaneSH + partitioned agglomeration."""
        config = self.config
        m = block.shape[1]
        labels = mrng.random_labels(m, max(1, math.isqrt(m)))
        oc = ObsClustering.from_block(block, labels, config.prior)
        samples: list[np.ndarray] = []
        for step in range(1, config.tree_update_steps + 1):
            self._p_reassign_obs_sweep(comm, oc, block, mrng, work)
            self._p_merge_obs_sweep(comm, oc, mrng, work)
            if step > config.tree_burn_in or (
                step == config.tree_update_steps and not samples
            ):
                samples.append(oc.labels.copy())
        return [
            self._p_build_tree(comm, block, sample, module_id, work)
            for sample in samples
        ]

    def _p_build_tree(
        self, comm, block: np.ndarray, obs_labels: np.ndarray, module_id: int, work
    ) -> RegressionTree:
        """Consecutive-pair agglomeration with a distributed max-reduction."""
        prior = self.config.prior
        leaves = leaf_order(block, obs_labels)
        next_id = 0
        subtrees: list[TreeNode] = []
        stats: list[SuffStats] = []
        for obs in leaves:
            subtrees.append(TreeNode(node_id=next_id, observations=np.sort(obs)))
            stats.append(SuffStats.of(block[:, obs]))
            next_id += 1

        while len(subtrees) > 1:
            n_pairs = len(subtrees) - 1
            lo, hi = block_range(n_pairs, comm.size, comm.rank)
            best_local = (-np.inf, n_pairs)  # (score, index); lower index wins
            merged_cache: dict[int, SuffStats] = {}
            for i in range(lo, hi):
                combined = stats[i].add(stats[i + 1])
                merged_cache[i] = combined
                score = (
                    combined.log_marginal(prior)
                    - stats[i].log_marginal(prior)
                    - stats[i + 1].log_marginal(prior)
                )
                score = round(score / SCORE_QUANTUM) * SCORE_QUANTUM
                if score > best_local[0]:
                    best_local = (score, i)
                work.add(1.0)
            # MAXLOC with lowest rank on ties: blocks ascend with rank, and
            # each rank keeps its first maximum, so this equals the
            # sequential first-argmax over all pairs.
            _score, _rank, best = comm.allreduce_max_with_index(
                best_local[0], best_local[1]
            )
            combined = merged_cache.get(best) or stats[best].add(stats[best + 1])
            left, right = subtrees[best], subtrees[best + 1]
            parent = TreeNode(
                node_id=next_id,
                observations=np.sort(
                    np.concatenate([left.observations, right.observations])
                ),
                left=left,
                right=right,
            )
            next_id += 1
            subtrees[best : best + 2] = [parent]
            stats[best : best + 2] = [combined]
        return RegressionTree(module_id=module_id, root=subtrees[0])

    # -- flat split scoring (Algorithm 5) -------------------------------------
    def _node_descriptors(self, modules: list[Module]):
        """Deterministic enumeration of all internal nodes.

        Each entry is a mutable record
        ``[module_id, tree_index, node, obs_base, global_base, n_splits]``
        where ``obs_base`` is the cumulative observation count of earlier
        nodes in the same module (scaled to a split offset once the
        candidate-parent count is known) and the last two fields are filled
        by :meth:`_p_score_splits`.
        """
        descriptors = []
        for module in modules:
            obs_base = 0
            for tree_index, tree in enumerate(module.trees):
                for node in tree.internal_nodes():
                    descriptors.append(
                        [module.module_id, tree_index, node, obs_base, 0, 0]
                    )
                    obs_base += int(node.observations.size)
        return descriptors

    def _p_score_splits(
        self, comm, data, descriptors, parents, scorer: SplitScorer, seed, work
    ) -> list[NodeSplitScores]:
        config = self.config
        n_parents = parents.size
        dpi = scorer.draws_per_item

        # Fill in split counts: each node has n_parents * n_obs candidates.
        global_base = 0
        for desc in descriptors:
            node = desc[2]
            n_splits = n_parents * int(node.observations.size)
            desc[3] = desc[3] * n_parents  # module-local split base
            desc[4] = global_base
            desc[5] = n_splits
            global_base += n_splits
        total_splits = global_base

        lo, hi = block_range(total_splits, comm.size, comm.rank)
        local_scores = np.zeros(max(0, hi - lo), dtype=np.float64)
        local_steps = np.zeros(max(0, hi - lo), dtype=np.int64)
        local_accept = np.zeros(max(0, hi - lo), dtype=bool)

        module_streams: dict[int, IndexedStream] = {}
        for module_id, _tree, node, module_base, gbase, n_splits in descriptors:
            a = max(lo, gbase)
            b = min(hi, gbase + n_splits)
            if a >= b:
                continue
            if module_id not in module_streams:
                module_streams[module_id] = IndexedStream(
                    make_stream(seed, "splits", module_id, backend=config.rng_backend),
                    dpi,
                )
            istream = module_streams[module_id]
            n_obs = int(node.observations.size)
            # Rows [a - gbase, b - gbase) of this node's candidate list.
            row0, row1 = a - gbase, b - gbase
            l0, l1 = row0 // n_obs, (row1 - 1) // n_obs + 1
            kernel = node_kernel(data, node, parents[l0:l1], scorer.beta_grid)
            items = np.arange(row0 - l0 * n_obs, row1 - l0 * n_obs)
            # Private draws, addressed by module-local split index.
            first = module_base + row0
            uniforms = istream.stream.block(first * dpi, (row1 - row0) * dpi)
            uniforms = uniforms.reshape(row1 - row0, dpi)
            scores, steps, _beta, accepted = scorer.score_batch_kernel(
                kernel, uniforms, item_indices=items
            )
            local_scores[a - lo : b - lo] = scores
            local_steps[a - lo : b - lo] = steps
            local_accept[a - lo : b - lo] = accepted
            work.add(float(steps.sum()) * n_obs)

        all_scores = comm.allgather_concat(local_scores)
        all_steps = comm.allgather_concat(local_steps)
        all_accept = comm.allgather_concat(local_accept.astype(np.int8)).astype(bool)

        node_scores: list[NodeSplitScores] = []
        for module_id, tree_index, node, module_base, gbase, n_splits in descriptors:
            node_scores.append(
                NodeSplitScores(
                    module_id=module_id,
                    tree_index=tree_index,
                    node=node,
                    parents=parents,
                    base_index=module_base,
                    log_scores=all_scores[gbase : gbase + n_splits],
                    steps=all_steps[gbase : gbase + n_splits],
                    accepted=all_accept[gbase : gbase + n_splits],
                )
            )
        return node_scores
