"""Persistent shared-memory task-pool executor (Tasks 1 and 3).

The per-call pool in :mod:`repro.parallel.pool` parallelizes only the inner
level of Section 3.2 — the candidate-split scoring of nodes the driver has
already built — and pays for a fresh ``mp.Pool`` (plus a full expression-
matrix transfer) on every scoring call.  This module is the persistent
replacement: **one** pool and **one** shared-memory copy of the expression
matrix serve every parallel phase of a ``learn`` invocation.

* the expression matrix is placed in :mod:`multiprocessing.shared_memory`
  once and workers attach to it zero-copy;
* :meth:`TaskPoolExecutor.submit_runs` is the generic dispatch path: any
  picklable ``fn(ctx, item)`` runs on the pool with the worker context
  (matrix, parents, config, seed, checkpoint store) supplied in place, and
  results return in *item order* regardless of completion order;
* **Task 1** rides it via :meth:`TaskPoolExecutor.sample_ganesh_runs`: the
  G independent GaneSH chains each draw their replicated ``("ganesh", g)``
  stream — bit-identical to the sequential ensemble for any worker count
  or completion order — and checkpoint to ``ganesh_<g>.npz`` for resume;
* **Task 3** keeps both of the paper's parallelism levels, chosen by a
  cost heuristic:

  - ``module`` mode — each worker learns *whole* modules (observation
    clustering, trees, split scoring, parent aggregation).  Because every
    module consumes only its own named streams (``("modules", id)``,
    ``("splits", id)``), concurrent modules yield bit-identical networks.
    Dynamic dispatch is largest-module-first (LPT), attacking the load
    imbalance the paper measures in Section 5.3.1;
  - ``split`` mode — trees are built in the driver and the flat candidate-
    split list of *all* pending modules is scored in one pooled pass (the
    fine-grained decomposition of Algorithm 5), for the few-huge-modules
    regime where module granularity cannot balance the load.

Checkpoints are written as soon as a unit completes — from the worker —
so an interrupted parallel run resumes exactly like a sequential one.  A
worker process that dies mid-run is detected (the pool's replacement
worker re-runs the instrumented initializer) and surfaced as
:class:`WorkerCrashedError` instead of a silent hang; the checkpoints the
dead run left behind make the retry cheap.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from multiprocessing import TimeoutError as _MpTimeoutError
from multiprocessing import shared_memory

import numpy as np

from repro.core.config import LearnerConfig
from repro.core.learner import (
    _GaneshCheckpoints,
    _hooks_for,
    _ModuleCheckpoints,
    learn_single_module,
)
from repro.datatypes import Module
from repro.ganesh.coclustering import run_obs_only_ganesh, run_replicated_ganesh
from repro.parallel import pool as pool_mod
from repro.parallel import poolutil
from repro.parallel.checkpoint_writer import AsyncCheckpointWriter
from repro.parallel.pool import _subdivide, build_split_tasks
from repro.parallel.topology import (
    Placement,
    chunk_elements_for,
    pin_to,
    plan_placement,
)
from repro.parallel.trace import WorkTrace
from repro.scoring import kernel as kernel_mod
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.split_score import SplitScorer
from repro.trees.hierarchy import build_tree_structure
from repro.trees.splits import NodeSplitScores, select_node_splits


class WorkerCrashedError(RuntimeError):
    """A pool worker process died mid-task.

    Raised by :meth:`TaskPoolExecutor.submit_runs` when the pool replaces a
    worker that exited abnormally (detected via the instrumented
    initializer re-running), instead of waiting forever for the dead
    worker's lost task.  Checkpoints written before the crash remain valid;
    re-running the same call executes only the missing units.
    """


def _make_scorer(config: LearnerConfig) -> SplitScorer:
    return SplitScorer(
        beta_grid=config.beta_grid,
        max_steps=config.max_sampling_steps,
        stop_repeats=config.sampling_stop_repeats,
    )


# -- shared-memory expression matrix --------------------------------------


class SharedMatrix:
    """The expression matrix in a shared-memory segment.

    Created once per executor; workers attach by name with no copy.  The
    creating process owns the segment and unlinks it on :meth:`close`.

    With a multi-domain ``placement``, the initial copy is *first-touch
    interleaved*: the driver temporarily pins itself to each NUMA domain's
    CPUs while writing that domain's contiguous row block, so the kernel
    allocates those shared pages on the memory node whose workers will
    read them (Linux's default first-touch NUMA policy).  Purely a page
    *location* effect — the bytes written are identical either way.
    """

    def __init__(self, data: np.ndarray, placement: Placement | None = None) -> None:
        data = np.ascontiguousarray(data, dtype=np.float64)
        self._shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        self.array = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
        if placement is not None and not placement.is_flat:
            self._first_touch_copy(data, placement)
        else:
            self.array[:] = data
        #: everything a worker needs to attach: (name, shape, dtype)
        self.spec = (self._shm.name, data.shape, data.dtype.str)

    def _first_touch_copy(self, data: np.ndarray, placement: Placement) -> None:
        getaffinity = getattr(os, "sched_getaffinity", None)
        try:
            original = getaffinity(0) if getaffinity is not None else None
        except OSError:  # pragma: no cover - exotic kernels
            original = None
        if original is None:
            self.array[:] = data
            return
        try:
            for domain, (lo, hi) in enumerate(
                placement.domain_blocks(data.shape[0])
            ):
                if lo >= hi:
                    continue
                pin_to(placement.topology.numa_domains[domain])
                self.array[lo:hi] = data[lo:hi]
        finally:
            try:
                os.sched_setaffinity(0, original)
            except OSError:  # pragma: no cover - affinity revoked mid-copy
                pass

    def close(self) -> None:
        self.array = None
        try:
            self._shm.close()
        finally:
            # Unlink even when the local unmap fails: the segment outliving
            # the run (a /dev/shm leak) is strictly worse than a dangling
            # mapping in a process that is about to exit.
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass


def _attach_shared(spec) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a :class:`SharedMatrix` segment from a worker process."""
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    # Workers and driver share one resource-tracker process (the tracker fd
    # is inherited), and its name cache is a set — the workers' attach-time
    # registrations collapse into the driver's own, and the driver's unlink
    # on close() is the single cleanup point.  No per-worker unregister.
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# -- worker side -----------------------------------------------------------

# Executor-only worker state; the scoring state lives in pool._WORKER so the
# fine-grained split path reuses pool._score_task unchanged.
_STATE: dict = {}


def _executor_init(
    matrix_spec,
    parents,
    config,
    seed,
    checkpoint_dir,
    counter,
    flush_barrier=None,
    placement=None,
    kernel_chunk_elements=None,
    steal_shared=None,
):
    """Pool initializer: attach the matrix once, install worker state.

    ``counter`` is a shared ``mp.Value`` bumped once per initialized worker;
    tests read it to assert the matrix was shipped exactly once per worker
    (i.e. the initializer ran once, never per task), and the driver reads
    it mid-run to detect dead workers — the pool re-runs the initializer
    for every replacement it spawns.  The pre-increment value doubles as
    this worker's index into the ``placement`` plan (``mp.Pool`` hands
    every worker identical initargs, so the index must be derived from
    shared state): the worker pins itself to its assigned NUMA domain's
    CPU set and remembers the domain for per-domain busy accounting.
    Replacement workers draw indices past the plan and wrap onto it.

    ``kernel_chunk_elements`` installs the topology-derived default for
    :class:`repro.scoring.kernel.LazySplitKernel` evaluation chunks in
    this worker process; with a placement plan the worker derives its
    *own domain's* chunk size instead (``Placement.chunk_elements``) so
    heterogeneous machines size each worker's temporaries for the caches
    it actually runs on — identical to the machine-wide value on any
    single-domain topology.  Neither pinning nor chunk sizing can change
    any score — see :mod:`repro.parallel.topology`.

    ``steal_shared`` is the domain-affine queue scaffolding
    ``(queues, pending, lock)`` created by the executor when stealing is
    possible (see :meth:`TaskPoolExecutor.submit_runs`); ``None`` on flat
    machines, which therefore take the exact shared-queue code path.

    With a checkpoint directory, each worker also starts an
    :class:`AsyncCheckpointWriter` so checkpoint serialization never stalls
    task execution; ``flush_barrier`` is the shared barrier the executor's
    close-time flush rendezvous uses (see :func:`_checkpoint_flush_run`).
    """
    worker_index = 0
    if counter is not None:
        with counter.get_lock():
            worker_index = int(counter.value)
            counter.value += 1
    domain = 0
    if placement is not None:
        domain = placement.domain_of(worker_index)
        pin_to(placement.worker_cpus(worker_index))
        kernel_mod.set_chunk_elements(placement.chunk_elements(worker_index))
    elif kernel_chunk_elements is not None:
        kernel_mod.set_chunk_elements(kernel_chunk_elements)
    parallel = getattr(config, "parallel", None)
    if parallel is not None:
        kernel_mod.set_kernel_backend(parallel.kernel_backend)
        if getattr(parallel, "score_cache_bytes", 0) > 0:
            # One bounded store per worker process; it outlives individual
            # jobs for as long as the pool does, so a service reusing the
            # pool serves repeat nodes from memory.
            kernel_mod.ensure_shared_score_cache(parallel.score_cache_bytes)
    _STATE["domain"] = domain
    _STATE["steal"] = steal_shared
    shm, data = _attach_shared(matrix_spec)
    pool_mod._init_worker(data, parents, config, seed)
    _STATE["shm"] = shm  # keep the mapping alive for the worker's lifetime
    _STATE["checkpoint_dir"] = checkpoint_dir
    writer = AsyncCheckpointWriter() if checkpoint_dir is not None else None
    _STATE["writer"] = writer
    _STATE["flush_barrier"] = flush_barrier
    _STATE["checkpoints"] = (
        _ModuleCheckpoints(checkpoint_dir, seed, config, writer=writer)
        if checkpoint_dir is not None
        else None
    )


def _worker_ctx() -> dict:
    """The context handed to generic run functions inside a pool worker."""
    worker = pool_mod._WORKER
    return {
        "data": worker["data"],
        "parents": worker["parents"],
        "config": worker["config"],
        "seed": worker["seed"],
        "scorer": worker["scorer"],
        "checkpoint_dir": _STATE.get("checkpoint_dir"),
        "checkpoint_writer": _STATE.get("writer"),
        "module_checkpoints": _STATE.get("checkpoints"),
    }


def _checkpoint_flush_run(barrier_timeout: float):
    """Drain this worker's checkpoint writer (close-time rendezvous).

    The executor dispatches exactly ``n_workers`` of these before tearing
    the pool down.  The barrier makes each worker take exactly one: a
    worker that finished its flush blocks on the barrier and therefore
    cannot steal a second flush task from a sibling, so every worker's
    queue is drained before ``terminate`` kills the processes.  A broken
    barrier (dead sibling) aborts the wait rather than hanging — that
    worker's own queue is already drained, which is all it can guarantee.
    """
    writer = _STATE.get("writer")
    if writer is not None:
        writer.flush()
    barrier = _STATE.get("flush_barrier")
    if barrier is not None:
        try:
            barrier.wait(timeout=barrier_timeout)
        except Exception:  # BrokenBarrierError: a sibling died or timed out
            pass
    return os.getpid()


def _generic_run(payload):
    """Pool entry point of :meth:`TaskPoolExecutor.submit_runs`.

    Runs ``fn(ctx, item)`` and ships back the item's dispatch index (so
    the driver reassembles results in item order whatever the completion
    order), the worker pid, the worker's NUMA domain, the task's wall
    time and this process's drained kernel-counter delta (``None`` when
    the task scored nothing).
    """
    fn, index, item = payload
    t0 = time.perf_counter()
    result = fn(_worker_ctx(), item)
    return (
        index,
        result,
        os.getpid(),
        _STATE.get("domain", 0),
        time.perf_counter() - t0,
        kernel_mod.consume_kernel_totals(),
    )


def _steal_run(queue_timeout):
    """Pool entry point of the domain-affine steal dispatch.

    The driver enqueues every work item on its home domain's queue before
    dispatching one of these lightweight triggers per item; each trigger
    *reserves* exactly one item under the shared lock — from this worker's
    home domain while its ``pending`` count is positive, otherwise from
    the most-loaded foreign domain (a steal) — then drains the reserved
    payload from that domain's queue and runs it.  Reservation counts
    guarantee a queue is never over-drained, so any worker can empty any
    domain's queue: a victim domain whose worker died is drained by its
    siblings rather than deadlocking.

    Returns ``(index, result, pid, worker_domain, item_home_domain,
    stolen, seconds, kernel_totals)``; ``None`` when every reservation is already taken —
    only possible after a sibling crashed between reserving and returning,
    in which case the driver's crash polling raises
    :class:`WorkerCrashedError` anyway.
    """
    queues, pending, lock = _STATE["steal"]
    my_domain = _STATE.get("domain", 0)
    with lock:
        if pending[my_domain] > 0:
            domain = my_domain
        else:
            domain, best = -1, 0
            for d in range(len(queues)):
                if pending[d] > best:
                    domain, best = d, pending[d]
            if domain < 0:
                return None
        pending[domain] -= 1
    fn, index, item, home = queues[domain].get(timeout=queue_timeout)
    t0 = time.perf_counter()
    result = fn(_worker_ctx(), item)
    return (
        index,
        result,
        os.getpid(),
        my_domain,
        home,
        domain != my_domain,
        time.perf_counter() - t0,
        kernel_mod.consume_kernel_totals(),
    )


def _ganesh_run(ctx, item):
    """One Task 1 GaneSH chain on its replicated ``("ganesh", g)`` stream."""
    g, want_trace = item
    config = ctx["config"]
    # Recording (and shipping back) per-superstep work vectors is pure
    # overhead unless the driver was handed a trace.
    trace = WorkTrace() if want_trace else None
    labels = run_replicated_ganesh(
        ctx["data"],
        ctx["seed"],
        g,
        n_update_steps=config.n_update_steps,
        init_var_clusters=config.resolve_init_clusters(ctx["data"].shape[0]),
        prior=config.prior,
        rng_backend=config.rng_backend,
        hooks=_hooks_for(trace, run=g),
    )
    if ctx["checkpoint_dir"] is not None:
        _GaneshCheckpoints(
            ctx["checkpoint_dir"], ctx["seed"], config, ctx["data"].shape[0],
            writer=ctx.get("checkpoint_writer"),
        ).store(g, labels)
    return g, labels, (trace.steps if trace is not None else [])


def _module_run(ctx, item):
    """Learn one whole module (Task 3 module-level parallelism)."""
    module_id, members, want_trace = item
    trace = WorkTrace() if want_trace else None
    module = learn_single_module(
        ctx["data"],
        module_id,
        members,
        ctx["parents"],
        ctx["scorer"],
        ctx["config"],
        ctx["seed"],
        trace,
    )
    checkpoints = ctx["module_checkpoints"]
    if checkpoints is not None:
        checkpoints.store(module)
    return module_id, module, (trace.steps if trace is not None else [])


def _score_chunk_run(ctx, task):
    """Fine-grained candidate-split scoring (Task 3 split-level path)."""
    return pool_mod._score_task(task)


#: the generic run functions a shard node may be asked to execute, by wire
#: name — the socket protocol of :mod:`repro.parallel.sharding` ships the
#: *name* rather than a pickled callable so a node never unpickles code
TASK_RUNNERS = {
    "ganesh": _ganesh_run,
    "module": _module_run,
}


# -- driver-side phases of split mode --------------------------------------


def tree_phase(data, module_id, members, config, seed, trace=None):
    """Step 1 of one module: observation clusterings agglomerated to trees.

    Returns ``(trees, nodes, records, mrng)`` where ``nodes`` lists
    ``(tree_index, node)`` in enumeration order, ``records`` are the node
    records :func:`repro.parallel.pool.build_split_tasks` consumes, and
    ``mrng`` is the module stream, positioned for split selection.
    """
    block = data[members]
    mrng = GibbsRandom(
        make_stream(seed, "modules", module_id, backend=config.rng_backend)
    )
    hooks = _hooks_for(trace)
    obs_samples = run_obs_only_ganesh(
        block,
        mrng,
        n_update_steps=config.tree_update_steps,
        burn_in=config.tree_burn_in,
        prior=config.prior,
        hooks=hooks,
    )
    trees = [
        build_tree_structure(block, labels, module_id, config.prior, hooks)
        for labels in obs_samples
    ]
    nodes = []
    records = []
    obs_base = 0
    for tree_index, tree in enumerate(trees):
        for node in tree.internal_nodes():
            nodes.append((tree_index, node))
            records.append(
                (module_id, node.observations, node.left.observations, obs_base)
            )
            obs_base += int(node.observations.size)
    return trees, nodes, records, mrng


def select_phase(
    data,
    module_id,
    members,
    trees,
    nodes,
    parents,
    mrng,
    config,
    log_scores,
    steps,
    accepted,
    offset,
    trace=None,
) -> tuple[Module, int]:
    """Steps 2-3 of one module from pre-computed flat score arrays.

    ``offset`` is the module's first row in the flat arrays; the new offset
    (one past the module's last split) is returned.  Consumes exactly the
    same ``mrng`` draws as the sequential learner, in the same order.
    """
    module = Module(module_id=module_id, members=list(members), trees=trees)
    split_base = 0
    all_weighted = []
    all_uniform = []
    for tree_index, node in nodes:
        n_splits = int(parents.size * node.observations.size)
        scores = NodeSplitScores(
            module_id=module_id,
            tree_index=tree_index,
            node=node,
            parents=parents,
            base_index=split_base,
            log_scores=log_scores[offset : offset + n_splits],
            steps=steps[offset : offset + n_splits],
            accepted=accepted[offset : offset + n_splits],
        )
        offset += n_splits
        split_base += n_splits
        if trace is not None:
            trace.record(
                "modules.split_scoring",
                scores.work_units(),
                n_collectives=1,
                words=2 * config.n_splits_per_node,
            )
        weighted, uniform = select_node_splits(
            data, scores, mrng, config.n_splits_per_node
        )
        node.weighted_splits = weighted
        node.uniform_splits = uniform
        all_weighted.extend(weighted)
        all_uniform.extend(uniform)

    from repro.trees.parents import accumulate_parent_scores

    module.weighted_parents = accumulate_parent_scores(all_weighted)
    module.uniform_parents = accumulate_parent_scores(all_uniform)
    if trace is not None and split_base:
        trace.record(
            "modules.parents",
            np.array([len(all_weighted) + len(all_uniform)], dtype=np.float64),
            n_collectives=2,
            words=len(all_weighted) + len(all_uniform),
        )
    return module, offset


def learn_modules_percall_pool(
    data,
    parents,
    modules_members,
    config: LearnerConfig,
    seed: int,
    n_workers: int,
    schedule: str = "dynamic",
) -> list[Module]:
    """Task 3 with the seed backend: a fresh ``mp.Pool`` per scoring call.

    Functionally identical to the executor (bit-identical networks), but
    one pool is constructed — and the expression matrix shipped — per
    module rather than once per task.  Kept as the measured baseline for
    the executor's speedup contract (``benchmarks/bench_executor.py``) and
    the CI pool-construction smoke test.
    """
    parents = np.asarray(parents, dtype=np.int64)
    modules: list[Module] = []
    for module_id, members in enumerate(modules_members):
        trees, nodes, records, mrng = tree_phase(
            data, module_id, list(members), config, seed
        )
        log_scores, steps, accepted = pool_mod.score_splits_pool(
            data, records, parents, config, seed, n_workers, schedule
        )
        module, _ = select_phase(
            data,
            module_id,
            members,
            trees,
            nodes,
            parents,
            mrng,
            config,
            log_scores,
            steps,
            accepted,
            0,
        )
        modules.append(module)
    return modules


# -- mode heuristic ---------------------------------------------------------


def estimate_module_cost(members, n_obs: int, config: LearnerConfig) -> float:
    """Crude relative cost of learning one module.

    Observation clustering scales with the block size ``|members| * m``;
    split scoring with the candidate-split count times the node size, i.e.
    roughly ``m^2`` per tree level times the parent count (identical across
    modules of one run, so it enters as a constant floor).  The estimate
    only needs to *rank* modules for LPT dispatch and flag dominating ones.
    """
    return float(len(members) * n_obs + n_obs * n_obs)


def choose_mode(costs, n_workers: int) -> str:
    """Pick module- vs split-level parallelism from estimated module costs.

    Module granularity wins whenever there are enough modules to keep every
    worker busy and no single module dominates the total (a module larger
    than twice the ideal per-worker share caps the speedup at the stragg-
    ler's run-time — the paper's Section 5.3.1 imbalance).  Otherwise the
    fine-grained flat split list is the only decomposition that balances.
    """
    costs = list(costs)
    if len(costs) < n_workers:
        return "split"
    total = sum(costs)
    if total > 0 and max(costs) * n_workers > 2.0 * total:
        return "split"
    return "module"


# -- statistics -------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Observable behaviour of one executor (asserted by tests)."""

    pools_constructed: int = 0
    matrix_transfers: int = 0
    tasks_dispatched: int = 0
    mode: str = ""
    n_workers: int = 1
    #: cross-domain steals: tasks an idle worker drained from a foreign
    #: NUMA domain's affine queue (always 0 on flat machines)
    steals: int = 0
    #: busy seconds spent on stolen tasks
    stolen_seconds: float = 0.0


# -- the executor -----------------------------------------------------------


class TaskPoolExecutor:
    """Persistent worker pool running the pipeline's parallel phases.

    Usage::

        with TaskPoolExecutor(data, parents, config, seed) as executor:
            samples = executor.sample_ganesh_runs(n_runs, trace=trace)
            modules = executor.learn_modules(modules_members, trace=trace)

    The pool and the shared expression matrix are created lazily on the
    first parallel dispatch and live until :meth:`close` (or context exit),
    however many task phases or scoring calls ride them — one ``learn``
    invocation pays for one pool construction and one matrix transfer
    total, across Tasks 1 and 3.

    :meth:`submit_runs` is the generic dispatch primitive the task-specific
    entry points are built on; external callers (e.g. the pooled GENOMICA
    network build) use it directly.
    """

    #: test hook: a callable permuting the dispatch order of
    #: :meth:`submit_runs` (``hook(indices) -> indices``).  Results are
    #: reassembled by item index, so any permutation — and any completion
    #: order it induces — must leave outputs bit-identical; the equivalence
    #: tests shuffle dispatch through this to prove it.
    dispatch_order_hook = None

    def __init__(
        self,
        data: np.ndarray,
        parents: np.ndarray,
        config: LearnerConfig,
        seed: int,
        *,
        n_workers: int | None = None,
        parallel_mode: str | None = None,
        schedule: str | None = None,
        checkpoint_dir=None,
        mp_context: str | None = None,
        crash_poll_seconds: float = 5.0,
        steal: bool | None = None,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.parents = np.asarray(parents, dtype=np.int64)
        self.config = config
        self.seed = seed
        self.n_workers = (
            config.resolve_n_workers() if n_workers is None else int(n_workers)
        )
        self.parallel_mode = parallel_mode or config.parallel.mode
        self.schedule = schedule or config.parallel.schedule
        self.steal = config.parallel.steal if steal is None else bool(steal)
        if self.schedule not in ("static", "dynamic"):
            raise ValueError("schedule must be 'static' or 'dynamic'")
        if self.parallel_mode not in ("auto", "module", "split"):
            raise ValueError("parallel_mode must be 'auto', 'module' or 'split'")
        self.checkpoint_dir = (
            checkpoint_dir
            if checkpoint_dir is not None
            else config.parallel.checkpoint_dir
        )
        self.crash_poll_seconds = float(crash_poll_seconds)
        #: the machine model and worker->domain plan this executor runs
        #: under; placement decides where work executes, never its results
        self.topology = config.parallel.resolve_topology()
        self.placement = plan_placement(self.topology, max(1, self.n_workers))
        #: topology-derived kernel evaluation chunk size, installed in
        #: every worker (and on the serial path) via the scoring kernel's
        #: process-wide default
        self.kernel_chunk_elements = chunk_elements_for(self.topology)
        self.stats = ExecutorStats(n_workers=self.n_workers)
        self._mp_context = mp_context
        self._pool = None
        self._shared: SharedMatrix | None = None
        self._init_counter = None
        self._expected_inits = 0
        self._serial_ready = False
        self._prev_chunk_elements: int | None | bool = False  # False = unset
        self._prev_kernel_backend: str | bool = False  # False = unset
        self._flush_barrier = None
        self._flush_timeout = 30.0
        #: (queues, pending, lock) domain-affine steal scaffolding; created
        #: with the pool when stealing is possible, None on flat machines
        self._steal_shared = None
        self._steal_queue_timeout = 60.0

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "TaskPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear down the pool and unlink the shared-memory segment.

        Ordered so the segment is always unlinked: a failure while
        terminating the pool (or a pool poisoned by a crashed worker) must
        not leak the matrix into ``/dev/shm`` — the context-manager exit of
        ``learn_from_modules`` runs through here on every exception path.
        """
        pool, self._pool = self._pool, None
        shared, self._shared = self._shared, None
        steal_shared, self._steal_shared = self._steal_shared, None
        try:
            if pool is not None:
                self._drain_checkpoint_writers(pool)
                pool.terminate()
                pool.join()
        finally:
            if steal_shared is not None:
                # Stranded payloads (a crashed dispatch) must not keep the
                # queue feeder threads alive past the executor.
                for queue in steal_shared[0]:
                    queue.cancel_join_thread()
                    queue.close()
            if shared is not None:
                shared.close()
            if self._serial_ready:
                # Drop the in-process scoring state so the driver does not
                # retain the matrix past the executor's lifetime.
                pool_mod._clear_worker()
                self._serial_ready = False
            if self._prev_chunk_elements is not False:
                # Restore whatever kernel chunk default the driver had.
                kernel_mod.set_chunk_elements(self._prev_chunk_elements)
                self._prev_chunk_elements = False
            if self._prev_kernel_backend is not False:
                kernel_mod.set_kernel_backend(self._prev_kernel_backend)
                self._prev_kernel_backend = False

    def _drain_checkpoint_writers(self, pool) -> None:
        """Flush every worker's async checkpoint writer before teardown.

        ``terminate`` kills workers abruptly; without this rendezvous a
        checkpoint still sitting on a writer queue would be silently lost
        (never torn — the atomic rename sees to that — but the resume
        guarantee of "at most in-flight units recomputed" would quietly
        weaken).  Exactly ``n_workers`` flush tasks are dispatched and a
        shared barrier forces one onto each worker.  Best-effort: a pool
        poisoned by a crashed worker must still reach ``terminate``.
        """
        if self.checkpoint_dir is None or self._flush_barrier is None:
            return
        try:
            handle = pool.map_async(
                _checkpoint_flush_run,
                [self._flush_timeout] * self.n_workers,
                chunksize=1,
            )
            handle.get(timeout=self._flush_timeout + 5.0)
        except Exception:  # pragma: no cover - crashed/hung worker path
            pass

    def worker_inits(self) -> int:
        """How many worker initializations ran (== workers when the matrix
        was shipped exactly once per worker)."""
        if self._init_counter is None:
            return 0
        return int(self._init_counter.value)

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool worker processes (empty before the pool
        is built or on the serial path).  Exposed so the service can
        report — and failure-injection tests can target — the processes
        actually executing a job."""
        pool = self._pool
        if pool is None:
            return []
        return [proc.pid for proc in getattr(pool, "_pool", []) if proc.pid]

    def _ensure_pool(self):
        """Create the shared matrix and the pool once, on first dispatch."""
        if self._pool is None:
            ctx = poolutil.pool_context(self._mp_context)
            self._shared = SharedMatrix(self.data, placement=self.placement)
            self._init_counter = ctx.Value("i", 0)
            poolutil.note_pool_construction()
            poolutil.note_matrix_transfer()
            self.stats.pools_constructed += 1
            self.stats.matrix_transfers += 1
            self._flush_barrier = (
                ctx.Barrier(self.n_workers)
                if self.checkpoint_dir is not None
                else None
            )
            if self._steal_possible():
                n_domains = self.placement.topology.n_domains
                self._steal_shared = (
                    [ctx.Queue() for _ in range(n_domains)],
                    ctx.Array("l", n_domains, lock=False),  # guarded by the lock
                    ctx.Lock(),
                )
            self._pool = ctx.Pool(
                self.n_workers,
                initializer=_executor_init,
                initargs=(
                    self._shared.spec,
                    self.parents,
                    self.config,
                    self.seed,
                    self.checkpoint_dir,
                    self._init_counter,
                    self._flush_barrier,
                    self.placement,
                    self.kernel_chunk_elements,
                    self._steal_shared,
                ),
            )
            self._expected_inits = self.n_workers
        return self._pool

    def _steal_possible(self) -> bool:
        """Whether any dispatch of this executor may use domain-affine
        queues — multiple workers on multiple NUMA domains with the steal
        knob on.  Flat machines never qualify, so they build none of the
        steal scaffolding and every dispatch takes the exact shared-queue
        code path."""
        return (
            self.steal
            and self.n_workers > 1
            and self.placement.topology.n_domains > 1
        )

    def _apply_kernel_chunk(self) -> None:
        """Install the topology-derived kernel chunk size in this process.

        The previous process-wide default is remembered and restored on
        :meth:`close`, so nesting executors (or running one inside a test
        that configured its own size) round-trips cleanly.
        """
        if self._prev_chunk_elements is False:
            self._prev_chunk_elements = kernel_mod.set_chunk_elements(
                self.kernel_chunk_elements
            )
        if self._prev_kernel_backend is False:
            parallel = getattr(self.config, "parallel", None)
            if parallel is not None:
                self._prev_kernel_backend = kernel_mod.set_kernel_backend(
                    parallel.kernel_backend
                )
        parallel = getattr(self.config, "parallel", None)
        if parallel is not None and getattr(parallel, "score_cache_bytes", 0) > 0:
            # Serial path: in-process kernels share the driver's store.  The
            # store deliberately survives close() — cross-job reuse in a
            # long-lived process is the point — so no restore bookkeeping.
            kernel_mod.ensure_shared_score_cache(parallel.score_cache_bytes)

    def _ensure_serial(self) -> None:
        """Install the in-process scoring state (n_workers == 1 path)."""
        if not self._serial_ready:
            self._apply_kernel_chunk()
            pool_mod._init_worker(self.data, self.parents, self.config, self.seed)
            self._serial_ready = True

    def _serial_ctx(self) -> dict:
        """The run context for in-process execution of generic tasks."""
        self._ensure_serial()
        worker = pool_mod._WORKER
        return {
            "data": worker["data"],
            "parents": worker["parents"],
            "config": worker["config"],
            "seed": worker["seed"],
            "scorer": worker["scorer"],
            "checkpoint_dir": self.checkpoint_dir,
            "checkpoint_writer": None,  # in-process stores write synchronously
            "module_checkpoints": (
                _ModuleCheckpoints(self.checkpoint_dir, self.seed, self.config)
                if self.checkpoint_dir is not None
                else None
            ),
        }

    # -- generic dispatch ---------------------------------------------------
    def submit_runs(
        self,
        fn,
        items,
        *,
        schedule: str | None = None,
        chunksize: int | None = None,
        trace=None,
        home_domains=None,
    ):
        """Run ``fn(ctx, item)`` for every item on the persistent pool.

        The generic task-pool path: ``fn`` must be a picklable module-level
        callable; ``ctx`` supplies the worker's zero-copy view of the
        expression matrix plus parents/config/seed/checkpoint store.  The
        returned list is aligned with ``items`` regardless of dispatch
        permutation (see :attr:`dispatch_order_hook`) or completion order.

        ``schedule`` defaults to the executor's: ``dynamic`` pulls items
        one at a time from a shared queue (``imap_unordered``), ``static``
        maps contiguous equal-count chunks.  With the steal knob on and a
        multi-domain placement, dynamic dispatch instead feeds each NUMA
        domain its own affine queue (items land on their home domain, in
        dispatch order) and idle workers steal from the most-loaded
        foreign domain; ``home_domains`` optionally names each item's home
        domain (aligned with ``items``), defaulting to a balanced spread
        over the worker plan.  Steals are recorded in ``trace``
        (``worker_steals`` / ``worker_stolen_seconds`` / per-domain
        locality) and :attr:`stats`.  Stealing only moves work between
        workers — results are bit-identical because they are reassembled
        by item index.

        Worker busy seconds land in ``trace.worker_times`` when a trace is
        given.  A worker process dying mid-run raises
        :class:`WorkerCrashedError`; an exception *raised* by ``fn``
        propagates as itself.
        """
        items = list(items)
        if not items:
            return []
        schedule = schedule or self.schedule
        order = list(range(len(items)))
        if self.dispatch_order_hook is not None:
            order = list(self.dispatch_order_hook(order))
        results: list = [None] * len(items)

        if self.n_workers <= 1:
            ctx = self._serial_ctx()
            for index in order:
                results[index] = fn(ctx, items[index])
            if trace is not None:
                trace.mark_kernel(kernel_mod.consume_kernel_totals())
            return results

        pool = self._ensure_pool()
        if schedule == "dynamic" and self._steal_shared is not None:
            raw = self._dispatch_steal(pool, fn, order, items, home_domains)
            self.stats.tasks_dispatched += len(order)
            self._reduce_steal_results(raw, results, trace)
            return results

        busy: dict[int, float] = {}
        domain_busy: dict[int, float] = {}
        payloads = [(fn, index, items[index]) for index in order]
        if schedule == "static":
            cs = chunksize or max(1, math.ceil(len(payloads) / self.n_workers))
            handle = pool.map_async(_generic_run, payloads, chunksize=cs)
            raw = self._await_crash_aware(handle)
        else:
            it = pool.imap_unordered(_generic_run, payloads, chunksize or 1)
            raw = self._collect_crash_aware(it, len(payloads))
        self.stats.tasks_dispatched += len(payloads)
        for index, result, pid, domain, secs, kernel_totals in raw:
            results[index] = result
            busy[pid] = busy.get(pid, 0.0) + secs
            domain_busy[domain] = domain_busy.get(domain, 0.0) + secs
            if trace is not None:
                trace.mark_kernel(kernel_totals)
        if trace is not None:
            self._record_worker_times(trace, busy, domain_busy)
        return results

    # -- domain-affine steal dispatch ---------------------------------------
    def _dispatch_steal(self, pool, fn, order, items, home_domains):
        """Enqueue items on their home domains' queues, trigger the pool.

        Every item is enqueued before any trigger dispatches, and the
        shared ``pending`` counts advance under the lock only after the
        payloads are queued — a trigger therefore always finds the payload
        it reserved.  One trigger per item keeps the crash accounting of
        the shared-queue path: a worker dying mid-task strands exactly its
        reserved items, the result iterator stops short, and the standard
        init-counter polling raises :class:`WorkerCrashedError`.
        """
        queues, pending, lock = self._steal_shared
        counts = [0] * len(queues)
        if home_domains is None:
            spread = self.placement.spread_domains(len(order))
            homes = {index: spread[pos] for pos, index in enumerate(order)}
        else:
            homes = {index: int(home_domains[index]) for index in order}
        for index in order:
            domain = homes[index]
            queues[domain].put((fn, index, items[index], domain))
            counts[domain] += 1
        with lock:
            for domain, count in enumerate(counts):
                pending[domain] += count
        it = pool.imap_unordered(
            _steal_run, [self._steal_queue_timeout] * len(order), chunksize=1
        )
        try:
            return self._collect_steal_aware(it, len(order))
        except WorkerCrashedError:
            self._reset_steal()
            raise

    def _collect_steal_aware(self, it, n_expected: int) -> list:
        """Crash-aware collection of steal-trigger results.

        ``None`` results mark triggers that found every reservation taken
        (a sibling reserved an item and died before returning it); they
        never add up to ``n_expected``, so the exhausted iterator — or the
        init-counter overshoot the timeout polling sees first — surfaces
        the crash instead of a hang.
        """
        out: list = []
        seen = 0
        while len(out) < n_expected:
            if seen >= n_expected:
                raise WorkerCrashedError(
                    "steal dispatch lost work items to a crashed worker; "
                    "completed checkpoints remain valid — re-run to resume"
                )
            try:
                result = it.next(timeout=self.crash_poll_seconds)
            except _MpTimeoutError:
                self._check_workers_alive()
                continue
            seen += 1
            if result is not None:
                out.append(result)
        return out

    def _reset_steal(self) -> None:
        """Drain stranded payloads after a crashed steal dispatch.

        Restores the queues/pending invariant (both empty) so a retry on
        the same executor starts clean rather than reserving ghosts.
        """
        import queue as queue_mod

        queues, pending, lock = self._steal_shared
        with lock:
            for domain in range(len(queues)):
                pending[domain] = 0
        for q in queues:
            while True:
                try:
                    q.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    break

    def _reduce_steal_results(self, raw, results, trace) -> None:
        busy: dict[int, float] = {}
        domain_busy: dict[int, float] = {}
        steals: dict[int, int] = {}
        stolen_secs: dict[int, float] = {}
        local_by_domain: dict[int, float] = {}
        stolen_by_domain: dict[int, float] = {}
        for index, result, pid, domain, home, stolen, secs, kernel_totals in raw:
            results[index] = result
            busy[pid] = busy.get(pid, 0.0) + secs
            domain_busy[domain] = domain_busy.get(domain, 0.0) + secs
            if trace is not None:
                trace.mark_kernel(kernel_totals)
            if stolen:
                steals[pid] = steals.get(pid, 0) + 1
                stolen_secs[pid] = stolen_secs.get(pid, 0.0) + secs
                stolen_by_domain[home] = stolen_by_domain.get(home, 0.0) + secs
                self.stats.steals += 1
                self.stats.stolen_seconds += secs
            else:
                local_by_domain[home] = local_by_domain.get(home, 0.0) + secs
        if trace is not None:
            self._record_worker_times(
                trace,
                busy,
                domain_busy,
                steals=steals,
                stolen_secs=stolen_secs,
                local_by_domain=local_by_domain,
                stolen_by_domain=stolen_by_domain,
            )

    def _check_workers_alive(self) -> None:
        """Raise if the pool replaced a dead worker since the last check.

        The initializer counter only ever advances past ``n_workers`` when
        ``mp.Pool`` re-ran it for a replacement worker — i.e. an original
        worker exited abnormally and its in-flight task is lost for good.
        """
        if self._init_counter is not None and self.worker_inits() > self._expected_inits:
            raise WorkerCrashedError(
                f"{self.worker_inits() - self._expected_inits} pool worker(s) "
                "died mid-run; completed checkpoints remain valid — re-run to "
                "resume from them"
            )

    def _collect_crash_aware(self, it, n_expected: int) -> list:
        out = []
        while len(out) < n_expected:
            try:
                out.append(it.next(timeout=self.crash_poll_seconds))
            except _MpTimeoutError:
                self._check_workers_alive()
        return out

    def _await_crash_aware(self, handle) -> list:
        while True:
            try:
                return handle.get(timeout=self.crash_poll_seconds)
            except _MpTimeoutError:
                self._check_workers_alive()

    # -- task 1: the G GaneSH co-clustering runs ---------------------------
    def sample_ganesh_runs(self, n_runs: int, trace=None) -> list[np.ndarray]:
        """Task 1 on the pool: the G chains concurrently, resumable.

        Runs already checkpointed as ``ganesh_<g>.npz`` are loaded instead
        of re-executed; the rest dispatch through :meth:`submit_runs`
        (dynamic pulling — chain run-times vary stochastically).  The
        returned ensemble is bit-identical to the sequential loop because
        run ``g`` consumes only its replicated ``("ganesh", g)`` stream.
        """
        checkpoints = _GaneshCheckpoints(
            self.checkpoint_dir, self.seed, self.config, self.data.shape[0]
        )
        samples: dict[int, np.ndarray] = {}
        pending: list[int] = []
        for g in range(n_runs):
            labels = checkpoints.load(g)
            if labels is None:
                pending.append(g)
            else:
                samples[g] = labels
        if pending:
            results = self.submit_runs(
                _ganesh_run,
                [(g, trace is not None) for g in pending],
                schedule="dynamic",
                trace=trace,
            )
            # Merge per-run step records in ascending run order so the trace
            # is deterministic whatever the completion order was.
            for g, labels, steps in sorted(results, key=lambda r: r[0]):
                samples[g] = labels
                if trace is not None:
                    trace.steps.extend(steps)
        return [samples[g] for g in range(n_runs)]

    # -- fine-grained scoring (the inner level) ----------------------------
    def score_splits(self, node_records, trace=None):
        """Score a flat candidate-split list on the persistent pool.

        The persistent counterpart of :func:`repro.parallel.pool.
        score_splits_pool`: same task construction, same schedules, same
        bit-identical outputs — but the pool and the matrix transfer are
        amortized over every call of the executor's lifetime.
        """
        tasks, total = build_split_tasks(node_records, len(self.parents))
        log_scores = np.zeros(total, dtype=np.float64)
        steps = np.zeros(total, dtype=np.int64)
        accepted = np.zeros(total, dtype=bool)

        home_domains = None
        if self.n_workers <= 1 or total == 0:
            work_items, chunksize = tasks, None
        elif self.schedule == "static":
            # One chunk per worker, nested inside NUMA-domain blocks so a
            # chunk's output region lies in the shared pages its domain
            # first-touched (degenerates to plain block_bounds when flat).
            work_items = _subdivide(
                tasks, total, self.n_workers,
                bounds=self.placement.chunk_bounds(total),
            )
            chunksize = max(1, len(work_items) // self.n_workers)
        else:
            work_items = _subdivide(
                tasks, total, 4 * self.n_workers,
                bounds=self.placement.chunk_bounds(total, 4),
            )
            chunksize = 1
            if self._steal_possible():
                # Each chunk's home is the domain whose contiguous block of
                # the flat split range (the first-touched pages) holds it.
                home_domains = self._range_homes(
                    [
                        (t.out_offset, t.out_offset + (t.row1 - t.row0))
                        for t in work_items
                    ],
                    total,
                )
        results = self.submit_runs(
            _score_chunk_run,
            work_items,
            chunksize=chunksize,
            trace=trace,
            home_domains=home_domains,
        )

        for offset, sc, st, ac in results:
            log_scores[offset : offset + sc.size] = sc
            steps[offset : offset + st.size] = st
            accepted[offset : offset + ac.size] = ac
        return log_scores, steps, accepted

    def _range_homes(self, ranges, total: int) -> list[int]:
        """Home domain per ``[lo, hi)`` range of a flat work index: the
        domain whose contiguous block contains the range midpoint (the
        same rule as ``placement_lpt_schedule`` / ``placement_steal_schedule``)."""
        blocks = self.placement.domain_blocks(total)
        homes: list[int] = []
        for lo, hi in ranges:
            mid = (lo + hi) // 2
            homes.append(
                next((d for d, (a, b) in enumerate(blocks) if a <= mid < b), 0)
            )
        return homes

    def _record_worker_times(
        self,
        trace,
        busy: dict[int, float],
        domain_busy: dict[int, float] | None = None,
        steals: dict[int, int] | None = None,
        stolen_secs: dict[int, float] | None = None,
        local_by_domain: dict[int, float] | None = None,
        stolen_by_domain: dict[int, float] | None = None,
    ) -> None:
        for index, pid in enumerate(sorted(busy)):
            trace.mark_worker_time(f"worker-{index}", busy[pid])
            if steals and pid in steals:
                trace.mark_steal(
                    f"worker-{index}",
                    steals[pid],
                    (stolen_secs or {}).get(pid, 0.0),
                )
        for domain in sorted(domain_busy or ()):
            trace.mark_domain_time(f"node{domain}", domain_busy[domain])
        for domain in sorted(local_by_domain or ()):
            trace.mark_domain_locality(
                f"node{domain}", local_by_domain[domain], stolen=False
            )
        for domain in sorted(stolen_by_domain or ()):
            trace.mark_domain_locality(
                f"node{domain}", stolen_by_domain[domain], stolen=True
            )
        if trace.topology is None:
            trace.topology = self.placement.describe()

    # -- module learning (the outer level) ---------------------------------
    def learn_modules(self, modules_members, trace=None) -> list[Module]:
        """Learn every module, resuming from checkpoints where present."""
        checkpoints = _ModuleCheckpoints(self.checkpoint_dir, self.seed, self.config)
        modules: dict[int, Module] = {}
        pending: list[tuple[int, list[int]]] = []
        for module_id, members in enumerate(modules_members):
            module = checkpoints.load(module_id, members)
            if module is None:
                pending.append((module_id, list(members)))
            else:
                modules[module_id] = module

        mode = self._resolve_mode(pending)
        self.stats.mode = mode
        if not pending:
            pass
        elif self.n_workers <= 1:
            self._apply_kernel_chunk()
            scorer = _make_scorer(self.config)
            for module_id, members in pending:
                module = learn_single_module(
                    self.data,
                    module_id,
                    members,
                    self.parents,
                    scorer,
                    self.config,
                    self.seed,
                    trace,
                )
                checkpoints.store(module)
                modules[module_id] = module
        elif mode == "module":
            self._learn_modules_coarse(pending, modules, trace)
        else:
            self._learn_modules_fine(pending, modules, checkpoints, trace)
        return [modules[module_id] for module_id in range(len(modules_members))]

    def _resolve_mode(self, pending) -> str:
        if self.parallel_mode != "auto":
            return self.parallel_mode
        if self.n_workers <= 1:
            return "module"
        n_obs = self.data.shape[1]
        costs = [
            estimate_module_cost(members, n_obs, self.config)
            for _, members in pending
        ]
        return choose_mode(costs, self.n_workers)

    def _learn_modules_coarse(self, pending, modules, trace) -> None:
        """Module-level parallelism: whole modules on the pool.

        Workers write their own checkpoints (the initializer carries the
        checkpoint directory), so an interruption loses at most the modules
        currently in flight — the same guarantee as the sequential loop.
        """
        n_obs = self.data.shape[1]
        items = [
            (module_id, members, trace is not None)
            for module_id, members in pending
        ]
        if self.schedule == "dynamic":
            # Largest-module-first dispatch: greedy LPT via a shared queue
            # (per-domain LPT order once partitioned onto affine queues).
            items.sort(
                key=lambda item: (
                    -estimate_module_cost(item[1], n_obs, self.config),
                    item[0],
                )
            )
        home_domains = None
        if self.schedule == "dynamic" and self._steal_possible():
            # A module's home is the domain whose block of the matrix rows
            # (the pages it first-touched) holds the module's median member.
            n_vars = self.data.shape[0]
            home_domains = self._range_homes(
                [
                    (int(np.median(members)), int(np.median(members)) + 1)
                    for _, members, _ in items
                ],
                n_vars,
            )
        results = self.submit_runs(
            _module_run, items, trace=trace, home_domains=home_domains
        )

        for module_id, module, steps in sorted(results):
            modules[module_id] = module
            if trace is not None:
                trace.steps.extend(steps)

    def _learn_modules_fine(self, pending, modules, checkpoints, trace) -> None:
        """Split-level parallelism: driver-side trees, pooled flat scoring.

        Phase A builds every pending module's trees in the driver (each on
        its own module stream); phase B scores the concatenated candidate-
        split list of *all* modules in one pooled pass; phase C replays the
        sequential selection per module.  One flat list across modules is
        exactly the paper's load-balance argument for Algorithm 5.
        """
        states = []
        records = []
        for module_id, members in pending:
            trees, nodes, recs, mrng = tree_phase(
                self.data, module_id, members, self.config, self.seed, trace
            )
            states.append((module_id, members, trees, nodes, mrng))
            records.extend(recs)

        log_scores, steps, accepted = self.score_splits(records, trace=trace)

        offset = 0
        for module_id, members, trees, nodes, mrng in states:
            module, offset = select_phase(
                self.data,
                module_id,
                members,
                trees,
                nodes,
                self.parents,
                mrng,
                self.config,
                log_scores,
                steps,
                accepted,
                offset,
                trace,
            )
            checkpoints.store(module)
            modules[module_id] = module


#: Backward-compatible name from when the executor only learned modules
#: (Task 3); new code should say :class:`TaskPoolExecutor`.
ModuleExecutor = TaskPoolExecutor
