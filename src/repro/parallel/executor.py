"""Persistent shared-memory executor with module-level parallelism (Task 3).

The per-call pool in :mod:`repro.parallel.pool` parallelizes only the inner
level of Section 3.2 — the candidate-split scoring of nodes the driver has
already built — and pays for a fresh ``mp.Pool`` (plus a full expression-
matrix transfer) on every scoring call.  This module is the persistent
replacement used by :meth:`repro.core.learner.LemonTreeLearner
.learn_from_modules`:

* the expression matrix is placed in :mod:`multiprocessing.shared_memory`
  **once** per Task 3 and workers attach to it zero-copy;
* **one** worker pool survives across the whole task, whatever the number
  of modules or scoring calls;
* both of the paper's parallelism levels are available and chosen by a
  cost heuristic:

  - ``module`` mode — each worker learns *whole* modules (observation
    clustering, trees, split scoring, parent aggregation).  Because every
    module consumes only its own named streams (``("modules", id)``,
    ``("splits", id)``), concurrent modules yield bit-identical networks.
    Dynamic dispatch is largest-module-first (LPT), attacking the load
    imbalance the paper measures in Section 5.3.1;
  - ``split`` mode — trees are built in the driver and the flat candidate-
    split list of *all* pending modules is scored in one pooled pass (the
    fine-grained decomposition of Algorithm 5), for the few-huge-modules
    regime where module granularity cannot balance the load.

Checkpoints are written as soon as a module completes — from the worker in
module mode — so an interrupted parallel run resumes exactly like a
sequential one.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.config import LearnerConfig
from repro.core.learner import _hooks_for, _ModuleCheckpoints, learn_single_module
from repro.datatypes import Module
from repro.ganesh.coclustering import run_obs_only_ganesh
from repro.parallel import pool as pool_mod
from repro.parallel import poolutil
from repro.parallel.pool import _subdivide, build_split_tasks
from repro.parallel.trace import WorkTrace
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.split_score import SplitScorer
from repro.trees.hierarchy import build_tree_structure
from repro.trees.splits import NodeSplitScores, select_node_splits


def _make_scorer(config: LearnerConfig) -> SplitScorer:
    return SplitScorer(
        beta_grid=config.beta_grid,
        max_steps=config.max_sampling_steps,
        stop_repeats=config.sampling_stop_repeats,
    )


# -- shared-memory expression matrix --------------------------------------


class SharedMatrix:
    """The expression matrix in a shared-memory segment.

    Created once per executor; workers attach by name with no copy.  The
    creating process owns the segment and unlinks it on :meth:`close`.
    """

    def __init__(self, data: np.ndarray) -> None:
        data = np.ascontiguousarray(data, dtype=np.float64)
        self._shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        self.array = np.ndarray(data.shape, dtype=data.dtype, buffer=self._shm.buf)
        self.array[:] = data
        #: everything a worker needs to attach: (name, shape, dtype)
        self.spec = (self._shm.name, data.shape, data.dtype.str)

    def close(self) -> None:
        self.array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _attach_shared(spec) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a :class:`SharedMatrix` segment from a worker process."""
    name, shape, dtype = spec
    shm = shared_memory.SharedMemory(name=name)
    # Workers and driver share one resource-tracker process (the tracker fd
    # is inherited), and its name cache is a set — the workers' attach-time
    # registrations collapse into the driver's own, and the driver's unlink
    # on close() is the single cleanup point.  No per-worker unregister.
    return shm, np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)


# -- worker side -----------------------------------------------------------

# Executor-only worker state; the scoring state lives in pool._WORKER so the
# fine-grained split path reuses pool._score_task unchanged.
_STATE: dict = {}


def _executor_init(matrix_spec, parents, config, seed, checkpoint_dir, counter):
    """Pool initializer: attach the matrix once, install worker state.

    ``counter`` is a shared ``mp.Value`` bumped once per initialized worker;
    tests read it to assert the matrix was shipped exactly once per worker
    (i.e. the initializer ran once, never per task).
    """
    shm, data = _attach_shared(matrix_spec)
    pool_mod._init_worker(data, parents, config, seed)
    _STATE["shm"] = shm  # keep the mapping alive for the worker's lifetime
    _STATE["checkpoints"] = (
        _ModuleCheckpoints(checkpoint_dir, seed, config)
        if checkpoint_dir is not None
        else None
    )
    if counter is not None:
        with counter.get_lock():
            counter.value += 1


def _learn_module_task(item):
    """Learn one whole module in a worker (module-level parallelism)."""
    module_id, members, want_trace = item
    t0 = time.perf_counter()
    worker = pool_mod._WORKER
    # Recording (and shipping back) per-superstep work vectors is pure
    # overhead unless the driver was handed a trace.
    trace = WorkTrace() if want_trace else None
    module = learn_single_module(
        worker["data"],
        module_id,
        members,
        worker["parents"],
        worker["scorer"],
        worker["config"],
        worker["seed"],
        trace,
    )
    checkpoints = _STATE.get("checkpoints")
    if checkpoints is not None:
        checkpoints.store(module)
    steps = trace.steps if trace is not None else []
    return module_id, module, steps, os.getpid(), time.perf_counter() - t0


def _score_split_task(task):
    """Fine-grained split scoring plus worker identity and wall time."""
    t0 = time.perf_counter()
    result = pool_mod._score_task(task)
    return result, os.getpid(), time.perf_counter() - t0


# -- driver-side phases of split mode --------------------------------------


def tree_phase(data, module_id, members, config, seed, trace=None):
    """Step 1 of one module: observation clusterings agglomerated to trees.

    Returns ``(trees, nodes, records, mrng)`` where ``nodes`` lists
    ``(tree_index, node)`` in enumeration order, ``records`` are the node
    records :func:`repro.parallel.pool.build_split_tasks` consumes, and
    ``mrng`` is the module stream, positioned for split selection.
    """
    block = data[members]
    mrng = GibbsRandom(
        make_stream(seed, "modules", module_id, backend=config.rng_backend)
    )
    hooks = _hooks_for(trace)
    obs_samples = run_obs_only_ganesh(
        block,
        mrng,
        n_update_steps=config.tree_update_steps,
        burn_in=config.tree_burn_in,
        prior=config.prior,
        hooks=hooks,
    )
    trees = [
        build_tree_structure(block, labels, module_id, config.prior, hooks)
        for labels in obs_samples
    ]
    nodes = []
    records = []
    obs_base = 0
    for tree_index, tree in enumerate(trees):
        for node in tree.internal_nodes():
            nodes.append((tree_index, node))
            records.append(
                (module_id, node.observations, node.left.observations, obs_base)
            )
            obs_base += int(node.observations.size)
    return trees, nodes, records, mrng


def select_phase(
    data,
    module_id,
    members,
    trees,
    nodes,
    parents,
    mrng,
    config,
    log_scores,
    steps,
    accepted,
    offset,
    trace=None,
) -> tuple[Module, int]:
    """Steps 2-3 of one module from pre-computed flat score arrays.

    ``offset`` is the module's first row in the flat arrays; the new offset
    (one past the module's last split) is returned.  Consumes exactly the
    same ``mrng`` draws as the sequential learner, in the same order.
    """
    module = Module(module_id=module_id, members=list(members), trees=trees)
    split_base = 0
    all_weighted = []
    all_uniform = []
    for tree_index, node in nodes:
        n_splits = int(parents.size * node.observations.size)
        scores = NodeSplitScores(
            module_id=module_id,
            tree_index=tree_index,
            node=node,
            parents=parents,
            base_index=split_base,
            log_scores=log_scores[offset : offset + n_splits],
            steps=steps[offset : offset + n_splits],
            accepted=accepted[offset : offset + n_splits],
        )
        offset += n_splits
        split_base += n_splits
        if trace is not None:
            trace.record(
                "modules.split_scoring",
                scores.work_units(),
                n_collectives=1,
                words=2 * config.n_splits_per_node,
            )
        weighted, uniform = select_node_splits(
            data, scores, mrng, config.n_splits_per_node
        )
        node.weighted_splits = weighted
        node.uniform_splits = uniform
        all_weighted.extend(weighted)
        all_uniform.extend(uniform)

    from repro.trees.parents import accumulate_parent_scores

    module.weighted_parents = accumulate_parent_scores(all_weighted)
    module.uniform_parents = accumulate_parent_scores(all_uniform)
    if trace is not None and split_base:
        trace.record(
            "modules.parents",
            np.array([len(all_weighted) + len(all_uniform)], dtype=np.float64),
            n_collectives=2,
            words=len(all_weighted) + len(all_uniform),
        )
    return module, offset


def learn_modules_percall_pool(
    data,
    parents,
    modules_members,
    config: LearnerConfig,
    seed: int,
    n_workers: int,
    schedule: str = "dynamic",
) -> list[Module]:
    """Task 3 with the seed backend: a fresh ``mp.Pool`` per scoring call.

    Functionally identical to the executor (bit-identical networks), but
    one pool is constructed — and the expression matrix shipped — per
    module rather than once per task.  Kept as the measured baseline for
    the executor's speedup contract (``benchmarks/bench_executor.py``) and
    the CI pool-construction smoke test.
    """
    parents = np.asarray(parents, dtype=np.int64)
    modules: list[Module] = []
    for module_id, members in enumerate(modules_members):
        trees, nodes, records, mrng = tree_phase(
            data, module_id, list(members), config, seed
        )
        log_scores, steps, accepted = pool_mod.score_splits_pool(
            data, records, parents, config, seed, n_workers, schedule
        )
        module, _ = select_phase(
            data,
            module_id,
            members,
            trees,
            nodes,
            parents,
            mrng,
            config,
            log_scores,
            steps,
            accepted,
            0,
        )
        modules.append(module)
    return modules


# -- mode heuristic ---------------------------------------------------------


def estimate_module_cost(members, n_obs: int, config: LearnerConfig) -> float:
    """Crude relative cost of learning one module.

    Observation clustering scales with the block size ``|members| * m``;
    split scoring with the candidate-split count times the node size, i.e.
    roughly ``m^2`` per tree level times the parent count (identical across
    modules of one run, so it enters as a constant floor).  The estimate
    only needs to *rank* modules for LPT dispatch and flag dominating ones.
    """
    return float(len(members) * n_obs + n_obs * n_obs)


def choose_mode(costs, n_workers: int) -> str:
    """Pick module- vs split-level parallelism from estimated module costs.

    Module granularity wins whenever there are enough modules to keep every
    worker busy and no single module dominates the total (a module larger
    than twice the ideal per-worker share caps the speedup at the stragg-
    ler's run-time — the paper's Section 5.3.1 imbalance).  Otherwise the
    fine-grained flat split list is the only decomposition that balances.
    """
    costs = list(costs)
    if len(costs) < n_workers:
        return "split"
    total = sum(costs)
    if total > 0 and max(costs) * n_workers > 2.0 * total:
        return "split"
    return "module"


# -- statistics -------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Observable behaviour of one executor (asserted by tests)."""

    pools_constructed: int = 0
    matrix_transfers: int = 0
    tasks_dispatched: int = 0
    mode: str = ""
    n_workers: int = 1


# -- the executor -----------------------------------------------------------


class ModuleExecutor:
    """Persistent worker pool learning Task 3 modules in parallel.

    Usage::

        with ModuleExecutor(data, parents, config, seed) as executor:
            modules = executor.learn_modules(modules_members, trace=trace)

    The pool and the shared expression matrix are created lazily on the
    first parallel dispatch and live until :meth:`close` (or context exit),
    however many scoring calls Task 3 performs.
    """

    def __init__(
        self,
        data: np.ndarray,
        parents: np.ndarray,
        config: LearnerConfig,
        seed: int,
        *,
        n_workers: int | None = None,
        parallel_mode: str | None = None,
        schedule: str | None = None,
        checkpoint_dir=None,
        mp_context: str | None = None,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.parents = np.asarray(parents, dtype=np.int64)
        self.config = config
        self.seed = seed
        self.n_workers = (
            config.resolve_n_workers() if n_workers is None else int(n_workers)
        )
        self.parallel_mode = parallel_mode or config.parallel_mode
        self.schedule = schedule or config.schedule
        if self.schedule not in ("static", "dynamic"):
            raise ValueError("schedule must be 'static' or 'dynamic'")
        if self.parallel_mode not in ("auto", "module", "split"):
            raise ValueError("parallel_mode must be 'auto', 'module' or 'split'")
        self.checkpoint_dir = checkpoint_dir
        self.stats = ExecutorStats(n_workers=self.n_workers)
        self._mp_context = mp_context
        self._pool = None
        self._shared: SharedMatrix | None = None
        self._init_counter = None
        self._serial_ready = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ModuleExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def worker_inits(self) -> int:
        """How many worker initializations ran (== workers when the matrix
        was shipped exactly once per worker)."""
        if self._init_counter is None:
            return 0
        return int(self._init_counter.value)

    def _ensure_pool(self):
        """Create the shared matrix and the pool once, on first dispatch."""
        if self._pool is None:
            ctx = poolutil.pool_context(self._mp_context)
            self._shared = SharedMatrix(self.data)
            self._init_counter = ctx.Value("i", 0)
            poolutil.note_pool_construction()
            poolutil.note_matrix_transfer()
            self.stats.pools_constructed += 1
            self.stats.matrix_transfers += 1
            self._pool = ctx.Pool(
                self.n_workers,
                initializer=_executor_init,
                initargs=(
                    self._shared.spec,
                    self.parents,
                    self.config,
                    self.seed,
                    self.checkpoint_dir,
                    self._init_counter,
                ),
            )
        return self._pool

    def _ensure_serial(self) -> None:
        """Install the in-process scoring state (n_workers == 1 path)."""
        if not self._serial_ready:
            pool_mod._init_worker(self.data, self.parents, self.config, self.seed)
            self._serial_ready = True

    # -- fine-grained scoring (the inner level) ----------------------------
    def score_splits(self, node_records, trace=None):
        """Score a flat candidate-split list on the persistent pool.

        The persistent counterpart of :func:`repro.parallel.pool.
        score_splits_pool`: same task construction, same schedules, same
        bit-identical outputs — but the pool and the matrix transfer are
        amortized over every call of the executor's lifetime.
        """
        tasks, total = build_split_tasks(node_records, len(self.parents))
        log_scores = np.zeros(total, dtype=np.float64)
        steps = np.zeros(total, dtype=np.int64)
        accepted = np.zeros(total, dtype=bool)

        if self.n_workers <= 1 or total == 0:
            self._ensure_serial()
            results = [
                (pool_mod._score_task(t), os.getpid(), 0.0) for t in tasks
            ]
        else:
            pool = self._ensure_pool()
            if self.schedule == "static":
                work_items = _subdivide(tasks, total, self.n_workers)
                chunksize = max(1, len(work_items) // self.n_workers)
            else:
                work_items = _subdivide(tasks, total, 4 * self.n_workers)
                chunksize = 1
            results = list(
                pool.imap_unordered(_score_split_task, work_items, chunksize)
            )
            self.stats.tasks_dispatched += len(work_items)

        busy: dict[int, float] = {}
        for (offset, sc, st, ac), pid, secs in results:
            log_scores[offset : offset + sc.size] = sc
            steps[offset : offset + st.size] = st
            accepted[offset : offset + ac.size] = ac
            busy[pid] = busy.get(pid, 0.0) + secs
        if trace is not None and self.n_workers > 1:
            self._record_worker_times(trace, busy)
        return log_scores, steps, accepted

    def _record_worker_times(self, trace, busy: dict[int, float]) -> None:
        for index, pid in enumerate(sorted(busy)):
            trace.mark_worker_time(f"worker-{index}", busy[pid])

    # -- module learning (the outer level) ---------------------------------
    def learn_modules(self, modules_members, trace=None) -> list[Module]:
        """Learn every module, resuming from checkpoints where present."""
        checkpoints = _ModuleCheckpoints(self.checkpoint_dir, self.seed, self.config)
        modules: dict[int, Module] = {}
        pending: list[tuple[int, list[int]]] = []
        for module_id, members in enumerate(modules_members):
            module = checkpoints.load(module_id, members)
            if module is None:
                pending.append((module_id, list(members)))
            else:
                modules[module_id] = module

        mode = self._resolve_mode(pending)
        self.stats.mode = mode
        if not pending:
            pass
        elif self.n_workers <= 1:
            scorer = _make_scorer(self.config)
            for module_id, members in pending:
                module = learn_single_module(
                    self.data,
                    module_id,
                    members,
                    self.parents,
                    scorer,
                    self.config,
                    self.seed,
                    trace,
                )
                checkpoints.store(module)
                modules[module_id] = module
        elif mode == "module":
            self._learn_modules_coarse(pending, modules, trace)
        else:
            self._learn_modules_fine(pending, modules, checkpoints, trace)
        return [modules[module_id] for module_id in range(len(modules_members))]

    def _resolve_mode(self, pending) -> str:
        if self.parallel_mode != "auto":
            return self.parallel_mode
        if self.n_workers <= 1:
            return "module"
        n_obs = self.data.shape[1]
        costs = [
            estimate_module_cost(members, n_obs, self.config)
            for _, members in pending
        ]
        return choose_mode(costs, self.n_workers)

    def _learn_modules_coarse(self, pending, modules, trace) -> None:
        """Module-level parallelism: whole modules on the pool.

        Workers write their own checkpoints (the initializer carries the
        checkpoint directory), so an interruption loses at most the modules
        currently in flight — the same guarantee as the sequential loop.
        """
        pool = self._ensure_pool()
        n_obs = self.data.shape[1]
        items = [
            (module_id, members, trace is not None)
            for module_id, members in pending
        ]
        if self.schedule == "dynamic":
            # Largest-module-first dispatch: greedy LPT via a shared queue.
            items.sort(
                key=lambda item: (
                    -estimate_module_cost(item[1], n_obs, self.config),
                    item[0],
                )
            )
            results = list(pool.imap_unordered(_learn_module_task, items, 1))
        else:
            # Static: contiguous equal-count blocks of the module list.
            chunksize = math.ceil(len(items) / self.n_workers)
            results = pool.map(_learn_module_task, items, chunksize=chunksize)
        self.stats.tasks_dispatched += len(pending)

        busy: dict[int, float] = {}
        for module_id, module, steps, pid, secs in sorted(results):
            modules[module_id] = module
            busy[pid] = busy.get(pid, 0.0) + secs
            if trace is not None:
                trace.steps.extend(steps)
        if trace is not None:
            self._record_worker_times(trace, busy)

    def _learn_modules_fine(self, pending, modules, checkpoints, trace) -> None:
        """Split-level parallelism: driver-side trees, pooled flat scoring.

        Phase A builds every pending module's trees in the driver (each on
        its own module stream); phase B scores the concatenated candidate-
        split list of *all* modules in one pooled pass; phase C replays the
        sequential selection per module.  One flat list across modules is
        exactly the paper's load-balance argument for Algorithm 5.
        """
        states = []
        records = []
        for module_id, members in pending:
            trees, nodes, recs, mrng = tree_phase(
                self.data, module_id, members, self.config, self.seed, trace
            )
            states.append((module_id, members, trees, nodes, mrng))
            records.extend(recs)

        log_scores, steps, accepted = self.score_splits(records, trace=trace)

        offset = 0
        for module_id, members, trees, nodes, mrng in states:
            module, offset = select_phase(
                self.data,
                module_id,
                members,
                trees,
                nodes,
                self.parents,
                mrng,
                self.config,
                log_scores,
                steps,
                accepted,
                offset,
                trace,
            )
            checkpoints.store(module)
            modules[module_id] = module
