"""Adapter exposing a real MPI communicator through this package's comm API.

The SPMD learner (:mod:`repro.parallel.engine`) is written against the
small collective interface of :class:`repro.parallel.comm.ThreadComm`.
This adapter implements the same interface over ``mpi4py``, so on an
actual cluster the identical learner code runs under real MPI::

    # mpirun -n 64 python my_driver.py
    from mpi4py import MPI
    from repro.parallel.mpi_adapter import MpiComm
    from repro.parallel.engine import ParallelLearner

    comm = MpiComm(MPI.COMM_WORLD)
    network, work = ParallelLearner(config).learn_with_comm(comm, matrix, seed)

mpi4py is not a dependency of this package (and is absent in the
reproduction environment — see DESIGN.md); the adapter imports it lazily
and raises a clear error if unavailable.  The contract tests in
``tests/test_mpi_adapter.py`` run the adapter against mpi4py when present
and otherwise verify interface parity statically.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


class MpiComm:
    """One rank's handle on an mpi4py communicator."""

    def __init__(self, mpi_comm=None) -> None:
        if mpi_comm is None:
            try:
                from mpi4py import MPI
            except ImportError as exc:  # pragma: no cover - env without MPI
                raise RuntimeError(
                    "mpi4py is not installed; MpiComm requires a real MPI "
                    "environment (use ThreadComm/SerialComm otherwise)"
                ) from exc
            mpi_comm = MPI.COMM_WORLD
        self._comm = mpi_comm
        self.rank = int(mpi_comm.Get_rank())
        self.size = int(mpi_comm.Get_size())

    # -- collectives (pickle-based lowercase mpi4py API: the payloads here
    # are small control values; bulk arrays use allgather_concat below) ---
    def barrier(self) -> None:
        self._comm.Barrier()

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._comm.bcast(value, root=root)

    def allgather(self, value: Any) -> list[Any]:
        return self._comm.allgather(value)

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        return self._comm.gather(value, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        if op is None:
            parts = self._comm.allgather(value)
            result = parts[0]
            for part in parts[1:]:
                result = result + part
            return result
        # Deterministic rank-ordered reduction (matches ThreadComm): MPI's
        # built-in ops don't guarantee an evaluation order, so reduce from
        # the gathered list.
        parts = self._comm.allgather(value)
        result = parts[0]
        for part in parts[1:]:
            result = op(result, part)
        return result

    def allreduce_max_with_index(
        self, value: float, payload: Any = None
    ) -> tuple[float, int, Any]:
        parts = self._comm.allgather((value, self.rank, payload))
        return max(parts, key=lambda item: (item[0], -item[1]))

    def exscan(self, value: Any) -> Any:
        parts = self._comm.allgather(value)
        if self.rank == 0:
            if isinstance(value, np.ndarray):
                return np.zeros_like(value)
            return type(value)()
        result = parts[0]
        for part in parts[1 : self.rank]:
            result = result + part
        return result

    def allgather_concat(self, array: np.ndarray) -> np.ndarray:
        """Allgatherv of per-rank arrays concatenated in rank order."""
        array = np.ascontiguousarray(array)
        counts = self._comm.allgather(int(array.size))
        if sum(counts) == 0:
            return np.zeros(0, dtype=array.dtype)
        try:
            from mpi4py import MPI  # buffer path when dtype maps to MPI

            recv = np.empty(sum(counts), dtype=array.dtype)
            self._comm.Allgatherv(array, (recv, counts))
            return recv
        except Exception:
            parts = self._comm.allgather(array)
            return np.concatenate([np.asarray(p) for p in parts])

    def split(self, color: Any) -> "MpiComm":
        colors = self._comm.allgather(color)
        distinct = sorted(set(colors), key=repr)
        return MpiComm(self._comm.Split(distinct.index(color), self.rank))


#: names every communicator implementation must provide (contract checked
#: in tests so the engine stays runnable on all of them)
COMM_INTERFACE = (
    "rank",
    "size",
    "barrier",
    "bcast",
    "allgather",
    "gather",
    "allreduce",
    "allreduce_max_with_index",
    "exscan",
    "allgather_concat",
    "split",
)
