"""Shared process-pool plumbing and instrumentation.

Both multiprocessing backends — the per-call :func:`repro.parallel.pool.
score_splits_pool` and the persistent :class:`repro.parallel.executor.
ModuleExecutor` — construct pools through this module so that

* the start method degrades gracefully: ``fork`` where available (Linux),
  ``spawn`` otherwise (macOS/Windows), with worker state always shipped
  explicitly through pool initargs so both methods behave identically;
* pool constructions and expression-matrix transfers are counted.  The
  counters let tests assert the executor's central contract — one pool and
  one matrix transfer per Task 3 — without timing, and let the CI smoke
  test show the persistent executor beating the per-call pool on
  construction count deterministically.
"""

from __future__ import annotations

import multiprocessing as mp

_COUNTERS = {"pool_constructions": 0, "matrix_transfers": 0}


def pool_context(method: str | None = None) -> mp.context.BaseContext:
    """The multiprocessing context to build pools from.

    ``fork`` is preferred (workers inherit the parent's address space, so
    initargs cost nothing extra); where it is unavailable the ``spawn``
    method is used and the same initargs are pickled to each fresh
    interpreter.  Pass ``method`` to force a specific start method.
    """
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def note_pool_construction(n: int = 1) -> None:
    _COUNTERS["pool_constructions"] += n


def note_matrix_transfer(n: int = 1) -> None:
    _COUNTERS["matrix_transfers"] += n


def counters() -> dict[str, int]:
    """A snapshot of the instrumentation counters."""
    return dict(_COUNTERS)


def reset_counters() -> None:
    for key in _COUNTERS:
        _COUNTERS[key] = 0
