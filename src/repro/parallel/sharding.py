"""Multi-node sharded execution: a process-node tier above the executor.

The paper's headline experiments run on a 171-node cluster (Section 5,
Figs. 5-6); everything below :class:`repro.parallel.executor.
TaskPoolExecutor` is single-host.  This module adds the missing tier: a
driver partitions Task 1 GaneSH chains and Task 3 modules across N
"nodes", each node runs its *own* shared-memory worker pool locally and
ships back scored results, and the driver reassembles them by unit id.
Because every work unit consumes only its named random streams
(``("ganesh", g)``, ``("modules", id)``, ``("splits", id)``), where a unit
executes — which node, which worker, stolen or not — can never change the
learned network: bit-identity holds for any shard count x worker count,
the same consistency property the worker-level grids already assert.

Two transports speak one length-prefixed message protocol:

* ``socket`` — each node is a real OS process (spawn context) connected
  to the driver over a localhost TCP socket.  Frames are an 8-byte
  big-endian length followed by a pickled message tuple.  A node killed
  mid-run surfaces as :class:`NodeCrashedError` (the EOF tears the
  frame), mirroring the pool's :class:`~repro.parallel.executor.
  WorkerCrashedError`; checkpoints the dead run wrote remain valid and a
  re-run resumes from them.
* ``thread`` — the in-process fallback: nodes are threads exchanging the
  *same pickled frames* through :class:`repro.parallel.comm.ThreadComm`
  point-to-point mailboxes, so byte accounting and protocol behaviour
  match the socket backend without any processes.

At startup the driver measures echo round-trips over the real channels
and fits the :class:`~repro.parallel.costmodel.MachineModel` ``tau``/
``mu`` from them (:func:`~repro.parallel.costmodel.
calibrate_from_roundtrips`), installing the result process-wide so the
placement schedulers' remote-steal charge derives from the *measured*
interconnect instead of the hardcoded defaults.

Dispatch is LPT over the executor's cost model onto per-node queues with
cross-node stealing: each node's driver thread drains its own queue
largest-first and, when empty, steals a batch from the most-loaded
foreign queue — work conserving, so a slow node cannot strand work.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import LearnerConfig
from repro.parallel.costmodel import (
    MachineModel,
    calibrate_from_roundtrips,
    set_calibrated_model,
)

#: 8-byte big-endian frame length prefix
_FRAME_HEADER = struct.Struct("!Q")

#: refuse frames above this size (a corrupt header must not allocate 2^60
#: bytes); the expression matrices this pipeline ships are far smaller
MAX_FRAME_BYTES = 1 << 34

#: words (8 bytes each) carried each way by a large calibration echo
CALIBRATION_WORDS = 64 * 1024
#: echo repetitions per node (medians over these resist scheduler jitter)
CALIBRATION_SMALL_ECHOES = 5
CALIBRATION_LARGE_ECHOES = 3


class NodeCrashedError(RuntimeError):
    """A shard node died mid-run (its channel tore mid-protocol).

    The node-tier mirror of :class:`repro.parallel.executor.
    WorkerCrashedError`: checkpoints written before the crash remain
    valid, and re-running the same call executes only the missing units.
    """


# -- frame codec -------------------------------------------------------------


def encode_frame(message) -> bytes:
    """One wire frame: 8-byte big-endian length + pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload)) + payload


def decode_frame_length(header: bytes) -> int:
    """The payload length announced by an 8-byte frame header."""
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise NodeCrashedError(
            f"frame header announces {length} bytes (corrupt stream?)"
        )
    return length


# -- channels ----------------------------------------------------------------


class SocketChannel:
    """One endpoint of the length-prefixed socket protocol.

    Counts bytes and wall seconds in both directions so the driver can
    attribute transfer cost per node.  Any connection failure — EOF
    mid-frame, a reset from a SIGKILLed peer — raises
    :class:`NodeCrashedError`.
    """

    def __init__(self, sock: socket.socket, peer: str = "peer") -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self.peer = peer
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_seconds = 0.0
        self.recv_seconds = 0.0

    def send_msg(self, message) -> None:
        frame = encode_frame(message)
        t0 = time.perf_counter()
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise NodeCrashedError(
                f"{self.peer} connection failed during send: {exc}"
            ) from exc
        self.send_seconds += time.perf_counter() - t0
        self.bytes_sent += len(frame)

    def recv_msg(self):
        t0 = time.perf_counter()
        header = self._recv_exact(_FRAME_HEADER.size)
        payload = self._recv_exact(decode_frame_length(header))
        self.recv_seconds += time.perf_counter() - t0
        self.bytes_received += len(header) + len(payload)
        return pickle.loads(payload)

    def _recv_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            try:
                chunk = self._sock.recv(min(1 << 20, n - len(chunks)))
            except OSError as exc:
                raise NodeCrashedError(
                    f"{self.peer} connection failed during recv: {exc}"
                ) from exc
            if not chunk:
                raise NodeCrashedError(
                    f"{self.peer} closed the connection mid-protocol "
                    "(node process died?)"
                )
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already gone
            pass


class ThreadChannel:
    """The same frame protocol over in-process ``ThreadComm`` mailboxes.

    Messages are still pickled to bytes before crossing the mailbox, so
    byte accounting — and anything unpicklable failing loudly — behaves
    exactly as on the socket backend.
    """

    def __init__(self, comm, peer_rank: int, peer: str = "peer") -> None:
        self._comm = comm
        self._peer_rank = peer_rank
        self.peer = peer
        #: recv wait bound; a node thread that died without replying
        #: surfaces as NodeCrashedError instead of a hang
        self.recv_timeout: float | None = 600.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.send_seconds = 0.0
        self.recv_seconds = 0.0

    def send_msg(self, message) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        t0 = time.perf_counter()
        self._comm.send(payload, self._peer_rank)
        self.send_seconds += time.perf_counter() - t0
        self.bytes_sent += _FRAME_HEADER.size + len(payload)

    def recv_msg(self):
        t0 = time.perf_counter()
        try:
            payload = self._comm.recv(self._peer_rank, timeout=self.recv_timeout)
        except TimeoutError as exc:
            raise NodeCrashedError(
                f"{self.peer} sent no reply within {self.recv_timeout} s "
                "(node thread died?)"
            ) from exc
        self.recv_seconds += time.perf_counter() - t0
        self.bytes_received += _FRAME_HEADER.size + len(payload)
        return pickle.loads(payload)

    def close(self) -> None:
        pass


# -- node side ---------------------------------------------------------------


def _node_serve(channel, node_id: int) -> None:
    """One shard node's request loop (both backends).

    Messages are tuples ``(kind, ...)``:

    * ``("init", spec)`` — build this node's local
      :class:`~repro.parallel.executor.TaskPoolExecutor` (its own pool,
      its own shared-memory matrix; the serial in-process path when the
      node runs one worker) -> ``("ok", {"pid": ...})``;
    * ``("echo", payload)`` — calibration round-trip, payload bounced
      back verbatim -> ``("echo", payload)``;
    * ``("run", task_kind, items)`` — execute the items through the
      named runner from :data:`repro.parallel.executor.TASK_RUNNERS`
      (the wire carries runner *names*, never pickled code) ->
      ``("result", {...})``, or ``("error", {...})`` on a task
      exception — the node keeps serving;
    * ``("close",)`` — tear the local executor down -> ``("bye", {})``.

    A torn channel (the driver died) exits the loop; the ``finally``
    still closes the local executor so no pool or shared segment leaks.
    """
    from repro.parallel.executor import TASK_RUNNERS, TaskPoolExecutor

    executor = None
    try:
        while True:
            try:
                message = channel.recv_msg()
            except NodeCrashedError:
                break
            kind = message[0]
            if kind == "init":
                spec = message[1]
                executor = TaskPoolExecutor(
                    spec["data"],
                    spec["parents"],
                    spec["config"],
                    spec["seed"],
                    n_workers=spec["n_workers"],
                    checkpoint_dir=spec["checkpoint_dir"],
                    mp_context=spec.get("mp_context"),
                )
                channel.send_msg(("ok", {"pid": os.getpid()}))
            elif kind == "echo":
                channel.send_msg(("echo", message[1]))
            elif kind == "run":
                task_kind, items = message[1], message[2]
                runner = TASK_RUNNERS.get(task_kind)
                if runner is None or executor is None:
                    channel.send_msg(
                        ("error", {
                            "type": "ProtocolError",
                            "message": f"bad run request {task_kind!r} "
                                       f"(initialized: {executor is not None})",
                        })
                    )
                    continue
                t0 = time.perf_counter()
                try:
                    results = executor.submit_runs(
                        runner, items, schedule="dynamic"
                    )
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    channel.send_msg(
                        ("error", {"type": type(exc).__name__, "message": str(exc)})
                    )
                else:
                    channel.send_msg(
                        ("result", {
                            "results": results,
                            "seconds": time.perf_counter() - t0,
                            "inits": executor.worker_inits(),
                        })
                    )
            elif kind == "close":
                channel.send_msg(("bye", {}))
                break
            else:
                channel.send_msg(
                    ("error", {
                        "type": "ProtocolError",
                        "message": f"unknown message kind {kind!r}",
                    })
                )
    finally:
        if executor is not None:
            executor.close()
        channel.close()


def _socket_node_main(port: int, node_id: int, token: str) -> None:
    """Entry point of one spawned socket-backend node process."""
    sock = socket.create_connection(("127.0.0.1", port))
    channel = SocketChannel(sock, peer="driver")
    channel.send_msg(
        ("hello", {"node_id": node_id, "token": token, "pid": os.getpid()})
    )
    _node_serve(channel, node_id)


# -- driver-side shard planning ---------------------------------------------


def lpt_partition(costs, n_parts: int) -> list[list[int]]:
    """LPT assignment of item indices onto ``n_parts`` shards.

    Items are taken largest-cost-first (ties on the lower index) and each
    lands on the currently least-loaded shard (ties on the lower shard),
    so the plan is deterministic; each shard's list keeps that descending
    cost order — its dispatch queue drains largest-first, the same greedy
    the pool's dynamic module dispatch uses.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be at least 1")
    costs = np.asarray(costs, dtype=np.float64)
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    loads = np.zeros(n_parts, dtype=np.float64)
    for index in np.argsort(-costs, kind="stable"):
        shard = int(np.argmin(loads))
        parts[shard].append(int(index))
        loads[shard] += costs[index]
    return parts


@dataclass
class ShardStats:
    """Observable behaviour of one sharded executor (asserted by tests)."""

    n_nodes: int = 1
    n_workers: int = 1
    #: one pool + one matrix transfer per node (each node pays the same
    #: once-per-learn cost the single-host executor does)
    pools_constructed: int = 0
    matrix_transfers: int = 0
    tasks_dispatched: int = 0
    #: batches a node pulled from a foreign shard queue
    node_steals: int = 0
    #: channel traffic, both directions, summed over nodes
    transfer_bytes: int = 0
    transfer_seconds: float = 0.0
    mode: str = ""


# -- the sharded executor ----------------------------------------------------


class ShardedExecutor:
    """Drive N shard nodes through the frame protocol (driver side).

    Interface-compatible with :class:`~repro.parallel.executor.
    TaskPoolExecutor` where the learner touches it
    (:meth:`sample_ganesh_runs`, :meth:`learn_modules`, :meth:`close`,
    ``stats``, ``worker_inits``), so
    :class:`repro.core.learner.LemonTreeLearner` routes through it
    transparently when ``config.parallel.n_nodes > 1``.

    Checkpoint handling is split: the *driver* preloads finished units
    (so a resumed run dispatches only pending work), the *nodes* write
    new checkpoints as units complete — exactly the single-host
    executor's guarantee, extended across the node tier.
    """

    def __init__(
        self,
        data: np.ndarray,
        parents: np.ndarray,
        config: LearnerConfig,
        seed: int,
        *,
        n_nodes: int | None = None,
        node_backend: str | None = None,
        n_workers: int | None = None,
        checkpoint_dir=None,
    ) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.parents = np.asarray(parents, dtype=np.int64)
        self.config = config
        self.seed = seed
        self.n_nodes = (
            config.parallel.n_nodes if n_nodes is None else int(n_nodes)
        )
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be at least 1")
        self.node_backend = node_backend or config.parallel.node_backend
        if self.node_backend not in ("socket", "thread"):
            raise ValueError("node_backend must be 'socket' or 'thread'")
        self.workers_per_node = (
            config.parallel.resolve_n_workers()
            if n_workers is None
            else max(1, int(n_workers))
        )
        self.checkpoint_dir = (
            checkpoint_dir
            if checkpoint_dir is not None
            else config.parallel.checkpoint_dir
        )
        #: total workers across the tier (what the learner reports)
        self.n_workers = self.n_nodes * self.workers_per_node
        self.stats = ShardStats(
            n_nodes=self.n_nodes, n_workers=self.n_workers
        )
        #: the measured tau/mu fit (populated by :meth:`start`)
        self.calibration: dict | None = None
        #: node process pids (socket backend; thread nodes report the
        #: driver's own pid) — the failure-injection tests kill these
        self.node_pids: list[int] = []
        self._channels: list | None = None
        self._procs: list = []
        self._threads: list = []
        self._node_inits: list[int] = [0] * self.n_nodes
        self._lock = threading.Lock()
        self._prev_model: MachineModel | None | bool = False  # False = unset
        self._failed = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Launch the nodes, ship the init spec, calibrate tau/mu.

        Idempotent; :meth:`sample_ganesh_runs` / :meth:`learn_modules`
        call it lazily, tests call it eagerly to learn the node pids.
        """
        if self._channels is not None:
            return
        if self.node_backend == "socket":
            channels = self._start_socket_nodes()
        else:
            channels = self._start_thread_nodes()
        checkpoint_dir = (
            str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
        )
        for node_id, channel in enumerate(channels):
            channel.send_msg(
                ("init", {
                    "data": self.data,
                    "parents": self.parents,
                    "config": self.config,
                    "seed": self.seed,
                    "checkpoint_dir": checkpoint_dir,
                    "n_workers": self.workers_per_node,
                    "node_id": node_id,
                    # Thread-backend nodes live inside the (multi-threaded)
                    # driver process: forking a pool there can capture a
                    # lock mid-held and deadlock the child, so those pools
                    # must spawn.  Socket nodes are fresh single-threaded
                    # processes where the cheaper fork default is safe.
                    "mp_context": (
                        "spawn" if self.node_backend == "thread" else None
                    ),
                })
            )
        for node_id, channel in enumerate(channels):
            tag, body = channel.recv_msg()
            if tag != "ok":
                raise NodeCrashedError(
                    f"node {node_id} failed to initialize: {body}"
                )
            if self.node_backend == "thread":
                self.node_pids.append(os.getpid())
        self._channels = channels
        self.stats.pools_constructed = self.n_nodes
        self.stats.matrix_transfers = self.n_nodes
        self._calibrate()

    def _start_socket_nodes(self) -> list[SocketChannel]:
        import multiprocessing

        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(120.0)
        port = listener.getsockname()[1]
        token = os.urandom(16).hex()
        ctx = multiprocessing.get_context("spawn")
        self._procs = [
            ctx.Process(
                target=_socket_node_main,
                args=(port, node_id, token),
                daemon=False,  # nodes run their own (daemonic) pools
                name=f"shard-node-{node_id}",
            )
            for node_id in range(self.n_nodes)
        ]
        for proc in self._procs:
            proc.start()
        channels: list[SocketChannel | None] = [None] * self.n_nodes
        pids: list[int] = [0] * self.n_nodes
        try:
            for _ in range(self.n_nodes):
                conn, _addr = listener.accept()
                channel = SocketChannel(conn, peer="node")
                tag, hello = channel.recv_msg()
                if tag != "hello" or hello.get("token") != token:
                    raise NodeCrashedError(
                        "unexpected connection during node handshake"
                    )
                node_id = int(hello["node_id"])
                channel.peer = f"node {node_id}"
                channels[node_id] = channel
                pids[node_id] = int(hello["pid"])
        except socket.timeout as exc:
            raise NodeCrashedError(
                "shard node(s) failed to connect within the handshake timeout"
            ) from exc
        finally:
            listener.close()
        self.node_pids = pids
        return list(channels)

    def _start_thread_nodes(self) -> list[ThreadChannel]:
        from repro.parallel.comm import ThreadComm, _Context

        channels = []
        for node_id in range(self.n_nodes):
            context = _Context(2)
            driver_channel = ThreadChannel(
                ThreadComm(context, 0), peer_rank=1, peer=f"node {node_id}"
            )
            node_channel = ThreadChannel(
                ThreadComm(context, 1), peer_rank=0, peer="driver"
            )
            thread = threading.Thread(
                target=_node_serve,
                args=(node_channel, node_id),
                name=f"shard-node-{node_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            channels.append(driver_channel)
        return channels

    def _calibrate(self) -> None:
        """Fit tau/mu from echo round-trips over the live channels."""
        small_rtts: list[float] = []
        large_rtts: list[float] = []
        blob = b"\0" * (CALIBRATION_WORDS * 8)
        for channel in self._channels:
            for _ in range(CALIBRATION_SMALL_ECHOES):
                t0 = time.perf_counter()
                channel.send_msg(("echo", b""))
                channel.recv_msg()
                small_rtts.append(time.perf_counter() - t0)
            for _ in range(CALIBRATION_LARGE_ECHOES):
                t0 = time.perf_counter()
                channel.send_msg(("echo", blob))
                channel.recv_msg()
                large_rtts.append(time.perf_counter() - t0)
        model = calibrate_from_roundtrips(
            small_rtts, large_rtts, CALIBRATION_WORDS
        )
        self._prev_model = set_calibrated_model(model)
        self.calibration = {
            "tau": model.tau,
            "mu": model.mu,
            "n_nodes": self.n_nodes,
            "node_backend": self.node_backend,
            "large_words": CALIBRATION_WORDS,
            "small_echoes": len(small_rtts),
            "large_echoes": len(large_rtts),
        }

    def worker_inits(self) -> int:
        """Worker initializations summed over the nodes' local pools."""
        return sum(self._node_inits)

    def close(self) -> None:
        """Tear the tier down: close nodes, reap processes, restore the
        process-wide machine model the calibration displaced."""
        channels, self._channels = self._channels, None
        try:
            if channels is not None:
                for channel in channels:
                    try:
                        channel.send_msg(("close",))
                        channel.recv_msg()  # ("bye", {})
                    except NodeCrashedError:
                        pass
                for channel in channels:
                    channel.close()
        finally:
            for proc in self._procs:
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - hung node
                    proc.terminate()
                    proc.join(timeout=10.0)
            self._procs = []
            for thread in self._threads:
                thread.join(timeout=30.0)
            self._threads = []
            if self._prev_model is not False:
                set_calibrated_model(self._prev_model)
                self._prev_model = False

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, task_kind: str, ids, payloads, costs, trace):
        """Run the units on the shard tier; returns ``{id: result}``.

        LPT over ``costs`` fills per-node queues; one driver thread per
        node drains its own queue in batches of that node's worker count
        and steals from the most-loaded foreign queue when its own runs
        dry.  Results are keyed by unit id, so the assignment — and any
        steal — cannot affect what the caller reassembles.
        """
        self.start()
        if self._failed:
            raise NodeCrashedError(
                "a shard node died earlier in this executor's lifetime; "
                "build a fresh executor to resume from checkpoints"
            )
        n = self.n_nodes
        plan = lpt_partition(costs, n)
        queues = [deque(part) for part in plan]
        batch_size = max(1, self.workers_per_node)
        results: dict = {}
        errors: list[BaseException] = []
        busy = [0.0] * n
        steals = [0] * n
        before = [
            (ch.bytes_sent + ch.bytes_received,
             ch.send_seconds + ch.recv_seconds)
            for ch in self._channels
        ]

        def pump(node: int) -> None:
            channel = self._channels[node]
            while True:
                with self._lock:
                    if errors:
                        return
                    if queues[node]:
                        source, stolen = node, False
                    else:
                        source = max(
                            range(n), key=lambda d: (len(queues[d]), -d)
                        )
                        if not queues[source]:
                            return  # every queue drained
                        stolen = True
                    count = min(batch_size, len(queues[source]))
                    take = [queues[source].popleft() for _ in range(count)]
                try:
                    channel.send_msg(
                        ("run", task_kind, [payloads[i] for i in take])
                    )
                    tag, body = channel.recv_msg()
                except NodeCrashedError as exc:
                    with self._lock:
                        errors.append(exc)
                        self._failed = True
                    return
                if tag != "result":
                    with self._lock:
                        errors.append(
                            RuntimeError(
                                f"shard node {node} task failed: "
                                f"{body.get('type')}: {body.get('message')}"
                            )
                        )
                    return
                with self._lock:
                    for index, result in zip(take, body["results"]):
                        results[ids[index]] = result
                    busy[node] += float(body["seconds"])
                    self._node_inits[node] = int(body.get("inits", 0))
                    if stolen:
                        steals[node] += 1

        threads = [
            threading.Thread(target=pump, args=(node,), name=f"shard-pump-{node}")
            for node in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        self.stats.tasks_dispatched += len(ids)
        self.stats.node_steals += sum(steals)
        for node, channel in enumerate(self._channels):
            b0, s0 = before[node]
            delta_bytes = (
                channel.bytes_sent + channel.bytes_received - b0
            )
            delta_seconds = (
                channel.send_seconds + channel.recv_seconds - s0
            )
            self.stats.transfer_bytes += delta_bytes
            self.stats.transfer_seconds += delta_seconds
            if trace is not None:
                trace.mark_node_transfer(
                    f"shard{node}", delta_bytes, delta_seconds
                )
        if trace is not None:
            for node in range(n):
                trace.mark_node_time(f"shard{node}", busy[node])
                if steals[node]:
                    trace.mark_node_steal(f"shard{node}", steals[node])
            if trace.calibration is None:
                trace.calibration = self.calibration
            if trace.topology is None:
                trace.topology = {
                    "shard_nodes": n,
                    "node_backend": self.node_backend,
                    "workers_per_node": self.workers_per_node,
                }

        if errors:
            for error in errors:
                if isinstance(error, NodeCrashedError):
                    raise error
            raise errors[0]
        return results

    # -- task 1: the G GaneSH co-clustering runs ---------------------------
    def sample_ganesh_runs(self, n_runs: int, trace=None) -> list[np.ndarray]:
        """Task 1 sharded: chains LPT-spread over the nodes, resumable.

        Chain run-times are statistically exchangeable, so the LPT plan
        degenerates to an even spread; checkpointed runs are preloaded
        driver-side and only pending chains cross the wire.
        """
        from repro.core.learner import _GaneshCheckpoints

        checkpoints = _GaneshCheckpoints(
            self.checkpoint_dir, self.seed, self.config, self.data.shape[0]
        )
        samples: dict[int, np.ndarray] = {}
        pending: list[int] = []
        for g in range(n_runs):
            labels = checkpoints.load(g)
            if labels is None:
                pending.append(g)
            else:
                samples[g] = labels
        if pending:
            results = self._dispatch(
                "ganesh",
                pending,
                [(g, trace is not None) for g in pending],
                [1.0] * len(pending),
                trace,
            )
            # Ascending run order keeps the merged trace deterministic
            # whatever the completion order was.
            for g in sorted(results):
                _run, labels, steps = results[g]
                samples[g] = labels
                if trace is not None:
                    trace.steps.extend(steps)
        return [samples[g] for g in range(n_runs)]

    # -- task 3: module learning -------------------------------------------
    def learn_modules(self, modules_members, trace=None):
        """Task 3 sharded: whole modules LPT-spread over the nodes.

        Module granularity is exact across machines (each module consumes
        only its own streams — Segal et al.'s per-module decomposability),
        so the node tier always shards per module; each node's local pool
        still applies its own mode heuristic *within* its shard.
        """
        from repro.core.learner import _ModuleCheckpoints

        checkpoints = _ModuleCheckpoints(
            self.checkpoint_dir, self.seed, self.config
        )
        modules: dict = {}
        pending: list[tuple[int, list[int]]] = []
        for module_id, members in enumerate(modules_members):
            module = checkpoints.load(module_id, list(members))
            if module is None:
                pending.append((module_id, list(members)))
            else:
                modules[module_id] = module
        if pending:
            from repro.parallel.executor import estimate_module_cost

            n_obs = self.data.shape[1]
            results = self._dispatch(
                "module",
                [module_id for module_id, _ in pending],
                [
                    (module_id, members, trace is not None)
                    for module_id, members in pending
                ],
                [
                    estimate_module_cost(members, n_obs, self.config)
                    for _, members in pending
                ],
                trace,
            )
            for module_id in sorted(results):
                _mid, module, steps = results[module_id]
                modules[module_id] = module
                if trace is not None:
                    trace.steps.extend(steps)
        self.stats.mode = "module"
        return [modules[module_id] for module_id in range(len(modules_members))]
