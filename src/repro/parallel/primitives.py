"""Distributed primitives: block distribution, sampling oracles, scans.

Implements the oracle functions of Section 3.1 on top of a communicator:

* :func:`select_unif_rand` — uniform selection from a (logically)
  distributed list.  Because every rank holds an identical replicated
  random stream (Section 4.2), no random bits travel on the network; the
  collective in the paper's cost model corresponds to the stream-state
  synchronisation this discipline makes implicit.
* :func:`select_wtd_rand_gather` — weighted selection by all-gathering the
  block-distributed score vector and drawing with the replicated stream;
  bit-identical to the sequential ``weighted_choice_logs``.  This is the
  variant the SPMD engine uses for its consistency guarantee.
* :func:`select_wtd_rand_scan` — the paper's partial-sum formulation
  (local weight sums + exclusive scan + one replicated uniform).  Touches
  only O(1) words per rank but its floating-point summation order differs
  from the sequential cumsum, so it agrees with the gather variant except
  on draws landing within rounding distance of a block boundary.

:func:`segmented_scan` is the serial kernel of the segmented parallel scan
used to turn per-split posteriors into per-node sampling weights in one
pass (Section 3.2.3, implementation note).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.costmodel import block_range
from repro.rng.streams import GibbsRandom, quantize_logs


def select_unif_rand(rng: GibbsRandom, n_items: int) -> int:
    """Uniform random element of a distributed list of ``n_items``."""
    return rng.randint(n_items)


def select_wtd_rand_gather(comm, rng: GibbsRandom, local_scores: np.ndarray) -> int:
    """Weighted selection via score all-gather (consistency-exact variant)."""
    scores = comm.allgather_concat(np.asarray(local_scores, dtype=np.float64))
    return rng.weighted_choice_logs(scores)


def select_wtd_rand_scan(comm, rng: GibbsRandom, local_scores: np.ndarray) -> int:
    """Weighted selection via partial sums (the paper's O(|B|/p) oracle).

    Every rank computes the sum of its block's weights; an exclusive scan
    and an all-reduce provide the prefix offset and the total; one
    replicated uniform then locates the chosen element, and an all-reduce
    (min over claiming ranks) publishes its global index.
    """
    local = quantize_logs(np.asarray(local_scores, dtype=np.float64))
    sizes = comm.allgather(int(local.size))
    n_total = int(sum(sizes))
    base_index = int(sum(sizes[: comm.rank]))
    last_nonempty = max((r for r, s in enumerate(sizes) if s), default=-1)

    finite = np.isfinite(local)
    local_max = float(local[finite].max()) if finite.any() else -np.inf
    global_max = comm.allreduce(local_max, op=max)

    if not np.isfinite(global_max):
        # All options impossible everywhere: uniform fallback, matching
        # GibbsRandom.weighted_choice_logs (consumes exactly one uniform).
        return rng.randint(n_total)

    weights = np.where(finite, np.exp(local - global_max), 0.0)
    local_sum = float(weights.sum())
    prefix = comm.exscan(local_sum)
    total = comm.allreduce(local_sum)

    u = rng.uniform() * total
    chosen = np.inf
    if local.size and prefix <= u < prefix + local_sum:
        cum = np.cumsum(weights)
        local_idx = int(np.searchsorted(cum, u - prefix, side="right"))
        chosen = base_index + min(local_idx, local.size - 1)
    # The last non-empty rank claims draws that round past the total.
    if comm.rank == last_nonempty and u >= prefix + local_sum and local.size:
        chosen = base_index + local.size - 1
    result = comm.allreduce(chosen, op=min)
    return int(result)


def segmented_scan(values: np.ndarray, segment_ids: np.ndarray) -> np.ndarray:
    """Inclusive prefix sums restarting at every segment boundary.

    ``segment_ids`` must be non-decreasing (contiguous segments, as the
    candidate-split list guarantees by construction).
    """
    values = np.asarray(values, dtype=np.float64)
    segment_ids = np.asarray(segment_ids)
    if values.shape != segment_ids.shape:
        raise ValueError("values and segment_ids must align")
    if values.size == 0:
        return values.copy()
    if (np.diff(segment_ids) < 0).any():
        raise ValueError("segment_ids must be non-decreasing")
    cum = np.cumsum(values)
    starts = np.flatnonzero(np.diff(segment_ids) != 0) + 1
    # Offset of each segment = running total just before its first element.
    seg_offsets = np.concatenate([[0.0], cum[starts - 1]])
    seg_index = np.zeros(values.size, dtype=np.int64)
    seg_index[starts] = 1
    seg_index = np.cumsum(seg_index)
    return cum - seg_offsets[seg_index]


__all__ = [
    "block_range",
    "select_unif_rand",
    "select_wtd_rand_gather",
    "select_wtd_rand_scan",
    "segmented_scan",
]
