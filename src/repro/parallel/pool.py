"""Process-pool backend for the dominant split-scoring phase.

The paper's dominant cost — computing posterior probabilities for every
candidate parent split (more than 90% of sequential run-time) — is
embarrassingly parallel once the per-split randomness is index-addressed.
This module fans that phase out over local cores with
:mod:`multiprocessing`, delivering real wall-clock speedups on this machine
(the thread communicator in :mod:`repro.parallel.comm` demonstrates the
message-passing structure but is GIL-limited for CPU-bound scoring).

Because each task's randomness comes from the module's indexed stream, the
scored values are identical to the sequential learner's no matter how tasks
are chunked or which worker runs them — the same property that makes the
MPI result independent of ``p`` (Section 4.2).

Two scheduling modes expose the paper's Section 6 future-work ablation:

* ``schedule="static"`` — each worker receives one contiguous block of the
  flat split list, mirroring the static partitioning of Algorithm 5;
* ``schedule="dynamic"`` — fine-grained tasks are pulled from a shared
  queue (``imap`` with small chunks), the dynamic load balancing the paper
  proposes as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LearnerConfig
from repro.parallel import poolutil
from repro.parallel.costmodel import block_bounds
from repro.rng.streams import IndexedStream, make_stream
from repro.scoring.kernel import split_kernel_from_arrays
from repro.scoring.split_score import SplitScorer

# Worker globals, installed once per worker by the pool initializer so the
# expression matrix is shipped a single time (fork) rather than per task.
_WORKER: dict = {}


def _clear_worker() -> None:
    """Drop the installed worker state (and its matrix reference).

    Called by the executor's serial path on close so an in-process run does
    not keep the expression matrix alive through this module-level global.
    """
    _WORKER.clear()


def _init_worker(data, parents, config: LearnerConfig, seed: int) -> None:
    _WORKER["data"] = np.asarray(data)
    _WORKER["parents"] = np.asarray(parents, dtype=np.int64)
    _WORKER["config"] = config
    _WORKER["seed"] = seed
    _WORKER["scorer"] = SplitScorer(
        beta_grid=config.beta_grid,
        max_steps=config.max_sampling_steps,
        stop_repeats=config.sampling_stop_repeats,
    )
    _WORKER["streams"] = {}


@dataclass(frozen=True, eq=False)
class SplitTask:
    """A contiguous sub-range of one node's candidate splits."""

    module_id: int
    obs: np.ndarray  # node observations (int64)
    left_obs: np.ndarray  # left child observations (int64)
    module_split_base: int  # module-local split index of the node's first split
    row0: int  # first split row of this task within the node
    row1: int  # one past the last split row
    out_offset: int  # position in the flat output arrays


def _score_task(task: SplitTask):
    data = _WORKER["data"]
    parents = _WORKER["parents"]
    config: LearnerConfig = _WORKER["config"]
    scorer: SplitScorer = _WORKER["scorer"]
    streams: dict = _WORKER["streams"]

    if task.module_id not in streams:
        streams[task.module_id] = IndexedStream(
            make_stream(
                _WORKER["seed"], "splits", task.module_id, backend=config.rng_backend
            ),
            scorer.draws_per_item,
        )
    istream = streams[task.module_id]

    obs = task.obs
    n_obs = obs.size
    l0, l1 = task.row0 // n_obs, (task.row1 - 1) // n_obs + 1
    kernel = split_kernel_from_arrays(
        data, obs, task.left_obs, parents[l0:l1], scorer.beta_grid
    )
    items = np.arange(task.row0 - l0 * n_obs, task.row1 - l0 * n_obs)

    dpi = scorer.draws_per_item
    first = task.module_split_base + task.row0
    uniforms = istream.stream.block(first * dpi, (task.row1 - task.row0) * dpi)
    uniforms = uniforms.reshape(task.row1 - task.row0, dpi)
    scores, steps, _beta, accepted = scorer.score_batch_kernel(
        kernel, uniforms, item_indices=items
    )
    return task.out_offset, scores, steps, accepted


def build_split_tasks(node_records, n_parents: int) -> tuple[list[SplitTask], int]:
    """Per-node tasks from ``(module_id, obs, left_obs, module_obs_base)``
    records in enumeration order; returns the tasks and the total split count."""
    tasks: list[SplitTask] = []
    offset = 0
    for module_id, obs, left_obs, module_obs_base in node_records:
        n_obs = len(obs)
        n_splits = n_parents * n_obs
        tasks.append(
            SplitTask(
                module_id=module_id,
                # Small int64 arrays pickle far cheaper than tuples of
                # Python ints and feed margins_from_arrays directly.
                obs=np.asarray(obs, dtype=np.int64),
                left_obs=np.asarray(left_obs, dtype=np.int64),
                module_split_base=module_obs_base * n_parents,
                row0=0,
                row1=n_splits,
                out_offset=offset,
            )
        )
        offset += n_splits
    return tasks, offset


def _subdivide(
    tasks: list[SplitTask],
    total: int,
    n_chunks: int,
    bounds: list[tuple[int, int]] | None = None,
) -> list[SplitTask]:
    """Split node tasks along the flat index so chunks have equal split counts.

    Tasks and chunk bounds are both sorted along the flat split index, so a
    single merge walk suffices: O(tasks + chunks + pieces) instead of the
    O(chunks x tasks) rescan of every task per chunk.

    ``bounds`` overrides the default equal-count :func:`block_bounds`
    partition with an explicit sorted list of ``[lo, hi)`` chunk bounds —
    the executor passes its NUMA placement's nested bounds so each chunk
    stays inside the flat region whose shared-memory pages its domain
    first-touched.  Chunk boundaries only change *where* splits are
    scored, never their values: results are written back by flat offset.
    """
    out: list[SplitTask] = []
    ti = 0
    n_tasks = len(tasks)
    for lo, hi in (bounds if bounds is not None else block_bounds(total, n_chunks)):
        if lo >= hi:
            continue
        # Skip tasks that end at or before this chunk; a task straddling a
        # chunk boundary is revisited because ti stops at the first overlap.
        while ti < n_tasks and tasks[ti].out_offset + (
            tasks[ti].row1 - tasks[ti].row0
        ) <= lo:
            ti += 1
        tj = ti
        while tj < n_tasks and tasks[tj].out_offset < hi:
            task = tasks[tj]
            a = max(lo, task.out_offset)
            b = min(hi, task.out_offset + (task.row1 - task.row0))
            if a < b:
                shift = a - task.out_offset
                out.append(
                    SplitTask(
                        module_id=task.module_id,
                        obs=task.obs,
                        left_obs=task.left_obs,
                        module_split_base=task.module_split_base,
                        row0=task.row0 + shift,
                        row1=task.row0 + shift + (b - a),
                        out_offset=a,
                    )
                )
            tj += 1
    return out


def score_splits_pool(
    data: np.ndarray,
    node_records,
    parents: np.ndarray,
    config: LearnerConfig,
    seed: int,
    n_workers: int,
    schedule: str = "dynamic",
    mp_context: str | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score the flat candidate-split list with ``n_workers`` processes.

    Returns ``(log_scores, steps, accepted)`` flat arrays in enumeration
    order, bit-identical to the sequential scoring.  ``mp_context`` forces
    a start method; by default ``fork`` is used where available and
    ``spawn`` elsewhere (the initargs ship the worker state explicitly, so
    both methods produce identical results).

    Note this constructs a fresh pool — and ships the expression matrix —
    on *every* call; :class:`repro.parallel.executor.ModuleExecutor` is the
    persistent backend that amortizes both across all of Task 3.
    """
    if schedule not in ("static", "dynamic"):
        raise ValueError("schedule must be 'static' or 'dynamic'")
    tasks, total = build_split_tasks(node_records, len(parents))
    log_scores = np.zeros(total, dtype=np.float64)
    steps = np.zeros(total, dtype=np.int64)
    accepted = np.zeros(total, dtype=bool)

    if n_workers <= 1 or total == 0:
        _init_worker(data, parents, config, seed)
        results = [_score_task(t) for t in tasks]
    else:
        if schedule == "static":
            work_items = _subdivide(tasks, total, n_workers)
            chunksize = max(1, len(work_items) // n_workers)
        else:
            # Fine-grained tasks pulled dynamically — ~4 tasks per worker
            # wave keeps the queue busy without excess IPC.
            work_items = _subdivide(tasks, total, 4 * n_workers)
            chunksize = 1
        ctx = poolutil.pool_context(mp_context)
        poolutil.note_pool_construction()
        poolutil.note_matrix_transfer()
        with ctx.Pool(
            n_workers,
            initializer=_init_worker,
            initargs=(data, parents, config, seed),
        ) as pool:
            results = list(pool.imap_unordered(_score_task, work_items, chunksize))

    for offset, sc, st, ac in results:
        log_scores[offset : offset + sc.size] = sc
        steps[offset : offset + st.size] = st
        accepted[offset : offset + ac.size] = ac
    return log_scores, steps, accepted
