"""Fitted conditional probability distributions of a learned network.

Each module's regression tree is turned into an executable CPD:

* **routing** — an unseen condition descends the tree by its regulator
  values: at an internal node with best split ``(X_l, v)``, it goes to the
  left child when ``x_l <= v`` (the low side, matching the margin
  orientation used during learning) and right otherwise.  Nodes without a
  retained split cannot discriminate, so they act as pooled leaves.
* **leaf predictive** — each effective leaf carries the normal-gamma
  posterior fitted from the training values that reached it; unseen values
  are scored/sampled with the resulting student-t posterior predictive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.datatypes import ExpressionMatrix, ModuleNetwork, TreeNode
from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior


@dataclass(frozen=True)
class LeafPredictive:
    """Student-t posterior predictive of one effective leaf."""

    mu: float  # posterior mean
    df: float  # degrees of freedom (2 * alpha_N)
    scale: float  # scale parameter (sqrt of the predictive variance factor)

    def log_pdf(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        z = (values - self.mu) / self.scale
        nu = self.df
        out = (
            math.lgamma((nu + 1) / 2)
            - math.lgamma(nu / 2)
            - 0.5 * math.log(nu * math.pi)
            - math.log(self.scale)
            - (nu + 1) / 2 * np.log1p(z * z / nu)
        )
        return float(np.sum(out))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.mu + self.scale * rng.standard_t(self.df, size=size)

    @property
    def variance(self) -> float:
        if self.df <= 2:
            return float("inf")
        return self.scale**2 * self.df / (self.df - 2)


def _leaf_predictive(
    values: np.ndarray, prior: NormalGammaPrior
) -> LeafPredictive:
    v = np.asarray(values, dtype=np.float64).ravel()
    n = float(v.size)
    xbar = float(v.mean()) if n else prior.mu0
    ss = float(((v - xbar) ** 2).sum()) if n else 0.0
    lam_n = prior.lambda0 + n
    alpha_n = prior.alpha0 + n / 2.0
    beta_n = (
        prior.beta0
        + ss / 2.0
        + prior.lambda0 * n * (xbar - prior.mu0) ** 2 / (2.0 * lam_n)
    )
    mu_n = (prior.lambda0 * prior.mu0 + n * xbar) / lam_n
    scale_sq = beta_n * (lam_n + 1.0) / (alpha_n * lam_n)
    return LeafPredictive(mu=mu_n, df=2.0 * alpha_n, scale=math.sqrt(scale_sq))


@dataclass
class _RoutingNode:
    """One executable node: either a decision or an effective leaf."""

    predictive: LeafPredictive
    parent: int | None = None  # split variable (None -> effective leaf)
    value: float = 0.0
    left: "._RoutingNode | None" = None
    right: "._RoutingNode | None" = None

    def route(self, condition: np.ndarray) -> LeafPredictive:
        node = self
        while node.parent is not None:
            node = node.left if condition[node.parent] <= node.value else node.right
        return node.predictive


@dataclass
class FittedModule:
    """An executable CPD for one module."""

    module_id: int
    members: list[int]
    root: _RoutingNode
    #: regulators the routing actually consults
    regulators: set[int] = field(default_factory=set)

    def predictive_for(self, condition: np.ndarray) -> LeafPredictive:
        """The leaf distribution an (n_vars,) condition vector routes to."""
        return self.root.route(condition)

    def log_likelihood(self, condition: np.ndarray) -> float:
        """Log-likelihood of the members' values in one condition, given
        the regulator values in the same condition."""
        leaf = self.predictive_for(condition)
        return leaf.log_pdf(condition[self.members])


class FittedNetwork:
    """All module CPDs of a learned network, fitted on training data."""

    def __init__(self, modules: list[FittedModule], n_vars: int) -> None:
        self.modules = modules
        self.n_vars = n_vars

    def log_likelihood(self, matrix: ExpressionMatrix) -> float:
        """Total conditional log-likelihood of a data set (regulators
        observed), summed over conditions and modules."""
        if matrix.n_vars != self.n_vars:
            raise ValueError("matrix has a different variable count")
        total = 0.0
        for j in range(matrix.n_obs):
            condition = matrix.values[:, j]
            for module in self.modules:
                if module.members:
                    total += module.log_likelihood(condition)
        return total

    def per_condition_log_likelihood(self, matrix: ExpressionMatrix) -> np.ndarray:
        out = np.zeros(matrix.n_obs)
        for j in range(matrix.n_obs):
            condition = matrix.values[:, j]
            out[j] = sum(
                m.log_likelihood(condition) for m in self.modules if m.members
            )
        return out

    def sample(
        self, n_conditions: int, rng: np.random.Generator, module_order: list[int]
    ) -> np.ndarray:
        """Ancestral sampling of new conditions.

        ``module_order`` must be a topological order of the module graph
        (use :func:`repro.analysis.acyclicity.make_acyclic` first if the
        learned network has cycles).  Returns an (n_vars, n_conditions)
        matrix.
        """
        by_id = {m.module_id: m for m in self.modules}
        values = np.zeros((self.n_vars, n_conditions))
        generated: set[int] = set()
        for module_id in module_order:
            module = by_id[module_id]
            for j in range(n_conditions):
                leaf = module.predictive_for(values[:, j])
                values[np.asarray(module.members, dtype=np.int64), j] = leaf.sample(
                    len(module.members), rng
                )
            generated.update(module.members)
        if len(generated) != sum(len(m.members) for m in self.modules):
            raise ValueError("module_order must cover every module once")
        return values


def fit_network(
    network: ModuleNetwork,
    training: ExpressionMatrix,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
    min_routing_accuracy: float = 0.75,
) -> FittedNetwork:
    """Fit executable CPDs from the training data the network was learned on.

    Tree node observation sets index the training matrix's conditions; each
    effective leaf's predictive pools the module members' training values
    at those conditions.  The first regression tree of each module is used
    (``R = 1`` in the paper's experimental configuration).

    ``min_routing_accuracy`` guards against weak regulators: a node's split
    is only used for routing if it reproduces the tree's own left/right
    partition of the *training* observations with at least this accuracy;
    otherwise the node collapses to a pooled leaf (routing by an
    uninformative split is strictly noise, and the leaf predictives are
    sharper than the pooled one, so mis-routing is expensive).  Set to 0 to
    always route, 1.0+ to disable routing entirely (the null model).
    """
    if network.n_obs != training.n_obs:
        raise ValueError(
            "training matrix does not match the network's observation count"
        )
    fitted = []
    for module in network.modules:
        members = np.asarray(module.members, dtype=np.int64)
        if module.trees and module.members:
            root = _fit_node(
                module.trees[0].root, training, members, prior, min_routing_accuracy
            )
            regulators = _collect_regulators(root)
        else:
            values = training.values[members] if module.members else np.zeros(0)
            root = _RoutingNode(predictive=_leaf_predictive(values, prior))
            regulators = set()
        fitted.append(
            FittedModule(
                module_id=module.module_id,
                members=list(module.members),
                root=root,
                regulators=regulators,
            )
        )
    return FittedNetwork(fitted, network.n_vars)


def _best_split(node: TreeNode):
    """The highest-posterior retained split of a node, if any."""
    if not node.weighted_splits:
        return None
    return max(node.weighted_splits, key=lambda s: s.posterior)


def _routing_accuracy(node: TreeNode, split, training: ExpressionMatrix) -> float:
    """Fraction of the node's training observations the split routes to
    the child the tree actually assigned them to."""
    obs = node.observations
    assert node.left is not None
    goes_left = training.values[split.parent, obs] <= split.value
    is_left = np.isin(obs, node.left.observations)
    return float((goes_left == is_left).mean())


def _fit_node(
    node: TreeNode,
    training: ExpressionMatrix,
    members: np.ndarray,
    prior: NormalGammaPrior,
    min_routing_accuracy: float,
) -> _RoutingNode:
    values = training.values[np.ix_(members, node.observations)]
    predictive = _leaf_predictive(values, prior)
    split = None if node.is_leaf else _best_split(node)
    if split is not None and min_routing_accuracy > 0:
        if _routing_accuracy(node, split, training) < min_routing_accuracy:
            split = None
    if split is None:
        # No retained split (or a split too weak to reproduce the node's
        # own partition): the node cannot discriminate -> effective leaf.
        return _RoutingNode(predictive=predictive)
    assert node.left is not None and node.right is not None
    return _RoutingNode(
        predictive=predictive,
        parent=split.parent,
        value=split.value,
        left=_fit_node(node.left, training, members, prior, min_routing_accuracy),
        right=_fit_node(node.right, training, members, prior, min_routing_accuracy),
    )


def _collect_regulators(root: _RoutingNode) -> set[int]:
    out: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node.parent is not None:
            out.add(node.parent)
            stack.extend([node.left, node.right])
    return out
