"""Inference with learned module networks.

A module network is a generative model (Section 2.1 of the paper: a
parameter-sharing Bayesian network): each module's regression tree routes a
condition to a leaf according to the parent splits, and the leaf holds a
Gaussian over the module members' expression.  This package makes learned
networks *usable* as such models:

* :mod:`repro.inference.cpd` — leaf routing and posterior-predictive
  distributions fitted from training data;
* :mod:`repro.inference.likelihood` — held-out data log-likelihood, the
  standard evaluation of module-network quality (Segal et al. 2005 select
  models by test-set likelihood);
* sampling new conditions from the fitted model.
"""

from repro.inference.cpd import FittedModule, FittedNetwork, fit_network
from repro.inference.likelihood import holdout_log_likelihood, train_test_split_obs

__all__ = [
    "FittedNetwork",
    "FittedModule",
    "fit_network",
    "holdout_log_likelihood",
    "train_test_split_obs",
]
