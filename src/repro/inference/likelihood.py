"""Held-out likelihood evaluation of learned module networks.

The standard quality measure of a module network as a generative model
(Segal et al. 2005 select module counts and structures by test-set
likelihood): learn on a training split of the conditions, fit the CPDs,
and score the unseen conditions given their regulator values.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes import ExpressionMatrix, ModuleNetwork
from repro.inference.cpd import FittedNetwork, fit_network
from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior


def train_test_split_obs(
    matrix: ExpressionMatrix, test_fraction: float = 0.25, seed: int = 0
) -> tuple[ExpressionMatrix, ExpressionMatrix]:
    """Split the observations (columns) into train and test matrices."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie strictly between 0 and 1")
    m = matrix.n_obs
    n_test = max(1, int(round(m * test_fraction)))
    if n_test >= m:
        raise ValueError("not enough observations to split")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(m)
    test_idx = np.sort(perm[:n_test])
    train_idx = np.sort(perm[n_test:])
    train = ExpressionMatrix(
        matrix.values[:, train_idx].copy(),
        matrix.var_names,
        [matrix.obs_names[i] for i in train_idx],
    )
    test = ExpressionMatrix(
        matrix.values[:, test_idx].copy(),
        matrix.var_names,
        [matrix.obs_names[i] for i in test_idx],
    )
    return train, test


def holdout_log_likelihood(
    network: ModuleNetwork,
    training: ExpressionMatrix,
    test: ExpressionMatrix,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
) -> dict[str, float]:
    """Evaluate a network (learned on ``training``) on unseen conditions.

    Returns total and per-condition average log-likelihood of the test
    set, plus the same quantities under the *null* model (one pooled
    Gaussian per module, no regulator routing) — the gap between them is
    the information the regulatory program captured.
    """
    fitted = fit_network(network, training, prior)
    test_ll = fitted.log_likelihood(test)

    null_net = _null_network(fitted, training, prior)
    null_ll = null_net.log_likelihood(test)

    m = test.n_obs
    return {
        "total_log_likelihood": test_ll,
        "per_condition": test_ll / m,
        "null_total_log_likelihood": null_ll,
        "null_per_condition": null_ll / m,
        "improvement_per_condition": (test_ll - null_ll) / m,
    }


def _null_network(
    fitted: FittedNetwork, training: ExpressionMatrix, prior: NormalGammaPrior
) -> FittedNetwork:
    """The routing-free baseline: each module is one pooled leaf."""
    from repro.inference.cpd import FittedModule, _leaf_predictive, _RoutingNode

    modules = []
    for module in fitted.modules:
        members = np.asarray(module.members, dtype=np.int64)
        values = training.values[members] if module.members else np.zeros(0)
        modules.append(
            FittedModule(
                module_id=module.module_id,
                members=list(module.members),
                root=_RoutingNode(predictive=_leaf_predictive(values, prior)),
            )
        )
    return FittedNetwork(modules, fitted.n_vars)
