"""The always-on inference service: job queue, admission, warm executor.

One-shot ``learn()`` builds and tears down its whole world — pool,
shared-memory matrix, kernel memo tables — on every call.  The ROADMAP's
north star is a serving system, so this module hosts the long-lived
counterpart: an :class:`InferenceService` that owns ONE
:class:`repro.parallel.executor.TaskPoolExecutor` lease across many jobs
and answers repeat queries from three layers of warm state:

* **per-job checkpoint namespaces** — each job's content fingerprint
  (matrix bytes + result-relevant config + seed) names a directory under
  ``root/jobs/<fp>/checkpoints`` holding the existing atomic fingerprinted
  checkpoints.  A resubmitted identical job loads Task 1 runs and Task 3
  modules from disk instead of recomputing them — the warm-repeat path.
* **the shared score cache** — every scoring process (driver and each
  pool worker) installs a :class:`repro.scoring.score_cache.
  SharedScoreCache`, so identical nodes across jobs share grouping tables
  and score memos (see that module for why this cannot change results).
* **the executor lease** — while consecutive jobs share a binding
  (fingerprint + config), the pool and its shared-memory matrix are
  reused rather than rebuilt.

Jobs run one at a time on a single runner thread (parallelism lives
*inside* a job, on the pool); the queue is FIFO within a priority level,
higher priority first.  Admission control bounds queued + running jobs at
``max_inflight`` and refuses the rest with a typed
:class:`AdmissionRejected` so callers can back off instead of queueing
unboundedly.  A job whose pool worker dies fails with the executor's
typed :class:`~repro.parallel.executor.WorkerCrashedError` and
*invalidates the lease*: the next queued job gets a fresh pool, so one
crash never poisons the queue — crash-aware job isolation.

Bit-identity is the non-negotiable invariant: every layer of warm state
is content-addressed and checkpoint loads verify their fingerprints, so a
served network is always byte-for-byte the network a fresh one-shot
``learn()`` would produce.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.config import LearnerConfig
from repro.core.learner import LemonTreeLearner
from repro.core.output import network_to_json
from repro.datatypes import ExpressionMatrix
from repro.parallel.trace import WorkTrace
from repro.scoring.score_cache import DEFAULT_SCORE_CACHE_BYTES

# -- job states --------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


class AdmissionRejected(RuntimeError):
    """The service's in-flight bound is full; resubmit after a completion."""


class JobNotFound(KeyError):
    """No job with the given id."""


class JobNotDone(RuntimeError):
    """The job has not finished yet (still queued or running)."""


class JobCancelled(RuntimeError):
    """The job was cancelled before it ran."""


class JobFailed(RuntimeError):
    """The job raised; ``error_type`` names the original exception type."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


class ServiceClosed(RuntimeError):
    """The service is shutting down and accepts no new jobs."""


# -- job specification -------------------------------------------------------


@dataclass
class JobSpec:
    """One inference request: the matrix, the learning knobs, the seed."""

    values: np.ndarray
    var_names: list[str]
    config: LearnerConfig
    seed: int
    priority: int = 0
    #: False runs the job without its checkpoint namespace (pure
    #: score-cache warm path); results are identical either way
    use_checkpoints: bool = True


def job_fingerprint(spec: JobSpec) -> str:
    """Content address of a job's *result*: matrix + seed + the config
    fields that can change the learned network.

    Parallel-execution knobs (worker counts, schedules, backends, the
    score cache) are deliberately excluded — bit-identity across all of
    them is the repo's core invariant, so jobs differing only in execution
    backend share one fingerprint, one checkpoint namespace, and one warm
    path.  Checkpoint stores re-verify their own fingerprints on load, so
    even a colliding namespace could only ever ignore foreign files.
    """
    config = spec.config
    prior = config.prior
    meta = {
        "seed": spec.seed,
        "rng_backend": config.rng_backend,
        "n_ganesh_runs": config.n_ganesh_runs,
        "n_update_steps": config.n_update_steps,
        "init_var_clusters": config.init_var_clusters,
        "consensus_threshold": config.consensus_threshold,
        "max_modules": config.max_modules,
        "tree_update_steps": config.tree_update_steps,
        "tree_burn_in": config.tree_burn_in,
        "candidate_parents": (
            list(config.candidate_parents)
            if config.candidate_parents is not None
            else None
        ),
        "n_splits_per_node": config.n_splits_per_node,
        "max_sampling_steps": config.max_sampling_steps,
        "sampling_stop_repeats": config.sampling_stop_repeats,
        "beta_grid": list(config.beta_grid),
        "prior": [prior.mu0, prior.lambda0, prior.alpha0, prior.beta0],
        "shape": list(np.asarray(spec.values).shape),
        "var_names": list(spec.var_names),
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(meta, sort_keys=True).encode())
    digest.update(np.ascontiguousarray(spec.values, dtype=np.float64).tobytes())
    return digest.hexdigest()


@dataclass
class JobRecord:
    """The service-side lifecycle record of one submitted job."""

    job_id: str
    spec: JobSpec
    fingerprint: str
    seq: int
    state: str = QUEUED
    error: dict | None = None
    result: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    executor_reused: bool = False


# -- the executor lease ------------------------------------------------------


class ExecutorLease:
    """At most one live executor, rebound when the job binding changes.

    The binding is ``(job fingerprint, config, use_checkpoints)``: a
    matching consecutive job reuses the warm pool (and each worker's
    shared score cache); a mismatch closes the old executor and builds the
    new job's.  :meth:`invalidate` is the crash-isolation hook — after a
    :class:`~repro.parallel.executor.WorkerCrashedError` the poisoned pool
    is discarded so the next job starts on a fresh one.
    """

    def __init__(self, crash_poll_seconds: float | None = None) -> None:
        self._executor = None
        self._binding = None
        #: None keeps the executor's default; tests shrink it so a killed
        #: worker is detected in fractions of a second
        self.crash_poll_seconds = crash_poll_seconds
        self.builds = 0
        self.reuses = 0
        self.invalidations = 0

    def acquire(self, data, config: LearnerConfig, seed: int, checkpoint_dir, binding):
        """The executor for ``binding`` — warm when it matches the live
        one, else freshly built.  Returns ``(executor_or_None, reused)``;
        ``None`` means the serial in-process path (the learner then runs
        without a pool, exactly as one-shot ``learn`` would)."""
        if self._executor is not None and self._binding == binding:
            self.reuses += 1
            return self._executor, True
        self.release()
        executor = self._build(data, config, seed, checkpoint_dir)
        if executor is not None:
            self._executor = executor
            self._binding = binding
            self.builds += 1
        return executor, False

    def _build(self, data, config: LearnerConfig, seed: int, checkpoint_dir):
        parents = np.asarray(
            config.resolve_candidate_parents(data.shape[0]), dtype=np.int64
        )
        if config.parallel.n_nodes > 1:
            from repro.parallel.sharding import ShardedExecutor

            return ShardedExecutor(
                data, parents, config, seed, checkpoint_dir=checkpoint_dir
            )
        if config.resolve_n_workers() <= 1:
            return None
        from repro.parallel.executor import TaskPoolExecutor

        kwargs = {}
        if self.crash_poll_seconds is not None:
            kwargs["crash_poll_seconds"] = self.crash_poll_seconds
        # The service process is inherently multi-threaded (runner thread,
        # daemon request handlers); forking a pool here can capture a lock
        # mid-held and deadlock the child, so lease pools always spawn.
        # The lease amortizes the slower startup across every job it serves.
        return TaskPoolExecutor(
            data, parents, config, seed, checkpoint_dir=checkpoint_dir,
            mp_context="spawn", **kwargs
        )

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool's workers ([] without a multi-worker
        pool)."""
        executor = self._executor
        if executor is None or not hasattr(executor, "worker_pids"):
            return []
        return executor.worker_pids()

    def worker_inits(self) -> int:
        """How many pool workers have completed their initializer (0
        without a multi-worker pool).  Spawn-context workers take a
        while to boot; until this reaches the worker count a listed pid
        may belong to a process that has not picked up any work yet."""
        executor = self._executor
        if executor is None or not hasattr(executor, "worker_inits"):
            return 0
        return executor.worker_inits()

    def invalidate(self) -> None:
        """Discard the live executor (a worker died inside it)."""
        self.invalidations += 1
        self.release()

    def release(self) -> None:
        executor, self._executor = self._executor, None
        self._binding = None
        if executor is not None:
            try:
                executor.close()
            except Exception:  # pragma: no cover - poisoned pool teardown
                pass


# -- the service -------------------------------------------------------------


class InferenceService:
    """Long-lived job daemon: async queue, admission control, warm state.

    ``root`` is the service's state directory (checkpoint namespaces live
    under ``root/jobs/``).  ``max_inflight`` bounds queued + running jobs;
    a submit beyond it raises :class:`AdmissionRejected`.
    ``score_cache_bytes`` sizes the process-shared
    :class:`~repro.scoring.score_cache.SharedScoreCache` (0 disables it);
    the budget is also injected into every job's ``ParallelConfig`` so
    pool workers install their own store.

    ``autostart=False`` leaves the runner thread stopped until
    :meth:`start` — the deterministic admission/cancel test hook: jobs
    submitted while stopped stay queued.
    """

    def __init__(
        self,
        root,
        *,
        max_inflight: int = 4,
        score_cache_bytes: int = DEFAULT_SCORE_CACHE_BYTES,
        autostart: bool = True,
        crash_poll_seconds: float | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_inflight = int(max_inflight)
        self.score_cache_bytes = int(score_cache_bytes)
        if self.score_cache_bytes > 0:
            from repro.scoring.kernel import ensure_shared_score_cache

            ensure_shared_score_cache(self.score_cache_bytes)
        self.lease = ExecutorLease(crash_poll_seconds=crash_poll_seconds)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = 0
        self._closing = False
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
        }
        self._runner = threading.Thread(
            target=self._run_loop, name="repro-service-runner", daemon=True
        )
        self._started = False
        if autostart:
            self.start()

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Start the runner thread (idempotent)."""
        with self._wakeup:
            if self._started or self._closing:
                return
            self._started = True
        self._runner.start()

    def close(self) -> None:
        """Stop accepting jobs, cancel the queue, release the executor.

        The running job (if any) completes; queued jobs are cancelled.
        """
        with self._wakeup:
            if self._closing:
                return
            self._closing = True
            for record in self._jobs.values():
                if record.state == QUEUED:
                    record.state = CANCELLED
                    record.finished_at = time.time()
                    self.counters["cancelled"] += 1
            self._wakeup.notify_all()
        if self._started:
            self._runner.join(timeout=600.0)
        self.lease.release()

    # -- client surface ------------------------------------------------------
    def submit(
        self,
        matrix,
        config: LearnerConfig,
        seed: int,
        *,
        priority: int = 0,
        use_checkpoints: bool = True,
    ) -> str:
        """Enqueue one job; returns its id or raises
        :class:`AdmissionRejected` when the in-flight bound is full.

        ``matrix`` is an :class:`~repro.datatypes.ExpressionMatrix` or a
        raw ``(n, m)`` array.  Any ``config.parallel.checkpoint_dir`` is
        stripped: the service owns checkpoint placement (per-job
        fingerprinted namespaces under its root).
        """
        if isinstance(matrix, ExpressionMatrix):
            values, var_names = matrix.values, list(matrix.var_names)
        else:
            values = np.asarray(matrix, dtype=np.float64)
            var_names = [f"G{i}" for i in range(values.shape[0])]
        config = self._normalize_config(config)
        spec = JobSpec(
            values=values,
            var_names=var_names,
            config=config,
            seed=int(seed),
            priority=int(priority),
            use_checkpoints=bool(use_checkpoints),
        )
        fingerprint = job_fingerprint(spec)
        with self._wakeup:
            if self._closing:
                raise ServiceClosed("service is shutting down")
            inflight = sum(
                1 for r in self._jobs.values() if r.state in (QUEUED, RUNNING)
            )
            if inflight >= self.max_inflight:
                self.counters["rejected"] += 1
                raise AdmissionRejected(
                    f"{inflight} job(s) in flight (bound {self.max_inflight}); "
                    "retry after a completion"
                )
            job_id = f"job-{self._seq:06d}"
            record = JobRecord(
                job_id=job_id, spec=spec, fingerprint=fingerprint, seq=self._seq
            )
            self._jobs[job_id] = record
            heapq.heappush(self._heap, (-spec.priority, self._seq, job_id))
            self._seq += 1
            self.counters["submitted"] += 1
            self._wakeup.notify_all()
        return job_id

    def _normalize_config(self, config: LearnerConfig) -> LearnerConfig:
        parallel = config.parallel
        changes = {}
        if parallel.checkpoint_dir is not None:
            changes["checkpoint_dir"] = None
        if self.score_cache_bytes != parallel.score_cache_bytes:
            changes["score_cache_bytes"] = self.score_cache_bytes
        if not changes:
            return config
        return config.with_updates(parallel=replace(parallel, **changes))

    def status(self, job_id: str | None = None):
        """One job's status dict, or (with no id) all jobs in submit
        order."""
        with self._lock:
            if job_id is None:
                records = sorted(self._jobs.values(), key=lambda r: r.seq)
                return [self._describe(r) for r in records]
            return self._describe(self._record(job_id))

    def _record(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise JobNotFound(f"unknown job id {job_id!r}")
        return record

    def _describe(self, record: JobRecord) -> dict:
        out = {
            "job_id": record.job_id,
            "state": record.state,
            "priority": record.spec.priority,
            "fingerprint": record.fingerprint,
            "seed": record.spec.seed,
            "shape": list(record.spec.values.shape),
            "submitted_at": record.submitted_at,
            "started_at": record.started_at,
            "finished_at": record.finished_at,
            "executor_reused": record.executor_reused,
        }
        if record.error is not None:
            out["error"] = dict(record.error)
        if record.state == RUNNING:
            out["worker_pids"] = self.lease.worker_pids()
            out["worker_inits"] = self.lease.worker_inits()
        return out

    def result(self, job_id: str) -> dict:
        """The finished job's result payload; raises the job's typed
        terminal state otherwise."""
        with self._lock:
            record = self._record(job_id)
            if record.state == DONE:
                return record.result
            if record.state == FAILED:
                error = record.error or {}
                raise JobFailed(
                    error.get("type", "Exception"), error.get("message", "")
                )
            if record.state == CANCELLED:
                raise JobCancelled(f"job {job_id} was cancelled")
            raise JobNotDone(f"job {job_id} is {record.state}")

    def wait(self, job_id: str, timeout: float = 600.0) -> dict:
        """Block until ``job_id`` reaches a terminal state, then behave
        like :meth:`result`."""
        deadline = time.monotonic() + timeout
        with self._wakeup:
            while True:
                record = self._record(job_id)
                if record.state in (DONE, FAILED, CANCELLED):
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {record.state} after {timeout}s"
                    )
                self._wakeup.wait(min(remaining, 1.0))
        return self.result(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; returns False once it is already running
        or finished (the heap entry is skipped lazily by the runner)."""
        with self._wakeup:
            record = self._record(job_id)
            if record.state != QUEUED:
                return False
            record.state = CANCELLED
            record.finished_at = time.time()
            self.counters["cancelled"] += 1
            self._wakeup.notify_all()
            return True

    def stats(self) -> dict:
        """Service-level counters, lease behaviour, score-cache snapshot."""
        from repro.scoring.kernel import shared_score_cache

        with self._lock:
            out = dict(self.counters)
            out["n_jobs"] = len(self._jobs)
            out["max_inflight"] = self.max_inflight
        out["executor"] = {
            "builds": self.lease.builds,
            "reuses": self.lease.reuses,
            "invalidations": self.lease.invalidations,
        }
        store = shared_score_cache()
        out["score_cache"] = store.snapshot() if store is not None else None
        return out

    # -- the runner ----------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            with self._wakeup:
                record = self._pop_next()
                while record is None and not self._closing:
                    self._wakeup.wait(1.0)
                    record = self._pop_next()
                if record is None:
                    return
                record.state = RUNNING
                record.started_at = time.time()
            self._execute(record)
            with self._wakeup:
                self._wakeup.notify_all()

    def _pop_next(self) -> JobRecord | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            record = self._jobs[job_id]
            if record.state == QUEUED:
                return record
        return None

    def namespace_dir(self, fingerprint: str) -> Path:
        """The content-addressed checkpoint namespace of one job
        fingerprint."""
        return self.root / "jobs" / fingerprint[:16] / "checkpoints"

    def _execute(self, record: JobRecord) -> None:
        spec = record.spec
        checkpoint_dir = (
            self.namespace_dir(record.fingerprint) if spec.use_checkpoints else None
        )
        binding = (record.fingerprint, spec.config, spec.use_checkpoints)
        trace = WorkTrace()
        t0 = time.perf_counter()
        try:
            # Inside the try: invalid payloads (NaN matrices, bad shapes)
            # must fail the *job*, never the runner thread.
            matrix = ExpressionMatrix(spec.values, var_names=spec.var_names)
            executor, reused = self.lease.acquire(
                matrix.values, spec.config, spec.seed, checkpoint_dir, binding
            )
            record.executor_reused = reused
            result = LemonTreeLearner(spec.config).learn(
                matrix,
                spec.seed,
                trace=trace,
                checkpoint_dir=checkpoint_dir,
                executor=executor,
            )
        except Exception as exc:
            if self._is_crash(exc):
                # Crash-aware isolation: the poisoned pool must not serve
                # the next queued job.
                self.lease.invalidate()
            with self._lock:
                record.state = FAILED
                record.error = {
                    "type": type(exc).__name__,
                    "message": str(exc),
                }
                record.finished_at = time.time()
                self.counters["failed"] += 1
            return

        from repro.validation.metrics import network_fingerprint

        payload = {
            "job_id": record.job_id,
            "job_fingerprint": record.fingerprint,
            "fingerprint": network_fingerprint(result.network),
            "network_json": network_to_json(result.network),
            "n_modules": result.network.n_modules,
            "seconds": time.perf_counter() - t0,
            "task_times": {
                "ganesh": result.task_times.ganesh,
                "consensus": result.task_times.consensus,
                "modules": result.task_times.modules,
            },
            "kernel_counters": dict(trace.kernel_counters),
            "executor_reused": record.executor_reused,
        }
        with self._lock:
            record.result = payload
            record.state = DONE
            record.finished_at = time.time()
            self.counters["completed"] += 1

    @staticmethod
    def _is_crash(exc: Exception) -> bool:
        from repro.parallel.executor import WorkerCrashedError
        from repro.parallel.sharding import NodeCrashedError

        return isinstance(exc, (WorkerCrashedError, NodeCrashedError))
