"""Always-on inference service: persistent job daemon + shared score cache.

Layers (bottom up):

* :mod:`repro.scoring.score_cache` — the process-shared, bounded,
  content-addressed :class:`~repro.scoring.score_cache.SharedScoreCache`
  the daemon keeps warm across jobs (re-exported here for convenience).
* :mod:`repro.service.jobs` — the in-process service core:
  :class:`InferenceService` (job queue, admission control, executor
  lease, crash isolation).
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the
  localhost socket front-end (``repro serve``) and its client.
"""

from repro.scoring.score_cache import DEFAULT_SCORE_CACHE_BYTES, SharedScoreCache
from repro.service.client import AuthError, ServiceClient, ServiceError
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    AdmissionRejected,
    ExecutorLease,
    InferenceService,
    JobCancelled,
    JobFailed,
    JobNotDone,
    JobNotFound,
    JobSpec,
    ServiceClosed,
    job_fingerprint,
)

__all__ = [
    "AdmissionRejected",
    "AuthError",
    "CANCELLED",
    "DEFAULT_SCORE_CACHE_BYTES",
    "DONE",
    "ExecutorLease",
    "FAILED",
    "InferenceService",
    "JobCancelled",
    "JobFailed",
    "JobNotDone",
    "JobNotFound",
    "JobSpec",
    "QUEUED",
    "RUNNING",
    "ServiceClient",
    "ServiceClosed",
    "ServiceDaemon",
    "ServiceError",
    "SharedScoreCache",
    "job_fingerprint",
]
