"""Client side of the inference-service socket protocol.

:class:`ServiceClient` is a thin, connection-per-request wrapper over the
daemon's frame protocol: each verb opens a fresh localhost connection,
sends one ``(verb, payload)`` frame (token included), and maps the reply
back — ``("ok", body)`` to a return value, ``("error", ...)`` to the
typed exception the daemon raised (:class:`~repro.service.jobs.
AdmissionRejected` surfaces as itself, a failed job's error as
:class:`~repro.service.jobs.JobFailed`, and so on).  Because every call
is self-contained, clients are trivially thread-safe: the concurrent-
client battery drives one shared instance from N threads.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path

import numpy as np

from repro.datatypes import ExpressionMatrix
from repro.parallel.sharding import NodeCrashedError, SocketChannel
from repro.service.jobs import (
    DONE,
    FAILED,
    CANCELLED,
    AdmissionRejected,
    JobCancelled,
    JobFailed,
    JobNotDone,
    JobNotFound,
    ServiceClosed,
)


class ServiceError(RuntimeError):
    """The daemon answered with an error the client has no type for."""


class AuthError(ServiceError):
    """The daemon rejected our token."""


#: daemon-side exception type -> client-side exception class
_ERROR_TYPES = {
    "AdmissionRejected": AdmissionRejected,
    "JobNotFound": JobNotFound,
    "JobNotDone": JobNotDone,
    "JobCancelled": JobCancelled,
    "JobFailed": JobFailed,
    "ServiceClosed": ServiceClosed,
    "AuthError": AuthError,
}


class ServiceClient:
    """Talk to a running :class:`~repro.service.daemon.ServiceDaemon`."""

    def __init__(
        self, host: str, port: int, token: str, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = timeout

    @classmethod
    def from_dir(cls, root, *, timeout: float = 60.0) -> "ServiceClient":
        """Bootstrap from the ``endpoint.json`` a daemon wrote in
        ``root``."""
        endpoint = Path(root) / "endpoint.json"
        if not endpoint.exists():
            raise FileNotFoundError(
                f"no endpoint.json under {root!s} — is the daemon running?"
            )
        info = json.loads(endpoint.read_text())
        return cls(info["host"], info["port"], info["token"], timeout=timeout)

    # -- protocol ------------------------------------------------------------
    def _call(self, verb: str, **payload):
        payload["token"] = self.token
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        channel = SocketChannel(sock, peer="service")
        try:
            channel.send_msg((verb, payload))
            tag, body = channel.recv_msg()
        except NodeCrashedError as exc:
            raise ServiceError(f"service connection lost: {exc}") from exc
        finally:
            channel.close()
        if tag == "ok":
            return body
        if tag == "error":
            error_type = body.get("type", "ServiceError")
            message = body.get("message", "")
            if error_type == "JobFailed":
                # Re-wrap so error_type survives the wire round-trip.
                head, _, rest = message.partition(": ")
                raise JobFailed(head or "Exception", rest or message)
            exc_cls = _ERROR_TYPES.get(error_type)
            if exc_cls is not None:
                raise exc_cls(message)
            raise ServiceError(f"{error_type}: {message}")
        raise ServiceError(f"malformed reply tag {tag!r}")

    # -- verbs ---------------------------------------------------------------
    def ping(self) -> dict:
        return self._call("ping")

    def submit(
        self,
        matrix,
        config,
        seed: int,
        *,
        priority: int = 0,
        use_checkpoints: bool = True,
    ) -> str:
        """Submit one job; returns its id (raises
        :class:`AdmissionRejected` when the daemon's bound is full)."""
        if isinstance(matrix, ExpressionMatrix):
            values, var_names = matrix.values, list(matrix.var_names)
        else:
            values, var_names = np.asarray(matrix, dtype=np.float64), None
        body = self._call(
            "submit",
            values=values,
            var_names=var_names,
            config=config,
            seed=int(seed),
            priority=int(priority),
            use_checkpoints=bool(use_checkpoints),
        )
        return body["job_id"]

    def status(self, job_id: str | None = None):
        body = self._call("status", job_id=job_id)
        return body["status"]

    def result(self, job_id: str) -> dict:
        return self._call("result", job_id=job_id)["result"]

    def cancel(self, job_id: str) -> bool:
        return self._call("cancel", job_id=job_id)["cancelled"]

    def stats(self) -> dict:
        return self._call("stats")["stats"]

    def shutdown(self) -> None:
        self._call("shutdown")

    def wait(self, job_id: str, *, timeout: float = 600.0, poll: float = 0.05) -> dict:
        """Poll until ``job_id`` is terminal, then behave like
        :meth:`result`."""
        deadline = time.monotonic() + timeout
        while True:
            state = self.status(job_id)["state"]
            if state in (DONE, FAILED, CANCELLED):
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {state} after {timeout}s")
            time.sleep(poll)
