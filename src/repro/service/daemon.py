"""Socket front-end of the inference service.

:class:`ServiceDaemon` exposes an :class:`~repro.service.jobs.
InferenceService` over the same localhost length-prefixed frame protocol
the shard tier speaks (:class:`repro.parallel.sharding.SocketChannel`),
so the wire format, crash semantics and size limits are shared with —
and already battle-tested by — the multi-node executor.

The conversation is one request per connection: the client connects,
sends a single ``(verb, payload)`` frame carrying the daemon's
capability token, and reads back either ``("ok", body)`` or
``("error", {"type", "message"})``; the error type names the original
exception class so :class:`repro.service.client.ServiceClient` can
re-raise it typed (:class:`~repro.service.jobs.AdmissionRejected`,
:class:`~repro.service.jobs.JobFailed`, ...).  Discovery is file-based:
the daemon writes ``endpoint.json`` (host, port, token, pid) into its
run directory atomically, and clients bootstrap from that file — the
token doubles as the auth secret, readable only by whoever can read the
run directory.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from pathlib import Path

from repro.parallel.sharding import NodeCrashedError, SocketChannel
from repro.scoring.score_cache import DEFAULT_SCORE_CACHE_BYTES
from repro.service.jobs import InferenceService

#: verbs a connection may open with
_VERBS = (
    "ping",
    "submit",
    "status",
    "result",
    "cancel",
    "stats",
    "shutdown",
)


class ServiceDaemon:
    """Serve one :class:`InferenceService` on a localhost socket.

    ``root`` is the run directory: job checkpoint namespaces live under
    it and ``endpoint.json`` is written there on :meth:`start`.  Binding
    is loopback-only by construction; ``port=0`` (the default) lets the
    OS pick a free port.
    """

    def __init__(
        self,
        root,
        *,
        port: int = 0,
        max_inflight: int = 4,
        score_cache_bytes: int = DEFAULT_SCORE_CACHE_BYTES,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.service = InferenceService(
            self.root,
            max_inflight=max_inflight,
            score_cache_bytes=score_cache_bytes,
        )
        self._listener = socket.create_server(("127.0.0.1", port))
        self.host, self.port = self._listener.getsockname()
        self.token = os.urandom(16).hex()
        self._shutdown = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    @property
    def endpoint_path(self) -> Path:
        return self.root / "endpoint.json"

    def start(self) -> "ServiceDaemon":
        """Start accepting connections and publish ``endpoint.json``."""
        if self._accept_thread is not None:
            return self
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        self._accept_thread.start()
        payload = {
            "host": self.host,
            "port": self.port,
            "token": self.token,
            "pid": os.getpid(),
        }
        tmp = self.endpoint_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self.endpoint_path)  # atomic: readers never see a torn file
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`request_shutdown` (or a client ``shutdown``)."""
        self._shutdown.wait()
        self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        self.service.close()
        try:
            self.endpoint_path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- connection handling -------------------------------------------------
    def _accept_loop(self) -> None:
        self._listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed under us
                return
            # One thread per request: requests are tiny (the heavy work
            # happens on the service's runner thread) so plain threads
            # comfortably outlast any realistic client count.
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        channel = SocketChannel(conn, peer="client")
        try:
            verb, payload = channel.recv_msg()
            if not isinstance(payload, dict) or payload.get("token") != self.token:
                channel.send_msg(
                    ("error", {"type": "AuthError", "message": "bad token"})
                )
                return
            if verb not in _VERBS:
                raise ValueError(f"unknown verb {verb!r}")
            body = self._dispatch(verb, payload)
            channel.send_msg(("ok", body))
            if verb == "shutdown":
                self.request_shutdown()
        except NodeCrashedError:
            pass  # client went away mid-request; nothing to answer
        except Exception as exc:
            try:
                channel.send_msg(
                    ("error", {"type": type(exc).__name__, "message": str(exc)})
                )
            except NodeCrashedError:  # pragma: no cover - client gone too
                pass
        finally:
            channel.close()

    def _dispatch(self, verb: str, payload: dict) -> dict:
        service = self.service
        if verb == "ping":
            return {"pid": os.getpid(), "root": str(self.root)}
        if verb == "submit":
            matrix = payload["values"]
            if payload.get("var_names") is not None:
                from repro.datatypes import ExpressionMatrix

                matrix = ExpressionMatrix(matrix, var_names=payload["var_names"])
            job_id = service.submit(
                matrix,
                payload["config"],
                payload["seed"],
                priority=payload.get("priority", 0),
                use_checkpoints=payload.get("use_checkpoints", True),
            )
            return {"job_id": job_id}
        if verb == "status":
            return {"status": service.status(payload.get("job_id"))}
        if verb == "result":
            return {"result": service.result(payload["job_id"])}
        if verb == "cancel":
            return {"cancelled": service.cancel(payload["job_id"])}
        if verb == "stats":
            return {"stats": service.stats()}
        if verb == "shutdown":
            return {"ok": True}
        raise AssertionError(verb)  # pragma: no cover - guarded by _VERBS
