"""GENOMICA-style module-network learner (Segal et al. 2003/2005).

The paper's related work (Section 1.1) identifies two MoNet-learning
lineages: *GENOMICA*, implementing Segal et al.'s iterative two-step
algorithm, and *Lemon-Tree*, the three-task pipeline the paper
parallelizes.  Earlier parallelizations (Liu et al., Jiang et al.)
targeted GENOMICA only, and the paper's conclusions propose extending its
parallel components to GENOMICA as future work.

This package implements the GENOMICA lineage: a deterministic
expectation-maximization-style loop that alternates (1) learning each
module's regression-tree CPD with the best-scoring split per node and
(2) reassigning every variable to the module whose CPD explains it best.
It shares the scoring substrates (normal-gamma marginal likelihood,
sigmoid split score, tree agglomeration) with the Lemon-Tree pipeline, so
the two approaches are directly comparable on recovery quality and
run-time — the comparison the module-network literature (Joshi et al.
2009, cited by the paper) performs.
"""

from repro.genomica.learner import GenomicaConfig, GenomicaLearner, GenomicaResult
from repro.genomica.parallel import ParallelGenomicaLearner, ParallelGenomicaResult

__all__ = [
    "GenomicaConfig",
    "GenomicaLearner",
    "GenomicaResult",
    "ParallelGenomicaLearner",
    "ParallelGenomicaResult",
]
