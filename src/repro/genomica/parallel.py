"""SPMD parallelization of the GENOMICA-style learner.

The paper's conclusions (Section 6) propose extending its parallel
components to "develop a parallel solution for GENOMICA that scales to
thousands of cores" — the earlier parallelizations (Liu et al. 2005:
29.3x on 32 cores; Jiang et al. 2006: 3.5x on 4 threads) being the state
of the art for that lineage.  This module is that extension, built from
exactly the components the paper proposes to reuse:

* the parallel observation-clustering sweeps of Algorithm 2
  (:func:`repro.parallel.engine.p_reassign_obs_sweep` /
  :func:`p_merge_obs_sweep`) drive the M-step's per-module clustering;
* the E-step is a synchronous update, so variables are block-distributed
  and the new assignment is all-gathered — identical results for any
  rank count;
* the final best-split search block-distributes each node's candidate
  rows and all-gathers the deterministic grid scores.

The consistency guarantee carries over: for any ``p`` the learned network
is bit-identical to :class:`repro.genomica.learner.GenomicaLearner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LearnerConfig
from repro.datatypes import ExpressionMatrix, Module, ModuleNetwork, Split
from repro.ganesh.state import ObsClustering
from repro.genomica.learner import GenomicaLearner, select_best_split
from repro.parallel.comm import run_spmd
from repro.parallel.costmodel import block_range
from repro.parallel.engine import _RankWork, p_merge_obs_sweep, p_reassign_obs_sweep
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.split_score import SplitScorer
from repro.trees.hierarchy import build_tree_structure
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import node_kernel


@dataclass
class ParallelGenomicaResult:
    network: ModuleNetwork
    n_iterations: int
    converged: bool
    score_history: list[float]
    work_per_rank: np.ndarray
    stats: dict = field(default_factory=dict)


class ParallelGenomicaLearner(GenomicaLearner):
    """GENOMICA on ``p`` SPMD ranks."""

    def learn_parallel(
        self, matrix: ExpressionMatrix, seed: int, p: int
    ) -> ParallelGenomicaResult:
        rank_results = run_spmd(p, self._rank_main, matrix, seed)
        networks = [r[0] for r in rank_results]
        for rank, net in enumerate(networks[1:], start=1):
            if net.signature() != networks[0].signature():
                raise AssertionError(
                    f"rank {rank} diverged from rank 0 — replication broken"
                )
        first = rank_results[0]
        return ParallelGenomicaResult(
            network=first[0],
            n_iterations=first[1],
            converged=first[2],
            score_history=first[3],
            work_per_rank=np.array([r[4] for r in rank_results]),
            stats={"p": p},
        )

    # -- rank body -----------------------------------------------------------
    def _rank_main(self, comm, matrix: ExpressionMatrix, seed: int):
        config = self.config
        data = matrix.values
        n, m = data.shape
        k = min(config.n_modules, n)
        rng = GibbsRandom(make_stream(seed, "genomica", backend=config.rng_backend))
        scorer = SplitScorer(beta_grid=config.beta_grid, max_steps=1)
        parents = np.asarray(
            LearnerConfig(candidate_parents=config.candidate_parents)
            .resolve_candidate_parents(n),
            dtype=np.int64,
        )
        work = _RankWork()

        assignment = rng.random_labels(n, k)
        self._fill_empty_modules(assignment, k, rng)

        history: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(config.max_iterations):
            iterations = iteration + 1
            # Parallel M-step: the observation sweeps block-distribute the
            # candidate scoring (Algorithm 2 components).
            leaf_partitions = []
            for module_id in range(k):
                members = np.flatnonzero(assignment == module_id)
                block = data[members]
                mrng = GibbsRandom(
                    make_stream(
                        seed, "genomica-tree", iteration, module_id,
                        backend=config.rng_backend,
                    )
                )
                labels = self._p_obs_clustering(comm, block, mrng, work)
                leaf_partitions.append(
                    [
                        np.flatnonzero(labels == cid)
                        for cid in range(int(labels.max()) + 1)
                    ]
                )

            # Parallel E-step: block-distributed synchronous reassignment.
            lo, hi = block_range(n, comm.size, comm.rank)
            local_assign, local_score = self._reassign(
                data, assignment, leaf_partitions, var_range=(lo, hi)
            )
            work.add(
                (hi - lo) * sum(len(lv) for lv in leaf_partitions) * m / max(1, k)
            )
            new_assignment = comm.allgather_concat(local_assign).astype(np.int64)
            score = float(comm.allreduce(local_score))
            history.append(score)
            if np.array_equal(new_assignment, assignment):
                converged = True
                break
            assignment = new_assignment
            self._fill_empty_modules(assignment, k, rng)

        network = self._p_build_network(
            comm, matrix, assignment, k, parents, scorer, seed, work
        )
        return network, iterations, converged, history, work.units

    def _p_obs_clustering(self, comm, block: np.ndarray, mrng: GibbsRandom, work):
        """Parallel twin of the constrained GaneSH run used by the M-step.

        Mirrors ``run_obs_only_ganesh(block, mrng, T, burn_in=T-1)``: same
        initialization draws, same per-iteration oracle calls, so the
        resulting clustering is identical to the sequential learner's.
        """
        config = self.config
        block = np.atleast_2d(block)
        m = block.shape[1]
        labels = mrng.random_labels(m, max(1, math.isqrt(m)))
        oc = ObsClustering.from_block(block, labels, config.prior)
        for _ in range(config.tree_update_steps):
            p_reassign_obs_sweep(comm, oc, block, mrng, work)
            p_merge_obs_sweep(comm, oc, mrng, work)
        return oc.labels.copy()

    def _p_build_network(
        self, comm, matrix, assignment, k, parents, scorer, seed, work
    ) -> ModuleNetwork:
        """Final trees with block-distributed best-split search."""
        config = self.config
        data = matrix.values
        modules = []
        for module_id in range(k):
            members = [int(v) for v in np.flatnonzero(assignment == module_id)]
            if not members:
                modules.append(Module(module_id=module_id, members=[]))
                continue
            block = data[members]
            mrng = GibbsRandom(
                make_stream(seed, "genomica-final", module_id, backend=config.rng_backend)
            )
            labels = self._p_obs_clustering(comm, block, mrng, work)
            tree = build_tree_structure(block, labels, module_id, config.prior)
            selected: list[Split] = []
            for node in tree.internal_nodes():
                n_obs = int(node.observations.size)
                n_items = parents.size * n_obs
                lo, hi = block_range(n_items, comm.size, comm.rank)
                if hi > lo:
                    l0, l1 = lo // n_obs, (hi - 1) // n_obs + 1
                    kernel = node_kernel(data, node, parents[l0:l1], scorer.beta_grid)
                    items = np.arange(lo - l0 * n_obs, hi - l0 * n_obs)
                    local_scores, _beta, local_acc = scorer.score_grid_best_kernel(
                        kernel, item_indices=items
                    )
                    work.add(float(scorer.beta_grid.size * n_obs * (hi - lo)))
                else:
                    local_scores = np.zeros(0)
                    local_acc = np.zeros(0, dtype=bool)
                scores = comm.allgather_concat(local_scores)
                accepted = comm.allgather_concat(local_acc.astype(np.int8)).astype(bool)
                # Replicated choice from the gathered flat arrays — the same
                # helper the sequential and pooled builds use, so every rank
                # picks the identical split.
                split = select_best_split(data, node, parents, scores, accepted)
                if split is not None:
                    selected.append(split)
            module = Module(module_id=module_id, members=members, trees=[tree])
            module.weighted_parents = accumulate_parent_scores(selected)
            modules.append(module)
        return ModuleNetwork(modules, matrix.var_names, matrix.n_obs)
