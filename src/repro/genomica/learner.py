"""Iterative two-step module-network learning (the GENOMICA approach).

Algorithm (Segal et al., simplified to the shared substrates of this
repository):

1. **Initialize** the module assignment randomly into ``n_modules``
   clusters (replicated-stream randomness, so runs are reproducible and
   seed-comparable with the Lemon-Tree learners).
2. **M-step** — for every module, learn a regression-tree CPD: cluster the
   module's observations (constrained GaneSH), agglomerate the clusters
   into a binary tree, and assign each internal node the *single
   best-scoring* split over all candidate parents and values (deterministic
   maximization over the beta grid — GENOMICA searches for the best split,
   where Lemon-Tree samples from the split posterior).
3. **E-step** — reassign every variable to the module whose leaf blocks
   explain its row best: the held-out predictive score
   ``sum_leaves [logml(leaf + row|leaf) - logml(leaf)]`` with the
   variable's own contribution removed from its current module.
4. Repeat until the assignment reaches a fixed point or ``max_iterations``.

The total decomposable score is non-decreasing under the E-step given
fixed leaf partitions, which gives the convergence behaviour Segal et al.
describe; tree re-learning in the next M-step may re-shuffle scores, so a
fixed-point/iteration cap terminates the loop, as in GENOMICA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LearnerConfig, ParallelConfig
from repro.datatypes import ExpressionMatrix, Module, ModuleNetwork, Split
from repro.ganesh.coclustering import SweepHooks, run_obs_only_ganesh
from repro.rng.streams import GibbsRandom, make_stream
from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior, log_marginal
from repro.scoring.split_score import DEFAULT_BETA_GRID, SplitScorer
from repro.trees.hierarchy import build_tree_structure
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import node_kernel


@dataclass(frozen=True)
class GenomicaConfig:
    """Parameters of the two-step learner."""

    #: number of modules K (fixed, unlike Lemon-Tree's consensus count)
    n_modules: int = 10
    #: maximum assign/learn iterations
    max_iterations: int = 10
    #: update steps of the per-module observation clustering
    tree_update_steps: int = 1
    #: candidate parents (``None`` -> all variables)
    candidate_parents: tuple[int, ...] | None = None
    beta_grid: tuple[float, ...] = DEFAULT_BETA_GRID
    prior: NormalGammaPrior = field(default_factory=lambda: DEFAULT_PRIOR)
    rng_backend: str = "philox"
    #: execution backend (``parallel.n_workers == 1`` is in-process; >1
    #: runs the M-step chains and the final network build concurrently on
    #: the persistent :class:`repro.parallel.executor.TaskPoolExecutor` —
    #: bit-identical output because each task consumes only its own named
    #: stream)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)

    def __post_init__(self) -> None:
        if self.n_modules < 1:
            raise ValueError("n_modules must be at least 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.tree_update_steps < 1:
            raise ValueError("tree_update_steps must be at least 1")
        if not isinstance(self.parallel, ParallelConfig):
            raise ValueError("parallel must be a ParallelConfig")


@dataclass
class GenomicaResult:
    network: ModuleNetwork
    n_iterations: int
    converged: bool
    score_history: list[float]
    elapsed_seconds: float


class GenomicaLearner:
    """The iterative two-step (GENOMICA-style) learner."""

    def __init__(self, config: GenomicaConfig | None = None) -> None:
        self.config = config or GenomicaConfig()

    def learn(self, matrix: ExpressionMatrix, seed: int, trace=None) -> GenomicaResult:
        """Learn a module network; ``trace`` optionally records the
        parallelizable work (same WorkTrace protocol as the Lemon-Tree
        learner) for strong-scaling projection of the parallel GENOMICA
        extension."""
        config = self.config
        hooks = (
            SweepHooks(record=lambda ph, costs, nc=2: trace.record(ph, costs, nc))
            if trace is not None
            else SweepHooks()
        )
        data = matrix.values
        n, m = data.shape
        k = min(config.n_modules, n)
        rng = GibbsRandom(make_stream(seed, "genomica", backend=config.rng_backend))
        scorer = SplitScorer(beta_grid=config.beta_grid, max_steps=1)
        parents = np.asarray(
            LearnerConfig(candidate_parents=config.candidate_parents)
            .resolve_candidate_parents(n),
            dtype=np.int64,
        )

        t0 = time.perf_counter()
        assignment = rng.random_labels(n, k)
        self._fill_empty_modules(assignment, k, rng)

        # One persistent executor serves every pooled phase: all M-step
        # iterations and the final network build (a single pool, a single
        # shared-memory matrix transfer).  Per-superstep trace hooks only
        # record in-process, so traced runs stay sequential.
        executor = None
        if config.parallel.n_workers != 1 and trace is None and k > 1:
            executor = self._make_executor(data, parents, seed)

        history: list[float] = []
        converged = False
        leaf_partitions: list[list[np.ndarray]] = []
        iterations = 0
        try:
            for iteration in range(config.max_iterations):
                iterations = iteration + 1
                # M-step: per-module observation clustering -> leaf partition.
                label_runs = self._m_step_labels(
                    data, assignment, k, iteration, seed, hooks, executor
                )
                leaf_partitions = [
                    [
                        np.flatnonzero(labels == cid)
                        for cid in range(int(labels.max()) + 1)
                    ]
                    for labels in label_runs
                ]

                # E-step: reassign variables by held-out predictive score.
                if trace is not None:
                    per_var = float(sum(len(lv) for lv in leaf_partitions))
                    trace.record(
                        "modules.e_step",
                        np.full(n, per_var * m / max(1, k)),
                        n_collectives=2,  # assignment all-gather + score reduce
                    )
                new_assignment, score = self._reassign(
                    data, assignment, leaf_partitions
                )
                history.append(score)
                if np.array_equal(new_assignment, assignment):
                    converged = True
                    break
                assignment = new_assignment
                self._fill_empty_modules(assignment, k, rng)

            network = self._build_network(
                matrix, assignment, k, parents, scorer, seed, hooks, trace,
                executor=executor,
            )
        finally:
            if executor is not None:
                executor.close()
        elapsed = time.perf_counter() - t0
        if trace is not None:
            trace.mark_time("modules", elapsed)
        return GenomicaResult(
            network=network,
            n_iterations=iterations,
            converged=converged,
            score_history=history,
            elapsed_seconds=elapsed,
        )

    # -- steps ------------------------------------------------------------
    def _m_step_labels(
        self,
        data: np.ndarray,
        assignment: np.ndarray,
        k: int,
        iteration: int,
        seed: int,
        hooks: SweepHooks,
        executor,
    ) -> list[np.ndarray]:
        """One M-step's per-module observation clusterings.

        With an executor, the K clustering chains of this iteration are
        dispatched through ``submit_runs`` and run concurrently: each chain
        consumes only its own ``("genomica-tree", iteration, id)`` stream
        and the module memberships are computed driver-side beforehand, so
        the labels are bit-identical to the sequential loop in any
        dispatch order.
        """
        config = self.config
        if executor is not None:
            items = [
                (iteration, module_id,
                 [int(v) for v in np.flatnonzero(assignment == module_id)])
                for module_id in range(k)
            ]
            return executor.submit_runs(_genomica_mstep_run, items)
        label_runs: list[np.ndarray] = []
        for module_id in range(k):
            members = np.flatnonzero(assignment == module_id)
            block = data[members]
            mrng = GibbsRandom(
                make_stream(
                    seed, "genomica-tree", iteration, module_id,
                    backend=config.rng_backend,
                )
            )
            (labels,) = run_obs_only_ganesh(
                block, mrng, n_update_steps=config.tree_update_steps,
                burn_in=config.tree_update_steps - 1, prior=config.prior,
                hooks=hooks,
            )
            label_runs.append(labels)
        return label_runs

    def _fill_empty_modules(self, assignment: np.ndarray, k: int, rng: GibbsRandom) -> None:
        """Ensure no module is empty (GENOMICA keeps K fixed)."""
        counts = np.bincount(assignment, minlength=k)
        for module_id in np.flatnonzero(counts == 0):
            donors = np.flatnonzero(np.bincount(assignment, minlength=k) > 1)
            if donors.size == 0:
                return
            donor = int(donors[rng.randint(donors.size)])
            candidates = np.flatnonzero(assignment == donor)
            victim = int(candidates[rng.randint(candidates.size)])
            assignment[victim] = module_id

    def _leaf_stats(self, data: np.ndarray, members: np.ndarray, leaves) -> list[tuple]:
        stats = []
        block = data[members]
        for obs in leaves:
            vals = block[:, obs]
            stats.append((float(vals.size), float(vals.sum()), float((vals**2).sum())))
        return stats

    def _module_leaf_stats(self, data: np.ndarray, assignment: np.ndarray, leaf_partitions):
        """Per-module leaf statistics under the current assignment."""
        stats = []
        for module_id in range(len(leaf_partitions)):
            members = np.flatnonzero(assignment == module_id)
            stats.append(self._leaf_stats(data, members, leaf_partitions[module_id]))
        return stats

    def _reassign(
        self,
        data: np.ndarray,
        assignment: np.ndarray,
        leaf_partitions,
        var_range: tuple[int, int] | None = None,
    ) -> tuple[np.ndarray, float]:
        """One E-step pass.

        Returns the new assignment for the variables in ``var_range``
        (default: all) and their total score.  Each variable's decision
        depends only on the *old* assignment (a synchronous update), which
        is what makes the E-step block-parallelizable with identical
        results (the GENOMICA parallelizations of Liu et al. / Jiang et
        al. exploit the same structure).
        """
        prior = self.config.prior
        n = data.shape[0]
        k = len(leaf_partitions)
        lo, hi = var_range if var_range is not None else (0, n)

        module_stats = self._module_leaf_stats(data, assignment, leaf_partitions)

        new_assignment = assignment[lo:hi].copy()
        total_score = 0.0
        for var in range(lo, hi):
            row = data[var]
            current = int(assignment[var])
            best_score, best_module = -np.inf, current
            for module_id in range(k):
                leaves = leaf_partitions[module_id]
                stats = module_stats[module_id]
                score = 0.0
                for (count, tot, sq), obs in zip(stats, leaves):
                    r = row[obs]
                    rc, rt, rq = float(r.size), float(r.sum()), float((r**2).sum())
                    if module_id == current:
                        # Held-out: remove the row's own contribution.
                        base = log_marginal(count - rc, tot - rt, sq - rq, prior)
                        with_row = log_marginal(count, tot, sq, prior)
                    else:
                        base = log_marginal(count, tot, sq, prior)
                        with_row = log_marginal(count + rc, tot + rt, sq + rq, prior)
                    score += float(with_row) - float(base)
                if score > best_score:
                    best_score, best_module = score, module_id
            new_assignment[var - lo] = best_module
            total_score += best_score
        return new_assignment, total_score

    # -- output -----------------------------------------------------------
    def _build_network(
        self,
        matrix: ExpressionMatrix,
        assignment: np.ndarray,
        k: int,
        parents: np.ndarray,
        scorer: SplitScorer,
        seed: int,
        hooks: SweepHooks = SweepHooks(),
        trace=None,
        executor=None,
    ) -> ModuleNetwork:
        """Final trees with the deterministic best split per node.

        With an executor (``config.parallel.n_workers > 1`` and no trace —
        per-superstep hooks only record in-process) the K module builds run
        concurrently on the persistent task-pool executor; each consumes
        only its own ``("genomica-final", id)`` stream, so the network is
        bit-identical to the sequential loop.
        """
        config = self.config
        data = matrix.values
        members_of = [
            [int(v) for v in np.flatnonzero(assignment == module_id)]
            for module_id in range(k)
        ]
        if executor is None and config.parallel.n_workers != 1 and trace is None and k > 1:
            modules = self._build_modules_pooled(data, members_of, parents, seed)
        elif executor is not None:
            modules = executor.submit_runs(
                _genomica_module_run, list(enumerate(members_of))
            )
        else:
            modules = [
                build_final_module(
                    data, config, module_id, members, parents, scorer, seed,
                    hooks=hooks, trace=trace,
                )
                for module_id, members in enumerate(members_of)
            ]
        return ModuleNetwork(modules, matrix.var_names, matrix.n_obs)

    def _make_executor(self, data: np.ndarray, parents: np.ndarray, seed: int):
        """A persistent task-pool executor carrying the GENOMICA bridge config."""
        from repro.parallel.executor import TaskPoolExecutor

        config = self.config
        # The executor's worker context carries a LearnerConfig; bridge the
        # GENOMICA parameters into the fields the worker entry points read.
        bridge = LearnerConfig(
            candidate_parents=config.candidate_parents,
            beta_grid=config.beta_grid,
            max_sampling_steps=1,
            tree_update_steps=config.tree_update_steps,
            prior=config.prior,
            rng_backend=config.rng_backend,
            parallel=config.parallel,
        )
        return TaskPoolExecutor(data, parents, bridge, seed)

    def _build_modules_pooled(
        self, data: np.ndarray, members_of, parents: np.ndarray, seed: int
    ) -> list[Module]:
        """The final network build fanned out over a one-shot pool."""
        with self._make_executor(data, parents, seed) as executor:
            modules = executor.submit_runs(
                _genomica_module_run, list(enumerate(members_of))
            )
        return modules


def select_best_split(
    data: np.ndarray,
    node,
    parents: np.ndarray,
    scores: np.ndarray,
    accepted: np.ndarray,
) -> Split | None:
    """The deterministic GENOMICA split choice from flat grid-best scores.

    ``scores``/``accepted`` are the node's candidate rows in enumeration
    order (parent-major, observation-minor).  Returns ``None`` when no
    candidate was accepted; otherwise attaches the chosen split to the node
    and returns it.  Shared by the sequential, pooled and SPMD builds so
    the argmax and posterior-weight conventions cannot drift apart.
    """
    if not accepted.any():
        return None
    masked = np.where(accepted, scores, -np.inf)
    best = int(np.argmax(masked))
    n_obs = int(node.observations.size)
    # Posterior of the chosen split under the node's softmax — comparable
    # to Lemon-Tree's weights for parent scoring.
    retained = scores[accepted]
    weight = float(
        np.exp(scores[best] - retained.max())
        / np.exp(retained - retained.max()).sum()
    )
    split = Split(
        parent=int(parents[best // n_obs]),
        value=float(data[parents[best // n_obs], node.observations[best % n_obs]]),
        node_id=node.node_id,
        posterior=weight,
        n_obs=n_obs,
    )
    node.weighted_splits = [split]
    return split


def build_final_module(
    data: np.ndarray,
    config: GenomicaConfig,
    module_id: int,
    members: list[int],
    parents: np.ndarray,
    scorer: SplitScorer,
    seed: int,
    hooks: SweepHooks = SweepHooks(),
    trace=None,
) -> Module:
    """One module of the final network (tree + deterministic best splits).

    Self-contained: consumes only the module's ``("genomica-final", id)``
    stream, so concurrent executions — in any order, on any worker —
    produce the module the sequential loop would.
    """
    if not members:
        return Module(module_id=module_id, members=[])
    block = data[members]
    mrng = GibbsRandom(
        make_stream(seed, "genomica-final", module_id, backend=config.rng_backend)
    )
    (labels,) = run_obs_only_ganesh(
        block, mrng, n_update_steps=config.tree_update_steps,
        burn_in=config.tree_update_steps - 1, prior=config.prior,
        hooks=hooks,
    )
    tree = build_tree_structure(block, labels, module_id, config.prior, hooks)
    selected: list[Split] = []
    for node in tree.internal_nodes():
        kernel = node_kernel(data, node, parents, scorer.beta_grid)
        if trace is not None:
            trace.record(
                "modules.split_search",
                np.full(
                    kernel.n_items,
                    float(scorer.beta_grid.size * kernel.n_obs),
                ),
                n_collectives=1,
            )
        scores, _beta, accepted = scorer.score_grid_best_kernel(kernel)
        split = select_best_split(data, node, parents, scores, accepted)
        if split is not None:
            selected.append(split)
    module = Module(module_id=module_id, members=members, trees=[tree])
    module.weighted_parents = accumulate_parent_scores(selected)
    return module


def _genomica_mstep_run(ctx, item) -> np.ndarray:
    """Task-pool entry point: one M-step observation clustering.

    ``item`` is ``(iteration, module_id, members)``; the member list is
    computed driver-side under the current assignment, so the worker only
    replays the module's private ``("genomica-tree", iteration, id)``
    stream against the shared-memory matrix — bit-identical to the
    sequential loop regardless of dispatch order.
    """
    iteration, module_id, members = item
    config = ctx["config"]
    block = ctx["data"][np.asarray(members, dtype=np.int64)]
    mrng = GibbsRandom(
        make_stream(
            ctx["seed"], "genomica-tree", iteration, module_id,
            backend=config.rng_backend,
        )
    )
    (labels,) = run_obs_only_ganesh(
        block, mrng, n_update_steps=config.tree_update_steps,
        burn_in=config.tree_update_steps - 1, prior=config.prior,
    )
    return labels


def _genomica_module_run(ctx, item) -> Module:
    """Task-pool entry point: one final-network module from the worker ctx.

    The worker context carries the bridge :class:`LearnerConfig` installed
    by :meth:`GenomicaLearner._build_modules_pooled`; reconstruct the
    GENOMICA parameters it encodes and build the module against the
    shared-memory matrix.
    """
    module_id, members = item
    config = ctx["config"]
    gconfig = GenomicaConfig(
        tree_update_steps=config.tree_update_steps,
        candidate_parents=config.candidate_parents,
        beta_grid=config.beta_grid,
        prior=config.prior,
        rng_backend=config.rng_backend,
    )
    return build_final_module(
        ctx["data"], gconfig, module_id, members, ctx["parents"],
        ctx["scorer"], ctx["seed"],
    )
