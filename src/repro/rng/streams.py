"""Stream discipline for replicated and block-split randomness.

Two kinds of random decisions occur in the learner (Sections 3.1 and 4.2 of
the paper):

* **Collective decisions** — e.g. picking the variable to reassign
  (``Select-Unif-Rand``) or the Gibbs move among candidate clusters
  (``Select-Wtd-Rand``).  Every rank must arrive at the same answer, so all
  ranks hold identical copies of one *replicated* stream and advance it in
  lockstep.  :class:`GibbsRandom` wraps a stream with the sampling helpers
  used for these decisions.

* **Per-item decisions** — the discrete sampling chain that scores one
  candidate parent split.  Work items are block-distributed across ranks, so
  each item's randomness must be addressable by its *global index*
  independent of which rank computes it.  :class:`IndexedStream` gives each
  item a private, offset-addressed block of draws.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.rng.mrg import MRGStream
from repro.rng.philox import PhiloxStream

Stream = Union[PhiloxStream, MRGStream]

#: Decision quantum: log-scores are snapped to this grid before weighted
#: sampling, so that independently-implemented scorers (vectorized NumPy vs
#: the pure-Python reference, which accumulate in different orders) make
#: bit-identical random decisions.  This plays the role of the cross-language
#: PRNG alignment the authors needed between Java Lemon-Tree and their C++
#: code (Section 4.1).
SCORE_QUANTUM = 1e-9


def make_stream(seed: int, *path: object, backend: str = "philox") -> Stream:
    """Create a root stream for ``seed`` with the requested backend."""
    if backend == "philox":
        return PhiloxStream(seed, *path)
    if backend == "mrg":
        return MRGStream(seed, *path)
    raise ValueError(f"unknown RNG backend: {backend!r}")


def quantize_logs(log_weights: Sequence[float]) -> np.ndarray:
    """Snap log-weights to the shared decision grid (see SCORE_QUANTUM)."""
    arr = np.asarray(log_weights, dtype=np.float64)
    out = np.round(arr / SCORE_QUANTUM) * SCORE_QUANTUM
    # Preserve -inf sentinels (zero-probability choices).
    out[np.isneginf(arr)] = -np.inf
    return out


class GibbsRandom:
    """Sampling helpers over a replicated stream.

    All methods consume a deterministic number of draws from the underlying
    stream, so implementations that interleave the same sequence of calls
    stay in lockstep regardless of how they compute the weights.
    """

    def __init__(self, stream: Stream) -> None:
        self.stream = stream

    def clone(self) -> "GibbsRandom":
        return GibbsRandom(self.stream.clone())

    @property
    def offset(self) -> int:
        return self.stream.offset

    # -- basic draws ----------------------------------------------------
    def uniform(self) -> float:
        return self.stream.next_uniform()

    def uniforms(self, count: int) -> np.ndarray:
        return self.stream.next_uniforms(count)

    def randint(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` — the Select-Unif-Rand oracle."""
        if n <= 0:
            raise ValueError("randint needs a positive range")
        return min(int(self.stream.next_uniform() * n), n - 1)

    def random_labels(self, count: int, n_bins: int) -> np.ndarray:
        """``count`` independent uniform labels in ``[0, n_bins)``.

        Used for the random initializations of variable and observation
        clusters (Algorithm 3, lines 3-5).
        """
        u = self.stream.next_uniforms(count)
        labels = np.minimum((u * n_bins).astype(np.int64), n_bins - 1)
        return labels

    # -- weighted sampling ----------------------------------------------
    def weighted_choice_logs(self, log_weights: Sequence[float]) -> int:
        """Sample an index with probability ∝ exp(log_weights[i]).

        The Select-Wtd-Rand oracle.  Log-weights are quantized (see
        :data:`SCORE_QUANTUM`) and normalized with log-sum-exp; exactly one
        uniform is consumed.
        """
        logs = quantize_logs(log_weights)
        if logs.size == 0:
            raise ValueError("weighted choice over an empty list")
        finite = np.isfinite(logs)
        if not finite.any():
            # All options impossible: fall back to uniform (still one draw).
            return self.randint(logs.size)
        peak = logs[finite].max()
        weights = np.exp(np.where(finite, logs - peak, -np.inf))
        weights[~finite] = 0.0
        total = weights.sum()
        u = self.stream.next_uniform() * total
        cum = np.cumsum(weights)
        idx = int(np.searchsorted(cum, u, side="right"))
        return min(idx, logs.size - 1)

    def weighted_choice(self, weights: Sequence[float]) -> int:
        """Sample an index with probability ∝ weights[i] (linear scale)."""
        arr = np.asarray(weights, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("weighted choice over an empty list")
        total = arr.sum()
        if total <= 0:
            return self.randint(arr.size)
        u = self.stream.next_uniform() * total
        cum = np.cumsum(arr)
        idx = int(np.searchsorted(cum, u, side="right"))
        return min(idx, arr.size - 1)


class IndexedStream:
    """Random access to per-item blocks of draws.

    Item ``i`` owns draws ``[i * draws_per_item, (i + 1) * draws_per_item)``
    of the underlying counter stream.  Any rank (or process-pool worker) that
    evaluates item ``i`` sees the same randomness, which makes the result of
    the split-scoring phase independent of the work partition — the
    "block-split the PRNG to match the block distribution of work" rule of
    Section 4.2.
    """

    def __init__(self, stream: Stream, draws_per_item: int) -> None:
        if draws_per_item <= 0:
            raise ValueError("draws_per_item must be positive")
        self.stream = stream
        self.draws_per_item = int(draws_per_item)

    def item_uniforms(self, index: int, count: int | None = None) -> np.ndarray:
        """The private uniforms for item ``index`` (at most draws_per_item)."""
        count = self.draws_per_item if count is None else int(count)
        if count > self.draws_per_item:
            raise ValueError(
                f"item requested {count} draws but owns {self.draws_per_item}"
            )
        return self.stream.block(index * self.draws_per_item, count)

    def spawn(self, *path: object) -> "IndexedStream":
        return IndexedStream(self.stream.split(*path), self.draws_per_item)
