"""Counter-based splittable stream built on NumPy's Philox generator.

Philox is a counter-based generator: output ``i`` of a keyed stream is a pure
function of ``(key, i)``, so jumping to an arbitrary offset costs O(1)
(``BitGenerator.advance``).  This is the property the paper relies on for
block-splitting the random stream across processors in O(1) time (Section
4.2, citing Bauke & Mertens).
"""

from __future__ import annotations

import numpy as np
from numpy.random import Generator, Philox

_UINT64_MASK = (1 << 64) - 1


def derive_key(seed: int, *path: object) -> int:
    """Derive a 64-bit subkey from ``seed`` and a hashable path.

    Distinct paths give statistically independent Philox keys.  The
    derivation is a fixed splitmix64-style mix so it is stable across runs
    and platforms (``hash()`` would be salted).
    """
    z = seed & _UINT64_MASK
    for part in path:
        data = repr(part).encode("utf-8")
        for byte in data:
            z = (z ^ byte) * 0x100000001B3 & _UINT64_MASK
        # splitmix64 finalizer
        z = (z + 0x9E3779B97F4A7C15) & _UINT64_MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _UINT64_MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _UINT64_MASK
        z = z ^ (z >> 31)
    return z


class PhiloxStream:
    """A keyed, counter-addressable stream of uniforms in ``[0, 1)``.

    Supports both sequential consumption (:meth:`next_uniform`,
    :meth:`next_uniforms`) and O(1) random access to a block of draws by
    global offset (:meth:`block`), which is what "block splitting" a stream
    means: rank ``k`` of ``p`` obtains the draws its work items would have
    consumed sequentially, without generating the preceding ones.
    """

    #: draws consumed per uniform (one 64-bit word each)
    name = "philox"

    def __init__(self, seed: int, *path: object, offset: int = 0) -> None:
        self._seed = int(seed)
        self._path = tuple(path)
        self._key = derive_key(self._seed, *self._path)
        self._offset = int(offset)

    # -- construction ---------------------------------------------------
    def split(self, *path: object) -> "PhiloxStream":
        """Return an independent child stream identified by ``path``."""
        return PhiloxStream(self._seed, *self._path, *path)

    def clone(self) -> "PhiloxStream":
        return PhiloxStream(self._seed, *self._path, offset=self._offset)

    # -- state ----------------------------------------------------------
    @property
    def offset(self) -> int:
        """Number of uniforms consumed so far (the stream position)."""
        return self._offset

    def jump_to(self, offset: int) -> None:
        """Reposition the stream at absolute draw index ``offset`` (O(1))."""
        self._offset = int(offset)

    def _draws_at(self, offset: int, count: int) -> np.ndarray:
        # Philox emits 4 x 64-bit words per counter increment and
        # Generator.random consumes one word per double, so draw index
        # ``offset`` lives at counter ``offset // 4``, word ``offset % 4``.
        # Setting the counter directly is the O(1) jump the paper's
        # block-splitting requires.
        bg = Philox(key=self._key)
        quot, rem = divmod(int(offset), 4)
        if quot:
            state = bg.state
            state["state"]["counter"][0] = quot
            bg.state = state
        out = Generator(bg).random(rem + int(count))
        return out[rem:] if rem else out

    # -- draws ----------------------------------------------------------
    def next_uniform(self) -> float:
        out = self._draws_at(self._offset, 1)
        self._offset += 1
        return float(out[0])

    def next_uniforms(self, count: int) -> np.ndarray:
        out = self._draws_at(self._offset, int(count))
        self._offset += int(count)
        return out

    def block(self, start: int, count: int) -> np.ndarray:
        """Uniforms at absolute indices ``[start, start + count)``.

        Does not move the sequential position; O(1) setup regardless of
        ``start``.
        """
        return self._draws_at(int(start), int(count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhiloxStream(seed={self._seed}, path={self._path!r}, "
            f"offset={self._offset})"
        )
