"""Splittable parallel pseudo-random number generation.

The paper (Section 4.2) generates random numbers with the TRNG library: a
multiple recursive generator with three feedback terms and a Sophie-Germain
prime modulus, block-split across MPI ranks so that the block distribution of
the random-number stream matches the block distribution of the work.  This
package provides the same contract with two interchangeable backends:

* :class:`~repro.rng.philox.PhiloxStream` — counter-based (NumPy ``Philox``),
  O(1) jump-ahead via counter ``advance``.
* :class:`~repro.rng.mrg.MRGStream` — a multiple recursive generator with
  three feedback terms and a Sophie-Germain prime modulus, O(log k)
  jump-ahead via modular matrix powers.

On top of the raw streams, :mod:`repro.rng.streams` implements the stream
discipline used throughout the learner:

* :class:`~repro.rng.streams.GibbsRandom` — the *replicated* stream: every
  (simulated) rank holds an identical copy and advances it identically, so
  collective sampling decisions (``Select-Unif-Rand`` / ``Select-Wtd-Rand``
  in Section 3.1) agree on every rank without communication of random bits.
* :class:`~repro.rng.streams.IndexedStream` — random access by global item
  index, used for the per-candidate-split sampling chains so that results do
  not depend on which rank (or process-pool worker) evaluates a split.
"""

from repro.rng.mrg import MRGStream
from repro.rng.philox import PhiloxStream
from repro.rng.streams import GibbsRandom, IndexedStream, make_stream

__all__ = [
    "MRGStream",
    "PhiloxStream",
    "GibbsRandom",
    "IndexedStream",
    "make_stream",
]
