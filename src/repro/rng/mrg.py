"""Multiple recursive generator (MRG) with O(log k) jump-ahead.

The paper's implementation uses TRNG's ``mrg3s``: a multiple recursive
generator with three feedback terms and a Sophie-Germain prime modulus
(Section 4.2).  This module implements the same construction:

    x_n = (a1 * x_{n-1} + a2 * x_{n-2} + a3 * x_{n-3}) mod M

with ``M = 2147483543`` (the largest Sophie-Germain prime below 2^31; both
``M`` and ``2M + 1`` are prime).  Jump-ahead by ``k`` steps is a 3x3 modular
matrix power, costing O(log k) — the mechanism TRNG uses for block-splitting
streams across processors.

The multipliers below are full-period-plausible constants fixed for this
reproduction; they are not TRNG's exact constants (TRNG is not available
offline) and the backend is not certified to TRNG's statistical standards.
It exists to exercise and test the jump-ahead/block-split machinery with a
second, structurally different backend; :class:`repro.rng.philox.PhiloxStream`
is the default for experiments.
"""

from __future__ import annotations

import numpy as np

#: Sophie-Germain prime modulus (2*M + 1 is also prime).
MODULUS = 2147483543
_A1 = 1403580
_A2 = 810728
_A3 = 1234567


def _mat_mul(a: list[list[int]], b: list[list[int]], mod: int) -> list[list[int]]:
    return [
        [sum(a[i][k] * b[k][j] for k in range(3)) % mod for j in range(3)]
        for i in range(3)
    ]


def _mat_pow(mat: list[list[int]], power: int, mod: int) -> list[list[int]]:
    result = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
    base = [row[:] for row in mat]
    while power > 0:
        if power & 1:
            result = _mat_mul(result, base, mod)
        base = _mat_mul(base, base, mod)
        power >>= 1
    return result


_TRANSITION = [[_A1, _A2, _A3], [1, 0, 0], [0, 1, 0]]


class MRGStream:
    """MRG-backed stream with the same interface as ``PhiloxStream``."""

    name = "mrg"

    def __init__(self, seed: int, *path: object, offset: int = 0) -> None:
        # Key derivation shared with the Philox backend keeps child-stream
        # identities consistent across backends.
        from repro.rng.philox import derive_key

        self._seed = int(seed)
        self._path = tuple(path)
        key = derive_key(self._seed, *self._path)
        # Non-zero initial state derived from the key.
        s0 = key % (MODULUS - 1) + 1
        s1 = (key >> 21) % (MODULUS - 1) + 1
        s2 = (key >> 42) % (MODULUS - 1) + 1
        self._initial = (s0, s1, s2)
        self._offset = int(offset)
        self._state = self._state_at(self._offset)

    # -- construction ---------------------------------------------------
    def split(self, *path: object) -> "MRGStream":
        return MRGStream(self._seed, *self._path, *path)

    def clone(self) -> "MRGStream":
        return MRGStream(self._seed, *self._path, offset=self._offset)

    # -- state ----------------------------------------------------------
    @property
    def offset(self) -> int:
        return self._offset

    def _state_at(self, offset: int) -> tuple[int, int, int]:
        mat = _mat_pow(_TRANSITION, offset, MODULUS)
        s = self._initial
        return tuple(
            sum(mat[i][j] * s[j] for j in range(3)) % MODULUS for i in range(3)
        )  # type: ignore[return-value]

    def jump_to(self, offset: int) -> None:
        """Reposition at absolute draw index ``offset`` in O(log offset)."""
        self._offset = int(offset)
        self._state = self._state_at(self._offset)

    # -- draws ----------------------------------------------------------
    def _step(self, state: tuple[int, int, int]) -> tuple[int, int, int]:
        x0, x1, x2 = state
        nxt = (_A1 * x0 + _A2 * x1 + _A3 * x2) % MODULUS
        return (nxt, x0, x1)

    def next_uniform(self) -> float:
        self._state = self._step(self._state)
        self._offset += 1
        return self._state[0] / MODULUS

    def next_uniforms(self, count: int) -> np.ndarray:
        out = np.empty(int(count), dtype=np.float64)
        state = self._state
        for i in range(int(count)):
            state = self._step(state)
            out[i] = state[0]
        self._state = state
        self._offset += int(count)
        return out / MODULUS

    def block(self, start: int, count: int) -> np.ndarray:
        """Uniforms at absolute indices ``[start, start + count)``.

        Jump-ahead to ``start`` via a modular matrix power, then generate
        ``count`` values; the sequential position is unchanged.
        """
        state = self._state_at(int(start))
        out = np.empty(int(count), dtype=np.float64)
        for i in range(int(count)):
            state = self._step(state)
            out[i] = state[0]
        return out / MODULUS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MRGStream(seed={self._seed}, path={self._path!r}, "
            f"offset={self._offset})"
        )
