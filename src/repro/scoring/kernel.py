"""Lazy-margin split-scoring kernel with beta-score memoization.

Split scoring dominates sequential run-time (Section 2.2.3: more than 90%),
and the seed implementation pays for it twice over: every node first
materializes a dense ``(P * n_obs, n_obs)`` margins matrix — ``O(P * n_obs^2)``
memory — and then re-evaluates full ``O(n_obs)`` rows for beta grid points the
Metropolis chain has already visited.  This module removes both costs while
keeping the scores **bit-identical**:

* **Lazy margins** — a split ``(X_l, v)`` at a node is fully described by the
  ``(P, n_obs)`` parent-value slice ``values`` and the left/right sign vector,
  because ``score(l, j, beta) = sum_o logsigmoid(beta * sign_o *
  (values[l, j] - values[l, o]))``.  The kernel evaluates that broadcast over
  one cached value row on demand, so the dense margins matrix is never built
  and peak memory drops to ``O(P * n_obs)`` (plus a bounded evaluation chunk).
* **Beta-score memoization** — a chain of at most ``max_steps`` steps over a
  ~7-point grid proposes previously-visited betas constantly; each
  ``(split, beta)`` score is computed once and served from a
  ``(n_groups, n_beta)`` cache afterwards.
* **Equal-split-value dedup** — two candidates ``(X_l, v)`` and ``(X_l, v')``
  with ``v == v'`` (duplicate parent values at the node) have identical margin
  rows, hence identical score tables.  Candidates are grouped by
  ``(parent row, value)`` and the cache is keyed per *group*, so duplicates
  are scored once.  Only the deterministic score table is shared: every split
  still consumes its own private indexed-stream draws, which is what keeps
  the RNG-lockstep draw accounting — and therefore every backend's output —
  unchanged.

Bit-identity holds because the kernel performs the exact same elementwise
operations in the exact same order as the dense path (subtract, multiply by
sign, multiply by beta, the stable log-sigmoid, a pairwise sum over one
contiguous ``n_obs`` row, quantization); deduplicated candidates share equal
float values, so their rows are equal by construction.

The module also hosts the allocation guard used to *prove* the memory claim:
``allocation_cap(n)`` caps the element count of any guarded temporary, the
kernel sizes its evaluation chunks under the cap, and the dense
``margins_from_arrays`` path calls :func:`guard_alloc` so a test can pick a
node whose margins matrix is impossible to build while the kernel scores it.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np

from repro.rng.streams import SCORE_QUANTUM

#: Default bound on the element count of one evaluation temporary
#: (``chunk_rows * n_obs`` float64 values, ~2 MiB) when the machine's
#: cache hierarchy is unknown; see :func:`configured_chunk_elements`.
DEFAULT_CHUNK_ELEMENTS = 1 << 18

_CONFIGURED_CHUNK_ELEMENTS: int | None = None

_CAP: int | None = None

#: the valid ``ParallelConfig.kernel_backend`` / CLI ``--kernel-backend``
#: values: the pure-NumPy oracle, the native-compiled extension, or probe
KERNEL_BACKENDS = ("auto", "numpy", "native")

_CONFIGURED_BACKEND: str = "auto"

_WARNED_NATIVE_FALLBACK = False

#: process-wide kernel counter accumulator (hits / evaluations /
#: peak_chunk_elements / backends seen, plus the shared-score-cache
#: store_* counters) drained by the executor and the learner into
#: ``WorkTrace.kernel_counters``
_TOTALS = {"hits": 0, "evaluations": 0, "peak_chunk_elements": 0}
_STORE_TOTALS = {"store_hits": 0, "store_misses": 0, "store_evictions": 0}
_TOTALS_BACKENDS: set[str] = set()

#: the process-wide :class:`repro.scoring.score_cache.SharedScoreCache`
#: (None = cross-kernel sharing disabled, the default)
_SHARED_SCORE_CACHE = None

#: sentinel: "use the process-wide shared score cache, if installed"
_USE_GLOBAL_CACHE = object()


def set_shared_score_cache(store):
    """Install the process-wide shared score cache.

    Mirrors :func:`set_chunk_elements` / :func:`set_kernel_backend`: the
    service daemon (and the executor's worker initializer) installs one
    store per process so every :class:`LazySplitKernel` constructed deep
    inside module learning shares grouping tables and score memos across
    jobs.  Returns the previous store so callers can restore it; ``None``
    disables sharing.
    """
    global _SHARED_SCORE_CACHE
    previous = _SHARED_SCORE_CACHE
    _SHARED_SCORE_CACHE = store
    return previous


def shared_score_cache():
    """The process-wide shared score cache, or ``None``."""
    return _SHARED_SCORE_CACHE


def ensure_shared_score_cache(max_bytes: int):
    """Install a shared score cache if this process has none yet.

    An already-installed store wins (the daemon's budget outranks a
    per-job knob), so repeated ``learn()`` calls in one process keep
    accumulating into the same store.  Returns the active store.
    """
    global _SHARED_SCORE_CACHE
    if _SHARED_SCORE_CACHE is None:
        from repro.scoring.score_cache import SharedScoreCache

        _SHARED_SCORE_CACHE = SharedScoreCache(max_bytes)
    return _SHARED_SCORE_CACHE


def set_kernel_backend(name: str | None) -> str | None:
    """Install the process-wide scoring-backend selection.

    Mirrors :func:`set_chunk_elements`: the executor calls this in every
    pool worker (and on its own serial path) with
    ``ParallelConfig.kernel_backend``, so kernels constructed deep inside
    module learning pick the configured backend without threading a
    parameter through every layer.  Returns the previous value so callers
    can restore it; ``None`` reverts to ``"auto"``.
    """
    global _CONFIGURED_BACKEND
    if name is not None and name not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {name!r}"
        )
    previous = _CONFIGURED_BACKEND
    _CONFIGURED_BACKEND = "auto" if name is None else name
    return previous


def configured_kernel_backend() -> str:
    """The configured (unresolved) backend selection for this process."""
    return _CONFIGURED_BACKEND


def resolve_kernel_backend(name: str | None = None):
    """Resolve a backend request to ``(backend_name, native_or_None)``.

    ``"numpy"`` never touches the extension.  ``"native"`` demands the
    certified native kernels and raises :class:`RuntimeError` when they
    are unavailable — an explicit request must not silently degrade.
    ``"auto"`` (and ``None``, meaning the process-wide configuration)
    probes availability: the extension is used when it builds, loads and
    passes its bit-identity certification, otherwise NumPy is used — with
    a one-time warning if the native path *failed* rather than being
    expectedly absent (no cffi, no compiler, ``REPRO_NATIVE_DISABLE``).
    """
    global _WARNED_NATIVE_FALLBACK
    if name is None:
        name = _CONFIGURED_BACKEND
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {name!r}"
        )
    if name == "numpy":
        return "numpy", None
    from repro import _native

    kernels = _native.load()
    if kernels is not None:
        return "native", kernels
    info = _native.availability()
    if name == "native":
        raise RuntimeError(
            "kernel_backend='native' but the native extension is "
            f"unavailable ({info['status']}: {info['detail']})"
        )
    if info["status"] in _native.FAILURE_STATUSES and not _WARNED_NATIVE_FALLBACK:
        _WARNED_NATIVE_FALLBACK = True
        warnings.warn(
            "native split-scoring backend unavailable "
            f"({info['status']}: {info['detail']}); falling back to NumPy",
            RuntimeWarning,
            stacklevel=2,
        )
    return "numpy", None


def active_kernel_backend() -> str:
    """The backend new kernels will actually use (``auto`` resolved)."""
    return resolve_kernel_backend()[0]


def _account_totals(
    hits: int = 0, evaluations: int = 0, peak: int = 0, backend: str | None = None
) -> None:
    _TOTALS["hits"] += hits
    _TOTALS["evaluations"] += evaluations
    if peak > _TOTALS["peak_chunk_elements"]:
        _TOTALS["peak_chunk_elements"] = peak
    if backend is not None:
        _TOTALS_BACKENDS.add(backend)


def _account_store(hits: int = 0, misses: int = 0, evictions: int = 0) -> None:
    """Accumulate shared-score-cache traffic into the process totals."""
    _STORE_TOTALS["store_hits"] += hits
    _STORE_TOTALS["store_misses"] += misses
    _STORE_TOTALS["store_evictions"] += evictions


def consume_kernel_totals() -> dict | None:
    """Drain the process-wide kernel counters (``None`` when untouched).

    Pool workers ship the returned delta back with each task result and
    the learner drains its own process at the end of a run, so
    ``WorkTrace.kernel_counters`` aggregates cache behaviour across every
    process that scored splits — whatever backend each one resolved.  The
    ``store_*`` keys (shared-score-cache lookups) appear only when a
    shared store was actually consulted, so cache-off runs keep the
    pre-service counter shape.
    """
    store_touched = any(_STORE_TOTALS.values())
    if (
        not _TOTALS["hits"]
        and not _TOTALS["evaluations"]
        and not _TOTALS["peak_chunk_elements"]
        and not _TOTALS_BACKENDS
        and not store_touched
    ):
        return None
    out = dict(_TOTALS)
    out["backends"] = sorted(_TOTALS_BACKENDS)
    if store_touched:
        out.update(_STORE_TOTALS)
    _TOTALS["hits"] = 0
    _TOTALS["evaluations"] = 0
    _TOTALS["peak_chunk_elements"] = 0
    for key in _STORE_TOTALS:
        _STORE_TOTALS[key] = 0
    _TOTALS_BACKENDS.clear()
    return out


def set_chunk_elements(n_elements: int | None) -> int | None:
    """Install a process-wide default for evaluation-chunk sizing.

    The executor calls this in every pool worker (and on its own serial
    path) with the chunk size derived from the machine's probed L2/L3
    capacity, so kernels constructed deep inside module learning pick the
    topology-aware size without threading a parameter through every layer.
    Returns the previous override so callers can restore it; ``None``
    reverts to lazy machine probing.
    """
    global _CONFIGURED_CHUNK_ELEMENTS
    previous = _CONFIGURED_CHUNK_ELEMENTS
    _CONFIGURED_CHUNK_ELEMENTS = None if n_elements is None else int(n_elements)
    return previous


def configured_chunk_elements() -> int:
    """The active default bound for one evaluation temporary.

    An explicit :func:`set_chunk_elements` override wins; otherwise the
    machine topology is probed once (falling back to the flat model and
    therefore :data:`DEFAULT_CHUNK_ELEMENTS` when sysfs is unavailable)
    and the L2/L3-derived size is cached.  Chunk size can never change
    scores — rows are evaluated independently and summed per row — so
    this is purely a cache-locality knob.
    """
    global _CONFIGURED_CHUNK_ELEMENTS
    if _CONFIGURED_CHUNK_ELEMENTS is None:
        # Lazy import: repro.parallel pulls in the engine/learner stack.
        from repro.parallel.topology import chunk_elements_for, probe_topology

        _CONFIGURED_CHUNK_ELEMENTS = chunk_elements_for(probe_topology())
    return _CONFIGURED_CHUNK_ELEMENTS


class AllocationCapExceeded(MemoryError):
    """A guarded temporary would exceed the active :func:`allocation_cap`."""


@contextmanager
def allocation_cap(max_elements: int):
    """Cap guarded temporaries at ``max_elements`` float64 elements.

    Used by tests to verify the kernel's O(P * n_obs) memory contract: under
    a cap smaller than ``P * n_obs * n_obs`` the dense margins path raises
    :class:`AllocationCapExceeded` while the lazy kernel, which chunks its
    evaluations under the cap, scores the same node successfully.
    """
    global _CAP
    prev = _CAP
    _CAP = int(max_elements)
    try:
        yield
    finally:
        _CAP = prev


def guard_alloc(n_elements: int, what: str = "temporary") -> int:
    """Check one guarded allocation against the active cap (if any)."""
    if _CAP is not None and n_elements > _CAP:
        raise AllocationCapExceeded(
            f"{what} needs {n_elements} float64 elements, "
            f"allocation cap is {_CAP}"
        )
    return int(n_elements)


def row_scores(z: np.ndarray) -> np.ndarray:
    """Quantized ``sum_o logsigmoid(z[:, o])`` for a batch of margin rows.

    The per-element branch values equal the dense path's
    ``where(z > 0, -log1p(exp(-|z|)), z - log1p(exp(-|z|)))`` exactly — the
    shared ``log1p(exp(-|z|))`` term is simply computed once instead of once
    per branch — and the row sum is ``np.sum`` over a contiguous float64 row
    of the same length, so results are bit-identical to the seed kernel.
    """
    t = np.log1p(np.exp(-np.abs(z)))
    out = np.where(z > 0, -t, z - t)
    scores = out.sum(axis=1)
    return np.round(scores / SCORE_QUANTUM) * SCORE_QUANTUM


class DenseScoreMemo:
    """Per-(item, beta) score memo over a materialized margins matrix.

    The memoized provider behind :meth:`SplitScorer.score_batch`: scores are
    computed from the margins rows exactly as the seed did, but each
    ``(item, beta)`` pair is evaluated at most once per batch.  ``hits``
    counts lookups served from the cache, ``evaluations`` the rows actually
    computed — the observable contract of the memoization tests.
    """

    def __init__(self, margins: np.ndarray, beta_grid: np.ndarray) -> None:
        self.margins = np.asarray(margins, dtype=np.float64)
        self.beta_grid = np.asarray(beta_grid, dtype=np.float64)
        self.n_items, self.n_obs = self.margins.shape
        self._n_beta = self.beta_grid.size
        guard_alloc(self.n_items * self._n_beta, "dense beta-score cache")
        self._cache = np.zeros(self.n_items * self._n_beta)
        self._seen = np.zeros(self.n_items * self._n_beta, dtype=bool)
        self.hits = 0
        self.evaluations = 0

    def scores(self, rows: np.ndarray, beta_idx: np.ndarray) -> np.ndarray:
        flat = np.asarray(rows, dtype=np.int64) * self._n_beta + np.asarray(
            beta_idx, dtype=np.int64
        )
        missing = ~self._seen[flat]
        hits = int(flat.size - missing.sum())
        self.hits += hits
        _account_totals(hits=hits)
        if missing.any():
            keys = np.unique(flat[missing])
            self._evaluate(keys)
        return self._cache[flat]

    def _evaluate(self, keys: np.ndarray) -> None:
        beta = keys % self._n_beta
        items = keys // self._n_beta
        order = np.argsort(beta, kind="stable")
        beta, items = beta[order], items[order]
        bounds = np.flatnonzero(np.diff(beta)) + 1
        for chunk_items, chunk_beta in zip(
            np.split(items, bounds), np.split(beta, bounds)
        ):
            z = self.margins[chunk_items] * self.beta_grid[chunk_beta[0]]
            idx = chunk_items * self._n_beta + chunk_beta[0]
            self._cache[idx] = row_scores(z)
            self._seen[idx] = True
        self.evaluations += int(keys.size)
        _account_totals(evaluations=int(keys.size), backend="numpy")


class LazySplitKernel:
    """Deduplicated, memoized split scores from a ``(P, n_obs)`` value slice.

    Construction enumerates the node's candidate splits in the canonical
    parent-major, observation-minor order and groups candidates that share a
    ``(parent row, split value)`` pair; ``item_groups[l * n_obs + j]`` maps
    candidate ``(parents[l], data[parents[l], obs[j]])`` to its group.  The
    score cache is keyed per ``(group, beta index)``, evaluations run in
    chunks bounded by ``max_chunk_elements`` (and by any active
    :func:`allocation_cap`), and ``peak_chunk_elements`` records the largest
    temporary actually allocated.

    ``backend`` selects who evaluates a chunk: the NumPy expressions or
    the certified native extension (``None`` defers to the process-wide
    :func:`set_kernel_backend` configuration, ``"auto"`` by default).  The
    native path replaces only the chunk evaluation body — grouping, the
    memo cache, chunk sizing, :func:`guard_alloc` and all counters stay in
    Python — so cap semantics and cache accounting are identical by
    construction, and scores are bit-identical by the extension's load-time
    certification.  Cached scores are tracked by an explicit seen-bitmask,
    not a NaN sentinel, so a legitimately non-finite score (a row mixing
    ``+inf`` and ``-inf`` margins sums to NaN) is cached like any other
    value instead of re-evaluating on every lookup.
    """

    def __init__(
        self,
        values: np.ndarray,
        sign: np.ndarray,
        beta_grid,
        *,
        max_chunk_elements: int | None = None,
        backend: str | None = None,
        shared_cache=_USE_GLOBAL_CACHE,
    ) -> None:
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError("values must have shape (P, n_obs)")
        self.sign = np.ascontiguousarray(sign, dtype=np.float64)
        self.beta_grid = np.asarray(beta_grid, dtype=np.float64)
        self.n_parents, self.n_obs = self.values.shape
        if self.sign.shape != (self.n_obs,):
            raise ValueError("sign must have one entry per observation")
        self.n_items = self.n_parents * self.n_obs
        self._n_beta = self.beta_grid.size
        self.max_chunk_elements = int(max_chunk_elements or configured_chunk_elements())
        self.backend, self._native = resolve_kernel_backend(backend)
        guard_alloc(self.n_items, "parent-value slice")

        if shared_cache is _USE_GLOBAL_CACHE:
            shared_cache = _SHARED_SCORE_CACHE
        self.from_shared_cache = False
        if shared_cache is not None:
            self._init_via_store(shared_cache)
        else:
            self._build_tables()
        self.hits = 0
        self.evaluations = 0
        self.peak_chunk_elements = 0

    def _init_via_store(self, store) -> None:
        """Adopt (or build and publish) this node's tables from ``store``.

        A hit shares the entry's arrays by reference: grouping is skipped
        entirely and every ``(group, beta)`` pair any earlier kernel
        evaluated is already seen.  Shared tables hold deterministic
        functions of the content key, so adoption — and in-place growth of
        the memo by later kernels — cannot change a single score.
        """
        from repro.scoring.score_cache import CacheEntry, score_cache_key

        key = score_cache_key(self.values, self.sign, self.beta_grid)
        entry = store.lookup(key)
        if entry is not None:
            self.item_groups = entry.item_groups
            self.group_row = entry.group_row
            self.group_value = entry.group_value
            self.n_groups = entry.n_groups
            self._cache = entry.cache
            self._seen = entry.seen
            self.from_shared_cache = True
            _account_store(hits=1)
            return
        self._build_tables()
        evicted = store.insert(
            key,
            CacheEntry.from_arrays(
                self.item_groups,
                self.group_row,
                self.group_value,
                self.n_groups,
                self._cache,
                self._seen,
            ),
        )
        _account_store(misses=1, evictions=evicted)

    def _build_tables(self) -> None:
        # Group candidates by (parent row, value): duplicates share a row of
        # the score table.  np.unique sorts, so group values ascend per row.
        item_groups = np.empty(self.n_items, dtype=np.int64)
        row_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        offset = 0
        for l in range(self.n_parents):
            uvals, inverse = np.unique(self.values[l], return_inverse=True)
            item_groups[l * self.n_obs : (l + 1) * self.n_obs] = offset + inverse
            row_parts.append(np.full(uvals.size, l, dtype=np.int64))
            value_parts.append(uvals)
            offset += uvals.size
        self.item_groups = item_groups
        self.group_row = (
            np.concatenate(row_parts) if row_parts else np.zeros(0, dtype=np.int64)
        )
        self.group_value = (
            np.concatenate(value_parts) if value_parts else np.zeros(0)
        )
        self.n_groups = int(offset)
        guard_alloc(self.n_groups * self._n_beta, "beta-score cache")
        self._cache = np.zeros(self.n_groups * self._n_beta)
        self._seen = np.zeros(self.n_groups * self._n_beta, dtype=bool)

    @property
    def n_beta(self) -> int:
        return self._n_beta

    def scores(self, groups: np.ndarray, beta_idx: np.ndarray) -> np.ndarray:
        """Quantized scores of ``groups`` at per-entry beta grid indices.

        Served from the memo cache where present; uncached pairs are
        evaluated lazily (grouped by beta, chunked under the allocation
        bound) and cached for the rest of the batch.
        """
        flat = np.asarray(groups, dtype=np.int64) * self._n_beta + np.asarray(
            beta_idx, dtype=np.int64
        )
        missing = ~self._seen[flat]
        hits = int(flat.size - missing.sum())
        self.hits += hits
        _account_totals(hits=hits)
        if missing.any():
            keys = np.unique(flat[missing])
            self._evaluate(keys)
        return self._cache[flat]

    def _chunk_rows(self) -> int:
        limit = self.max_chunk_elements
        if _CAP is not None:
            limit = min(limit, _CAP)
        return max(1, limit // max(1, self.n_obs))

    def _evaluate(self, keys: np.ndarray) -> None:
        beta = keys % self._n_beta
        groups = keys // self._n_beta
        order = np.argsort(beta, kind="stable")
        beta, groups = beta[order], groups[order]
        bounds = np.flatnonzero(np.diff(beta)) + 1
        chunk_rows = self._chunk_rows()
        for beta_groups, beta_vals in zip(
            np.split(groups, bounds), np.split(beta, bounds)
        ):
            grid_beta = self.beta_grid[beta_vals[0]]
            for start in range(0, beta_groups.size, chunk_rows):
                chunk = beta_groups[start : start + chunk_rows]
                n_elements = guard_alloc(
                    chunk.size * self.n_obs, "lazy-margin evaluation chunk"
                )
                self.peak_chunk_elements = max(self.peak_chunk_elements, n_elements)
                idx = chunk * self._n_beta + beta_vals[0]
                if self._native is not None:
                    # The certified extension computes the exact chunk body
                    # below (same operation order, same libm entry points as
                    # NumPy) with the GIL released; grouping, chunk sizing
                    # and the cap guard above stay in Python, so allocation
                    # semantics are shared with the NumPy path.
                    out = np.empty(chunk.size)
                    self._native.eval_chunk(
                        np.ascontiguousarray(self.group_value[chunk]),
                        np.ascontiguousarray(self.group_row[chunk]),
                        self.values,
                        self.sign,
                        float(grid_beta),
                        SCORE_QUANTUM,
                        out,
                    )
                    self._cache[idx] = out
                else:
                    # The dense path's exact operation order: subtract
                    # values, multiply by sign, multiply by beta, stable
                    # log-sigmoid row sum.  Each step is elementwise, so
                    # laziness cannot change a single bit of the result.
                    diff = self.group_value[chunk][:, None] - self.values[self.group_row[chunk]]
                    margin = self.sign * diff
                    z = margin * grid_beta
                    self._cache[idx] = row_scores(z)
                self._seen[idx] = True
        self.evaluations += int(keys.size)
        _account_totals(
            evaluations=int(keys.size),
            peak=self.peak_chunk_elements,
            backend=self.backend,
        )


def split_kernel_from_arrays(
    data: np.ndarray,
    obs: np.ndarray,
    left_obs: np.ndarray,
    parents: np.ndarray,
    beta_grid,
    *,
    max_chunk_elements: int | None = None,
    backend: str | None = None,
) -> LazySplitKernel:
    """A node's lazy kernel from raw arrays (the worker-friendly twin of
    :func:`repro.trees.splits.margins_from_arrays`).

    ``obs`` are the node's observations, ``left_obs`` its left child's; the
    candidate enumeration order (parent-major, observation-minor) matches the
    dense margins layout row for row.
    """
    obs = np.asarray(obs, dtype=np.int64)
    sign = np.where(np.isin(obs, left_obs), 1.0, -1.0)
    values = data[np.asarray(parents, dtype=np.int64)][:, obs]
    return LazySplitKernel(
        values, sign, beta_grid, max_chunk_elements=max_chunk_elements,
        backend=backend,
    )
