"""Normal-gamma marginal likelihood of a data block.

The GaneSH co-clustering model (Joshi et al. 2008, used by Lemon-Tree and
this paper) treats every (variable-cluster x observation-cluster) block as an
exchangeable sample from a Gaussian with unknown mean and precision under a
conjugate normal-gamma prior.  The Bayesian score of a co-clustering is the
sum of the log marginal likelihoods of its blocks, hence *decomposable*: a
Gibbs move only touches the blocks it changes.

For a block of ``N`` values with mean ``xbar`` and centered sum of squares
``ss``, and prior ``(mu0, lambda0, alpha0, beta0)``::

    lambda_N = lambda0 + N
    alpha_N  = alpha0 + N / 2
    beta_N   = beta0 + ss / 2 + lambda0 * N * (xbar - mu0)^2 / (2 * lambda_N)

    log ml = lgamma(alpha_N) - lgamma(alpha0)
           + alpha0 * log(beta0) - alpha_N * log(beta_N)
           + (log(lambda0) - log(lambda_N)) / 2
           - (N / 2) * log(2 * pi)

All functions are vectorized over NumPy arrays of block statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

_LOG_2PI = math.log(2.0 * math.pi)


def _native_kernels():
    """The certified native kernels, or ``None`` on the NumPy backend.

    Resolution honours the process-wide ``kernel_backend`` configuration
    (lazy import — :mod:`repro.scoring.kernel` imports nothing from here,
    but keeping it out of module scope avoids ordering surprises)."""
    from repro.scoring.kernel import resolve_kernel_backend

    return resolve_kernel_backend()[1]


@dataclass(frozen=True)
class NormalGammaPrior:
    """Conjugate prior for the per-block Gaussian.

    Defaults follow Lemon-Tree's weakly-informative choice: prior mean 0,
    one pseudo-observation of strength ``lambda0`` and a vague gamma on the
    precision.
    """

    mu0: float = 0.0
    lambda0: float = 0.1
    alpha0: float = 0.1
    beta0: float = 0.1

    def __post_init__(self) -> None:
        if self.lambda0 <= 0 or self.alpha0 <= 0 or self.beta0 <= 0:
            raise ValueError("lambda0, alpha0 and beta0 must be positive")

    @property
    def log_lambda0(self) -> float:
        return math.log(self.lambda0)

    @property
    def log_beta0(self) -> float:
        return math.log(self.beta0)

    @property
    def lgamma_alpha0(self) -> float:
        return math.lgamma(self.alpha0)


DEFAULT_PRIOR = NormalGammaPrior()


def log_marginal(
    count: np.ndarray | float,
    total: np.ndarray | float,
    sumsq: np.ndarray | float,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
) -> np.ndarray | float:
    """Log marginal likelihood of blocks from raw sufficient statistics.

    ``count``, ``total`` and ``sumsq`` are broadcastable arrays (or scalars)
    of the number of values, their sum, and their sum of squares.  Empty
    blocks (count == 0) score exactly 0.
    """
    scalar = np.isscalar(count)
    n = np.asarray(count, dtype=np.float64)
    s = np.asarray(total, dtype=np.float64)
    q = np.asarray(sumsq, dtype=np.float64)

    if not scalar and n.size and n.shape == s.shape == q.shape:
        native = _native_kernels()
        if native is not None:
            # gammaln stays in SciPy (same call both ways); the certified
            # extension replicates the remaining expression bit for bit.
            alpha_n = prior.alpha0 + n / 2.0
            out = native.log_marginal(
                np.ascontiguousarray(n).ravel(),
                np.ascontiguousarray(s).ravel(),
                np.ascontiguousarray(q).ravel(),
                np.ascontiguousarray(gammaln(alpha_n)).ravel(),
                prior,
            )
            return out.reshape(n.shape)

    n_safe = np.where(n > 0, n, 1.0)
    xbar = s / n_safe
    # Centered sum of squares; clip tiny negative values from cancellation.
    ss = np.maximum(q - n_safe * xbar * xbar, 0.0)

    lam_n = prior.lambda0 + n
    alpha_n = prior.alpha0 + n / 2.0
    diff = xbar - prior.mu0
    beta_n = prior.beta0 + ss / 2.0 + prior.lambda0 * n * diff * diff / (2.0 * lam_n)

    out = (
        gammaln(alpha_n)
        - prior.lgamma_alpha0
        + prior.alpha0 * prior.log_beta0
        - alpha_n * np.log(beta_n)
        + 0.5 * (prior.log_lambda0 - np.log(lam_n))
        - (n / 2.0) * _LOG_2PI
    )
    out = np.where(n > 0, out, 0.0)
    if scalar:
        return float(out)
    return out


def log_marginal_scalar(
    count: float,
    total: float,
    sumsq: float,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
) -> float:
    """Pure-``math`` scalar twin of :func:`log_marginal`.

    Used by the pure-Python reference implementation (the Lemon-Tree
    stand-in) so that its inner loops contain no NumPy; results agree with
    the vectorized version to floating-point noise, which the decision
    quantum in :mod:`repro.rng.streams` absorbs.
    """
    if count <= 0:
        return 0.0
    xbar = total / count
    ss = sumsq - count * xbar * xbar
    if ss < 0.0:
        ss = 0.0
    lam_n = prior.lambda0 + count
    alpha_n = prior.alpha0 + count / 2.0
    diff = xbar - prior.mu0
    beta_n = prior.beta0 + ss / 2.0 + prior.lambda0 * count * diff * diff / (2.0 * lam_n)
    return (
        math.lgamma(alpha_n)
        - prior.lgamma_alpha0
        + prior.alpha0 * prior.log_beta0
        - alpha_n * math.log(beta_n)
        + 0.5 * (prior.log_lambda0 - math.log(lam_n))
        - (count / 2.0) * _LOG_2PI
    )
