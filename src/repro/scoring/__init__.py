"""Bayesian scores used by the Lemon-Tree learning tasks.

* :mod:`repro.scoring.normal_gamma` — the normal-gamma marginal likelihood
  of a data block from its sufficient statistics.  Every score in the
  pipeline (co-clustering, tree merging, split assignment baselines) reduces
  to sums of these block scores, which is what makes the GaneSH score
  decomposable (Section 2.2.1).
* :mod:`repro.scoring.suffstats` — (count, sum, sum-of-squares) triples with
  add/remove/merge algebra, the unit of incremental score updates.
* :mod:`repro.scoring.split_score` — the sigmoid split posterior explored by
  bounded discrete sampling (Section 2.2.3, step 2), whose per-split cost
  variance drives the load imbalance studied in Section 5.3.1.
* :mod:`repro.scoring.kernel` — the lazy-margin split-scoring kernel:
  memoized, deduplicated beta-grid scores straight from the ``(P, n_obs)``
  parent-value slice, never materializing the dense margins matrix.  Chunk
  evaluation runs on a selectable backend (``kernel_backend``): the NumPy
  oracle, or the native-compiled extension in :mod:`repro._native` that is
  certified bit-identical to it at load time.
"""

from repro.scoring.kernel import (
    KERNEL_BACKENDS,
    AllocationCapExceeded,
    DenseScoreMemo,
    LazySplitKernel,
    active_kernel_backend,
    allocation_cap,
    configured_kernel_backend,
    consume_kernel_totals,
    resolve_kernel_backend,
    set_kernel_backend,
    split_kernel_from_arrays,
)
from repro.scoring.normal_gamma import NormalGammaPrior, log_marginal
from repro.scoring.split_score import SplitScorer, SplitScoreResult
from repro.scoring.suffstats import SuffStats

__all__ = [
    "NormalGammaPrior",
    "log_marginal",
    "SuffStats",
    "SplitScorer",
    "SplitScoreResult",
    "LazySplitKernel",
    "DenseScoreMemo",
    "split_kernel_from_arrays",
    "allocation_cap",
    "AllocationCapExceeded",
    "KERNEL_BACKENDS",
    "set_kernel_backend",
    "configured_kernel_backend",
    "resolve_kernel_backend",
    "active_kernel_backend",
    "consume_kernel_totals",
]
