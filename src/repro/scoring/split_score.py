"""Posterior scoring of candidate parent splits by bounded discrete sampling.

A candidate split for an internal tree node ``N`` is a pair ``(X_l, v)`` of a
candidate parent variable and a split value taken from that parent's values
at the node's observations (Section 2.2.3, step 2(i)).  Its fit is measured
by a sigmoid gate with steepness ``beta``: observations in the node's left
child should sit below ``v`` and those in the right child above it, so

    score(beta) = sum_o log sigmoid(beta * margin_o),
    margin_o = (v - x_lo) if o in N_L else (x_lo - v).

Following the paper (which defers to Joshi et al. 2009), the posterior over
``beta`` is explored by a *discrete sampling chain* over a fixed beta grid
for at most ``S = max_steps`` steps, with stochastic early stopping once the
chain is stuck at a mode.  Two properties of this procedure matter for the
parallel study and are preserved here:

* the cost of scoring one split is ``O(steps * |obs(N)|)`` with ``steps``
  varying unpredictably between 1 and ``S`` — the source of the load
  imbalance measured in Section 5.3.1;
* each split consumes a private, index-addressed block of random draws
  (:class:`repro.rng.streams.IndexedStream`), so the result is independent
  of which rank evaluates it.

Splits whose best score does not beat the ``beta = 0`` coin-flip baseline
are discarded ("zero posterior probability" in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rng.streams import SCORE_QUANTUM
from repro.scoring.kernel import DenseScoreMemo, LazySplitKernel

#: Default discrete grid of sigmoid steepness values.
DEFAULT_BETA_GRID = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

_LOG_HALF = math.log(0.5)


def _quantize(value: float) -> float:
    return round(value / SCORE_QUANTUM) * SCORE_QUANTUM


@dataclass(frozen=True)
class SplitScoreResult:
    """Outcome of scoring one candidate split."""

    log_score: float  # score at the located beta mode (quantized)
    steps: int  # sampling steps consumed, in [1, max_steps]
    beta_index: int  # index into the beta grid of the located mode
    accepted: bool  # beats the beta = 0 baseline -> retained


class SplitScorer:
    """Metropolis chain over a discrete beta grid with early stopping.

    The chain starts at a uniformly random grid point, proposes a uniformly
    random neighbouring grid point each step, accepts with the usual
    Metropolis rule, and stops early after ``stop_repeats`` consecutive
    rejections (stuck at a mode) or ``max_steps`` steps.  Each step consumes
    exactly two uniforms; one more seeds the start, so every split owns
    ``1 + 2 * max_steps`` draws of its indexed stream.
    """

    def __init__(
        self,
        beta_grid: tuple[float, ...] = DEFAULT_BETA_GRID,
        max_steps: int = 10,
        stop_repeats: int = 3,
    ) -> None:
        if max_steps < 1:
            raise ValueError("max_steps must be at least 1")
        if stop_repeats < 1:
            raise ValueError("stop_repeats must be at least 1")
        self.beta_grid = np.asarray(beta_grid, dtype=np.float64)
        if self.beta_grid.size < 2:
            raise ValueError("beta grid needs at least two points")
        self.max_steps = int(max_steps)
        self.stop_repeats = int(stop_repeats)

    @property
    def draws_per_item(self) -> int:
        return 1 + 2 * self.max_steps

    # -- vectorized batch path (optimized learner) -----------------------
    def score_batch(
        self, margins: np.ndarray, uniforms: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Score ``n_items`` splits at once.

        ``margins`` has shape ``(n_items, n_obs)``; ``uniforms`` has shape
        ``(n_items, 1 + 2 * max_steps)`` holding each item's private draws.
        Returns ``(log_scores, steps, beta_indices, accepted)`` arrays whose
        entries are identical to item-by-item :meth:`score_one` calls.

        Each ``(item, beta)`` score is evaluated at most once per batch (the
        chain revisits grid points constantly); the memo used is left on
        ``self.last_memo`` so tests and benchmarks can inspect its
        ``hits`` / ``evaluations`` counters.
        """
        margins = np.asarray(margins, dtype=np.float64)
        n_items, n_obs = margins.shape
        memo = DenseScoreMemo(margins, self.beta_grid)
        self.last_memo = memo
        return self._run_chain(n_items, n_obs, uniforms, memo.scores)

    def score_batch_kernel(
        self,
        kernel: LazySplitKernel,
        uniforms: np.ndarray,
        item_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`score_batch` on a :class:`LazySplitKernel` — no margins
        matrix is ever materialized, and equal-value duplicate candidates
        share one cached score table.

        ``item_indices`` selects a sub-range of the kernel's candidate
        enumeration (the partitioned backends score ``[row0, row1)`` slices
        of a node); row ``i`` of ``uniforms`` holds the private draws of
        candidate ``item_indices[i]``.  Results are bit-identical to the
        dense path because the kernel replays its exact float operations.
        """
        self._check_kernel(kernel)
        if item_indices is None:
            groups = kernel.item_groups
        else:
            groups = kernel.item_groups[np.asarray(item_indices, dtype=np.int64)]
        self.last_memo = kernel

        def provider(rows: np.ndarray, beta_idx: np.ndarray) -> np.ndarray:
            return kernel.scores(groups[rows], beta_idx)

        return self._run_chain(groups.size, kernel.n_obs, uniforms, provider)

    def _run_chain(self, n_items, n_obs, uniforms, provider):
        """Shared Metropolis-chain driver over a score ``provider``.

        ``provider(rows, beta_idx)`` returns the quantized log-scores of the
        given batch rows at per-row beta grid indices; the chain logic is
        the seed implementation verbatim, so any provider that matches the
        dense scores bit-for-bit yields bit-identical results.
        """
        grid = self.beta_grid
        n_beta = grid.size
        uniforms = np.asarray(uniforms, dtype=np.float64)

        cur_idx = np.minimum(
            (uniforms[:, 0] * n_beta).astype(np.int64), n_beta - 1
        )
        cur_score = provider(np.arange(n_items, dtype=np.int64), cur_idx)
        best_score = cur_score.copy()
        best_idx = cur_idx.copy()
        steps = np.zeros(n_items, dtype=np.int64)
        rejects = np.zeros(n_items, dtype=np.int64)
        active = np.ones(n_items, dtype=bool)

        for step in range(self.max_steps):
            if not active.any():
                break
            idx_a = np.flatnonzero(active)
            u_prop = uniforms[idx_a, 1 + 2 * step]
            u_acc = uniforms[idx_a, 2 + 2 * step]
            prop = _neighbor(cur_idx[idx_a], u_prop, n_beta)
            prop_score = provider(idx_a, prop)
            accept = np.log(np.maximum(u_acc, 1e-300)) < (
                prop_score - cur_score[idx_a]
            )
            steps[idx_a] += 1

            acc_rows = idx_a[accept]
            cur_idx[acc_rows] = prop[accept]
            cur_score[acc_rows] = prop_score[accept]
            rejects[acc_rows] = 0
            rej_rows = idx_a[~accept]
            rejects[rej_rows] += 1

            improved = acc_rows[cur_score[acc_rows] > best_score[acc_rows]]
            best_score[improved] = cur_score[improved]
            best_idx[improved] = cur_idx[improved]

            active[rej_rows[rejects[rej_rows] >= self.stop_repeats]] = False

        best_score = np.round(best_score / SCORE_QUANTUM) * SCORE_QUANTUM
        baseline = _quantize(n_obs * _LOG_HALF)
        accepted = best_score > baseline + SCORE_QUANTUM / 2
        return best_score, steps, best_idx, accepted

    def _check_kernel(self, kernel: LazySplitKernel) -> None:
        if not np.array_equal(kernel.beta_grid, self.beta_grid):
            raise ValueError("kernel was built for a different beta grid")

    def _scores_at(self, margins: np.ndarray, beta_idx: np.ndarray) -> np.ndarray:
        """Row-wise sigmoid log-likelihood at per-row beta grid indices."""
        beta = self.beta_grid[beta_idx]
        z = margins * beta[:, None]
        # log sigmoid(z) = -log1p(exp(-z)), computed stably for large |z|.
        out = np.where(z > 0, -np.log1p(np.exp(-np.abs(z))), z - np.log1p(np.exp(-np.abs(z))))
        scores = out.sum(axis=1)
        return np.round(scores / SCORE_QUANTUM) * SCORE_QUANTUM

    def score_grid_best(self, margins: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deterministic exhaustive variant: the best score over the whole
        beta grid for every item (no sampling chain).

        Used by the GENOMICA-style learner (Segal et al.), whose split
        search is a deterministic maximization rather than Lemon-Tree's
        posterior sampling.  Returns ``(best_scores, best_beta_idx,
        accepted)``; costs ``O(n_beta * n_obs)`` per item — the price the
        sampling chain's early stopping avoids.
        """
        margins = np.asarray(margins, dtype=np.float64)
        n_items, n_obs = margins.shape
        best = np.full(n_items, -np.inf)
        best_idx = np.zeros(n_items, dtype=np.int64)
        for idx in range(self.beta_grid.size):
            scores = self._scores_at(margins, np.full(n_items, idx, dtype=np.int64))
            improved = scores > best
            best[improved] = scores[improved]
            best_idx[improved] = idx
        baseline = _quantize(n_obs * _LOG_HALF)
        accepted = best > baseline + SCORE_QUANTUM / 2
        return best, best_idx, accepted

    def score_grid_best_kernel(
        self,
        kernel: LazySplitKernel,
        item_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`score_grid_best` on a :class:`LazySplitKernel`.

        The exhaustive variant benefits most from the kernel: every grid
        point is evaluated for every *group* rather than every candidate,
        so duplicate split values cost nothing extra and no margins matrix
        is built.
        """
        self._check_kernel(kernel)
        if item_indices is None:
            groups = kernel.item_groups
        else:
            groups = kernel.item_groups[np.asarray(item_indices, dtype=np.int64)]
        n_items = groups.size
        best = np.full(n_items, -np.inf)
        best_idx = np.zeros(n_items, dtype=np.int64)
        for idx in range(self.beta_grid.size):
            scores = kernel.scores(groups, np.full(n_items, idx, dtype=np.int64))
            improved = scores > best
            best[improved] = scores[improved]
            best_idx[improved] = idx
        baseline = _quantize(kernel.n_obs * _LOG_HALF)
        accepted = best > baseline + SCORE_QUANTUM / 2
        return best, best_idx, accepted

    # -- scalar path (pure-Python reference) -----------------------------
    def score_one(self, margins: list[float], uniforms: list[float]) -> SplitScoreResult:
        """Scalar twin of :meth:`score_batch` for a single split.

        Uses only ``math`` in its inner loop; decisions agree with the batch
        path because both quantize scores before every comparison.
        """
        grid = self.beta_grid
        n_beta = grid.size
        n_obs = len(margins)

        cur_idx = min(int(uniforms[0] * n_beta), n_beta - 1)
        cur_score = self._score_scalar(margins, grid[cur_idx])
        best_score, best_idx = cur_score, cur_idx
        rejects = 0
        steps = 0
        for step in range(self.max_steps):
            u_prop = uniforms[1 + 2 * step]
            u_acc = uniforms[2 + 2 * step]
            prop = _neighbor_scalar(cur_idx, u_prop, n_beta)
            prop_score = self._score_scalar(margins, grid[prop])
            steps += 1
            if math.log(max(u_acc, 1e-300)) < prop_score - cur_score:
                cur_idx, cur_score = prop, prop_score
                rejects = 0
                if cur_score > best_score:
                    best_score, best_idx = cur_score, cur_idx
            else:
                rejects += 1
                if rejects >= self.stop_repeats:
                    break
        best_score = _quantize(best_score)
        baseline = _quantize(n_obs * _LOG_HALF)
        accepted = best_score > baseline + SCORE_QUANTUM / 2
        return SplitScoreResult(best_score, steps, best_idx, accepted)

    def _score_scalar(self, margins: list[float], beta: float) -> float:
        total = 0.0
        for margin in margins:
            z = beta * margin
            if z > 0:
                total += -math.log1p(math.exp(-z))
            else:
                total += z - math.log1p(math.exp(z))
        return _quantize(total)


def _neighbor(cur: np.ndarray, u: np.ndarray, n_beta: int) -> np.ndarray:
    """Propose a random neighbouring grid index (reflecting at the ends)."""
    step = np.where(u < 0.5, -1, 1)
    prop = cur + step
    prop = np.where(prop < 0, 1, prop)
    prop = np.where(prop >= n_beta, n_beta - 2, prop)
    return prop


def _neighbor_scalar(cur: int, u: float, n_beta: int) -> int:
    prop = cur + (-1 if u < 0.5 else 1)
    if prop < 0:
        return 1
    if prop >= n_beta:
        return n_beta - 2
    return prop
