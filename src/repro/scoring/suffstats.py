"""Sufficient-statistic triples with add/remove/merge algebra.

Every score in the pipeline is a function of ``(count, sum, sum of squares)``
of some data block.  Keeping these triples incremental is what turns a Gibbs
move from an O(n m) rescore into an O(m) update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior, log_marginal


@dataclass
class SuffStats:
    """A single block's sufficient statistics."""

    count: float = 0.0
    total: float = 0.0
    sumsq: float = 0.0

    @classmethod
    def of(cls, values: np.ndarray) -> "SuffStats":
        v = np.asarray(values, dtype=np.float64).ravel()
        return cls(float(v.size), float(v.sum()), float((v * v).sum()))

    def add(self, other: "SuffStats") -> "SuffStats":
        return SuffStats(
            self.count + other.count,
            self.total + other.total,
            self.sumsq + other.sumsq,
        )

    def remove(self, other: "SuffStats") -> "SuffStats":
        return SuffStats(
            self.count - other.count,
            self.total - other.total,
            self.sumsq - other.sumsq,
        )

    def log_marginal(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> float:
        return float(log_marginal(self.count, self.total, self.sumsq, prior))

    def is_empty(self) -> bool:
        return self.count <= 0


class StatsArrays:
    """Column-parallel sufficient statistics for a set of blocks.

    Stored as three aligned ``float64`` arrays so a whole bank of blocks can
    be scored with one vectorized :func:`log_marginal` call.
    """

    __slots__ = ("count", "total", "sumsq")

    def __init__(self, size: int) -> None:
        self.count = np.zeros(size, dtype=np.float64)
        self.total = np.zeros(size, dtype=np.float64)
        self.sumsq = np.zeros(size, dtype=np.float64)

    @classmethod
    def from_arrays(
        cls, count: np.ndarray, total: np.ndarray, sumsq: np.ndarray
    ) -> "StatsArrays":
        out = cls(0)
        out.count = np.asarray(count, dtype=np.float64)
        out.total = np.asarray(total, dtype=np.float64)
        out.sumsq = np.asarray(sumsq, dtype=np.float64)
        return out

    @classmethod
    def grouped(cls, values: np.ndarray, labels: np.ndarray, n_groups: int) -> "StatsArrays":
        """Per-group stats of ``values`` partitioned by integer ``labels``.

        ``values`` may be 1-D (one row/column) or 2-D with groups taken over
        ``axis=1`` (labels apply to columns and rows are pooled into the same
        block, as in the GaneSH model where a block pools all values of the
        cluster's variables at the cluster's observations).
        """
        vals = np.asarray(values, dtype=np.float64)
        labels = np.asarray(labels)
        out = cls(n_groups)
        if vals.ndim == 1:
            out.count = np.bincount(labels, minlength=n_groups).astype(np.float64)
            out.total = np.bincount(labels, weights=vals, minlength=n_groups)
            out.sumsq = np.bincount(labels, weights=vals * vals, minlength=n_groups)
        elif vals.ndim == 2:
            rows = vals.shape[0]
            out.count = rows * np.bincount(labels, minlength=n_groups).astype(np.float64)
            out.total = np.bincount(
                labels, weights=vals.sum(axis=0), minlength=n_groups
            )
            out.sumsq = np.bincount(
                labels, weights=(vals * vals).sum(axis=0), minlength=n_groups
            )
        else:
            raise ValueError("values must be 1-D or 2-D")
        return out

    def __len__(self) -> int:
        return self.count.shape[0]

    def copy(self) -> "StatsArrays":
        return StatsArrays.from_arrays(
            self.count.copy(), self.total.copy(), self.sumsq.copy()
        )

    def block(self, index: int) -> SuffStats:
        return SuffStats(
            float(self.count[index]), float(self.total[index]), float(self.sumsq[index])
        )

    def add_at(self, index: int, stats: SuffStats) -> None:
        self.count[index] += stats.count
        self.total[index] += stats.total
        self.sumsq[index] += stats.sumsq

    def remove_at(self, index: int, stats: SuffStats) -> None:
        self.count[index] -= stats.count
        self.total[index] -= stats.total
        self.sumsq[index] -= stats.sumsq

    def add_arrays(self, other: "StatsArrays") -> None:
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq

    def pooled(self) -> SuffStats:
        return SuffStats(
            float(self.count.sum()), float(self.total.sum()), float(self.sumsq.sum())
        )

    def drop(self, index: int) -> None:
        self.count = np.delete(self.count, index)
        self.total = np.delete(self.total, index)
        self.sumsq = np.delete(self.sumsq, index)

    def append(self, stats: SuffStats) -> None:
        self.count = np.append(self.count, stats.count)
        self.total = np.append(self.total, stats.total)
        self.sumsq = np.append(self.sumsq, stats.sumsq)

    def log_marginals(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> np.ndarray:
        return np.asarray(log_marginal(self.count, self.total, self.sumsq, prior))

    def score(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> float:
        return float(self.log_marginals(prior).sum())
