"""Sufficient-statistic triples with add/remove/merge algebra.

Every score in the pipeline is a function of ``(count, sum, sum of squares)``
of some data block.  Keeping these triples incremental is what turns a Gibbs
move from an O(n m) rescore into an O(m) update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scoring.normal_gamma import (
    DEFAULT_PRIOR,
    NormalGammaPrior,
    _native_kernels,
    log_marginal,
)


def _reject_nan_groups(stats: "StatsArrays") -> None:
    """Fail fast when NaN data leaked into grouped sufficient statistics.

    A single NaN poisons its block's total/sumsq and, through the
    incremental add/remove algebra, every score derived from it later; the
    O(n_groups) check here is free next to the O(n) accumulation.
    """
    if np.isnan(stats.total).any():
        raise ValueError(
            "grouped sufficient statistics hit NaN values; impute missing "
            "data before scoring"
        )


@dataclass
class SuffStats:
    """A single block's sufficient statistics."""

    count: float = 0.0
    total: float = 0.0
    sumsq: float = 0.0

    @classmethod
    def of(cls, values: np.ndarray) -> "SuffStats":
        v = np.asarray(values, dtype=np.float64).ravel()
        total = float(v.sum())
        if np.isnan(total):
            raise ValueError(
                "sufficient statistics over NaN values are undefined; "
                "impute missing data before scoring"
            )
        return cls(float(v.size), total, float((v * v).sum()))

    def add(self, other: "SuffStats") -> "SuffStats":
        return SuffStats(
            self.count + other.count,
            self.total + other.total,
            self.sumsq + other.sumsq,
        )

    def remove(self, other: "SuffStats") -> "SuffStats":
        return SuffStats(
            self.count - other.count,
            self.total - other.total,
            self.sumsq - other.sumsq,
        )

    def log_marginal(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> float:
        return float(log_marginal(self.count, self.total, self.sumsq, prior))

    def is_empty(self) -> bool:
        return self.count <= 0


class StatsArrays:
    """Column-parallel sufficient statistics for a set of blocks.

    Stored as three aligned ``float64`` arrays so a whole bank of blocks can
    be scored with one vectorized :func:`log_marginal` call.

    The arrays live in capacity-doubling buffers with a live length, so the
    :meth:`drop`/:meth:`append` pair a Gibbs merge move performs is a shift
    plus a slot write instead of the full ``np.delete``/``np.append``
    reallocation of all three arrays on every move.  ``count``/``total``/
    ``sumsq`` are live-length *views* of the buffers: in-place mutation
    (``stats.count[i] += x``, ``stats.count -= other``) writes straight
    through, and assigning a fresh array (as :meth:`from_arrays` and
    :meth:`grouped` do) adopts it as the new buffer.
    """

    __slots__ = ("_count", "_total", "_sumsq", "_size")

    def __init__(self, size: int) -> None:
        self._size = int(size)
        self._count = np.zeros(size, dtype=np.float64)
        self._total = np.zeros(size, dtype=np.float64)
        self._sumsq = np.zeros(size, dtype=np.float64)

    def _live(self, buf: np.ndarray) -> np.ndarray:
        return buf[: self._size]

    def _assign(self, attr: str, value) -> None:
        buf = getattr(self, attr)
        if (
            isinstance(value, np.ndarray)
            and (value is buf or value.base is buf)
            and value.shape == (self._size,)
        ):
            # Our own live view handed back after an in-place update
            # (``stats.count -= other`` calls the setter with the mutated
            # view): the buffer already holds the result.
            return
        arr = np.ascontiguousarray(value, dtype=np.float64)
        setattr(self, attr, arr)
        self._size = arr.shape[0]

    @property
    def count(self) -> np.ndarray:
        return self._live(self._count)

    @count.setter
    def count(self, value) -> None:
        self._assign("_count", value)

    @property
    def total(self) -> np.ndarray:
        return self._live(self._total)

    @total.setter
    def total(self, value) -> None:
        self._assign("_total", value)

    @property
    def sumsq(self) -> np.ndarray:
        return self._live(self._sumsq)

    @sumsq.setter
    def sumsq(self, value) -> None:
        self._assign("_sumsq", value)

    @property
    def capacity(self) -> int:
        """Allocated slots (>= live length; grows by doubling)."""
        return int(self._count.shape[0])

    @classmethod
    def from_arrays(
        cls, count: np.ndarray, total: np.ndarray, sumsq: np.ndarray
    ) -> "StatsArrays":
        out = cls(0)
        out.count = np.asarray(count, dtype=np.float64)
        out.total = np.asarray(total, dtype=np.float64)
        out.sumsq = np.asarray(sumsq, dtype=np.float64)
        return out

    @classmethod
    def grouped(cls, values: np.ndarray, labels: np.ndarray, n_groups: int) -> "StatsArrays":
        """Per-group stats of ``values`` partitioned by integer ``labels``.

        ``values`` may be 1-D (one row/column) or 2-D with groups taken over
        ``axis=1`` (labels apply to columns and rows are pooled into the same
        block, as in the GaneSH model where a block pools all values of the
        cluster's variables at the cluster's observations).
        """
        vals = np.asarray(values, dtype=np.float64)
        labels = np.asarray(labels)
        out = cls(n_groups)
        if (
            vals.ndim in (1, 2)
            and labels.shape == (vals.shape[-1],)
            and np.issubdtype(labels.dtype, np.integer)
        ):
            native = _native_kernels()
            if native is not None:
                triple = native.grouped(
                    np.ascontiguousarray(vals),
                    np.ascontiguousarray(labels, dtype=np.int64),
                    int(n_groups),
                )
                # None: a label fell outside [0, n_groups) — keep
                # np.bincount's implicit array-widening semantics below.
                if triple is not None:
                    out.count, out.total, out.sumsq = triple
                    _reject_nan_groups(out)
                    return out
        if vals.ndim == 1:
            out.count = np.bincount(labels, minlength=n_groups).astype(np.float64)
            out.total = np.bincount(labels, weights=vals, minlength=n_groups)
            out.sumsq = np.bincount(labels, weights=vals * vals, minlength=n_groups)
        elif vals.ndim == 2:
            rows = vals.shape[0]
            out.count = rows * np.bincount(labels, minlength=n_groups).astype(np.float64)
            out.total = np.bincount(
                labels, weights=vals.sum(axis=0), minlength=n_groups
            )
            out.sumsq = np.bincount(
                labels, weights=(vals * vals).sum(axis=0), minlength=n_groups
            )
        else:
            raise ValueError("values must be 1-D or 2-D")
        _reject_nan_groups(out)
        return out

    def __len__(self) -> int:
        return self._size

    def copy(self) -> "StatsArrays":
        return StatsArrays.from_arrays(
            self.count.copy(), self.total.copy(), self.sumsq.copy()
        )

    def block(self, index: int) -> SuffStats:
        return SuffStats(
            float(self.count[index]), float(self.total[index]), float(self.sumsq[index])
        )

    def add_at(self, index: int, stats: SuffStats) -> None:
        self.count[index] += stats.count
        self.total[index] += stats.total
        self.sumsq[index] += stats.sumsq

    def remove_at(self, index: int, stats: SuffStats) -> None:
        self.count[index] -= stats.count
        self.total[index] -= stats.total
        self.sumsq[index] -= stats.sumsq

    def add_arrays(self, other: "StatsArrays") -> None:
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq

    def pooled(self) -> SuffStats:
        return SuffStats(
            float(self.count.sum()), float(self.total.sum()), float(self.sumsq.sum())
        )

    def drop(self, index: int) -> None:
        """Remove one block: an in-buffer shift, no reallocation."""
        s = self._size
        if index < 0:
            index += s
        if not 0 <= index < s:
            raise IndexError(f"index {index} out of bounds for {s} blocks")
        self._count[index : s - 1] = self._count[index + 1 : s]
        self._total[index : s - 1] = self._total[index + 1 : s]
        self._sumsq[index : s - 1] = self._sumsq[index + 1 : s]
        self._size = s - 1

    def _ensure_capacity(self, needed: int) -> None:
        for attr in ("_count", "_total", "_sumsq"):
            buf = getattr(self, attr)
            if buf.shape[0] < needed:
                new = np.zeros(
                    max(4, needed, 2 * buf.shape[0]), dtype=np.float64
                )
                new[: self._size] = buf[: self._size]
                setattr(self, attr, new)

    def append(self, stats: SuffStats) -> None:
        """Add one block: a slot write, amortized O(1) via doubling."""
        self._ensure_capacity(self._size + 1)
        s = self._size
        self._count[s] = stats.count
        self._total[s] = stats.total
        self._sumsq[s] = stats.sumsq
        self._size = s + 1

    def log_marginals(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> np.ndarray:
        return np.asarray(log_marginal(self.count, self.total, self.sumsq, prior))

    def score(self, prior: NormalGammaPrior = DEFAULT_PRIOR) -> float:
        return float(self.log_marginals(prior).sum())
