"""Process-shared, content-addressed split-score cache.

:class:`repro.scoring.kernel.LazySplitKernel` memoizes ``(group, beta)``
scores per *instance*: every kernel construction re-derives the candidate
grouping tables and re-allocates a zeroed score table plus its seen
bitmask, even when the node it describes — the exact ``(values, sign,
beta_grid)`` triple — was scored moments ago by another kernel.  One-shot
``learn()`` calls never notice (each node is scored once), but a
long-lived service answering repeated or overlapping queries pays the
full evaluation cost of identical nodes again on every job.

:class:`SharedScoreCache` promotes that memo to a process-shared store:

* **content-addressed** — the key is a SHA-256 digest over the byte
  contents *and shapes* of ``(values, sign, beta_grid)``.  Two distinct
  inputs therefore collide only on a SHA-256 collision: the shape header
  separates same-byte reshapes, and each array's length is fixed by the
  header, so the concatenated byte stream is an injective encoding.
* **bounded** — entries are LRU-ordered and the store never holds more
  than ``max_bytes`` of array payload.  An entry larger than the whole
  budget is rejected outright rather than evicting everything else.
* **safe to evict** — a hit hands out *references* to the entry's arrays;
  a kernel constructed from them keeps scoring correctly even if the
  entry is evicted a microsecond later.  Eviction can therefore only ever
  change counters, never results — the property the hypothesis suite
  asserts.

Cached score tables are deterministic functions of the key material
(every ``(group, beta)`` value is the quantized log-sigmoid row sum of
rows derived from ``values``/``sign``/``beta_grid``), so serving them
across kernels — or mutating them in place as later kernels evaluate
more pairs — cannot change any score: bit-identity to the cache-off path
holds by construction.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from dataclasses import dataclass

import numpy as np

#: default byte budget of the service's score cache (256 MiB)
DEFAULT_SCORE_CACHE_BYTES = 256 * 1024 * 1024

_KEY_VERSION = b"repro-score-cache-v1"


def score_cache_key(
    values: np.ndarray, sign: np.ndarray, beta_grid: np.ndarray
) -> bytes:
    """The content address of one ``(values, sign, beta_grid)`` triple.

    The digest covers a version tag, the shapes (so equal byte strings
    under different ``(P, n_obs)`` factorizations hash apart) and the raw
    bytes of all three arrays.  With lengths pinned by the header the
    encoding is injective: distinct triples collide only if SHA-256 does.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    sign = np.ascontiguousarray(sign, dtype=np.float64)
    beta_grid = np.ascontiguousarray(beta_grid, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(_KEY_VERSION)
    digest.update(
        struct.pack(
            "<QQQ", values.shape[0], values.shape[1], beta_grid.size
        )
    )
    digest.update(values.tobytes())
    digest.update(sign.tobytes())
    digest.update(beta_grid.tobytes())
    return digest.digest()


@dataclass
class CacheEntry:
    """One node's grouping tables and (live) score memo.

    ``cache``/``seen`` are shared by reference with every kernel built
    from this entry: pairs evaluated by one kernel are hits for the next.
    ``nbytes`` is fixed at insertion — the arrays never change size.
    """

    item_groups: np.ndarray
    group_row: np.ndarray
    group_value: np.ndarray
    n_groups: int
    cache: np.ndarray
    seen: np.ndarray
    nbytes: int

    @classmethod
    def from_arrays(
        cls,
        item_groups: np.ndarray,
        group_row: np.ndarray,
        group_value: np.ndarray,
        n_groups: int,
        cache: np.ndarray,
        seen: np.ndarray,
    ) -> "CacheEntry":
        nbytes = int(
            item_groups.nbytes
            + group_row.nbytes
            + group_value.nbytes
            + cache.nbytes
            + seen.nbytes
        )
        return cls(
            item_groups=item_groups,
            group_row=group_row,
            group_value=group_value,
            n_groups=int(n_groups),
            cache=cache,
            seen=seen,
            nbytes=nbytes,
        )


class SharedScoreCache:
    """Bounded LRU store of :class:`CacheEntry` keyed by content address.

    Thread-safe: the service's status thread reads counters while the
    runner thread scores.  All methods take one short lock; the arrays
    themselves are handed out by reference and never copied.
    """

    def __init__(self, max_bytes: int = DEFAULT_SCORE_CACHE_BYTES) -> None:
        if int(max_bytes) <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        from collections import OrderedDict

        self._entries: "OrderedDict[bytes, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0
        #: entries larger than the whole budget, refused at insert
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        """Membership peek: touches neither counters nor LRU order."""
        with self._lock:
            return key in self._entries

    def lookup(self, key: bytes) -> CacheEntry | None:
        """The entry at ``key`` (refreshing its LRU position), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def insert(self, key: bytes, entry: CacheEntry) -> int:
        """Store ``entry`` under ``key``; returns how many entries were
        evicted to make room (0 when the entry was rejected or the key
        was already present — a concurrent builder won the race)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return 0
            if entry.nbytes > self.max_bytes:
                self.rejected += 1
                return 0
            evicted = 0
            while self._entries and (
                self.current_bytes + entry.nbytes > self.max_bytes
            ):
                _, victim = self._entries.popitem(last=False)
                self.current_bytes -= victim.nbytes
                self.evictions += 1
                evicted += 1
            self._entries[key] = entry
            self.current_bytes += entry.nbytes
            self.insertions += 1
            return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def snapshot(self) -> dict:
        """Counter snapshot for status endpoints and traces."""
        with self._lock:
            return {
                "max_bytes": self.max_bytes,
                "bytes": self.current_bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "insertions": self.insertions,
                "rejected": self.rejected,
            }
