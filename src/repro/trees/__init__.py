"""Regression-tree learning for modules (Section 2.2.3).

* :mod:`repro.trees.hierarchy` — Bayesian hierarchical agglomerative merging
  of sampled observation clusters into binary regression-tree structures
  (Algorithm 4, lines 10-18).
* :mod:`repro.trees.splits` — enumeration and posterior scoring of candidate
  parent splits, and the weighted/uniform split selection (Algorithm 5).
* :mod:`repro.trees.parents` — aggregation of selected splits into module
  parent scores (Algorithm 6's ``Learn-Parents``).
"""

from repro.trees.hierarchy import build_tree_structure
from repro.trees.parents import accumulate_parent_scores
from repro.trees.splits import (
    NodeSplitScores,
    node_kernel,
    score_node_splits,
    select_node_splits,
)

__all__ = [
    "build_tree_structure",
    "NodeSplitScores",
    "node_kernel",
    "score_node_splits",
    "select_node_splits",
    "accumulate_parent_scores",
]
