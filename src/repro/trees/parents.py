"""Module parent scores from selected splits (Algorithm 6, Learn-Parents).

The parents of a module are the variables appearing in any split assigned to
any node of any of the module's regression trees.  A parent's score is the
average of the posterior probabilities of its splits, weighted by the number
of observations at the split's node (Section 2.2.3, step 3).  Weighted and
uniform selections are aggregated separately — the uniform set is the random
control used downstream to assess parent significance.
"""

from __future__ import annotations

from typing import Iterable

from repro.datatypes import Split


def accumulate_parent_scores(splits: Iterable[Split]) -> dict[int, float]:
    """Observation-weighted mean posterior per parent variable."""
    weight_sum: dict[int, float] = {}
    score_sum: dict[int, float] = {}
    for split in splits:
        weight = float(split.n_obs)
        score_sum[split.parent] = score_sum.get(split.parent, 0.0) + split.posterior * weight
        weight_sum[split.parent] = weight_sum.get(split.parent, 0.0) + weight
    return {
        parent: score_sum[parent] / weight_sum[parent]
        for parent in sorted(score_sum)
        if weight_sum[parent] > 0
    }
