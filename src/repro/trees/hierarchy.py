"""Bayesian hierarchical agglomerative merging of observation clusters.

Builds the binary regression-tree structure for a module (Algorithm 4,
lines 10-18): leaf nodes are the observation clusters sampled by the
constrained GaneSH run; the ordered list of subtrees is repeatedly reduced
by merging the *consecutive* pair with the maximal Bayesian merge score,
until a single root holds all observations.

The merge score of subtrees ``a`` and ``b`` is the decomposable Bayesian
criterion ``logml(a + b) - logml(a) - logml(b)`` over the module's pooled
values at the subtrees' observations, where ``logml`` is the normal-gamma
marginal likelihood — the simplified Bayesian hierarchical clustering of
Heller & Ghahramani used by Michoel et al. 2007.  The argmax is
deterministic (first maximum), matching the all-reduce max of the parallel
algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes import RegressionTree, TreeNode
from repro.rng.streams import SCORE_QUANTUM
from repro.scoring.normal_gamma import DEFAULT_PRIOR, NormalGammaPrior
from repro.scoring.suffstats import SuffStats


def leaf_order(block: np.ndarray, obs_labels: np.ndarray) -> list[np.ndarray]:
    """Leaves (observation index arrays) ordered by block mean.

    The agglomeration merges *consecutive* subtrees, so the initial order
    matters; ordering leaves by their mean pooled expression puts similar
    response levels next to each other (ties break on smallest observation
    index, keeping the order deterministic).
    """
    obs_labels = np.asarray(obs_labels, dtype=np.int64)
    n_clusters = int(obs_labels.max()) + 1 if obs_labels.size else 0
    leaves = []
    for cid in range(n_clusters):
        obs = np.flatnonzero(obs_labels == cid)
        if obs.size == 0:
            continue
        # Quantize the sort key so the vectorized and pure-Python learners
        # order leaves identically despite summation-order noise.
        mean = round(float(block[:, obs].mean()) / SCORE_QUANTUM) * SCORE_QUANTUM
        leaves.append((mean, int(obs[0]), obs))
    leaves.sort(key=lambda item: (item[0], item[1]))
    return [obs for _, _, obs in leaves]


def build_tree_structure(
    block: np.ndarray,
    obs_labels: np.ndarray,
    module_id: int,
    prior: NormalGammaPrior = DEFAULT_PRIOR,
    hooks=None,
) -> RegressionTree:
    """Agglomerate one sampled observation clustering into a binary tree.

    ``block`` holds the module's rows; ``obs_labels`` is one clustering
    sampled by :func:`repro.ganesh.coclustering.run_obs_only_ganesh`.
    ``hooks``, when given, receives one ``(phase, costs, n_collectives)``
    record per merge round — the parallel algorithm computes merge scores
    block-distributed and reduces the max (Algorithm 4, lines 13-17).
    """
    block = np.atleast_2d(np.asarray(block, dtype=np.float64))
    leaves = leaf_order(block, obs_labels)

    next_id = 0
    subtrees: list[TreeNode] = []
    stats: list[SuffStats] = []
    for obs in leaves:
        subtrees.append(TreeNode(node_id=next_id, observations=np.sort(obs)))
        stats.append(SuffStats.of(block[:, obs]))
        next_id += 1

    while len(subtrees) > 1:
        lms = np.array([s.log_marginal(prior) for s in stats])
        merge_scores = np.empty(len(subtrees) - 1, dtype=np.float64)
        merged_stats = []
        for i in range(len(subtrees) - 1):
            combined = stats[i].add(stats[i + 1])
            merged_stats.append(combined)
            merge_scores[i] = combined.log_marginal(prior) - lms[i] - lms[i + 1]
        if hooks is not None and getattr(hooks, "record", None) is not None:
            hooks.emit(
                "modules.tree_merge",
                np.ones(len(merge_scores), dtype=np.float64),
                n_collectives=2,  # all-reduce max + bcast of the merged pair
            )
        # Quantized argmax: tie-robust across implementations; first maximum
        # wins, matching the deterministic all-reduce max of Algorithm 4.
        quantized = np.round(merge_scores / SCORE_QUANTUM) * SCORE_QUANTUM
        best = int(np.argmax(quantized))
        left, right = subtrees[best], subtrees[best + 1]
        parent = TreeNode(
            node_id=next_id,
            observations=np.sort(
                np.concatenate([left.observations, right.observations])
            ),
            left=left,
            right=right,
        )
        next_id += 1
        subtrees[best : best + 2] = [parent]
        stats[best : best + 2] = [merged_stats[best]]

    return RegressionTree(module_id=module_id, root=subtrees[0])
