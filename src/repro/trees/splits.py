"""Candidate parent splits: enumeration, posterior scoring, selection.

This is the dominant phase of Lemon-Tree (more than 90% of sequential
run-time in the paper's experiments).  For every internal node ``N`` of
every regression tree of every module, each pair ``(X_l, v)`` of a candidate
parent and a value of ``X_l`` at ``N``'s observations is a candidate split
(Section 2.2.3, step 2).  Splits are identified by a *global index* in the
deterministic enumeration order (module, tree, node, parent, observation);
the index addresses both the split's private randomness
(:class:`repro.rng.streams.IndexedStream`) and its position in the flat
distributed list the parallel algorithm partitions (Algorithm 5, line 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datatypes import Split, TreeNode
from repro.rng.streams import GibbsRandom, IndexedStream
from repro.scoring.kernel import (
    LazySplitKernel,
    guard_alloc,
    split_kernel_from_arrays,
)
from repro.scoring.split_score import SplitScorer


@dataclass
class NodeSplitScores:
    """Scored candidate splits of one internal tree node."""

    module_id: int
    tree_index: int
    node: TreeNode
    parents: np.ndarray  # candidate parent variable indices, shape (P,)
    base_index: int  # global index of this node's first candidate split
    log_scores: np.ndarray  # shape (P * n_obs,), quantized log-scores
    steps: np.ndarray  # sampling steps consumed per split (work driver)
    accepted: np.ndarray  # bool, beats the coin-flip baseline

    @property
    def n_obs(self) -> int:
        return int(self.node.observations.size)

    @property
    def n_splits(self) -> int:
        return int(self.log_scores.size)

    def split_parent(self, local_index: int) -> int:
        return int(self.parents[local_index // self.n_obs])

    def split_value(self, data: np.ndarray, local_index: int) -> float:
        parent = self.split_parent(local_index)
        obs = self.node.observations[local_index % self.n_obs]
        return float(data[parent, obs])

    def work_units(self) -> np.ndarray:
        """Per-split cost: sampling steps x observations at the node."""
        return self.steps.astype(np.float64) * self.n_obs


def margins_from_arrays(
    data: np.ndarray,
    obs: np.ndarray,
    left_obs: np.ndarray,
    parents: np.ndarray,
) -> np.ndarray:
    """Sigmoid margins of the candidate splits of a node given raw arrays.

    ``obs`` are the node's observations, ``left_obs`` its left child's.
    Returns shape ``(P * n_obs, n_obs)``: row ``l * n_obs + j`` holds the
    margins of split ``(parents[l], data[parents[l], obs[j]])``; the margin
    of observation ``o`` is ``v - x_o`` if ``o`` is in the left child and
    ``x_o - v`` otherwise.  Takes plain arrays so process-pool workers can
    rebuild margins without shipping tree objects.
    """
    obs = np.asarray(obs, dtype=np.int64)
    sign = np.where(np.isin(obs, left_obs), 1.0, -1.0)
    values = data[np.asarray(parents, dtype=np.int64)][:, obs]  # (P, n_obs)
    n_parents, n_obs = values.shape
    guard_alloc(n_parents * n_obs * n_obs, "dense margins matrix")
    # margins[l, j, o] = sign[o] * (values[l, j] - values[l, o])
    margins = sign[None, None, :] * (values[:, :, None] - values[:, None, :])
    return margins.reshape(n_parents * n_obs, n_obs)


def node_margins(data: np.ndarray, node: TreeNode, parents: np.ndarray) -> np.ndarray:
    """Sigmoid margins of all candidate splits at ``node``."""
    assert node.left is not None
    return margins_from_arrays(data, node.observations, node.left.observations, parents)


def node_kernel(
    data: np.ndarray,
    node: TreeNode,
    parents: np.ndarray,
    beta_grid,
) -> LazySplitKernel:
    """Lazy split-scoring kernel over all candidate splits at ``node``.

    The O(P * n_obs) replacement for :func:`node_margins`: the same
    candidate enumeration, but margins are materialized row-chunk by
    row-chunk during scoring instead of all at once.
    """
    assert node.left is not None
    return split_kernel_from_arrays(
        data, node.observations, node.left.observations, parents, beta_grid
    )


def score_node_splits(
    data: np.ndarray,
    module_id: int,
    tree_index: int,
    node: TreeNode,
    parents: np.ndarray,
    scorer: SplitScorer,
    istream: IndexedStream,
    base_index: int,
) -> NodeSplitScores:
    """Score every candidate split of one internal node (batch path).

    ``base_index`` is the node's first global split index; the node's splits
    occupy the contiguous range ``[base_index, base_index + P * n_obs)`` so
    their private random draws are fetched with one O(1)-seek block read.
    """
    kernel = node_kernel(data, node, parents, scorer.beta_grid)
    n_items = kernel.n_items
    dpi = istream.draws_per_item
    uniforms = istream.stream.block(base_index * dpi, n_items * dpi).reshape(
        n_items, dpi
    )
    log_scores, steps, _beta_idx, accepted = scorer.score_batch_kernel(
        kernel, uniforms
    )
    return NodeSplitScores(
        module_id=module_id,
        tree_index=tree_index,
        node=node,
        parents=np.asarray(parents, dtype=np.int64),
        base_index=base_index,
        log_scores=log_scores,
        steps=steps,
        accepted=accepted,
    )


def node_posteriors(scores: NodeSplitScores) -> np.ndarray:
    """Normalized posterior probability of each retained split at the node.

    Softmax over the retained (non-zero-posterior) splits; discarded splits
    get exactly 0.  This is the weight used both for the weighted selection
    and for the parent-score aggregation.
    """
    post = np.zeros(scores.n_splits, dtype=np.float64)
    retained = np.flatnonzero(scores.accepted)
    if retained.size == 0:
        return post
    logs = scores.log_scores[retained]
    peak = logs.max()
    weights = np.exp(logs - peak)
    post[retained] = weights / weights.sum()
    return post


def select_node_splits(
    data: np.ndarray,
    scores: NodeSplitScores,
    rng: GibbsRandom,
    n_select: int,
) -> tuple[list[Split], list[Split]]:
    """Select splits for one node (Algorithm 5, lines 8-13).

    ``n_select`` (the paper's ``J``) splits are drawn with probability
    proportional to posterior (skipped entirely when every candidate was
    discarded — there is no posterior to sample from), and another
    ``n_select`` uniformly at random over all candidates (the paper's random
    control set).  Exactly one replicated-stream draw is consumed per
    selected split, keeping all implementations in RNG lockstep.
    """
    posteriors = node_posteriors(scores)
    weighted: list[Split] = []
    uniform: list[Split] = []
    n_obs = scores.n_obs
    any_retained = bool(scores.accepted.any())

    def make_split(local_index: int) -> Split:
        return Split(
            parent=scores.split_parent(local_index),
            value=scores.split_value(data, local_index),
            node_id=scores.node.node_id,
            posterior=float(posteriors[local_index]),
            n_obs=n_obs,
        )

    for _ in range(n_select):
        if any_retained:
            log_weights = np.where(
                posteriors > 0, np.log(np.maximum(posteriors, 1e-300)), -np.inf
            )
            weighted.append(make_split(rng.weighted_choice_logs(log_weights)))
        uniform.append(make_split(rng.randint(scores.n_splits)))
    return weighted, uniform
