"""Tab-separated expression-matrix I/O (the Lemon-Tree input format).

The format is the one Lemon-Tree consumes: a header row of observation
names (first cell is a label for the gene column), then one row per gene:
gene name followed by its values.  ``read_expression_tsv`` also exposes the
paper's parallel-read pattern for documentation purposes: with ``p`` given,
the variables are block-distributed, each block is parsed separately, and
the blocks are concatenated — the all-gather step of Section 5.3 collapses
to a concatenation on one machine.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.datatypes import ExpressionMatrix
from repro.parallel.costmodel import block_bounds


def write_expression_tsv(matrix: ExpressionMatrix, path: str | Path) -> None:
    """Write a matrix in Lemon-Tree TSV layout."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write("GENE\t" + "\t".join(matrix.obs_names) + "\n")
        for name, row in zip(matrix.var_names, matrix.values):
            fh.write(name + "\t" + "\t".join(f"{v:.10g}" for v in row) + "\n")


def read_expression_tsv(path: str | Path, p: int = 1) -> ExpressionMatrix:
    """Read a Lemon-Tree TSV matrix.

    With ``p > 1`` the rows are parsed in ``p`` blocks (the simulated
    block-distributed parallel read of Section 5.3) and concatenated; the
    result is identical to a serial read.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n").split("\t")
        if len(header) < 2:
            raise ValueError(f"{path}: malformed header")
        obs_names = header[1:]
        lines = fh.readlines()

    var_names: list[str] = []
    blocks: list[np.ndarray] = []
    for lo, hi in block_bounds(len(lines), max(1, p)):
        if lo >= hi:
            continue
        names, values = _parse_rows(lines[lo:hi], len(obs_names), path)
        var_names.extend(names)
        blocks.append(values)
    if not blocks:
        raise ValueError(f"{path}: no data rows")
    return ExpressionMatrix(np.vstack(blocks), var_names, obs_names)


def _parse_rows(
    lines: list[str], n_obs: int, path: Path
) -> tuple[list[str], np.ndarray]:
    names: list[str] = []
    buf = io.StringIO()
    for line in lines:
        line = line.rstrip("\n")
        if not line:
            continue
        name, _, rest = line.partition("\t")
        if not rest:
            raise ValueError(f"{path}: row {name!r} has no values")
        names.append(name)
        buf.write(rest + "\n")
    buf.seek(0)
    values = np.loadtxt(buf, delimiter="\t", ndmin=2)
    if values.shape[1] != n_obs:
        raise ValueError(
            f"{path}: rows have {values.shape[1]} values, header has {n_obs}"
        )
    return names, values
