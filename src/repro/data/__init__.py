"""Data substrate: synthetic expression generators and matrix I/O.

The paper's evaluation uses two real data sets (S. cerevisiae RNA-seq,
5,716 x 2,577; A. thaliana microarray, 18,373 x 5,102) hosted on Zenodo.
Without network access, :mod:`repro.data.synthetic` generates expression
matrices with the same statistical structure the learner is sensitive to —
ground-truth modules, regulator-driven condition responses, heavy-tailed
noise — at configurable scale, with ``yeast_like`` / ``thaliana_like``
presets whose shapes are scaled-down versions of the paper's (see
DESIGN.md, substitutions).  :mod:`repro.data.io` reads and writes the
tab-separated matrix format Lemon-Tree uses.
"""

from repro.data.io import read_expression_tsv, write_expression_tsv
from repro.data.synthetic import (
    GroundTruth,
    SyntheticDataset,
    make_module_dataset,
    thaliana_like,
    yeast_like,
)

__all__ = [
    "GroundTruth",
    "SyntheticDataset",
    "make_module_dataset",
    "yeast_like",
    "thaliana_like",
    "read_expression_tsv",
    "write_expression_tsv",
]
