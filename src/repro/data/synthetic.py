"""Synthetic module-structured gene-expression generator.

Generates data by the module-network generative process itself (Segal et
al. 2003): genes are partitioned into ground-truth modules; each module is
driven by a small set of regulator genes through a regression-tree program
(threshold tests on regulator expression select a Gaussian leaf for the
module's mean in each condition); member genes scatter around the module
mean.  This produces exactly the statistical structure the GaneSH
co-clustering and the split-scoring posterior respond to, which is what the
run-time scaling experiments exercise.

The ``yeast_like`` / ``thaliana_like`` presets mirror the paper's two data
sets at a configurable scale factor (default 1/32 along both axes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datatypes import ExpressionMatrix


@dataclass(frozen=True)
class RegulatorProgram:
    """A depth-1 or depth-2 threshold program for one module."""

    regulators: tuple[int, ...]  # gene indices acting as regulators
    thresholds: tuple[float, ...]  # one threshold per regulator
    leaf_means: tuple[float, ...]  # 2 ** len(regulators) leaf means


@dataclass
class GroundTruth:
    """The generative structure behind a synthetic data set."""

    module_of_gene: np.ndarray  # ground-truth module label per gene
    programs: list[RegulatorProgram] = field(default_factory=list)

    @property
    def n_modules(self) -> int:
        return len(self.programs)

    def regulators_of(self, module: int) -> tuple[int, ...]:
        return self.programs[module].regulators


@dataclass
class SyntheticDataset:
    """An expression matrix plus its generative ground truth."""

    matrix: ExpressionMatrix
    truth: GroundTruth
    name: str = "synthetic"
    #: boolean mask of entries dropped by ``missing_rate`` (None when the
    #: matrix is complete)
    missing_mask: np.ndarray | None = None


def make_module_dataset(
    n_vars: int,
    n_obs: int,
    n_modules: int | None = None,
    n_regulators: int | None = None,
    noise: float = 0.4,
    heavy_tail: float = 0.15,
    missing_rate: float = 0.0,
    seed: int = 0,
    name: str = "synthetic",
) -> SyntheticDataset:
    """Generate a module-structured expression matrix.

    Parameters
    ----------
    n_vars, n_obs:
        Matrix shape (genes x conditions).
    n_modules:
        Ground-truth module count; default ``max(2, n_vars // 12)`` mirrors
        the paper's observed module scaling (28-39 modules at n=1000 growing
        sublinearly to 111-170 at n=5716).
    n_regulators:
        Size of the regulator pool; regulators are the first genes of the
        matrix.  Default ``max(2, n_vars // 10)``.
    noise:
        Standard deviation of per-gene scatter around the module mean.
    heavy_tail:
        Fraction of entries receiving a 3x noise kick (RNA-seq-style
        outliers).
    missing_rate:
        Fraction of entries replaced by NaN missing-data markers (dropout /
        failed measurements).  The returned matrix is constructed with
        ``allow_missing=True`` and the dropped entries are recorded in
        ``SyntheticDataset.missing_mask``; each variable keeps at least one
        observed value so row-mean imputation is always defined.
    """
    if n_vars < 4 or n_obs < 4:
        raise ValueError("need at least 4 variables and 4 observations")
    if not 0.0 <= missing_rate < 1.0:
        raise ValueError("missing_rate must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    if n_modules is None:
        n_modules = max(2, n_vars // 12)
    n_modules = min(n_modules, n_vars)
    if n_regulators is None:
        n_regulators = max(2, n_vars // 10)
    n_regulators = min(n_regulators, n_vars)

    # Regulators get independent standardized expression profiles.
    regulator_expr = rng.standard_normal((n_regulators, n_obs))

    # Gene -> module assignment: regulators are spread round-robin so every
    # module contains candidate regulators too (self-regulation is allowed,
    # as in the paper: acyclicity is not enforced).
    module_of_gene = rng.integers(0, n_modules, size=n_vars)
    # Ensure no empty modules.  Donor genes come only from modules holding
    # at least two members (pigeonhole guarantees one exists whenever some
    # module is empty), so the fixup can never empty a singleton module it
    # already passed.
    for module in range(n_modules):
        if not (module_of_gene == module).any():
            counts = np.bincount(module_of_gene, minlength=n_modules)
            donors = np.flatnonzero(counts[module_of_gene] >= 2)
            module_of_gene[donors[rng.integers(0, donors.size)]] = module

    programs: list[RegulatorProgram] = []
    values = np.empty((n_vars, n_obs), dtype=np.float64)
    for module in range(n_modules):
        depth = int(rng.integers(1, 3))  # 1 or 2 regulators per module
        regs = tuple(int(r) for r in rng.choice(n_regulators, size=depth, replace=False))
        thresholds = tuple(float(t) for t in rng.normal(0.0, 0.5, size=depth))
        n_leaves = 2**depth
        leaf_means = tuple(float(v) for v in rng.normal(0.0, 1.5, size=n_leaves))
        programs.append(RegulatorProgram(regs, thresholds, leaf_means))

        # Condition -> leaf via threshold tests on regulator expression.
        leaf_index = np.zeros(n_obs, dtype=np.int64)
        for d, (reg, thr) in enumerate(zip(regs, thresholds)):
            leaf_index = leaf_index * 2 + (regulator_expr[reg] > thr).astype(np.int64)
        module_mean = np.asarray(leaf_means)[leaf_index]

        members = np.flatnonzero(module_of_gene == module)
        offsets = rng.normal(0.0, 0.3, size=members.size)
        scatter = rng.normal(0.0, noise, size=(members.size, n_obs))
        values[members] = module_mean[None, :] + offsets[:, None] + scatter

    # Regulator genes report their own profiles (they drive, not follow).
    values[:n_regulators] = regulator_expr + rng.normal(
        0.0, noise * 0.5, size=regulator_expr.shape
    )

    # Heavy-tailed measurement outliers.
    if heavy_tail > 0:
        mask = rng.random((n_vars, n_obs)) < heavy_tail
        values = values + mask * rng.normal(0.0, 3.0 * noise, size=values.shape)

    # Missing-data injection: drop entries to NaN, but keep at least one
    # observed value per variable so row statistics remain defined.
    missing_mask = None
    if missing_rate > 0.0:
        missing_mask = rng.random((n_vars, n_obs)) < missing_rate
        keep = rng.integers(0, n_obs, size=n_vars)
        missing_mask[np.arange(n_vars), keep] = False
        values = values.copy()
        values[missing_mask] = np.nan

    matrix = ExpressionMatrix(
        values,
        var_names=[f"G{i:05d}" for i in range(n_vars)],
        obs_names=[f"C{j:05d}" for j in range(n_obs)],
        allow_missing=missing_mask is not None,
    )
    return SyntheticDataset(
        matrix=matrix,
        truth=GroundTruth(module_of_gene=module_of_gene, programs=programs),
        name=name,
        missing_mask=missing_mask,
    )


#: paper shapes: S. cerevisiae 5716 x 2577, A. thaliana 18373 x 5102
YEAST_SHAPE = (5716, 2577)
THALIANA_SHAPE = (18373, 5102)


def yeast_like(scale: float = 1 / 32, seed: int = 7) -> SyntheticDataset:
    """A scaled-down S.-cerevisiae-shaped data set (Tchourine et al. role)."""
    n = max(8, round(YEAST_SHAPE[0] * scale))
    m = max(8, round(YEAST_SHAPE[1] * scale))
    return make_module_dataset(n, m, seed=seed, name=f"yeast-like[{n}x{m}]")


def thaliana_like(scale: float = 1 / 32, seed: int = 11) -> SyntheticDataset:
    """A scaled-down A.-thaliana-shaped data set (development microarrays)."""
    n = max(8, round(THALIANA_SHAPE[0] * scale))
    m = max(8, round(THALIANA_SHAPE[1] * scale))
    return make_module_dataset(n, m, seed=seed, name=f"thaliana-like[{n}x{m}]")
