"""Consensus clustering of GaneSH variable-cluster ensembles (Section 2.2.2).

The ensemble of variable clusterings sampled by the GaneSH runs is condensed
into a single consensus clustering: a thresholded co-occurrence frequency
matrix is built (:mod:`repro.consensus.cooccurrence`) and fed to the
spectral clustering procedure of Michoel & Nachtergaele
(:mod:`repro.consensus.spectral`).  As in the paper, this task is always
executed sequentially — it accounts for less than 0.04% of total run-time.
"""

from repro.consensus.cooccurrence import cooccurrence_matrix
from repro.consensus.spectral import consensus_clusters, spectral_clusters

__all__ = ["cooccurrence_matrix", "spectral_clusters", "consensus_clusters"]
