"""Spectral consensus clustering (Michoel & Nachtergaele, Phys. Rev. E 2012).

The consensus clusters are extracted from the co-occurrence matrix by
iterative dominant-eigenvector peeling: the Perron vector of the remaining
matrix localizes on the tightest group of co-occurring variables; the group
is cut at the prefix (in decreasing eigenvector weight) that maximizes the
within-group density, removed, and the procedure repeats.  This matches the
role the algorithm plays in Lemon-Tree — turning a fuzzy ensemble into
disjoint consensus modules — with a deterministic implementation (fixed
power-iteration start) so all learners agree bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.consensus.cooccurrence import cooccurrence_matrix


def _dominant_eigenvector(
    matrix: np.ndarray, tol: float = 1e-12, max_iter: int = 2000
) -> np.ndarray:
    """Deterministic power iteration for the Perron (dominant) eigenvector."""
    n = matrix.shape[0]
    vec = np.full(n, 1.0 / np.sqrt(n))
    for _ in range(max_iter):
        nxt = matrix @ vec
        norm = np.linalg.norm(nxt)
        if norm == 0.0:
            return vec
        nxt /= norm
        if np.abs(nxt - vec).max() < tol:
            return nxt
        vec = nxt
    return vec


def _best_prefix(matrix: np.ndarray, order: np.ndarray) -> int:
    """Prefix length of ``order`` maximizing within-group mean density.

    The density of the top-``t`` set ``S`` is ``sum(A[S, S]) / t`` — the
    indicator-vector relaxation of the Rayleigh quotient the spectral method
    optimizes.  Ties break toward the larger prefix so near-uniform
    eigenvectors produce one cluster rather than a singleton.
    """
    best_t, best_score = 1, -np.inf
    weight = 0.0
    for t in range(1, order.size + 1):
        new = order[t - 1]
        prev = order[: t - 1]
        weight += 2.0 * matrix[new, prev].sum() + matrix[new, new]
        score = weight / t
        if score >= best_score - 1e-12:
            if score > best_score + 1e-12 or t > best_t:
                best_t, best_score = t, score
    return best_t


def spectral_clusters(
    matrix: np.ndarray, min_cluster_size: int = 1, max_clusters: int | None = None
) -> list[list[int]]:
    """Disjoint clusters from a symmetric non-negative affinity matrix.

    Variables with no remaining affinity become singleton clusters.
    Clusters smaller than ``min_cluster_size`` are still returned (the
    learner decides whether to keep them as modules).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("affinity matrix must be square")
    if (matrix < 0).any():
        raise ValueError("affinity matrix must be non-negative")
    n = matrix.shape[0]
    remaining = np.arange(n)
    clusters: list[list[int]] = []
    while remaining.size:
        if max_clusters is not None and len(clusters) >= max_clusters - 1:
            clusters.append([int(v) for v in remaining])
            break
        sub = matrix[np.ix_(remaining, remaining)]
        if sub.max() <= 0.0:
            clusters.extend([[int(v)] for v in remaining])
            break
        # Work within one connected component: after thresholding the
        # co-occurrence matrix is near block-diagonal and disconnected
        # blocks can share the dominant eigenvalue, which would smear the
        # eigenvector across blocks.  The component containing the smallest
        # remaining index is processed first (deterministic).
        from scipy.sparse.csgraph import connected_components

        _n_comp, comp_labels = connected_components(sub > 0, directed=False)
        comp = np.flatnonzero(comp_labels == comp_labels[0])
        if comp.size == 1:
            clusters.append([int(remaining[comp[0]])])
            remaining = np.delete(remaining, comp[0])
            continue
        comp_sub = sub[np.ix_(comp, comp)]
        vec = np.abs(_dominant_eigenvector(comp_sub))
        # Stable order: by decreasing weight, index as tie-break.
        order = np.lexsort((remaining[comp], -vec))
        t = _best_prefix(comp_sub, order)
        chosen = remaining[comp[order[:t]]]
        clusters.append(sorted(int(v) for v in chosen))
        mask = np.ones(remaining.size, dtype=bool)
        mask[comp[order[:t]]] = False
        remaining = remaining[mask]
    # Deterministic module numbering: by smallest member index.
    clusters.sort(key=lambda c: c[0])
    _ = min_cluster_size  # kept for API symmetry; filtering is the caller's
    return clusters


def consensus_clusters(
    samples: Sequence[np.ndarray],
    threshold: float = 0.25,
    max_clusters: int | None = None,
) -> list[list[int]]:
    """Full consensus-clustering task: co-occurrence matrix + spectral step."""
    matrix = cooccurrence_matrix(samples, threshold=threshold)
    return spectral_clusters(matrix, max_clusters=max_clusters)
