"""Co-occurrence frequency matrix over an ensemble of clusterings."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cooccurrence_matrix(
    samples: Sequence[np.ndarray], threshold: float = 0.0
) -> np.ndarray:
    """Symmetric ``n x n`` co-occurrence frequency matrix.

    Entry ``(i, j)`` is the fraction of sampled clusterings in which
    variables ``i`` and ``j`` share a cluster (Section 2.2.2).  Entries
    strictly below ``threshold`` are zeroed, as are the diagonal entries
    (self co-occurrence carries no grouping information for the spectral
    step).
    """
    if not samples:
        raise ValueError("need at least one clustering sample")
    first = np.asarray(samples[0])
    n = first.shape[0]
    accum = np.zeros((n, n), dtype=np.float64)
    for labels in samples:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (n,):
            raise ValueError("all samples must label the same variables")
        n_clusters = int(labels.max()) + 1
        onehot = np.zeros((n, n_clusters), dtype=np.float64)
        onehot[np.arange(n), labels] = 1.0
        accum += onehot @ onehot.T
    accum /= len(samples)
    if threshold > 0.0:
        accum[accum < threshold] = 0.0
    np.fill_diagonal(accum, 0.0)
    return accum
