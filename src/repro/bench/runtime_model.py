"""Growth-law fits and the Section 5.2.2 extrapolation methodology.

The paper estimates infeasible full-scale sequential run-times from
measured small-scale runs: the growth with ``m`` at fixed ``n`` is fitted
(Theta(m^2) observed), growth with ``n`` at fixed ``m`` is bracketed
(Omega(n^1.8), O(n^2)), and the largest measured run-time is scaled by the
fitted laws to the full data-set shape.  These routines implement exactly
that procedure over this reproduction's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def fit_growth_exponent(sizes, times) -> float:
    """Least-squares slope of log(time) against log(size)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.size != times.size or sizes.size < 2:
        raise ValueError("need at least two (size, time) points")
    if (sizes <= 0).any() or (times <= 0).any():
        raise ValueError("sizes and times must be positive")
    slope, _intercept = np.polyfit(np.log(sizes), np.log(times), 1)
    return float(slope)


def growth_ratios(sizes, times) -> list[float]:
    """Run-time growth relative to the smallest size (the paper's Figures
    3 and 4 plot these ratios against the size ratio)."""
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    order = np.argsort(sizes)
    base = times[order[0]]
    return [float(times[i] / base) for i in order]


@dataclass(frozen=True)
class FullScaleEstimate:
    """An extrapolated full-scale sequential run-time (Section 5.2.2)."""

    measured_seconds: float
    measured_shape: tuple[int, int]
    target_shape: tuple[int, int]
    m_exponent: float
    n_exponent: float

    @property
    def estimated_seconds(self) -> float:
        n0, m0 = self.measured_shape
        n1, m1 = self.target_shape
        return (
            self.measured_seconds
            * (m1 / m0) ** self.m_exponent
            * (n1 / n0) ** self.n_exponent
        )

    @property
    def estimated_hours(self) -> float:
        return self.estimated_seconds / 3600.0

    @property
    def estimated_days(self) -> float:
        return self.estimated_seconds / 86400.0


def estimate_full_scale_runtime(
    measured_seconds: float,
    measured_shape: tuple[int, int],
    target_shape: tuple[int, int],
    m_exponent: float = 2.0,
    n_exponent: float = 1.8,
) -> FullScaleEstimate:
    """The paper's estimate: largest measured run scaled by
    ``(m1/m0)^m_exp * (n1/n0)^n_exp`` (their yeast estimate uses m_exp = 2
    with n fixed; their thaliana estimate adds the n^1.8 lower bound)."""
    if measured_seconds <= 0:
        raise ValueError("measured run-time must be positive")
    return FullScaleEstimate(
        measured_seconds=measured_seconds,
        measured_shape=tuple(measured_shape),
        target_shape=tuple(target_shape),
        m_exponent=m_exponent,
        n_exponent=n_exponent,
    )
