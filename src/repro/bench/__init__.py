"""Shared infrastructure for the benchmark harness.

Each file in ``benchmarks/`` regenerates one table or figure of the paper's
evaluation (Section 5); this package holds the pieces they share — paper
reference data, growth-law fits, the Section 5.2.2 extrapolation
methodology, and plain-text table/figure renderers.
"""

from repro.bench.paper import PAPER
from repro.bench.reporting import render_figure_series, render_table, save_results
from repro.bench.runtime_model import (
    estimate_full_scale_runtime,
    fit_growth_exponent,
    growth_ratios,
)

__all__ = [
    "PAPER",
    "render_table",
    "render_figure_series",
    "save_results",
    "fit_growth_exponent",
    "growth_ratios",
    "estimate_full_scale_runtime",
]
