"""Reference numbers reported in the paper (Section 5), used by the
benchmarks to print paper-vs-measured comparisons into EXPERIMENTS.md."""

from __future__ import annotations

#: Table 1 — sequential run-times (seconds) for Lemon-Tree vs the authors'
#: optimized implementation on yeast subsamples, and the speedup column.
TABLE1 = {
    (1000, 125): (416.0, 110.3, 3.8),
    (1000, 250): (1609.9, 428.3, 3.8),
    (1000, 500): (6307.9, 1686.2, 3.7),
    (1000, 750): (13441.5, 3574.5, 3.8),
    (1000, 1000): (25253.6, 6680.7, 3.8),
    (2000, 125): (1407.5, 392.8, 3.6),
    (2000, 250): (5747.2, 1562.7, 3.7),
    (2000, 500): (23258.4, 6202.3, 3.7),
    (2000, 750): (52606.2, 14038.7, 3.7),
    (2000, 1000): (91202.7, 24327.0, 3.7),
    (3000, 125): (2942.8, 792.0, 3.7),
    (3000, 250): (11962.1, 3193.4, 3.7),
    (3000, 500): (50838.0, 13553.9, 3.8),
    (3000, 750): (108545.5, 28942.3, 3.8),
    (3000, 1000): (197493.4, 52709.6, 3.8),
}

#: Table 2 — A. thaliana run-times and relative speedup/efficiency vs 256
#: cores.
TABLE2 = {
    256: (168775.6, 1.0, 100.0),
    512: (91349.6, 1.8, 92.4),
    1024: (54099.1, 3.1, 78.0),
    2048: (28529.3, 5.9, 73.9),
    4096: (15097.6, 11.2, 69.9),
}

#: Figure 3/4 — observed growth laws of the sequential implementation.
GROWTH = {
    "m_exponent": 2.0,  # Theta(m^2) for fixed n
    "n_exponent_low": 1.8,  # Omega(n^1.8) ...
    "n_exponent_high": 2.0,  # ... O(n^2) for fixed m
}

#: Figure 5b — strong-scaling observations for the yeast m-sweep.
FIG5 = {
    "speedup_at_64": 48.0,
    "efficiency_at_64": 0.75,
    "speedup_range_at_1024": (273.9, 288.3),
    "small_m_diverges": 125,  # the m=125 curve departs from the others
}

#: Section 5.3.1 — split-scoring load imbalance (max-mean)/mean.
IMBALANCE = {64: 0.3, 128: 0.5, 1024: 2.6}

#: Figure 6 — complete yeast data set scaling.
FIG6 = {
    "rel_speedup_4_to_128": 22.6,
    "rel_efficiency_4_to_128": 0.70,
    "rel_speedup_4_to_4096": 239.3,
    "rel_efficiency_4_to_4096": 0.234,
    "runtime_4096_minutes": 23.5,
}

#: Section 5.2.2 — extrapolated sequential run-times.
ESTIMATES = {
    "yeast_ours_days": 13.5,
    "yeast_lemontree_days": 48.6,
    "thaliana_ours_days": 433.6,
    "thaliana_lemontree_days": 1561.0,
    "verified_yeast_hours": 325.1,  # single full sequential run check
}

#: Shapes of the paper's data sets.
SHAPES = {"yeast": (5716, 2577), "thaliana": (18373, 5102)}

PAPER = {
    "table1": TABLE1,
    "table2": TABLE2,
    "growth": GROWTH,
    "fig5": FIG5,
    "fig6": FIG6,
    "imbalance": IMBALANCE,
    "estimates": ESTIMATES,
    "shapes": SHAPES,
}
