"""Plain-text renderers and result persistence for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports and saves a JSON record under ``benchmarks/results/`` so
EXPERIMENTS.md can cite exact measured values.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width text table in the style of the paper's tables."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure_series(
    title: str,
    x_label: str,
    series: dict[str, dict[float, float]],
    y_format: str = "{:.3g}",
) -> str:
    """A text rendering of a figure: one column per series, rows over x."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            value = series[name].get(x)
            row.append(y_format.format(value) if value is not None else "-")
        rows.append(row)
    return render_table(title, headers, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def save_results(experiment: str, payload: dict) -> Path:
    """Persist one experiment's measurements for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    record = {"experiment": experiment, "recorded_at": time.time(), **payload}
    path.write_text(json.dumps(record, indent=2, sort_keys=True, default=str))
    return path


def load_results(experiment: str) -> dict | None:
    path = RESULTS_DIR / f"{experiment}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())
