"""repro — Parallel Construction of Module Networks (SC '21 reproduction).

A Python reproduction of Srivastava, Chockalingam, Aluru & Aluru,
"Parallel Construction of Module Networks", SC '21: the Lemon-Tree
module-network learning algorithm (GaneSH co-clustering, consensus
clustering, regression-tree CPD learning) together with its
distributed-memory parallelization, on a simulated MPI machine with a
calibrated communication model.

Quickstart::

    from repro import LearnerConfig, LemonTreeLearner, ParallelConfig, yeast_like

    dataset = yeast_like(scale=1 / 64)
    config = LearnerConfig(
        parallel=ParallelConfig(n_workers=4, topology="auto"),
    )
    result = LemonTreeLearner(config).learn(dataset.matrix, seed=1)
    print(result.network)

``ParallelConfig`` gathers every execution-backend knob (workers, task
decomposition, schedule, checkpoint directory, machine topology); it is
embedded in both ``LearnerConfig`` and ``GenomicaConfig`` as
``config.parallel``.  Worker placement and chunk sizing follow the probed
machine topology (``MachineTopology``) but can never change the learned
network — every backend is bit-identical to the sequential learner.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.core import (
    LearnerConfig,
    LearnResult,
    LemonTreeLearner,
    ParallelConfig,
    ReferenceLearner,
    network_from_json,
    network_to_json,
    network_to_xml,
)
from repro.data import (
    make_module_dataset,
    read_expression_tsv,
    thaliana_like,
    write_expression_tsv,
    yeast_like,
)
from repro.analysis import make_acyclic, module_recovery_score, parent_recovery
from repro.datatypes import ExpressionMatrix, Module, ModuleNetwork, TaskTimes
from repro.genomica import GenomicaConfig, GenomicaLearner
from repro.inference import (
    fit_network,
    holdout_log_likelihood,
    train_test_split_obs,
)
from repro.parallel import (
    MachineModel,
    MachineTopology,
    ParallelLearner,
    WorkTrace,
    project_time,
)
from repro.validation import SCENARIOS, run_matrix, run_scenario

__version__ = "1.0.0"

__all__ = [
    "LearnerConfig",
    "ParallelConfig",
    "LemonTreeLearner",
    "ReferenceLearner",
    "LearnResult",
    "ExpressionMatrix",
    "Module",
    "ModuleNetwork",
    "TaskTimes",
    "MachineModel",
    "MachineTopology",
    "ParallelLearner",
    "WorkTrace",
    "project_time",
    "make_module_dataset",
    "yeast_like",
    "thaliana_like",
    "read_expression_tsv",
    "write_expression_tsv",
    "network_to_json",
    "network_from_json",
    "network_to_xml",
    "SCENARIOS",
    "run_matrix",
    "run_scenario",
    "GenomicaLearner",
    "GenomicaConfig",
    "fit_network",
    "holdout_log_likelihood",
    "train_test_split_obs",
    "make_acyclic",
    "module_recovery_score",
    "parent_recovery",
    "__version__",
]
