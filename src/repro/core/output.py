"""Serialization of learned module networks (JSON and XML).

The paper's implementation writes the final MoNet structure in XML from
rank 0 (Section 5.3); JSON is provided as the round-trippable format used
by the tests and examples.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Any

import numpy as np

from repro.datatypes import Module, ModuleNetwork, RegressionTree, Split, TreeNode


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def _node_to_dict(node: TreeNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "node_id": node.node_id,
        "observations": [int(o) for o in node.observations],
        "weighted_splits": [_split_to_dict(s) for s in node.weighted_splits],
        "uniform_splits": [_split_to_dict(s) for s in node.uniform_splits],
    }
    if node.left is not None and node.right is not None:
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _split_to_dict(split: Split) -> dict[str, Any]:
    return {
        "parent": split.parent,
        "value": split.value,
        "node_id": split.node_id,
        "posterior": split.posterior,
        "n_obs": split.n_obs,
    }


def _node_from_dict(payload: dict[str, Any]) -> TreeNode:
    node = TreeNode(
        node_id=int(payload["node_id"]),
        observations=np.asarray(payload["observations"], dtype=np.int64),
    )
    if "left" in payload:
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    node.weighted_splits = [_split_from_dict(s) for s in payload["weighted_splits"]]
    node.uniform_splits = [_split_from_dict(s) for s in payload["uniform_splits"]]
    return node


def _split_from_dict(payload: dict[str, Any]) -> Split:
    return Split(
        parent=int(payload["parent"]),
        value=float(payload["value"]),
        node_id=int(payload["node_id"]),
        posterior=float(payload["posterior"]),
        n_obs=int(payload["n_obs"]),
    )


def network_to_json(network: ModuleNetwork) -> str:
    """Serialize a network to a JSON document (round-trippable)."""
    payload = {
        "var_names": network.var_names,
        "n_obs": network.n_obs,
        "modules": [
            {
                "module_id": module.module_id,
                "members": module.members,
                "trees": [_node_to_dict(tree.root) for tree in module.trees],
                "weighted_parents": {
                    str(k): v for k, v in sorted(module.weighted_parents.items())
                },
                "uniform_parents": {
                    str(k): v for k, v in sorted(module.uniform_parents.items())
                },
            }
            for module in network.modules
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def network_from_json(document: str) -> ModuleNetwork:
    """Reconstruct a network from :func:`network_to_json` output."""
    payload = json.loads(document)
    modules = []
    for mod in payload["modules"]:
        module = Module(
            module_id=int(mod["module_id"]),
            members=[int(v) for v in mod["members"]],
            trees=[
                RegressionTree(
                    module_id=int(mod["module_id"]), root=_node_from_dict(tree)
                )
                for tree in mod["trees"]
            ],
            weighted_parents={
                int(k): float(v) for k, v in mod["weighted_parents"].items()
            },
            uniform_parents={
                int(k): float(v) for k, v in mod["uniform_parents"].items()
            },
        )
        modules.append(module)
    return ModuleNetwork(modules, payload["var_names"], int(payload["n_obs"]))


# ---------------------------------------------------------------------------
# XML (Lemon-Tree-style module network document)
# ---------------------------------------------------------------------------


def network_to_xml(network: ModuleNetwork) -> str:
    """Serialize to a Lemon-Tree-style XML document."""
    root = ET.Element(
        "ModuleNetwork",
        attrib={
            "variables": str(network.n_vars),
            "observations": str(network.n_obs),
            "modules": str(network.n_modules),
        },
    )
    for module in network.modules:
        mod_el = ET.SubElement(
            root, "Module", attrib={"id": str(module.module_id)}
        )
        members_el = ET.SubElement(mod_el, "Members")
        for var in module.members:
            ET.SubElement(
                members_el,
                "Variable",
                attrib={"index": str(var), "name": network.var_names[var]},
            )
        parents_el = ET.SubElement(mod_el, "Parents")
        for parent, score in sorted(module.weighted_parents.items()):
            ET.SubElement(
                parents_el,
                "Parent",
                attrib={
                    "index": str(parent),
                    "name": network.var_names[parent],
                    "score": f"{score:.9f}",
                    "selection": "weighted",
                },
            )
        for parent, score in sorted(module.uniform_parents.items()):
            ET.SubElement(
                parents_el,
                "Parent",
                attrib={
                    "index": str(parent),
                    "name": network.var_names[parent],
                    "score": f"{score:.9f}",
                    "selection": "uniform",
                },
            )
        trees_el = ET.SubElement(mod_el, "RegressionTrees")
        for tree in module.trees:
            tree_el = ET.SubElement(trees_el, "Tree")
            _append_node_xml(tree_el, tree.root)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _append_node_xml(parent_el: ET.Element, node: TreeNode) -> None:
    node_el = ET.SubElement(
        parent_el,
        "Node",
        attrib={
            "id": str(node.node_id),
            "leaf": "true" if node.is_leaf else "false",
            "observations": ",".join(str(int(o)) for o in node.observations),
        },
    )
    for kind, splits in (
        ("weighted", node.weighted_splits),
        ("uniform", node.uniform_splits),
    ):
        for split in splits:
            ET.SubElement(
                node_el,
                "Split",
                attrib={
                    "parent": str(split.parent),
                    "value": f"{split.value:.9f}",
                    "posterior": f"{split.posterior:.9f}",
                    "selection": kind,
                },
            )
    if node.left is not None and node.right is not None:
        _append_node_xml(node_el, node.left)
        _append_node_xml(node_el, node.right)
